// Figure 3: FFT completion time as a function of input size (17..24 MB),
// DISK vs PARITY LOGGING. The paper's shape: flat while the working set fits
// (~18 MB of application memory), then a sharp rise, with parity logging
// well under the disk beyond the cliff.

#include <cstdio>

#include "bench/bench_util.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Figure 3: FFT completion vs input size, DISK vs PARITY_LOGGING ===\n");
  std::printf("(paging cliff expected just above %.1f MB of application memory)\n\n",
              static_cast<double>(kPaperFrames) * kPageSize / kMiB);
  const double sizes_mb[] = {17.0, 18.5, 20.0, 21.6, 23.2, 24.0};
  std::printf("%8s  %14s  %14s  %8s\n", "size MB", "DISK s", "PARITY_LOG s", "ratio");
  for (const double mb : sizes_mb) {
    const auto fft = MakeFft(mb);
    PolicyRunConfig disk_config;
    disk_config.policy = Policy::kDisk;
    auto disk = RunWorkloadUnderPolicy(*fft, disk_config);
    PolicyRunConfig pl_config;
    pl_config.policy = Policy::kParityLogging;
    pl_config.data_servers = 4;
    auto pl = RunWorkloadUnderPolicy(*fft, pl_config);
    if (!disk.ok() || !pl.ok()) {
      std::printf("%8.1f  FAILED (%s / %s)\n", mb,
                  disk.ok() ? "ok" : disk.status().ToString().c_str(),
                  pl.ok() ? "ok" : pl.status().ToString().c_str());
      continue;
    }
    std::printf("%8.1f  %14.2f  %14.2f  %8.2f\n", mb, disk->etime_s, pl->etime_s,
                disk->etime_s / pl->etime_s);
  }
  std::printf("\npaper anchor at 24 MB: PARITY_LOGGING etime 130.76 s "
              "(2718 pageouts, 2055 pageins)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
