#include "src/core/adaptive.h"

#include <gtest/gtest.h>

#include "src/core/no_reliability.h"
#include "src/net/ethernet_model.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

struct AdaptiveFixture {
  explicit AdaptiveFixture(int background_stations, AdaptiveParams params = AdaptiveParams()) {
    MemoryServerParams server_params;
    server_params.capacity_pages = 4096;
    server = std::make_unique<MemoryServer>(server_params);
    Cluster cluster;
    cluster.AddPeer("ws0", std::make_unique<InProcTransport>(server.get()));
    EthernetParams ether;
    ether.background_stations = background_stations;
    auto fabric = std::make_shared<NetworkFabric>(std::make_shared<EthernetModel>(ether));
    auto remote = std::make_unique<NoReliabilityBackend>(std::move(cluster), fabric,
                                                         RemotePagerParams{});
    auto disk = DiskBackend::Create(DiskParams(), 8192);
    EXPECT_TRUE(disk.ok());
    backend = std::make_unique<AdaptiveBackend>(
        std::move(remote), std::make_unique<DiskBackend>(std::move(*disk)), params);
  }

  std::unique_ptr<MemoryServer> server;
  std::unique_ptr<AdaptiveBackend> backend;
};

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(AdaptiveTest, StaysOnIdleNetwork) {
  AdaptiveFixture f(/*background_stations=*/0);
  TimeNs now = 0;
  for (uint64_t p = 0; p < 64; ++p) {
    auto done = f.backend->PageOut(now, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    now = *done + Millis(5);
  }
  EXPECT_TRUE(f.backend->using_network());
  EXPECT_EQ(f.backend->switches_to_disk(), 0);
  EXPECT_GT(f.server->live_pages(), 60u);
}

TEST(AdaptiveTest, CongestedNetworkSwitchesToDisk) {
  AdaptiveFixture f(/*background_stations=*/6);  // ~1.5 Mbit/s share: ~60 ms/page.
  TimeNs now = 0;
  for (uint64_t p = 0; p < 64; ++p) {
    auto done = f.backend->PageOut(now, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    now = *done + Millis(5);
  }
  EXPECT_FALSE(f.backend->using_network());
  EXPECT_GE(f.backend->switches_to_disk(), 1);
  // Later pageouts landed on the disk.
  EXPECT_GT(f.backend->disk().stats().pageouts, 0);
}

TEST(AdaptiveTest, AllPagesReadableWhereverTheyLive) {
  AdaptiveFixture f(/*background_stations=*/6);
  TimeNs now = 0;
  for (uint64_t p = 0; p < 64; ++p) {
    auto done = f.backend->PageOut(now, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    now = *done + Millis(5);
  }
  PageBuffer in;
  for (uint64_t p = 0; p < 64; ++p) {
    auto done = f.backend->PageIn(now, p, in.span());
    ASSERT_TRUE(done.ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p)) << p;
    now = *done;
  }
}

TEST(AdaptiveTest, UnknownPageIsNotFound) {
  AdaptiveFixture f(0);
  PageBuffer in;
  EXPECT_EQ(f.backend->PageIn(0, 5, in.span()).status().code(), ErrorCode::kNotFound);
}

TEST(AdaptiveTest, ProbesAndReturnsWhenNetworkRecovers) {
  // Congestion cannot be changed mid-run on one model, so emulate recovery
  // by swapping behaviour through time: use a short reprobe interval and a
  // threshold that the idle network satisfies. The fixture's congested
  // model stays congested, so here we only verify the probe cadence fires
  // (pages keep landing on disk between probes, one remote probe per
  // interval).
  AdaptiveParams params;
  params.reprobe_interval = Seconds(2);
  AdaptiveFixture f(/*background_stations=*/6, params);
  TimeNs now = 0;
  for (uint64_t p = 0; p < 32; ++p) {  // Drive it onto the disk.
    auto done = f.backend->PageOut(now, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    now = *done + Millis(5);
  }
  ASSERT_FALSE(f.backend->using_network());
  const auto remote_before = f.backend->remote().stats().pageouts;
  // Two reprobe windows => at least two remote probe pageouts.
  for (int i = 0; i < 2; ++i) {
    now += Seconds(3);
    auto done = f.backend->PageOut(now, 100 + static_cast<uint64_t>(i), Patterned(1).span());
    ASSERT_TRUE(done.ok());
  }
  EXPECT_GE(f.backend->remote().stats().pageouts, remote_before + 2);
}

TEST(AdaptiveTest, OverwriteMovesPageBetweenDevices) {
  AdaptiveFixture f(/*background_stations=*/6);
  TimeNs now = 0;
  // First write goes remote (still probing), gets slow, switches...
  for (uint64_t p = 0; p < 32; ++p) {
    auto done = f.backend->PageOut(now, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    now = *done + Millis(5);
  }
  ASSERT_FALSE(f.backend->using_network());
  // Rewrite page 0: new version lands on disk; reads must see it.
  ASSERT_TRUE(f.backend->PageOut(now, 0, Patterned(999).span()).ok());
  PageBuffer in;
  ASSERT_TRUE(f.backend->PageIn(now, 0, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 999));
}

}  // namespace
}  // namespace rmp
