#include "src/util/bytes.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rmp {
namespace {

// SplitMix64 step; used to synthesize verifiable page contents.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void PageBuffer::Assign(std::span<const uint8_t> bytes) {
  const size_t n = std::min(bytes.size(), data_.size());
  std::memcpy(data_.data(), bytes.data(), n);
  if (n < data_.size()) {
    std::memset(data_.data() + n, 0, data_.size() - n);
  }
}

void PageBuffer::XorWith(std::span<const uint8_t> other) {
  assert(other.size() == data_.size());
  XorBytes(data_.data(), other.data(), data_.size());
}

void PageBuffer::Clear() { std::memset(data_.data(), 0, data_.size()); }

bool PageBuffer::IsZero() const {
  for (uint8_t b : data_) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

void XorBytes(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it legal for unaligned buffers.
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void FillPattern(std::span<uint8_t> page, uint64_t seed) {
  uint64_t state = seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= page.size(); i += sizeof(uint64_t)) {
    const uint64_t word = Mix64(state + i);
    std::memcpy(page.data() + i, &word, sizeof(word));
  }
  for (; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(Mix64(state + i));
  }
}

bool CheckPattern(std::span<const uint8_t> page, uint64_t seed) {
  uint64_t state = seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= page.size(); i += sizeof(uint64_t)) {
    const uint64_t expected = Mix64(state + i);
    uint64_t actual;
    std::memcpy(&actual, page.data() + i, sizeof(actual));
    if (actual != expected) {
      return false;
    }
  }
  for (; i < page.size(); ++i) {
    if (page[i] != static_cast<uint8_t>(Mix64(state + i))) {
      return false;
    }
  }
  return true;
}

}  // namespace rmp
