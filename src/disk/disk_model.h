// Timing model of the paper's swap disk, a DEC RZ55 (§4): 10 Mbit/s media
// transfer rate and 16 ms average seek. Positioning costs are stateful — the
// arm stays where the last transfer left it — so access *patterns* matter:
//
//   - Sequential reads ride the track buffer: transfer only, ~6.6 ms/page.
//   - Writes pay rotational latency on every request — the RZ55 generation
//     has no write cache, so even a perfectly sequential pageout stream
//     must wait for the platter to come around: ~15.4 ms/page.
//   - Random access pays seek + rotation + transfer, ~31 ms.
//
// The OSF/1 swapper allocates swap space roughly in pageout order, so
// pageouts are sequential writes (~15 ms) while pageins that return in a
// different order seek (~31 ms); across the paper's workloads the effective
// cost converges to the ~17 ms/page the paper reports (§3.1).

#ifndef SRC_DISK_DISK_MODEL_H_
#define SRC_DISK_DISK_MODEL_H_

#include <cstdint>
#include <string>

#include "src/util/units.h"

namespace rmp {

struct DiskParams {
  double bandwidth_mbps = 10.0;          // Media transfer rate.
  DurationNs min_seek = Millis(4);       // Adjacent-cylinder seek.
  DurationNs max_seek = Millis(22);      // Full-stroke seek.
  uint64_t total_blocks = 40960;         // 320 MB of 8 KB blocks (RZ55 class).
  double rpm = 3600.0;                   // Half rotation = 8.33 ms average.
  // Accesses within this many blocks of the head ride the track buffer and
  // pay no positioning cost.
  uint64_t contiguous_window = 16;
  // Fixed controller/driver overhead per request.
  DurationNs controller_overhead = Micros(500);
  // Pageout write-behind window: the pagedaemon queues dirty pages and the
  // application proceeds until the disk falls this far behind (then the
  // free-frame pool is dry and the faulting process must wait).
  DurationNs writeback_lag = Millis(35);
};

class DiskModel {
 public:
  explicit DiskModel(const DiskParams& params = DiskParams());

  // Service time for transferring `pages` 8 KB pages starting at `block`,
  // then leaves the head after the transfer. Writes additionally pay
  // rotational latency even when sequential (no write cache).
  DurationNs Access(uint64_t block, uint64_t pages, bool is_write);

  // Positioning-only cost of moving the head from its current position to
  // `block` (0 within the contiguous window). Does not move the head.
  DurationNs PositioningCost(uint64_t block) const;

  // Expected service time of an isolated random single-page access
  // (seek averaged over the stroke + half rotation + transfer).
  DurationNs AverageRandomPageTime() const;

  // Transfer-only time for `pages` pages (streaming).
  DurationNs TransferTime(uint64_t pages) const;

  uint64_t head_position() const { return head_; }
  void set_head_position(uint64_t block) { head_ = block; }

  int64_t requests() const { return requests_; }
  int64_t seeks() const { return seeks_; }
  DurationNs busy_time() const { return busy_time_; }
  void ResetStats();

  const DiskParams& params() const { return params_; }
  std::string Name() const;

 private:
  DurationNs SeekTime(uint64_t distance) const;

  DiskParams params_;
  DurationNs rotation_avg_;
  uint64_t head_ = 0;
  int64_t requests_ = 0;
  int64_t seeks_ = 0;
  DurationNs busy_time_ = 0;
};

}  // namespace rmp

#endif  // SRC_DISK_DISK_MODEL_H_
