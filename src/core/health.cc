#include "src/core/health.h"

#include <chrono>

#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace rmp {
namespace {

// Membership telemetry in the process-wide registry: there is one monitor
// per cluster, but its transitions matter alongside transport and repair
// counters when reading a DumpMetrics() snapshot.
struct HealthMetrics {
  Counter& heartbeats_sent;
  Counter& heartbeats_missed;
  Counter& transitions;
  Counter& to_suspect;
  Counter& to_dead;
  Counter& to_rejoining;
  Counter& to_alive;
};

HealthMetrics& Metrics() {
  static HealthMetrics* metrics = new HealthMetrics{
      *MetricsRegistry::Global().GetCounter("health.heartbeats_sent"),
      *MetricsRegistry::Global().GetCounter("health.heartbeats_missed"),
      *MetricsRegistry::Global().GetCounter("health.transitions"),
      *MetricsRegistry::Global().GetCounter("health.transitions.to_suspect"),
      *MetricsRegistry::Global().GetCounter("health.transitions.to_dead"),
      *MetricsRegistry::Global().GetCounter("health.transitions.to_rejoining"),
      *MetricsRegistry::Global().GetCounter("health.transitions.to_alive"),
  };
  return *metrics;
}

}  // namespace

std::string_view PeerHealthName(PeerHealth health) {
  switch (health) {
    case PeerHealth::kAlive:
      return "ALIVE";
    case PeerHealth::kSuspect:
      return "SUSPECT";
    case PeerHealth::kDead:
      return "DEAD";
    case PeerHealth::kRejoining:
      return "REJOINING";
  }
  return "UNKNOWN";
}

HealthMonitor::HealthMonitor(Cluster* cluster, const HealthParams& params)
    : cluster_(cluster), params_(params), peers_(cluster->size()) {}

HealthMonitor::~HealthMonitor() { StopBackgroundPump(); }

void HealthMonitor::TransitionLocked(size_t peer, PeerHealth to, bool rebooted,
                                     std::vector<HealthEvent>* events) {
  PeerState& state = peers_[peer];
  if (state.health == to) {
    return;
  }
  ServerPeer& p = cluster_->peer(peer);
  // Leaving SUSPECT releases the stop we placed; entering it places one.
  if (state.health == PeerHealth::kSuspect && state.stopped_by_monitor) {
    p.set_stopped(false);
    state.stopped_by_monitor = false;
  }
  switch (to) {
    case PeerHealth::kSuspect:
      // Quarantine: no new placements, but reads still try the peer — the
      // crash is not yet confirmed and the pool is presumed intact.
      if (!p.stopped()) {
        p.set_stopped(true);
        state.stopped_by_monitor = true;
      }
      p.mark_alive();
      break;
    case PeerHealth::kDead:
      // Confirmed: every policy should lay in its degraded path now rather
      // than discover the crash one failed RPC at a time.
      p.mark_dead();
      break;
    case PeerHealth::kAlive:
      p.mark_alive();
      break;
    case PeerHealth::kRejoining:
      // The server answers again but is not re-admitted yet: a rebooted
      // server holds none of the pages our tables map to it, so it stays
      // dead (degraded paths keep working) until the RepairCoordinator has
      // restored redundancy and Reset() the peer.
      p.mark_dead();
      break;
  }
  HealthEvent event;
  event.peer = peer;
  event.from = state.health;
  event.to = to;
  event.rebooted = rebooted;
  state.health = to;
  ++stats_.transitions;
  Metrics().transitions.Increment();
  switch (to) {
    case PeerHealth::kSuspect:
      Metrics().to_suspect.Increment();
      break;
    case PeerHealth::kDead:
      Metrics().to_dead.Increment();
      break;
    case PeerHealth::kRejoining:
      Metrics().to_rejoining.Increment();
      break;
    case PeerHealth::kAlive:
      Metrics().to_alive.Increment();
      break;
  }
  if (events != nullptr) {
    events->push_back(event);
  }
  if (events_journal_ != nullptr) {
    events_journal_->Append(EventKind::kHealth, "health",
                            p.name() + " " + std::string(PeerHealthName(event.from)) + "->" +
                                std::string(PeerHealthName(to)) +
                                (rebooted ? " (rebooted)" : ""));
  }
  RMP_LOG(kInfo) << "health: " << p.name() << " " << PeerHealthName(event.from) << " -> "
                 << PeerHealthName(to) << (rebooted ? " (rebooted)" : "");
}

void HealthMonitor::MissLocked(size_t peer, bool connection_down,
                               std::vector<HealthEvent>* events) {
  PeerState& state = peers_[peer];
  ++stats_.heartbeats_missed;
  Metrics().heartbeats_missed.Increment();
  ++state.missed;
  if (state.health == PeerHealth::kDead) {
    return;  // Already counted out.
  }
  if (state.health == PeerHealth::kRejoining) {
    // It answered once and vanished again.
    TransitionLocked(peer, PeerHealth::kDead, false, events);
    return;
  }
  if (connection_down || state.missed >= params_.dead_after) {
    TransitionLocked(peer, PeerHealth::kDead, false, events);
    return;
  }
  if (state.missed >= params_.suspect_after) {
    TransitionLocked(peer, PeerHealth::kSuspect, false, events);
    return;
  }
  // Below the suspicion threshold: the probe pessimistically marked the
  // peer dead (like every failed RPC); restore it — one lost message on a
  // live connection is transient by definition.
  if (cluster_->peer(peer).transport().connected()) {
    cluster_->peer(peer).mark_alive();
  }
}

void HealthMonitor::ProbeLocked(size_t peer, std::vector<HealthEvent>* events) {
  ServerPeer& p = cluster_->peer(peer);
  ++stats_.heartbeats_sent;
  Metrics().heartbeats_sent.Increment();
  auto info = p.Heartbeat();
  if (!info.ok()) {
    MissLocked(peer, !p.transport().connected(), events);
    return;
  }
  PeerState& state = peers_[peer];
  state.missed = 0;
  const bool rebooted = state.incarnation != 0 && info->incarnation != state.incarnation;
  state.incarnation = info->incarnation;
  switch (state.health) {
    case PeerHealth::kAlive:
    case PeerHealth::kSuspect:
      if (rebooted) {
        // Crash + restart faster than detection: the ack proves the server
        // is up, and the incarnation proves our pages did not survive it.
        TransitionLocked(peer, PeerHealth::kRejoining, true, events);
        return;
      }
      if (state.health == PeerHealth::kSuspect) {
        TransitionLocked(peer, PeerHealth::kAlive, false, events);
      } else {
        // A data-path RPC may have pessimistically marked the peer dead and
        // given up; a fresh ack with an unchanged incarnation is proof the
        // process never went away, so the pool is still accounted for.
        p.mark_alive();
      }
      if (info->advise_stop != state.overload_advised) {
        state.overload_advised = info->advise_stop;
        p.set_no_new_extents(info->advise_stop);
        HealthEvent event;
        event.peer = peer;
        event.from = PeerHealth::kAlive;
        event.to = PeerHealth::kAlive;
        event.overloaded = info->advise_stop;
        if (events != nullptr) {
          events->push_back(event);
        }
      }
      return;
    case PeerHealth::kDead:
      TransitionLocked(peer, PeerHealth::kRejoining, rebooted, events);
      return;
    case PeerHealth::kRejoining:
      return;  // Waiting for the RepairCoordinator to re-admit.
  }
}

void HealthMonitor::Tick(TimeNs now, std::vector<HealthEvent>* events) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (peers_.size() < cluster_->size()) {
    // Elastic scale-out appended peers to the cluster; start probing them.
    peers_.resize(cluster_->size());
  }
  for (size_t i = 0; i < peers_.size(); ++i) {
    PeerState& state = peers_[i];
    if (state.next_heartbeat > now) {
      continue;
    }
    state.next_heartbeat = now + params_.heartbeat_interval;
    ProbeLocked(i, events);
  }
}

void HealthMonitor::ReportUnavailable(size_t peer, std::vector<HealthEvent>* events) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (peers_.size() < cluster_->size()) {
    peers_.resize(cluster_->size());
  }
  MissLocked(peer, !cluster_->peer(peer).transport().connected(), events);
}

void HealthMonitor::MarkReadmitted(size_t peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (peer >= peers_.size()) {
    return;
  }
  PeerState& state = peers_[peer];
  if (state.health != PeerHealth::kRejoining) {
    return;
  }
  state.missed = 0;
  state.overload_advised = false;
  TransitionLocked(peer, PeerHealth::kAlive, false, nullptr);
}

PeerHealth HealthMonitor::health(size_t peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (peer >= peers_.size()) {
    return PeerHealth::kAlive;  // Freshly joined; first Tick() will probe it.
  }
  return peers_[peer].health;
}

HealthStats HealthMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void HealthMonitor::StartBackgroundPump(DurationNs wall_period,
                                        std::function<void(const HealthEvent&)> on_event) {
  StopBackgroundPump();
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_stop_ = false;
  }
  pump_ = std::thread([this, wall_period, on_event = std::move(on_event)] {
    std::unique_lock<std::mutex> lock(pump_mutex_);
    while (!pump_stop_) {
      pump_cv_.wait_for(lock, std::chrono::nanoseconds(wall_period), [this] { return pump_stop_; });
      if (pump_stop_) {
        return;
      }
      // One simulated heartbeat interval elapses per wall tick, so every
      // peer is probed each round regardless of the wall period chosen.
      pump_clock_ += params_.heartbeat_interval;
      const TimeNs tick_now = pump_clock_;
      lock.unlock();
      std::vector<HealthEvent> events;
      Tick(tick_now, &events);
      if (on_event != nullptr) {
        for (const HealthEvent& event : events) {
          on_event(event);
        }
      }
      lock.lock();
    }
  });
}

void HealthMonitor::StopBackgroundPump() {
  {
    std::lock_guard<std::mutex> lock(pump_mutex_);
    pump_stop_ = true;
  }
  pump_cv_.notify_all();
  if (pump_.joinable()) {
    pump_.join();
  }
}

}  // namespace rmp
