// Shared machinery of every remote-memory paging policy: the cluster view,
// the shared network fabric, slot acquisition with extent-granularity
// allocation, and the transfer-time accounting that feeds BackendStats.

#ifndef SRC_CORE_REMOTE_PAGER_H_
#define SRC_CORE_REMOTE_PAGER_H_

#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/fabric.h"
#include "src/core/paging_backend.h"
#include "src/util/events.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/slo.h"
#include "src/util/tracing.h"

namespace rmp {

// How the client picks a server for a fresh page (§2.1 describes most-free;
// parity logging requires round robin by construction).
enum class ServerSelection { kMostFree, kRoundRobin };

// Failure-detector tuning. A fault can be *transient* (a dropped request or
// ack, a corrupted frame the CRC rejected, a late reply) or *permanent* (the
// server workstation crashed, §2.2). The client cannot tell which from a
// single failed RPC, so it retries with exponential backoff while the
// connection still looks healthy and only then lets the policy lay in its
// degraded path (failover read, parity reconstruction, disk fallback).
struct RetryParams {
  // Total tries per RPC including the first; <=1 disables retries.
  int max_attempts = 3;
  // Backoff before attempt k is base << (k-1), capped at `backoff_max`,
  // then jittered by +/- `jitter` of itself so synchronized retry storms
  // decorrelate. Charged to simulated time and stats_.backoff_time.
  DurationNs backoff_base = Micros(500);
  DurationNs backoff_max = Millis(8);
  double jitter = 0.2;
  // Seed of the private jitter RNG; runs stay bit-reproducible.
  uint64_t jitter_seed = 0x7e57ab1e;
};

struct RemotePagerParams {
  // Swap slots requested per ALLOC_REQUEST; amortizes control traffic.
  uint64_t alloc_extent_pages = 256;
  ServerSelection selection = ServerSelection::kMostFree;
  RetryParams retry;
  // Page-lifecycle tracer tuning (DESIGN.md §12/§17): ring size, slow-op
  // threshold, span cap, head-sampling rate.
  PageTracerOptions trace;
  // Client-side flight recorder (DESIGN.md §17).
  EventJournalOptions events;
  // Paging SLO window feeding the `slo.*` gauges (DESIGN.md §17).
  SloParams slo;
  // Proactive cluster-map refresh period (`cluster.epoch_refresh_ms`,
  // DESIGN.md §16). 0 = refresh only reactively, when a server denies an op
  // with STALE_EPOCH — the cheapest correct configuration, since the denial
  // carries the new epoch anyway.
  DurationNs map_refresh_interval = 0;
};

class RemotePagerBase : public PagingBackend {
 public:
  const BackendStats& stats() const override { return stats_; }

  Cluster& cluster() { return cluster_; }
  NetworkFabric& fabric() { return *fabric_; }

  // --- Telemetry (DESIGN.md §12) -------------------------------------------
  // The backend's registry: trace stage/total histograms land here live;
  // SyncStatsToMetrics mirrors the BackendStats counters in (keys
  // `backend.*`) so one snapshot carries both.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  PageTracer& tracer() { return tracer_; }
  void SyncStatsToMetrics();
  // The client's flight recorder (DESIGN.md §17): map adoptions, stale-epoch
  // denials, and whatever the Testbed's state machines append through it.
  EventJournal& events() { return events_; }
  // The paging SLO window behind the `slo.*` gauges; fed by the tracer on
  // every completed (sampled) trace.
  SloTracker& slo() { return slo_; }

  // --- Self-healing hooks (DESIGN.md §11) ----------------------------------
  // Incremental, idempotent work quanta the RepairCoordinator drives under
  // its token bucket. Both return the number of pages processed this call;
  // 0 means "nothing left to do" and completes the job. Progress is tracked
  // in the policy's own tables (an orphaned replica resilvered updates the
  // mirror table; an affected parity group dissolved leaves the affected
  // set), so a step never repeats finished work and the pair of calls
  // (step, step, ...) converges without coordinator-side cursors.

  // Restores redundancy lost to the crash of `peer`: re-replicates orphaned
  // mirror copies, rebuilds parity-group members by degraded reconstruction,
  // re-uploads write-through pages from disk. At most `max_pages` pages of
  // repair traffic are moved. Default: nothing to repair.
  virtual Result<uint64_t> RepairStep(size_t peer, uint64_t max_pages, TimeNs* now);

  // Moves up to `max_pages` pages off the (live but overloaded) `peer` to
  // other servers or local disk — the §2.1 migration story, triggered by
  // ADVISE_STOP. Default: nothing to drain.
  virtual Result<uint64_t> MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now);

  // --- Elastic membership (DESIGN.md §16) ----------------------------------

  // Moves up to `max_pages` pages whose placement disagrees with the adopted
  // cluster map onto their map owners (read from the old holder, write to the
  // new owner, free the old copy — in that order, so a crash mid-move never
  // leaves the page without a live source). Returns pages moved; 0 = the
  // placement already matches the map. Default: nothing to rebalance.
  virtual Result<uint64_t> RebalanceStep(uint64_t max_pages, TimeNs* now);

  // Pages the policy currently stores on `peer` (replica copies count).
  // Drives decommission completion: a kLeaving member with PagesOn == 0 can
  // be dropped from the map. Default: 0.
  virtual uint64_t PagesOn(size_t peer) const;

  // Adopts `map` when it is newer than the current one: records it, stamps
  // every peer's epoch (so subsequent data ops carry it in `aux`), and lets
  // the map drive peer placement state (kLeaving / absent members stop
  // receiving new pages). When `publish` is set, best-effort MAP_PUBLISHes
  // the map to every alive peer — the client doubles as map coordinator, the
  // same role the paper gives it for placement. Charges control traffic to
  // *now. Returns true when the map was adopted (false = not newer).
  bool AdoptClusterMap(const ClusterMap& map, TimeNs* now, bool publish = true);

  // Queries every alive peer for its map and adopts the newest one found.
  // The reactive half of stale-epoch recovery: a STALE_EPOCH denial calls
  // this before the retry. Unavailable when no peer returned a map.
  Status RefreshClusterMap(TimeNs* now);

  bool has_cluster_map() const { return has_map_; }
  const ClusterMap& cluster_map() const { return map_; }

  // The peer index owning `page_id` under the adopted map.
  Result<size_t> MapOwnerPeer(uint64_t page_id) const;

  // Called after a peer is appended to cluster() at runtime (scale-out):
  // wires its metrics and stamps the current map epoch onto it.
  void NotePeerAdded(size_t i);

 protected:
  RemotePagerBase(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                  const RemotePagerParams& params)
      : cluster_(std::move(cluster)),
        fabric_(std::move(fabric)),
        params_(params),
        retry_rng_(params.retry.jitter_seed),
        tracer_(&metrics_, params.trace),
        events_(params.events),
        slo_(&metrics_, params.slo) {
    tracer_.AttachSlo(&slo_);
    for (size_t i = 0; i < cluster_.size(); ++i) {
      cluster_.peer(i).AttachMetrics(&metrics_);
      // Every RPC stamps the active trace id onto the wire (DESIGN.md §17).
      cluster_.peer(i).set_trace_source(tracer_.wire_id());
    }
  }

  // --- Failure detector ----------------------------------------------------

  // Whether an RPC failure may be transient (worth retrying): a dropped or
  // late message (kUnavailable), a socket hiccup (kIoError), or a frame the
  // CRC rejected (kCorruption). Resource and logic errors are not.
  static bool IsRetryableError(const Status& status);

  // Whether the failure detector should try `peer` again after `status`:
  // the error is retryable and the transport still reports a live
  // connection, i.e. the server process did not go away — only a message
  // did. The RPC helpers pessimistically mark the peer dead on any failure;
  // the caller un-marks it (mark_alive) before retrying.
  bool ShouldRetry(size_t peer_index, const Status& status);

  // Charges one backoff interval before retry attempt `attempt` (1-based
  // count of failures so far) to *now, stats_.backoff_time and
  // stats_.retries. Exponential with cap and seeded jitter.
  void ChargeBackoff(int attempt, TimeNs* now);

  // PageInFrom / PageOutTo with bounded retries: transient failures against
  // a still-connected peer are retried (after backoff); a dead connection
  // or a non-retryable error returns immediately so the policy can take its
  // degraded path. Transfer-time charging on success stays with the caller,
  // matching the unreliable primitives.
  Status ReliablePageIn(size_t peer_index, uint64_t slot, std::span<uint8_t> out, TimeNs* now);
  Result<bool> ReliablePageOut(size_t peer_index, uint64_t slot, std::span<const uint8_t> data,
                               TimeNs* now);

  // Charges one page-sized transfer starting at `now` to `peer`; bumps
  // transfer stats. The blocking (pagein) form waits for wire completion;
  // the async form models pageout write-behind (see
  // NetworkFabric::TransferAsync). `peer` routes over a dedicated link when
  // the fabric has one for it (§5 heterogeneous networks).
  TimeNs ChargePageTransfer(TimeNs now, size_t peer = kSharedSegment);
  TimeNs ChargePageTransferAsync(TimeNs now, size_t peer = kSharedSegment);

  // Batched variants: `pages` pages move in one message, so the fabric sees
  // a single protocol crossing and one combined wire occupancy
  // (BatchWireBytes) instead of `pages` full message overheads. Each page
  // still counts toward page_transfers.
  TimeNs ChargePageBatchTransfer(TimeNs now, uint64_t pages, size_t peer = kSharedSegment);
  TimeNs ChargePageBatchTransferAsync(TimeNs now, uint64_t pages, size_t peer = kSharedSegment);

  // Charges one small control-message exchange.
  TimeNs ChargeControl(TimeNs now, size_t peer = kSharedSegment);

  // Takes a slot from peer `i`, issuing an ALLOC_REQUEST (and charging a
  // control exchange against *now) when the local pool is dry.
  Result<uint64_t> TakeSlotOn(size_t i, TimeNs* now);

  // One page to read: its holding peer and the slot it occupies there.
  struct PageWant {
    size_t peer = 0;
    uint64_t slot = 0;
  };

  // Fetches many stored pages with batched PAGEIN_BATCH RPCs: wants are
  // grouped by peer, chunked at kMaxBatchPages, and every chunk is started
  // before any is joined, so reads fan out across the cluster and each chunk
  // is charged as one batched transfer from the common start time. On
  // success (*out)[i] holds the page for wants[i] and *now advances to the
  // slowest chunk's completion. On error the first failure is returned
  // (remaining chunks are still drained) and *now reflects the chunks that
  // did complete. Shared by GC compaction, crash recovery, and resilvering.
  Status BatchFetch(std::span<const PageWant> wants, std::vector<PageBuffer>* out, TimeNs* now);

  // Picks a peer for a fresh page according to params_.selection.
  Result<size_t> PickPeer(TimeNs* now);

  // Map-aware placement: the map owner of `page_id` when a map is adopted
  // and the owner is usable, otherwise whatever PickPeer chooses. Also runs
  // the proactive map refresh when map_refresh_interval has elapsed.
  Result<size_t> PickPeerForPage(uint64_t page_id, TimeNs* now);

  // FreeOn with the shared retry taxonomy (transient errors, STALE_EPOCH).
  Status ReliableFree(size_t peer_index, uint64_t first_slot, uint64_t count, TimeNs* now);

  // Reacts to a STALE_EPOCH denial: counts it, refreshes the map, and
  // charges one backoff interval before the caller retries.
  void NoteStaleEpoch(int attempt, TimeNs* now);

  // Stamps the spans of one fabric transfer (service / queue / wire) onto
  // the tracer and folds its costs into stats_; returns the completion time.
  TimeNs ChargeTransferCost(TimeNs now, const NetworkFabric::TransferCost& cost);

  Cluster cluster_;
  std::shared_ptr<NetworkFabric> fabric_;
  RemotePagerParams params_;
  BackendStats stats_;
  size_t rr_cursor_ = 0;
  Rng retry_rng_;
  MetricsRegistry metrics_;  // Declared before tracer_: its histograms live here.
  PageTracer tracer_;
  EventJournal events_;
  SloTracker slo_;  // Declared after metrics_ (its gauges live there).

 private:
  // Installs `map` locally: records it and lets it drive peer epoch and
  // placement state. Does not publish.
  void AdoptLocal(const ClusterMap& map);

  // Refresh load info at most every this many pageouts (most-free mode).
  static constexpr int kLoadRefreshInterval = 64;
  int pageouts_since_refresh_ = kLoadRefreshInterval;  // Refresh on first use.

  // Elastic membership (DESIGN.md §16).
  ClusterMap map_;
  bool has_map_ = false;
  TimeNs last_map_refresh_ = 0;
};

}  // namespace rmp

#endif  // SRC_CORE_REMOTE_PAGER_H_
