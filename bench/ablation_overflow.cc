// Ablation: parity-logging overflow memory vs garbage collection.
//
// Re-paged-out pages leave inactive versions in sealed groups; a group is
// only reclaimed when *all* its entries are inactive. Sequential rewrite
// patterns retire groups in order (little residue), but random rewrite
// churn scatters retirements across groups, so inactive versions pile up
// until the servers' slack is gone and the client must garbage-collect —
// fetching the surviving active pages of the emptiest groups and re-homing
// them. The paper gave each server 10% overflow and, with its workloads,
// "never had to perform garbage collection"; this bench drives the backend
// with random churn to find where that slack runs out.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Ablation: overflow memory vs GC under random rewrite churn ===\n\n");
  constexpr uint64_t kLivePages = 1024;  // Working set held remotely.
  constexpr int kChurnWrites = 8192;     // Random re-pageouts.
  std::printf("(%llu live pages, %d random re-pageouts, 4 data servers + parity)\n\n",
              static_cast<unsigned long long>(kLivePages), kChurnWrites);
  std::printf("%10s %12s %10s %12s %14s %14s\n", "overflow", "elapsed s", "GC passes",
              "reclaimed", "transfers", "status");
  for (double overflow : {0.05, 0.10, 0.20, 0.40, 0.80}) {
    TestbedParams params;
    params.policy = Policy::kParityLogging;
    params.data_servers = 4;
    params.network = PaperEthernet();
    params.server_capacity_pages = static_cast<uint64_t>(
        static_cast<double>(kLivePages) * (1.0 + overflow) / params.data_servers) + 16;
    // Fine-grained extents so small capacities are not wasted on unused
    // slot grants.
    params.pager.alloc_extent_pages = 16;
    auto testbed = Testbed::Create(params);
    if (!testbed.ok()) {
      std::printf("%9.0f%% FAILED: %s\n", overflow * 100, testbed.status().ToString().c_str());
      continue;
    }
    ParityLoggingBackend* backend = (*testbed)->parity_logging();
    PageBuffer page;
    TimeNs now = 0;
    Status status = OkStatus();
    // Materialize the working set.
    for (uint64_t p = 0; p < kLivePages && status.ok(); ++p) {
      FillPattern(page.span(), p);
      auto done = backend->PageOut(now, p, page.span());
      status = done.ok() ? OkStatus() : done.status();
      if (done.ok()) {
        now = *done;
      }
    }
    // Random churn.
    Rng rng(0x0f10u);
    for (int w = 0; w < kChurnWrites && status.ok(); ++w) {
      const uint64_t p = rng.Below(kLivePages);
      FillPattern(page.span(), p * 1000003ull + static_cast<uint64_t>(w));
      auto done = backend->PageOut(now, p, page.span());
      status = done.ok() ? OkStatus() : done.status();
      if (done.ok()) {
        now = *done;
      }
    }
    std::printf("%9.0f%% %12.2f %10lld %12lld %14lld %14s\n", overflow * 100, ToSeconds(now),
                static_cast<long long>(backend->gc_passes()),
                static_cast<long long>(backend->groups_reclaimed()),
                static_cast<long long>(backend->stats().page_transfers),
                status.ok() ? "ok" : status.ToString().c_str());
  }
  std::printf("\n(paper: 4 servers + 10%% overflow never garbage-collected on its "
              "mostly-sequential workloads)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
