#include "src/core/no_reliability.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int servers, uint64_t capacity, bool disk_fallback = false) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = servers;
  params.server_capacity_pages = capacity;
  params.no_reliability_disk_fallback = disk_fallback;
  params.pager.alloc_extent_pages = 8;
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(NoReliabilityTest, RoundTripManyPages) {
  auto bed = MakeBed(2, 256);
  PagingBackend& backend = bed->backend();
  for (uint64_t p = 0; p < 100; ++p) {
    ASSERT_TRUE(backend.PageOut(0, p, Patterned(p).span()).ok());
  }
  PageBuffer in;
  for (uint64_t p = 0; p < 100; ++p) {
    ASSERT_TRUE(backend.PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p)) << "page " << p;
  }
  EXPECT_EQ(backend.stats().pageouts, 100);
  EXPECT_EQ(backend.stats().pageins, 100);
  // Exactly one transfer per operation.
  EXPECT_EQ(backend.stats().page_transfers, 200);
}

TEST(NoReliabilityTest, PagesSpreadAcrossServers) {
  auto bed = MakeBed(2, 256);
  for (uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_GT(bed->server(0).live_pages(), 0u);
  EXPECT_GT(bed->server(1).live_pages(), 0u);
}

TEST(NoReliabilityTest, OverwriteStaysInPlace) {
  auto bed = MakeBed(2, 256);
  ASSERT_TRUE(bed->backend().PageOut(0, 7, Patterned(1).span()).ok());
  const uint64_t total_before = bed->server(0).live_pages() + bed->server(1).live_pages();
  ASSERT_TRUE(bed->backend().PageOut(0, 7, Patterned(2).span()).ok());
  const uint64_t total_after = bed->server(0).live_pages() + bed->server(1).live_pages();
  EXPECT_EQ(total_before, total_after);
  PageBuffer in;
  ASSERT_TRUE(bed->backend().PageIn(0, 7, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 2));
}

TEST(NoReliabilityTest, PageInOfUnknownPageIsNotFound) {
  auto bed = MakeBed(1, 64);
  PageBuffer in;
  EXPECT_EQ(bed->backend().PageIn(0, 3, in.span()).status().code(), ErrorCode::kNotFound);
}

TEST(NoReliabilityTest, FullServerTriggersSpillToNext) {
  auto bed = MakeBed(2, 16);  // 16 pages per server.
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  EXPECT_GE(bed->server(0).live_pages() + bed->server(1).live_pages(), 30u);
}

TEST(NoReliabilityTest, ClusterFullWithoutDiskIsNoSpace) {
  auto bed = MakeBed(1, 8, /*disk_fallback=*/false);
  uint64_t p = 0;
  Status last = OkStatus();
  for (; p < 20; ++p) {
    auto done = bed->backend().PageOut(0, p, Patterned(p).span());
    if (!done.ok()) {
      last = done.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
}

TEST(NoReliabilityTest, ClusterFullFallsBackToDisk) {
  auto bed = MakeBed(1, 8, /*disk_fallback=*/true);
  NoReliabilityBackend* backend = bed->no_reliability();
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  EXPECT_GT(backend->pages_on_disk(), 0);
  // Every page still readable — some from disk.
  PageBuffer in;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p)) << p;
  }
}

TEST(NoReliabilityTest, DiskPagesDrainBackToServers) {
  auto bed = MakeBed(1, 24, /*disk_fallback=*/true);
  NoReliabilityBackend* backend = bed->no_reliability();
  // Native processes squeeze the server to 8 pages, spilling to disk.
  bed->server(0).SetNativeLoad(2.0 / 3.0);
  for (uint64_t p = 0; p < 16; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  ASSERT_GT(backend->pages_on_disk(), 0);
  // The native load drops; the server has free memory again (§2.1).
  bed->server(0).SetNativeLoad(0.0);
  TimeNs now = 0;
  auto moved = backend->DrainDiskToServers(&now, /*max_pages=*/100);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_GT(*moved, 0);
  PageBuffer in;
  for (uint64_t p = 0; p < 16; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(NoReliabilityTest, MigrationMovesPagesOffLoadedServer) {
  auto bed = MakeBed(2, 256);
  NoReliabilityBackend* backend = bed->no_reliability();
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  ASSERT_GT(bed->server(0).live_pages(), 0u);
  TimeNs now = 0;
  ASSERT_TRUE(backend->MigrateFrom(0, &now).ok());
  // All pages still readable and server 0 drained of *live* mappings (the
  // freed slots may remain allocated server-side until reused).
  PageBuffer in;
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
  EXPECT_GE(bed->server(1).live_pages(), 40u);
}

TEST(NoReliabilityTest, ServerCrashLosesPages) {
  auto bed = MakeBed(2, 256);
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  bed->CrashServer(0);
  // Some pages are gone — the §2.2 motivation for the reliable policies.
  PageBuffer in;
  int lost = 0;
  for (uint64_t p = 0; p < 20; ++p) {
    if (!bed->backend().PageIn(0, p, in.span()).ok()) {
      ++lost;
    }
  }
  EXPECT_GT(lost, 0);
}

TEST(NoReliabilityTest, OverwriteRelocatesWhenHolderCrashed) {
  auto bed = MakeBed(2, 256);
  ASSERT_TRUE(bed->backend().PageOut(0, 1, Patterned(1).span()).ok());
  // Find who holds page 1 and crash it.
  const size_t holder = bed->server(0).live_pages() > 0 ? 0 : 1;
  bed->CrashServer(holder);
  // A fresh pageout of the same page succeeds on the surviving server.
  ASSERT_TRUE(bed->backend().PageOut(0, 1, Patterned(2).span()).ok());
  PageBuffer in;
  ASSERT_TRUE(bed->backend().PageIn(0, 1, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 2));
}

}  // namespace
}  // namespace rmp
