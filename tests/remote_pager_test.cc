// Unit tests of the shared policy machinery in RemotePagerBase: slot
// acquisition with extent fallback, selection modes, and transfer-time
// accounting through the fabric.

#include "src/core/remote_pager.h"

#include <gtest/gtest.h>

#include "src/net/ethernet_model.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

// Minimal concrete policy exposing the protected helpers.
class ProbePager : public RemotePagerBase {
 public:
  ProbePager(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
             const RemotePagerParams& params)
      : RemotePagerBase(std::move(cluster), std::move(fabric), params) {}

  Result<TimeNs> PageOut(TimeNs now, uint64_t, std::span<const uint8_t>) override { return now; }
  Result<TimeNs> PageIn(TimeNs now, uint64_t, std::span<uint8_t>) override { return now; }
  std::string Name() const override { return "PROBE"; }

  using RemotePagerBase::ChargeControl;
  using RemotePagerBase::ChargePageTransfer;
  using RemotePagerBase::ChargePageTransferAsync;
  using RemotePagerBase::PickPeer;
  using RemotePagerBase::TakeSlotOn;
};

struct Rig {
  explicit Rig(std::vector<uint64_t> capacities,
               RemotePagerParams params = RemotePagerParams(),
               std::shared_ptr<const NetworkModel> network = nullptr) {
    Cluster cluster;
    for (size_t i = 0; i < capacities.size(); ++i) {
      MemoryServerParams server_params;
      server_params.name = "s" + std::to_string(i);
      server_params.capacity_pages = capacities[i];
      servers.push_back(std::make_unique<MemoryServer>(server_params));
      cluster.AddPeer(server_params.name,
                      std::make_unique<InProcTransport>(servers.back().get()));
    }
    auto fabric = network != nullptr ? std::make_shared<NetworkFabric>(network)
                                     : std::make_shared<NetworkFabric>();
    pager = std::make_unique<ProbePager>(std::move(cluster), fabric, params);
  }

  std::vector<std::unique_ptr<MemoryServer>> servers;
  std::unique_ptr<ProbePager> pager;
};

TEST(RemotePagerTest, TakeSlotAllocatesExtentOnDemand) {
  RemotePagerParams params;
  params.alloc_extent_pages = 8;
  Rig rig({64}, params);
  TimeNs now = 0;
  auto slot = rig.pager->TakeSlotOn(0, &now);
  ASSERT_TRUE(slot.ok());
  // One extent granted, 7 slots pooled.
  EXPECT_EQ(rig.pager->cluster().peer(0).pooled_slots(), 7u);
  EXPECT_EQ(rig.servers[0]->free_pages(), 56u);
}

TEST(RemotePagerTest, SingleSlotFallbackWhenExtentDenied) {
  RemotePagerParams params;
  params.alloc_extent_pages = 16;
  Rig rig({5}, params);  // Extent of 16 can never be granted.
  TimeNs now = 0;
  for (int i = 0; i < 5; ++i) {
    auto slot = rig.pager->TakeSlotOn(0, &now);
    ASSERT_TRUE(slot.ok()) << i;  // Single-slot grants keep working.
  }
  EXPECT_EQ(rig.pager->TakeSlotOn(0, &now).status().code(), ErrorCode::kNoSpace);
}

TEST(RemotePagerTest, TakeSlotRespectsNoNewExtents) {
  RemotePagerParams params;
  params.alloc_extent_pages = 4;
  Rig rig({64}, params);
  TimeNs now = 0;
  ASSERT_TRUE(rig.pager->TakeSlotOn(0, &now).ok());
  rig.pager->cluster().peer(0).set_no_new_extents(true);
  // Pool still has 3 slots.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.pager->TakeSlotOn(0, &now).ok());
  }
  EXPECT_EQ(rig.pager->TakeSlotOn(0, &now).status().code(), ErrorCode::kNoSpace);
  EXPECT_EQ(rig.servers[0]->free_pages(), 60u);  // No new server-side grants.
}

TEST(RemotePagerTest, RoundRobinSelectionCycles) {
  RemotePagerParams params;
  params.selection = ServerSelection::kRoundRobin;
  Rig rig({64, 64, 64}, params);
  TimeNs now = 0;
  std::vector<size_t> picks;
  for (int i = 0; i < 6; ++i) {
    auto pick = rig.pager->PickPeer(&now);
    ASSERT_TRUE(pick.ok());
    picks.push_back(*pick);
  }
  EXPECT_EQ(picks, (std::vector<size_t>{1, 2, 0, 1, 2, 0}));
}

TEST(RemotePagerTest, MostFreeSelectionPrefersEmptierServer) {
  RemotePagerParams params;
  params.selection = ServerSelection::kMostFree;
  params.alloc_extent_pages = 32;
  Rig rig({32, 128}, params);
  TimeNs now = 0;
  auto pick = rig.pager->PickPeer(&now);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1u);
  // Consuming an extent from s1 flips the preference via local accounting.
  ASSERT_TRUE(rig.pager->TakeSlotOn(1, &now).ok());
  ASSERT_TRUE(rig.pager->TakeSlotOn(1, &now).ok());  // known_free s1: 128-32... still 96.
  pick = rig.pager->PickPeer(&now);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1u);  // 96 > 32 still.
  // Three more extents drain s1's advantage.
  rig.pager->cluster().peer(1).set_known_free_pages(16);
  pick = rig.pager->PickPeer(&now);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 0u);
}

TEST(RemotePagerTest, ChargesAccumulateInStats) {
  Rig rig({64}, RemotePagerParams(), std::make_shared<EthernetModel>());
  TimeNs now = 0;
  now = rig.pager->ChargePageTransfer(now);
  EXPECT_NEAR(ToMillis(now), 11.28, 0.3);  // protocol + wire.
  now = rig.pager->ChargePageTransferAsync(now);
  EXPECT_EQ(rig.pager->stats().page_transfers, 2);
  EXPECT_GT(rig.pager->stats().protocol_time, 0);
  EXPECT_GT(rig.pager->stats().wire_time, 0);
}

TEST(RemotePagerTest, NoModelChargesNothing) {
  Rig rig({64});
  TimeNs now = Millis(7);
  EXPECT_EQ(rig.pager->ChargePageTransfer(now), Millis(7));
  EXPECT_EQ(rig.pager->ChargeControl(now), Millis(7));
}

}  // namespace
}  // namespace rmp
