// Shared helpers for the figure benches: paper-calibrated network/disk
// models, testbed construction sized like the paper's cluster, and row
// printing with paper-reference columns.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/testbed.h"
#include "src/model/run_simulator.h"
#include "src/net/ethernet_model.h"
#include "src/workloads/workload.h"

namespace rmp {

// The paper's 10 Mbit/s Ethernet: 9.64 ms wire + 1.6 ms protocol per page.
inline std::shared_ptr<const NetworkModel> PaperEthernet(int background_stations = 0) {
  EthernetParams params;
  params.background_stations = background_stations;
  return std::make_shared<EthernetModel>(params);
}

// ~18 MB of the 32 MB DEC Alpha available for application data.
inline constexpr uint32_t kPaperFrames = 2304;

struct PolicyRunConfig {
  Policy policy = Policy::kNoReliability;
  int data_servers = 2;  // Paper: 2 for NO_REL / MIRRORING, 4(+1) for parity.
  uint32_t frames = kPaperFrames;
  std::shared_ptr<const NetworkModel> network;
  double overflow_fraction = 0.10;  // Parity-logging server slack (§2.2).
};

// Builds a testbed sized for `workload` and simulates one run.
inline Result<RunResult> RunWorkloadUnderPolicy(const Workload& workload,
                                                const PolicyRunConfig& config) {
  const uint64_t total_pages = PagesForBytes(workload.info().data_bytes) + 32;
  TestbedParams params;
  params.policy = config.policy;
  params.data_servers = config.data_servers;
  params.network = config.network != nullptr ? config.network : PaperEthernet();
  // Every server can hold its share of the working set plus overflow slack;
  // mirroring stores two copies, so it needs double.
  const double copies = config.policy == Policy::kMirroring ? 2.0 : 1.0;
  params.server_capacity_pages =
      static_cast<uint64_t>(static_cast<double>(total_pages) * copies *
                            (1.0 + config.overflow_fraction) /
                            config.data_servers) +
      512;
  params.disk_blocks = total_pages + 1024;
  auto testbed = Testbed::Create(params);
  if (!testbed.ok()) {
    return testbed.status();
  }
  RunConfig run_config;
  run_config.physical_frames = config.frames;
  return SimulateRun(workload, &(*testbed)->backend(), run_config);
}

// Machine-readable bench output. Each call prints one line
//   BENCH_<bench>.json: {"bench":...,"config":...,"metric":...,"value":...,"unit":...}
// and appends the same JSON object to BENCH_<bench>.json in the working
// directory, so result harvesting can scrape either stdout or the file.
// `config` identifies the measured variant ("tcp/pipelined/depth16",
// "xor/avx2"); `metric` names the quantity ("pages_per_sec").
inline void EmitBenchResult(const std::string& bench, const std::string& config,
                            const std::string& metric, double value, const std::string& unit) {
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"%s\",\"config\":\"%s\",\"metric\":\"%s\",\"value\":%.6g,"
                "\"unit\":\"%s\"}",
                bench.c_str(), config.c_str(), metric.c_str(), value, unit.c_str());
  std::printf("BENCH_%s.json: %s\n", bench.c_str(), json);
  const std::string path = "BENCH_" + bench + ".json";
  if (std::FILE* file = std::fopen(path.c_str(), "a")) {
    std::fprintf(file, "%s\n", json);
    std::fclose(file);
  }
}

// Prints "name  measured  paper  ratio" rows.
inline void PrintRow(const std::string& workload, const std::string& policy, double measured_s,
                     double paper_s) {
  if (paper_s > 0.0) {
    std::printf("%-8s %-16s measured %8.2f s   paper %7.2f s   ratio %5.2f\n", workload.c_str(),
                policy.c_str(), measured_s, paper_s, measured_s / paper_s);
  } else {
    std::printf("%-8s %-16s measured %8.2f s\n", workload.c_str(), policy.c_str(), measured_s);
  }
}

}  // namespace rmp

#endif  // BENCH_BENCH_UTIL_H_
