#include "src/transport/inproc_transport.h"

#include <gtest/gtest.h>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

class InProcTransportTest : public ::testing::Test {
 protected:
  InProcTransportTest() : server_(MakeParams()), transport_(&server_) {}

  static MemoryServerParams MakeParams() {
    MemoryServerParams params;
    params.capacity_pages = 128;
    return params;
  }

  MemoryServer server_;
  InProcTransport transport_;
};

TEST_F(InProcTransportTest, CallRoundTrips) {
  auto reply = transport_.Call(MakeAllocRequest(1, 4));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MessageType::kAllocReply);
  EXPECT_EQ(reply->count, 4u);
}

TEST_F(InProcTransportTest, PayloadSurvivesWireFormat) {
  auto alloc = transport_.Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  FillPattern(page.span(), 77);
  auto ack = transport_.Call(MakePageOut(2, alloc->slot, page.span()));
  ASSERT_TRUE(ack.ok());
  auto pagein = transport_.Call(MakePageIn(3, alloc->slot));
  ASSERT_TRUE(pagein.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), 77));
}

TEST_F(InProcTransportTest, DisconnectMakesCallsUnavailable) {
  transport_.Disconnect();
  EXPECT_FALSE(transport_.connected());
  auto reply = transport_.Call(MakeLoadQuery(1));
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  transport_.Reconnect();
  EXPECT_TRUE(transport_.Call(MakeLoadQuery(2)).ok());
}

TEST_F(InProcTransportTest, DropNextReplyLosesOneReply) {
  transport_.DropNextReply();
  auto lost = transport_.Call(MakeAllocRequest(1, 1));
  EXPECT_EQ(lost.status().code(), ErrorCode::kUnavailable);
  // The request *was* processed server-side (the reply was lost, not the
  // request) and the connection is now down — like a mid-call crash.
  EXPECT_FALSE(transport_.connected());
  EXPECT_EQ(server_.stats().allocations, 1);
}

TEST_F(InProcTransportTest, CountsWireBytes) {
  PageBuffer page;
  auto alloc = transport_.Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  const uint64_t before = transport_.bytes_sent();
  ASSERT_TRUE(transport_.Call(MakePageOut(2, alloc->slot, page.span())).ok());
  EXPECT_EQ(transport_.bytes_sent() - before, kWireHeaderSize + 4 + kPageSize);
  EXPECT_EQ(transport_.calls(), 2u);
}

TEST_F(InProcTransportTest, SendOneWayDelivers) {
  ASSERT_TRUE(transport_.SendOneWay(MakeShutdown(1)).ok());
  transport_.Disconnect();
  EXPECT_EQ(transport_.SendOneWay(MakeShutdown(2)).code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace rmp
