// Crash recovery demo: a real quicksort runs with its working set paged to
// remote memory; halfway through, a memory server crashes. Under
// NO_RELIABILITY the application dies; under PARITY_LOGGING and MIRRORING
// it finishes and produces a provably correct result.
//
//   $ ./crash_recovery

#include <cstdio>

#include "src/core/testbed.h"
#include "src/util/rng.h"
#include "src/vm/vm_array.h"
#include "src/workloads/data_kernels.h"

namespace rmp {
namespace {

constexpr uint64_t kElements = 48 * kPageSize / sizeof(uint64_t);
constexpr uint32_t kFrames = 12;  // Working set ~4x physical memory.
constexpr uint64_t kSeed = 2026;

int RunScenario(Policy policy, int data_servers) {
  std::printf("--- %s (%d data servers) ---\n", std::string(PolicyName(policy)).c_str(),
              data_servers);
  TestbedParams params;
  params.policy = policy;
  params.data_servers = data_servers;
  params.server_capacity_pages = 2048;
  params.pager.alloc_extent_pages = 16;
  auto testbed = Testbed::Create(params);
  if (!testbed.ok()) {
    std::printf("  setup failed: %s\n", testbed.status().ToString().c_str());
    return 1;
  }
  VmParams vm_params;
  vm_params.virtual_pages = 64;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &(*testbed)->backend());
  VmArray<uint64_t> array(&vm, 0, kElements);
  TimeNs now = 0;
  if (!FillRandom(&array, &now, kSeed).ok()) {
    std::printf("  fill failed\n");
    return 1;
  }
  // Push the data out to the cluster, then kill a server mid-run.
  if (!vm.FlushDirty(&now).ok()) {
    std::printf("  flush failed\n");
    return 1;
  }
  // Crash the data server holding the most pages (never the parity server,
  // whose loss is a separate — also recoverable — scenario).
  size_t victim = 0;
  for (size_t i = 1; i < static_cast<size_t>(data_servers); ++i) {
    if ((*testbed)->server(i).live_pages() > (*testbed)->server(victim).live_pages()) {
      victim = i;
    }
  }
  std::printf("  crashing server %zu (holding %llu pages) mid-computation\n", victim,
              (unsigned long long)(*testbed)->server(victim).live_pages());
  (*testbed)->CrashServer(victim);

  const Status sorted = QuicksortVm(&array, &now);
  if (!sorted.ok()) {
    std::printf("  APPLICATION DIED: %s\n", sorted.ToString().c_str());
    return 1;
  }
  if (!VerifySorted(array, &now).ok()) {
    std::printf("  output NOT sorted!\n");
    return 1;
  }
  // Cross-check the value multiset against the generator.
  Rng rng(kSeed);
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kElements; ++i) {
    expected += rng.Next();
  }
  uint64_t sum = 0;
  for (uint64_t i = 0; i < kElements; ++i) {
    auto v = array.Get(&now, i);
    if (!v.ok()) {
      std::printf("  readback failed\n");
      return 1;
    }
    sum += *v;
  }
  std::printf("  sorted %llu elements, checksum %s, %lld pageins / %lld pageouts\n",
              (unsigned long long)kElements, sum == expected ? "OK" : "MISMATCH",
              (long long)vm.stats().pageins, (long long)vm.stats().pageouts);
  return sum == expected ? 0 : 1;
}

}  // namespace
}  // namespace rmp

int main() {
  using rmp::Policy;
  std::printf("=== Surviving a workstation crash mid-computation ===\n\n");
  // NO_RELIABILITY is expected to die — that is the paper's motivation.
  const int no_rel = rmp::RunScenario(Policy::kNoReliability, 3);
  std::printf("  (NO_RELIABILITY %s — a crash without redundancy kills the app)\n\n",
              no_rel == 0 ? "unexpectedly survived" : "died as expected");
  const int parity = rmp::RunScenario(Policy::kParityLogging, 4);
  std::printf("\n");
  const int mirror = rmp::RunScenario(Policy::kMirroring, 3);
  std::printf("\n=== result: parity logging %s, mirroring %s ===\n",
              parity == 0 ? "SURVIVED" : "FAILED", mirror == 0 ? "SURVIVED" : "FAILED");
  return (parity == 0 && mirror == 0 && no_rel != 0) ? 0 : 1;
}
