#include "src/transport/scheduler.h"

#include <algorithm>
#include <chrono>

namespace rmp {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view TrafficClassName(TrafficClass c) {
  switch (c) {
    case TrafficClass::kPagein:
      return "pagein";
    case TrafficClass::kPageout:
      return "pageout";
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kBackground:
      return "background";
  }
  return "unknown";
}

TrafficClass ClassifyMessage(MessageType type) {
  switch (type) {
    case MessageType::kPageIn:
    case MessageType::kPageInReply:
    case MessageType::kPageInBatch:
    case MessageType::kPageInBatchReply:
      return TrafficClass::kPagein;
    case MessageType::kPageOut:
    case MessageType::kPageOutAck:
    case MessageType::kPageOutBatch:
    case MessageType::kPageOutBatchAck:
    case MessageType::kDeltaPageOut:
    case MessageType::kXorMerge:
    case MessageType::kXorMergeAck:
      return TrafficClass::kPageout;
    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatAck:
    case MessageType::kMigrate:
    case MessageType::kMigrateReply:
      return TrafficClass::kBackground;
    default:
      return TrafficClass::kControl;
  }
}

Result<SchedulerOptions> SchedulerOptions::FromConfig(const Config& config) {
  SchedulerOptions options;
  struct KeyMap {
    const char* key;
    int index;
  };
  const KeyMap keys[] = {
      {"scheduler.weight_pagein", 0},
      {"scheduler.weight_pageout", 1},
      {"scheduler.weight_control", 2},
      {"scheduler.weight_background", 3},
  };
  for (const auto& [key, index] : keys) {
    auto weight = config.GetInt(key, options.weights[index]);
    if (!weight.ok()) {
      return weight.status();
    }
    if (*weight < 1 || *weight > 1024) {
      return InvalidArgumentError(std::string(key) + " out of range [1, 1024]");
    }
    options.weights[index] = static_cast<int>(*weight);
  }
  auto lanes = config.GetInt("scheduler.lanes_per_session", options.lanes_per_session);
  if (!lanes.ok()) {
    return lanes.status();
  }
  if (*lanes < 1 || *lanes > 256) {
    return InvalidArgumentError("scheduler.lanes_per_session out of range [1, 256]");
  }
  options.lanes_per_session = static_cast<int>(*lanes);
  auto shed = config.GetInt("scheduler.shed_limit", options.shed_limit);
  if (!shed.ok()) {
    return shed.status();
  }
  if (*shed < 0 || *shed > (1 << 20)) {
    return InvalidArgumentError("scheduler.shed_limit out of range [0, 1048576]");
  }
  options.shed_limit = static_cast<int>(*shed);
  auto cap = config.GetInt("scheduler.tenant_queue_cap", options.tenant_queue_cap);
  if (!cap.ok()) {
    return cap.status();
  }
  if (*cap < 0 || *cap > (1 << 20)) {
    return InvalidArgumentError("scheduler.tenant_queue_cap out of range [0, 1048576]");
  }
  options.tenant_queue_cap = static_cast<int>(*cap);
  // tenant.<id>.weight rows; the other tenant.* keys belong to the server's
  // quota policy (ApplyTenantConfig) and are ignored here.
  for (const std::string& key : config.Keys()) {
    if (key.rfind("tenant.", 0) != 0) {
      continue;
    }
    const std::string rest = key.substr(7);
    const size_t dot = rest.find('.');
    if (dot == std::string::npos || rest.substr(dot + 1) != "weight") {
      continue;
    }
    uint64_t id = 0;
    bool digits = dot > 0;
    for (size_t i = 0; i < dot && digits; ++i) {
      const char ch = rest[i];
      digits = ch >= '0' && ch <= '9';
      if (digits) {
        id = id * 10 + static_cast<uint64_t>(ch - '0');
        digits = id <= kMaxTenantId;
      }
    }
    if (!digits || id == 0) {
      return InvalidArgumentError("malformed tenant id in key: " + key);
    }
    auto weight = config.GetInt(key, options.default_tenant_weight);
    if (!weight.ok()) {
      return weight.status();
    }
    if (*weight < 1 || *weight > 1024) {
      return InvalidArgumentError(key + " out of range [1, 1024]");
    }
    options.tenant_weights.emplace_back(static_cast<uint16_t>(id), static_cast<int>(*weight));
  }
  return options;
}

FairShareScheduler::FairShareScheduler(SchedulerOptions options,
                                       const std::string& metric_prefix)
    : options_(options),
      queued_gauge_(*MetricsRegistry::Global().GetGauge(metric_prefix + ".queued")),
      dispatch_latency_us_(*MetricsRegistry::Global().GetHistogram(
          metric_prefix + ".dispatch_latency_us",
          HistogramOptions{1.0, 10e6, 48, /*log_scale=*/true})) {
  for (int c = 0; c < kTrafficClasses; ++c) {
    served_[c] = MetricsRegistry::Global().GetCounter(
        metric_prefix + ".served_" + std::string(TrafficClassName(static_cast<TrafficClass>(c))));
  }
  shed_ = MetricsRegistry::Global().GetCounter(metric_prefix + ".shed");
  TenantQueueLocked(0);  // The untenanted queue always exists.
}

FairShareScheduler::TenantQueue* FairShareScheduler::TenantQueueLocked(uint16_t tenant) {
  auto it = tenant_index_.find(tenant);
  if (it != tenant_index_.end()) {
    return tenants_[it->second].get();
  }
  auto queue = std::make_unique<TenantQueue>();
  queue->id = tenant;
  queue->weight = std::max(1, options_.default_tenant_weight);
  for (const auto& [id, weight] : options_.tenant_weights) {
    if (id == tenant) {
      queue->weight = std::max(1, weight);
      break;
    }
  }
  queue->credit = queue->weight;
  for (int c = 0; c < kTrafficClasses; ++c) {
    queue->class_credits[c] = options_.weights[c];
  }
  tenant_index_.emplace(tenant, tenants_.size());
  tenants_.push_back(std::move(queue));
  return tenants_.back().get();
}

FairShareScheduler::~FairShareScheduler() { Stop(); }

std::shared_ptr<FairShareScheduler::Session> FairShareScheduler::AddSession(
    std::shared_ptr<void> owner, uint16_t tenant) {
  auto session = std::make_shared<Session>();
  session->owner = std::move(owner);
  session->lanes.resize(static_cast<size_t>(options_.lanes_per_session));
  std::lock_guard<std::mutex> lock(mutex_);
  session->id = next_session_id_++;
  session->tenant = tenant;
  TenantQueueLocked(tenant);
  return session;
}

void FairShareScheduler::SetSessionTenant(const std::shared_ptr<Session>& session,
                                          uint16_t tenant) {
  if (session == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session->tenant == tenant) {
    return;
  }
  int64_t queued = 0;
  for (const Lane& lane : session->lanes) {
    queued += static_cast<int64_t>(lane.queue.size());
  }
  TenantQueue* old_queue = TenantQueueLocked(session->tenant);
  TenantQueue* new_queue = TenantQueueLocked(tenant);
  old_queue->queued = std::max<int64_t>(0, old_queue->queued - queued);
  new_queue->queued += queued;
  session->tenant = tenant;
}

void FairShareScheduler::RemoveSession(const std::shared_ptr<Session>& session) {
  if (session == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session->dead) {
    return;
  }
  session->dead = true;
  // Drop queued items; in-service items finish (the worker holds the owner
  // backref alive through its Item copy). Ring entries for this session are
  // skipped lazily in Next.
  int64_t dropped = 0;
  for (Lane& lane : session->lanes) {
    dropped += static_cast<int64_t>(lane.queue.size());
    lane.queue.clear();
    lane.scheduled = false;
  }
  if (dropped > 0) {
    queued_gauge_.Add(-dropped);
    total_queued_ = std::max<int64_t>(0, total_queued_ - dropped);
    TenantQueue* tenant = TenantQueueLocked(session->tenant);
    tenant->queued = std::max<int64_t>(0, tenant->queued - dropped);
  }
  session->owner.reset();
}

bool FairShareScheduler::Submit(const std::shared_ptr<Session>& session, Message request) {
  return SubmitEx(session, std::move(request)) == SubmitResult::kOk;
}

SubmitResult FairShareScheduler::SubmitEx(const std::shared_ptr<Session>& session,
                                          Message request) {
  Item item;
  item.enqueue_ns = NowNanos();
  const int lane_idx =
      static_cast<int>(request.slot % static_cast<uint64_t>(options_.lanes_per_session));
  item.lane = lane_idx;
  item.session = session;
  const TrafficClass klass = ClassifyMessage(request.type);
  item.request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || session->dead) {
      return SubmitResult::kRejected;
    }
    TenantQueue* tenant = TenantQueueLocked(session->tenant);
    if (ShedLocked(*tenant, klass)) {
      shed_->Increment();
      return SubmitResult::kShed;
    }
    item.owner = session->owner;
    Lane& lane = session->lanes[static_cast<size_t>(lane_idx)];
    lane.queue.push_back(std::move(item));
    queued_gauge_.Add(1);
    total_queued_ += 1;
    tenant->queued += 1;
    if (!lane.scheduled && !lane.running) {
      EnqueueLaneLocked(session, lane_idx);
    }
    WakeOneLocked();
  }
  return SubmitResult::kOk;
}

bool FairShareScheduler::ShedLocked(const TenantQueue& tenant, TrafficClass klass) const {
  // Shedding order mirrors the admission lanes: background first, pageout
  // under deeper overload, foreground pageins and control never — a shed
  // pagein would just come back as a retry of a blocked fault.
  if (klass == TrafficClass::kPagein || klass == TrafficClass::kControl) {
    return false;
  }
  if (options_.tenant_queue_cap > 0 && tenant.queued >= options_.tenant_queue_cap) {
    return true;
  }
  if (options_.shed_limit <= 0) {
    return false;
  }
  if (klass == TrafficClass::kBackground) {
    return total_queued_ >= static_cast<int64_t>(options_.shed_limit);
  }
  return total_queued_ >= 2 * static_cast<int64_t>(options_.shed_limit);
}

void FairShareScheduler::WakeOneLocked() {
  if (parked_.empty()) {
    return;
  }
  Waiter* waiter = parked_.back();
  parked_.pop_back();
  waiter->signaled = true;
  // Signaled under the mutex on purpose: the waiter's wait() cannot return
  // (and the worker thread cannot exit, destroying the thread-local Waiter)
  // until it reacquires the lock we hold, so the condvar stays alive for the
  // duration of the notify.
  waiter->cv.notify_one();
}

void FairShareScheduler::EnqueueLaneLocked(const std::shared_ptr<Session>& session, int lane) {
  Lane& state = session->lanes[static_cast<size_t>(lane)];
  // The lane joins the ring of the class its *head* request belongs to; a
  // lane mixing classes re-classifies every time it re-enters the ring. The
  // ring lives under the session's *current* tenant, so a lane re-entering
  // after SetSessionTenant migrates with its session.
  const TrafficClass c = ClassifyMessage(state.queue.front().request.type);
  TenantQueueLocked(session->tenant)->rings[static_cast<int>(c)].push_back(
      RingEntry{session, lane});
  state.scheduled = true;
}

bool FairShareScheduler::TenantRunnable(const TenantQueue& tenant) {
  for (const auto& ring : tenant.rings) {
    if (!ring.empty()) {
      return true;
    }
  }
  return false;
}

bool FairShareScheduler::HasRunnableLocked() const {
  for (const auto& tenant : tenants_) {
    if (TenantRunnable(*tenant)) {
      return true;
    }
  }
  return false;
}

FairShareScheduler::TenantQueue* FairShareScheduler::PickTenantLocked() {
  // Level-0 WRR, same two-pass shape as the class pick below, but scanned
  // from a rotating cursor: tenants are peers (no priority order), so ties
  // must not always break toward the lowest index.
  const size_t n = tenants_.size();
  if (n == 0) {
    return nullptr;
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < n; ++i) {
      const size_t index = (tenant_cursor_ + i) % n;
      TenantQueue* tenant = tenants_[index].get();
      if (tenant->credit > 0 && TenantRunnable(*tenant)) {
        tenant_cursor_ = index;  // Next pick resumes here; credit exhaustion
                                 // is what moves the cursor on.
        return tenant;
      }
    }
    for (const auto& tenant : tenants_) {
      tenant->credit = tenant->weight;
    }
  }
  return nullptr;
}

int FairShareScheduler::PickClassLocked(TenantQueue* tenant) {
  // Two passes: first spend existing credit in priority order, then refill
  // everyone and take the highest-priority non-empty ring. The refill is the
  // fairness engine — weights bound each class's share of dispatch slots
  // under contention without ever starving a class outright.
  for (int pass = 0; pass < 2; ++pass) {
    for (int c = 0; c < kTrafficClasses; ++c) {
      if (!tenant->rings[c].empty() && tenant->class_credits[c] > 0) {
        return c;
      }
    }
    for (int c = 0; c < kTrafficClasses; ++c) {
      tenant->class_credits[c] = options_.weights[c];
    }
  }
  return -1;  // No runnable lane at all.
}

bool FairShareScheduler::DispatchLocked(Item* out) {
  // Stale ring entries (RemoveSession purged the lane) are skipped here, so
  // one call may pop several entries before producing an item.
  while (HasRunnableLocked()) {
    TenantQueue* tenant = PickTenantLocked();
    if (tenant == nullptr) {
      return false;
    }
    const int c = PickClassLocked(tenant);
    if (c < 0) {
      return false;
    }
    RingEntry entry = std::move(tenant->rings[c].front());
    tenant->rings[c].pop_front();
    Lane& lane = entry.session->lanes[static_cast<size_t>(entry.lane)];
    lane.scheduled = false;
    if (entry.session->dead || lane.queue.empty()) {
      continue;  // Stale: no credit spent.
    }
    tenant->credit -= 1;
    tenant->class_credits[c] -= 1;
    tenant->served += 1;
    tenant->queued = std::max<int64_t>(0, tenant->queued - 1);
    total_queued_ = std::max<int64_t>(0, total_queued_ - 1);
    *out = std::move(lane.queue.front());
    lane.queue.pop_front();
    lane.running = true;
    queued_gauge_.Add(-1);
    served_[c]->Increment();
    dispatch_latency_us_.Observe(static_cast<double>(NowNanos() - out->enqueue_ns) / 1000.0);
    return true;
  }
  return false;
}

uint64_t FairShareScheduler::TenantServed(uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_index_.find(tenant);
  return it == tenant_index_.end() ? 0 : tenants_[it->second]->served;
}

bool FairShareScheduler::Next(Item* out) {
  // Workers park LIFO: the most recently parked worker is woken first, so a
  // light load is served by a small hot subset of the pool while the rest
  // stay parked. Waking FIFO (a bare condition variable's typical order)
  // rotates every dispatch to a cold thread and measurably hurts a
  // single-core pipeline.
  static thread_local Waiter waiter;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (DispatchLocked(out)) {
      return true;
    }
    if (stopped_) {
      return false;
    }
    waiter.signaled = false;
    parked_.push_back(&waiter);
    waiter.cv.wait(lock, [&] { return waiter.signaled || stopped_; });
    if (!waiter.signaled) {
      // Woken by Stop's broadcast (or spuriously): unpark ourselves.
      auto it = std::find(parked_.begin(), parked_.end(), &waiter);
      if (it != parked_.end()) {
        parked_.erase(it);
      }
    }
  }
}

bool FairShareScheduler::TryNext(Item* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return DispatchLocked(out);
}

bool FairShareScheduler::FinishLocked(const std::shared_ptr<Session>& session, int lane_idx) {
  Lane& lane = session->lanes[static_cast<size_t>(lane_idx)];
  lane.running = false;
  if (!session->dead && !lane.queue.empty() && !lane.scheduled) {
    EnqueueLaneLocked(session, lane_idx);
    return true;
  }
  return false;
}

void FairShareScheduler::Done(const Item& item) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (FinishLocked(item.session, item.lane)) {
    WakeOneLocked();
  }
}

bool FairShareScheduler::DoneAndNext(const std::shared_ptr<Session>& session, int lane,
                                     Item* out) {
  static thread_local Waiter waiter;
  std::unique_lock<std::mutex> lock(mutex_);
  FinishLocked(session, lane);
  for (;;) {
    if (DispatchLocked(out)) {
      if (HasRunnableLocked()) {
        WakeOneLocked();
      }
      return true;
    }
    if (stopped_) {
      return false;
    }
    waiter.signaled = false;
    parked_.push_back(&waiter);
    waiter.cv.wait(lock, [&] { return waiter.signaled || stopped_; });
    if (!waiter.signaled) {
      auto it = std::find(parked_.begin(), parked_.end(), &waiter);
      if (it != parked_.end()) {
        parked_.erase(it);
      }
    }
  }
}

void FairShareScheduler::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  // Under the mutex for the same lifetime reason as WakeOneLocked: a worker
  // may destroy its thread-local Waiter the moment it observes stopped_.
  for (Waiter* waiter : parked_) {
    waiter->cv.notify_one();
  }
  parked_.clear();
}

}  // namespace rmp
