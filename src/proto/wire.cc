#include "src/proto/wire.h"

#include <cassert>
#include <cstring>

#include "src/util/checksum.h"
#include "src/util/units.h"

namespace rmp {
namespace {

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(MessageType::kAllocRequest) &&
         t <= static_cast<uint8_t>(MessageType::kEventsReply);
}

}  // namespace

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kAllocRequest:
      return "ALLOC_REQUEST";
    case MessageType::kAllocReply:
      return "ALLOC_REPLY";
    case MessageType::kFreeRequest:
      return "FREE_REQUEST";
    case MessageType::kFreeReply:
      return "FREE_REPLY";
    case MessageType::kPageOut:
      return "PAGEOUT";
    case MessageType::kPageOutAck:
      return "PAGEOUT_ACK";
    case MessageType::kPageIn:
      return "PAGEIN";
    case MessageType::kPageInReply:
      return "PAGEIN_REPLY";
    case MessageType::kLoadQuery:
      return "LOAD_QUERY";
    case MessageType::kLoadReport:
      return "LOAD_REPORT";
    case MessageType::kShutdown:
      return "SHUTDOWN";
    case MessageType::kErrorReply:
      return "ERROR_REPLY";
    case MessageType::kDeltaPageOut:
      return "DELTA_PAGEOUT";
    case MessageType::kXorMerge:
      return "XOR_MERGE";
    case MessageType::kXorMergeAck:
      return "XOR_MERGE_ACK";
    case MessageType::kAuth:
      return "AUTH";
    case MessageType::kAuthReply:
      return "AUTH_REPLY";
    case MessageType::kPageOutBatch:
      return "PAGEOUT_BATCH";
    case MessageType::kPageOutBatchAck:
      return "PAGEOUT_BATCH_ACK";
    case MessageType::kPageInBatch:
      return "PAGEIN_BATCH";
    case MessageType::kPageInBatchReply:
      return "PAGEIN_BATCH_REPLY";
    case MessageType::kHeartbeat:
      return "HEARTBEAT";
    case MessageType::kHeartbeatAck:
      return "HEARTBEAT_ACK";
    case MessageType::kMigrate:
      return "MIGRATE";
    case MessageType::kMigrateReply:
      return "MIGRATE_REPLY";
    case MessageType::kStatsQuery:
      return "STATS_QUERY";
    case MessageType::kStatsReply:
      return "STATS_REPLY";
    case MessageType::kTraceDump:
      return "TRACE_DUMP";
    case MessageType::kTraceDumpReply:
      return "TRACE_DUMP_REPLY";
    case MessageType::kMapQuery:
      return "MAP_QUERY";
    case MessageType::kMapReply:
      return "MAP_REPLY";
    case MessageType::kMapPublish:
      return "MAP_PUBLISH";
    case MessageType::kMapPublishAck:
      return "MAP_PUBLISH_ACK";
    case MessageType::kEventsQuery:
      return "EVENTS_QUERY";
    case MessageType::kEventsReply:
      return "EVENTS_REPLY";
  }
  return "UNKNOWN";
}

bool Message::operator==(const Message& other) const {
  return type == other.type && flags == other.flags && tenant == other.tenant &&
         request_id == other.request_id &&
         slot == other.slot && count == other.count && aux == other.aux &&
         status == other.status && payload == other.payload;
}

uint32_t PayloadCrc(std::span<const uint8_t> payload) {
  return payload.empty() ? 0 : Crc32(payload);
}

void EncodeHeader(const Message& message, uint32_t payload_crc, uint8_t* out) {
  static_assert(kWireHeaderSize == 48, "layout audit");
  StoreU32(out, kWireMagic);
  out[4] = static_cast<uint8_t>(message.type);
  out[5] = message.flags;
  StoreU16(out + 6, message.tenant);  // Was reserved-zero pre-§15; tenant 0
                                      // keeps the encoding byte-identical.
  StoreU64(out + 8, message.request_id);
  StoreU64(out + 16, message.slot);
  StoreU64(out + 24, message.count);
  StoreU64(out + 32, message.aux);
  StoreU32(out + 40, message.status);
  StoreU32(out + 44, payload_crc);
  StoreU32(out + 48, static_cast<uint32_t>(message.payload.size()));
}

Result<WireHeader> DecodeHeader(std::span<const uint8_t> prefix) {
  if (prefix.size() < kWirePrefixSize) {
    return ProtocolError("message shorter than header");
  }
  const uint8_t* p = prefix.data();
  if (GetU32(p) != kWireMagic) {
    return ProtocolError("bad magic");
  }
  const uint8_t raw_type = p[4];
  if (!ValidType(raw_type)) {
    return ProtocolError("unknown message type " + std::to_string(raw_type));
  }
  const uint16_t tenant = GetU16(p + 6);
  if (tenant > kMaxTenantId) {
    // Bound the id space before any per-tenant state exists: a flipped bit in
    // the old reserved field must not conjure 65k metric/queue series.
    return ProtocolError("tenant id " + std::to_string(tenant) + " exceeds wire maximum");
  }
  WireHeader h;
  h.type = static_cast<MessageType>(raw_type);
  h.flags = p[5];
  h.tenant = tenant;
  h.request_id = GetU64(p + 8);
  h.slot = GetU64(p + 16);
  h.count = GetU64(p + 24);
  h.aux = GetU64(p + 32);
  h.status = GetU32(p + 40);
  h.payload_crc = GetU32(p + 44);
  h.payload_len = GetU32(p + 48);
  if (h.payload_len > kMaxWirePayload) {
    return ProtocolError("payload length " + std::to_string(h.payload_len) +
                         " exceeds wire maximum");
  }
  return h;
}

Message MessageFromHeader(const WireHeader& header) {
  Message m;
  m.type = header.type;
  m.flags = header.flags;
  m.tenant = header.tenant;
  m.request_id = header.request_id;
  m.slot = header.slot;
  m.count = header.count;
  m.aux = header.aux;
  m.status = header.status;
  return m;
}

void EncodeTo(const Message& message, std::vector<uint8_t>* out) {
  const size_t base = out->size();
  out->resize(base + kWirePrefixSize);
  EncodeHeader(message, PayloadCrc(std::span<const uint8_t>(message.payload)),
               out->data() + base);
  out->insert(out->end(), message.payload.begin(), message.payload.end());
}

std::vector<uint8_t> Encode(const Message& message) {
  std::vector<uint8_t> out;
  out.reserve(kWirePrefixSize + message.payload.size());
  EncodeTo(message, &out);
  return out;
}

Result<Message> Decode(std::span<const uint8_t> bytes) {
  auto header = DecodeHeader(bytes);
  if (!header.ok()) {
    return header.status();
  }
  if (bytes.size() != kWirePrefixSize + header->payload_len) {
    return ProtocolError("payload length mismatch");
  }
  Message m = MessageFromHeader(*header);
  m.payload.assign(bytes.begin() + kWirePrefixSize, bytes.end());
  if (PayloadCrc(std::span<const uint8_t>(m.payload)) != header->payload_crc) {
    return CorruptionError("payload CRC mismatch");
  }
  return m;
}

void FrameReader::Feed(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<Message> FrameReader::Next() {
  if (buffer_.size() < kWirePrefixSize) {
    return NotFoundError("incomplete header");
  }
  if (GetU32(buffer_.data()) != kWireMagic) {
    return ProtocolError("stream desynchronized: bad magic");
  }
  const uint32_t payload_len = GetU32(buffer_.data() + kWireHeaderSize);
  if (payload_len > kMaxWirePayload) {
    // Reject the hostile length as soon as the prefix is in: waiting for
    // payload_len more bytes would let a corrupt frame demand gigabytes of
    // buffering before DecodeHeader ever saw it.
    return ProtocolError("payload length " + std::to_string(payload_len) +
                         " exceeds wire limit");
  }
  const size_t total = kWirePrefixSize + payload_len;
  if (buffer_.size() < total) {
    return NotFoundError("incomplete payload");
  }
  auto result = Decode(std::span<const uint8_t>(buffer_.data(), total));
  // Consume the frame even on decode failure so a corrupt message cannot
  // wedge the stream forever; the caller drops the connection on error.
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(total));
  return result;
}

Message MakeAllocRequest(uint64_t request_id, uint64_t pages) {
  Message m;
  m.type = MessageType::kAllocRequest;
  m.request_id = request_id;
  m.count = pages;
  return m;
}

Message MakeAllocReply(uint64_t request_id, uint64_t granted, ErrorCode status) {
  Message m;
  m.type = MessageType::kAllocReply;
  m.request_id = request_id;
  m.count = granted;
  m.status = static_cast<uint32_t>(status);
  return m;
}

Message MakePageOut(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data) {
  Message m;
  m.type = MessageType::kPageOut;
  m.request_id = request_id;
  m.slot = slot;
  m.payload.assign(data.begin(), data.end());
  return m;
}

Message MakePageOutAck(uint64_t request_id, uint64_t slot, ErrorCode status, bool advise_stop) {
  Message m;
  m.type = MessageType::kPageOutAck;
  m.request_id = request_id;
  m.slot = slot;
  m.status = static_cast<uint32_t>(status);
  if (advise_stop) {
    m.flags |= kFlagAdviseStop;
  }
  return m;
}

Message MakePageIn(uint64_t request_id, uint64_t slot) {
  Message m;
  m.type = MessageType::kPageIn;
  m.request_id = request_id;
  m.slot = slot;
  return m;
}

Message MakePageInReply(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data,
                        ErrorCode status) {
  Message m;
  m.type = MessageType::kPageInReply;
  m.request_id = request_id;
  m.slot = slot;
  m.status = static_cast<uint32_t>(status);
  m.payload.assign(data.begin(), data.end());
  return m;
}

Message MakeFreeRequest(uint64_t request_id, uint64_t first_slot, uint64_t pages) {
  Message m;
  m.type = MessageType::kFreeRequest;
  m.request_id = request_id;
  m.slot = first_slot;
  m.count = pages;
  return m;
}

Message MakeLoadQuery(uint64_t request_id) {
  Message m;
  m.type = MessageType::kLoadQuery;
  m.request_id = request_id;
  return m;
}

Message MakeLoadReport(uint64_t request_id, uint64_t free_pages, uint64_t total_pages,
                       bool advise_stop) {
  Message m;
  m.type = MessageType::kLoadReport;
  m.request_id = request_id;
  m.count = free_pages;
  m.aux = total_pages;
  if (advise_stop) {
    m.flags |= kFlagAdviseStop;
  }
  return m;
}

Message MakeHeartbeat(uint64_t request_id) {
  Message m;
  m.type = MessageType::kHeartbeat;
  m.request_id = request_id;
  return m;
}

Message MakeHeartbeatAck(uint64_t request_id, uint64_t incarnation, uint64_t free_pages,
                         uint64_t total_pages, bool advise_stop) {
  Message m;
  m.type = MessageType::kHeartbeatAck;
  m.request_id = request_id;
  m.slot = incarnation;
  m.count = free_pages;
  m.aux = total_pages;
  if (advise_stop) {
    m.flags |= kFlagAdviseStop;
  }
  return m;
}

Message MakeMigrate(uint64_t request_id, uint64_t slot) {
  Message m;
  m.type = MessageType::kMigrate;
  m.request_id = request_id;
  m.slot = slot;
  return m;
}

Message MakeMigrateReply(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data,
                         ErrorCode status) {
  Message m;
  m.type = MessageType::kMigrateReply;
  m.request_id = request_id;
  m.slot = slot;
  m.status = static_cast<uint32_t>(status);
  m.payload.assign(data.begin(), data.end());
  return m;
}

namespace {

Message MakeIntrospectionReply(MessageType type, uint64_t request_id, uint64_t incarnation,
                               std::string_view json) {
  Message m;
  m.type = type;
  m.request_id = request_id;
  m.slot = incarnation;
  m.count = json.size();
  m.payload.assign(json.begin(), json.end());
  return m;
}

}  // namespace

Message MakeStatsQuery(uint64_t request_id) {
  Message m;
  m.type = MessageType::kStatsQuery;
  m.request_id = request_id;
  return m;
}

Message MakeStatsReply(uint64_t request_id, uint64_t incarnation, std::string_view json) {
  return MakeIntrospectionReply(MessageType::kStatsReply, request_id, incarnation, json);
}

Message MakeTraceDump(uint64_t request_id, uint64_t document) {
  Message m;
  m.type = MessageType::kTraceDump;
  m.request_id = request_id;
  m.slot = document;
  return m;
}

Message MakeTraceDumpReply(uint64_t request_id, uint64_t incarnation, std::string_view json) {
  return MakeIntrospectionReply(MessageType::kTraceDumpReply, request_id, incarnation, json);
}

Message MakeEventsQuery(uint64_t request_id, uint64_t min_seq) {
  Message m;
  m.type = MessageType::kEventsQuery;
  m.request_id = request_id;
  m.slot = min_seq;
  return m;
}

Message MakeEventsReply(uint64_t request_id, uint64_t incarnation, uint64_t next_seq,
                        std::string_view json) {
  Message m = MakeIntrospectionReply(MessageType::kEventsReply, request_id, incarnation, json);
  m.count = next_seq;
  return m;
}

void StampTraceId(Message* request, uint32_t trace_id) {
  if (trace_id == 0) {
    request->flags &= static_cast<uint8_t>(~kFlagTraced);
    request->status = 0;
    return;
  }
  request->flags |= kFlagTraced;
  request->status = trace_id;
}

Message MakeMapQuery(uint64_t request_id) {
  Message m;
  m.type = MessageType::kMapQuery;
  m.request_id = request_id;
  return m;
}

Message MakeMapReply(uint64_t request_id, uint64_t epoch, std::span<const uint8_t> map_bytes,
                     ErrorCode status) {
  Message m;
  m.type = MessageType::kMapReply;
  m.request_id = request_id;
  m.slot = epoch;
  m.count = map_bytes.size();
  m.status = static_cast<uint32_t>(status);
  m.payload.assign(map_bytes.begin(), map_bytes.end());
  return m;
}

Message MakeMapPublish(uint64_t request_id, uint64_t epoch, std::span<const uint8_t> map_bytes) {
  Message m;
  m.type = MessageType::kMapPublish;
  m.request_id = request_id;
  m.slot = epoch;
  m.count = map_bytes.size();
  m.payload.assign(map_bytes.begin(), map_bytes.end());
  return m;
}

Message MakeMapPublishAck(uint64_t request_id, uint64_t epoch, ErrorCode status) {
  Message m;
  m.type = MessageType::kMapPublishAck;
  m.request_id = request_id;
  m.slot = epoch;
  m.status = static_cast<uint32_t>(status);
  return m;
}

std::string_view IntrospectionJson(const Message& message) {
  return std::string_view(reinterpret_cast<const char*>(message.payload.data()),
                         message.payload.size());
}

Message MakeShutdown(uint64_t request_id) {
  Message m;
  m.type = MessageType::kShutdown;
  m.request_id = request_id;
  return m;
}

Message MakeErrorReply(uint64_t request_id, ErrorCode status) {
  Message m;
  m.type = MessageType::kErrorReply;
  m.request_id = request_id;
  m.status = static_cast<uint32_t>(status);
  return m;
}

Message MakeAuth(uint64_t request_id, std::string_view token, uint16_t tenant) {
  Message m;
  m.type = MessageType::kAuth;
  m.tenant = tenant;
  m.request_id = request_id;
  m.payload.assign(token.begin(), token.end());
  return m;
}

Message MakeAuthReply(uint64_t request_id, ErrorCode status) {
  Message m;
  m.type = MessageType::kAuthReply;
  m.request_id = request_id;
  m.status = static_cast<uint32_t>(status);
  return m;
}

Message MakePageOutBatch(uint64_t request_id, std::span<const uint64_t> slots,
                         std::span<const uint8_t> pages) {
  assert(!slots.empty() && slots.size() <= kMaxBatchPages);
  assert(pages.size() == slots.size() * kPageSize);
  Message m;
  m.type = MessageType::kPageOutBatch;
  m.request_id = request_id;
  m.slot = slots[0];  // Worker dispatch affinity.
  m.count = slots.size();
  m.payload.resize(slots.size() * 8 + pages.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    StoreU64(m.payload.data() + i * 8, slots[i]);
  }
  std::memcpy(m.payload.data() + slots.size() * 8, pages.data(), pages.size());
  return m;
}

Message MakePageOutBatchAck(uint64_t request_id, uint64_t stored, ErrorCode status,
                            bool advise_stop) {
  Message m;
  m.type = MessageType::kPageOutBatchAck;
  m.request_id = request_id;
  m.count = stored;
  m.status = static_cast<uint32_t>(status);
  if (advise_stop) {
    m.flags |= kFlagAdviseStop;
  }
  return m;
}

Message MakePageInBatch(uint64_t request_id, std::span<const uint64_t> slots) {
  assert(!slots.empty() && slots.size() <= kMaxBatchPages);
  Message m;
  m.type = MessageType::kPageInBatch;
  m.request_id = request_id;
  m.slot = slots[0];  // Worker dispatch affinity.
  m.count = slots.size();
  m.payload.resize(slots.size() * 8);
  for (size_t i = 0; i < slots.size(); ++i) {
    StoreU64(m.payload.data() + i * 8, slots[i]);
  }
  return m;
}

Message MakePageInBatchReply(uint64_t request_id, std::span<const uint8_t> pages,
                             ErrorCode status) {
  assert(pages.size() % kPageSize == 0);
  Message m;
  m.type = MessageType::kPageInBatchReply;
  m.request_id = request_id;
  m.count = pages.size() / kPageSize;
  m.status = static_cast<uint32_t>(status);
  m.payload.assign(pages.begin(), pages.end());
  return m;
}

Result<size_t> ValidateBatch(const Message& message) {
  const size_t count = message.count;
  switch (message.type) {
    case MessageType::kPageOutBatch:
      if (count == 0 || count > kMaxBatchPages) {
        return ProtocolError("batch count out of range");
      }
      if (message.payload.size() != count * (8 + kPageSize)) {
        return ProtocolError("pageout batch payload size mismatch");
      }
      return count;
    case MessageType::kPageInBatch:
      if (count == 0 || count > kMaxBatchPages) {
        return ProtocolError("batch count out of range");
      }
      if (message.payload.size() != count * 8) {
        return ProtocolError("pagein batch payload size mismatch");
      }
      return count;
    case MessageType::kPageInBatchReply:
      if (message.status_code() != ErrorCode::kOk) {
        if (!message.payload.empty()) {
          return ProtocolError("failed batch reply carries payload");
        }
        return count;
      }
      if (count == 0 || count > kMaxBatchPages) {
        return ProtocolError("batch count out of range");
      }
      if (message.payload.size() != count * kPageSize) {
        return ProtocolError("pagein batch reply payload size mismatch");
      }
      return count;
    case MessageType::kPageOutBatchAck:
      if (!message.payload.empty()) {
        return ProtocolError("batch ack carries payload");
      }
      return count;
    default:
      return ProtocolError("not a batch message");
  }
}

uint64_t BatchSlot(const Message& message, size_t i) {
  assert(message.type == MessageType::kPageOutBatch || message.type == MessageType::kPageInBatch);
  assert(i < message.count);
  return GetU64(message.payload.data() + i * 8);
}

std::span<const uint8_t> BatchPage(const Message& message, size_t i) {
  assert(message.type == MessageType::kPageOutBatch ||
         message.type == MessageType::kPageInBatchReply);
  assert(i < message.count);
  const size_t base =
      message.type == MessageType::kPageOutBatch ? static_cast<size_t>(message.count) * 8 : 0;
  return std::span<const uint8_t>(message.payload.data() + base + i * kPageSize, kPageSize);
}

}  // namespace rmp
