// BASIC PARITY — the in-place RAID-5-style scheme the paper analyzes and
// rejects (§2.2 "Parity"): page (i, j) is the j-th page of server i, and
// parity page j on the parity server is the XOR of the j-th pages of all
// data servers. A pageout updates parity in place:
//   1. the client sends the new page to its data server, which computes
//      old XOR new while storing it, and
//   2. the delta is folded into the stored parity on the parity server.
// That is two page transfers per pageout — as expensive as mirroring on the
// wire — and the client must keep the page until the parity update lands.
// Memory overhead, however, is only a factor of (1 + 1/S): this policy
// exists as the baseline that motivates parity logging.

#ifndef SRC_CORE_BASIC_PARITY_H_
#define SRC_CORE_BASIC_PARITY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/remote_pager.h"

namespace rmp {

class BasicParityBackend final : public RemotePagerBase {
 public:
  // Peer `parity_peer` stores parity; the first `data_columns` non-parity
  // peers are the stripe's data columns (0 = every non-parity peer). Peers
  // beyond that — e.g. a hot spare — stay out of the stripe until recovery
  // rebuilds onto them. Stripe row j uses slot j on every server (slots are
  // pre-allocated in extents).
  BasicParityBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                     const RemotePagerParams& params, size_t parity_peer,
                     size_t data_columns = 0);

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  std::string Name() const override { return "BASIC_PARITY"; }

  // Reconstructs the pages of a crashed data server. The stripe geometry is
  // fixed, so recovered rows are rebuilt onto a spare column registered via
  // SetSpare(); without one, recovery fails with FAILED_PRECONDITION.
  // Degraded reads (PageIn from the crashed column) work even before
  // recovery, by XORing the parity row with the surviving columns.
  Status Recover(size_t peer_index, TimeNs* now);

  // RepairCoordinator hook. The in-place scheme's stripe geometry is fixed,
  // so the rebuild onto the spare is one-shot (the whole column in a single
  // call, ignoring `max_pages`); after the column swap a second call sees no
  // trace of the dead peer and reports completion. A crash of the parity
  // peer or a non-column peer is reported complete immediately — rebuilding
  // the parity column is out of scope for this rejected baseline.
  Result<uint64_t> RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Registers an unused peer as the hot spare recovery rebuilds onto.
  void SetSpare(size_t peer_index) { spare_peer_ = peer_index; }

  size_t parity_peer() const { return parity_peer_; }

 private:
  struct Position {
    size_t column = 0;  // Index into columns_ (data servers).
    uint64_t row = 0;   // Stripe row = slot index on every server.
  };

  // Ensures slot `row` exists on every column and the parity server.
  Status EnsureRow(uint64_t row, TimeNs* now);

  // Recomputes row `row`'s parity from its live data cells and stores it
  // with a plain, idempotent pageout. The delta protocol
  // (DeltaPageOut + XorMerge) is NOT idempotent: once a store applied but
  // its reply was lost, re-running it yields a zero delta and the parity
  // never learns about the new data. Any pageout that loses a message
  // mid-stripe therefore falls back to plain stores plus this refresh.
  Status RefreshParityRow(uint64_t row, TimeNs* now);

  size_t parity_peer_;
  std::vector<size_t> columns_;          // Data server peer indices.
  std::optional<size_t> spare_peer_;
  std::unordered_map<uint64_t, Position> table_;
  std::unordered_map<uint64_t, std::vector<uint64_t>>
      row_pages_;                        // row -> page_id per column (or ~0ull).
  uint64_t rows_provisioned_ = 0;
  uint64_t next_sequence_ = 0;           // Round-robin placement counter.
};

}  // namespace rmp

#endif  // SRC_CORE_BASIC_PARITY_H_
