// Negative and fuzz tests of the wire protocol boundary.
//
// The client trusts nothing it reads off a socket: a truncated frame, a
// batch count past the limit, a payload length that would drive an unbounded
// allocation, or a flipped bit must all surface as clean Status errors — no
// aborts, no giant allocations, no partially-applied batches. The seeded
// byte-flip sweeps are deterministic, so any frame that ever breaks the
// decoder is reproducible from the iteration number.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string_view>
#include <vector>

#include "src/proto/cluster_map.h"
#include "src/proto/wire.h"
#include "src/server/memory_server.h"
#include "src/util/bytes.h"
#include "src/util/events.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

Message SamplePageOut() {
  PageBuffer page;
  FillPattern(page.span(), 42);
  return MakePageOut(7, 3, page.span());
}

std::vector<Message> SampleMessages() {
  std::vector<Message> samples;
  samples.push_back(MakeAllocRequest(1, 16));
  samples.push_back(MakeLoadQuery(2));
  samples.push_back(SamplePageOut());
  samples.push_back(MakePageIn(3, 5));
  PageBuffer page;
  FillPattern(page.span(), 9);
  const uint64_t slots[2] = {4, 9};
  std::vector<uint8_t> pages(2 * kPageSize);
  FillPattern(std::span<uint8_t>(pages).first(kPageSize), 10);
  FillPattern(std::span<uint8_t>(pages).subspan(kPageSize), 11);
  samples.push_back(MakePageOutBatch(4, slots, pages));
  samples.push_back(MakePageInBatch(5, slots));
  return samples;
}

// --- Truncation -------------------------------------------------------------

TEST(WireFuzzTest, EveryTruncationOfAFrameIsACleanError) {
  const std::vector<uint8_t> bytes = Encode(SamplePageOut());
  // Every strict prefix must decode to an error, never crash or succeed.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = Decode(std::span<const uint8_t>(bytes.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  auto whole = Decode(bytes);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, SamplePageOut());
}

TEST(WireFuzzTest, FrameReaderSurvivesBytewiseFeeding) {
  const Message original = SamplePageOut();
  const std::vector<uint8_t> bytes = Encode(original);
  FrameReader reader;
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Until the last byte lands the reader must keep asking for more.
    auto premature = reader.Next();
    ASSERT_FALSE(premature.ok());
    ASSERT_EQ(premature.status().code(), ErrorCode::kNotFound) << "at byte " << i;
    reader.Feed(std::span<const uint8_t>(bytes.data() + i, 1));
  }
  auto complete = reader.Next();
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_EQ(*complete, original);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(WireFuzzTest, FrameReaderSplitsCoalescedMessages) {
  std::vector<uint8_t> stream = Encode(MakeLoadQuery(1));
  EncodeTo(SamplePageOut(), &stream);
  EncodeTo(MakeAllocRequest(2, 8), &stream);
  FrameReader reader;
  reader.Feed(stream);
  ASSERT_TRUE(reader.Next().ok());
  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, SamplePageOut());
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_FALSE(reader.Next().ok());  // Stream drained.
}

TEST(WireFuzzTest, FrameReaderRejectsDesynchronizedStream) {
  std::vector<uint8_t> stream = Encode(MakeLoadQuery(1));
  stream[0] ^= 0xff;  // Garbage where the magic should be.
  FrameReader reader;
  reader.Feed(stream);
  auto result = reader.Next();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kProtocol);
}

// --- Hostile header fields --------------------------------------------------

TEST(WireFuzzTest, OversizedPayloadLengthIsRejectedBeforeAllocation) {
  std::vector<uint8_t> bytes = Encode(MakeLoadQuery(1));
  // Patch payload_len (the 4 bytes after the 48-byte header) to a value that
  // would demand a multi-gigabyte allocation if trusted.
  const uint32_t huge = kMaxWirePayload + 1;
  std::memcpy(bytes.data() + kWireHeaderSize, &huge, sizeof(huge));
  auto decoded = Decode(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
  // The incremental reader must reject it too, not buffer forever.
  FrameReader reader;
  reader.Feed(bytes);
  auto streamed = reader.Next();
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), ErrorCode::kProtocol);
}

TEST(WireFuzzTest, CorruptPayloadFailsTheCrc) {
  std::vector<uint8_t> bytes = Encode(SamplePageOut());
  bytes[bytes.size() - 1] ^= 0x01;  // One flipped payload bit.
  auto decoded = Decode(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);
}

TEST(WireFuzzTest, UnknownMessageTypeIsAProtocolError) {
  std::vector<uint8_t> bytes = Encode(MakeLoadQuery(1));
  bytes[4] = 0xee;  // The type byte follows the 4-byte magic.
  auto decoded = Decode(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

// --- Batch validation -------------------------------------------------------

Message RawBatch(MessageType type, uint64_t count, size_t payload_bytes) {
  Message message;
  message.type = type;
  message.request_id = 1;
  message.count = count;
  message.payload.assign(payload_bytes, 0);
  return message;
}

TEST(WireFuzzTest, BatchCountPastTheLimitIsRejected) {
  // A pagein batch claiming kMaxBatchPages + 1 slots, payload sized to match:
  // the count bound must trip before anything trusts the layout.
  const uint64_t count = kMaxBatchPages + 1;
  auto verdict = ValidateBatch(RawBatch(MessageType::kPageInBatch, count, count * 8));
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), ErrorCode::kProtocol);
}

TEST(WireFuzzTest, BatchCountZeroIsRejected) {
  auto verdict = ValidateBatch(RawBatch(MessageType::kPageInBatch, 0, 0));
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), ErrorCode::kProtocol);
}

TEST(WireFuzzTest, BatchPayloadSizeMismatchIsRejected) {
  // Claims 3 slots but carries only 2 slots' worth of bytes.
  auto verdict = ValidateBatch(RawBatch(MessageType::kPageInBatch, 3, 2 * 8));
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), ErrorCode::kProtocol);
  // Pageout batch whose payload is one byte short of count * (slot + page).
  auto truncated =
      ValidateBatch(RawBatch(MessageType::kPageOutBatch, 2, 2 * (8 + kPageSize) - 1));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), ErrorCode::kProtocol);
}

TEST(WireFuzzTest, ServerAnswersMalformedBatchWithCleanError) {
  MemoryServer server;
  // Hostile counts and layouts must produce an error reply, never abort or
  // partially apply.
  for (const auto& hostile :
       {RawBatch(MessageType::kPageInBatch, kMaxBatchPages + 1, (kMaxBatchPages + 1) * 8),
        RawBatch(MessageType::kPageInBatch, 0, 0),
        RawBatch(MessageType::kPageInBatch, 4, 8),
        RawBatch(MessageType::kPageOutBatch, 2, 8 + kPageSize)}) {
    const Message reply = server.Handle(hostile);
    EXPECT_EQ(reply.type, MessageType::kErrorReply);
    EXPECT_NE(reply.status_code(), ErrorCode::kOk);
  }
  EXPECT_EQ(server.live_pages(), 0u);
  EXPECT_EQ(server.stats().bytes_stored.load(), 0u);
}

// --- Hostile tenant-bearing frames (DESIGN.md §15) ---------------------------

TEST(WireFuzzTest, TenantIdRoundTripsThroughTheHeader) {
  Message tagged = MakeAllocRequest(1, 16);
  tagged.tenant = kMaxTenantId;  // The largest id the wire admits.
  auto decoded = Decode(Encode(tagged));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tenant, kMaxTenantId);
  EXPECT_EQ(*decoded, tagged);  // operator== covers the tenant field.
}

TEST(WireFuzzTest, OutOfRangeTenantIdIsRejectedAtDecode) {
  // The id space is bounded before any per-tenant state can exist: a hostile
  // or bit-flipped id past kMaxTenantId must never reach attribution.
  for (const uint16_t hostile : {static_cast<uint16_t>(kMaxTenantId + 1),
                                 static_cast<uint16_t>(0x8000), uint16_t{0xffff}}) {
    std::vector<uint8_t> bytes = Encode(MakeAllocRequest(1, 16));
    // The tenant field is the u16 at bytes 6..7 (the pre-§15 reserved field).
    bytes[6] = static_cast<uint8_t>(hostile & 0xff);
    bytes[7] = static_cast<uint8_t>(hostile >> 8);
    auto decoded = Decode(bytes);
    ASSERT_FALSE(decoded.ok()) << "tenant " << hostile << " decoded";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
    FrameReader reader;
    reader.Feed(bytes);
    auto streamed = reader.Next();
    ASSERT_FALSE(streamed.ok());
    EXPECT_EQ(streamed.status().code(), ErrorCode::kProtocol);
  }
}

TEST(WireFuzzTest, StrictServerAnswersUnknownTenantFramesCleanly) {
  MemoryServerParams params;
  params.tenants.tenants = {{.id = 7}};
  params.tenants.strict = true;
  MemoryServer server(params);
  // An authenticated-id-only policy: every op from an undeclared tenant is a
  // clean FAILED_PRECONDITION, never a crash or a partial apply.
  PageBuffer page;
  FillPattern(page.span(), 3);
  for (Message hostile : {MakeAllocRequest(1, 8), MakePageIn(2, 5),
                          MakePageOut(3, 5, page.span()), MakeMigrate(4, 5)}) {
    hostile.tenant = 99;
    const Message reply = server.Handle(hostile);
    EXPECT_EQ(reply.status_code(), ErrorCode::kFailedPrecondition);
  }
  EXPECT_EQ(server.live_pages(), 0u);
  EXPECT_EQ(server.TenantReservedPages(99), 0u);
  EXPECT_EQ(server.TenantReservedPages(7), 0u);
}

TEST(WireFuzzTest, FlippedTenantAndFlagBytesNeverCrossCharge) {
  // Seeded sweep over the unprotected header bytes (flags at 5, tenant at
  // 6..7): whatever id a flip lands on, the decode either rejects it or the
  // server attributes the op to exactly that id — occupancy charged to any
  // tenant must match the grants that tenant's own admitted allocs received.
  MemoryServerParams params;
  params.tenants.tenants = {{.id = 7, .memory_quota_pages = 256}, {.id = 9}};
  MemoryServer server(params);
  Rng rng(0x7e4aULL);
  std::map<uint16_t, uint64_t> granted;
  for (int iter = 0; iter < 200; ++iter) {
    Message request = MakeAllocRequest(static_cast<uint64_t>(iter) + 1, 4);
    request.tenant = rng.Bernoulli(0.5) ? 7 : 9;
    std::vector<uint8_t> bytes = Encode(request);
    const int flips = 1 + static_cast<int>(rng.Below(3));
    for (int f = 0; f < flips; ++f) {
      bytes[5 + rng.Below(3)] ^= static_cast<uint8_t>(1 + rng.Below(255));
    }
    auto decoded = Decode(bytes);
    if (!decoded.ok()) {
      continue;  // Out-of-range id: rejected before attribution, by design.
    }
    const Message reply = server.Handle(*decoded);
    if (reply.type == MessageType::kAllocReply && reply.status_code() == ErrorCode::kOk) {
      granted[decoded->tenant] += reply.count;
    }
  }
  for (const auto& [tenant, pages] : granted) {
    if (tenant == 0) {
      continue;  // The legacy lane is deliberately unaccounted.
    }
    EXPECT_EQ(server.TenantReservedPages(tenant), pages) << "tenant " << tenant;
  }
  // Ids that never received a grant were never charged.
  for (const uint16_t quiet : {uint16_t{3}, uint16_t{500}, kMaxTenantId}) {
    if (granted.find(quiet) == granted.end()) {
      EXPECT_EQ(server.TenantReservedPages(quiet), 0u);
    }
  }
}

// --- Hostile cluster-map frames (DESIGN.md §16) ------------------------------

ClusterMap SampleMap() {
  return ClusterMap::Build(5, 64,
                           {{0, 1, ClusterMember::State::kActive},
                            {1, 3, ClusterMember::State::kActive},
                            {2, 2, ClusterMember::State::kLeaving}});
}

// Patches the little-endian u32 at `offset` in a serialized map.
void PatchU32(std::vector<uint8_t>* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

TEST(WireFuzzTest, EveryTruncationOfAMapFrameFailsClosed) {
  const std::vector<uint8_t> bytes = SampleMap().Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = ClusterMap::Deserialize(std::span<const uint8_t>(bytes.data(), len));
    ASSERT_FALSE(decoded.ok()) << "map prefix of " << len << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
  }
  ASSERT_TRUE(ClusterMap::Deserialize(bytes).ok());
}

TEST(WireFuzzTest, MapMemberCountBoundsAreEnforcedBeforeAllocation) {
  // member_count is the u32 at offset 16 (magic + epoch + groups). A hostile
  // count must trip the bound before anything sizes a member vector by it.
  for (const uint32_t hostile : {0u, kMaxClusterMembers + 1, 0xffffffffu}) {
    std::vector<uint8_t> bytes = SampleMap().Serialize();
    PatchU32(&bytes, 16, hostile);
    auto decoded = ClusterMap::Deserialize(bytes);
    ASSERT_FALSE(decoded.ok()) << "member_count " << hostile << " decoded";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
  }
  // A count that *claims* fewer members than the frame carries (and vice
  // versa) is a length mismatch, not a partial parse.
  std::vector<uint8_t> bytes = SampleMap().Serialize();
  PatchU32(&bytes, 16, 2);
  EXPECT_FALSE(ClusterMap::Deserialize(bytes).ok());
}

TEST(WireFuzzTest, MapRingBoundsAndStatesAreValidated) {
  // groups is the u32 at offset 12; 0 and past-the-bound both fail closed.
  for (const uint32_t hostile : {0u, kMaxPageGroups + 1, 0xffffffffu}) {
    std::vector<uint8_t> bytes = SampleMap().Serialize();
    PatchU32(&bytes, 12, hostile);
    auto decoded = ClusterMap::Deserialize(bytes);
    ASSERT_FALSE(decoded.ok()) << "groups " << hostile << " decoded";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
  }
  // An out-of-range member state byte (first member's state is the u8 at
  // offset 20 + 12) must be rejected, not cast blindly into the enum.
  std::vector<uint8_t> bytes = SampleMap().Serialize();
  bytes[20 + 12] = 0x7f;
  EXPECT_FALSE(ClusterMap::Deserialize(bytes).ok());
}

TEST(WireFuzzTest, ServerAnswersHostileMapPublishesCleanly) {
  MemoryServer server;
  const std::vector<uint8_t> good = SampleMap().Serialize();

  // Truncated map payloads: error reply, no map adopted.
  for (const size_t len : {size_t{0}, size_t{4}, good.size() - 1}) {
    const Message reply = server.Handle(
        MakeMapPublish(1, 5, std::span<const uint8_t>(good.data(), len)));
    EXPECT_EQ(reply.type, MessageType::kErrorReply);
    EXPECT_EQ(reply.status_code(), ErrorCode::kProtocol);
    EXPECT_EQ(server.map_epoch(), 0u);
  }
  // A publish whose header epoch disagrees with the map payload's epoch is
  // hostile by definition — one of them lies.
  {
    const Message reply = server.Handle(MakeMapPublish(2, 9, good));
    EXPECT_EQ(reply.type, MessageType::kErrorReply);
    EXPECT_EQ(server.map_epoch(), 0u);
  }
  // The genuine frame lands...
  ASSERT_EQ(server.Handle(MakeMapPublish(3, 5, good)).type, MessageType::kMapPublishAck);
  EXPECT_EQ(server.map_epoch(), 5u);
  // ...an absurd epoch in a frame that fails decode must NOT bump the epoch
  // even though it is numerically newer.
  {
    std::vector<uint8_t> bad = SampleMap().Serialize();
    PatchU32(&bad, 16, 0xffffffffu);
    const Message reply =
        server.Handle(MakeMapPublish(4, 0xffffffffffffffffull, bad));
    EXPECT_EQ(reply.type, MessageType::kErrorReply);
    EXPECT_EQ(server.map_epoch(), 5u);
  }
  EXPECT_EQ(server.stats().stale_epoch_rejections.value(), 0);
}

TEST(WireFuzzTest, RandomByteFlipsNeverBreakTheMapDecoder) {
  // Seeded sweep: any flipped map frame either still decodes to an in-bounds
  // map or fails with a clean protocol error — never an abort, never a map
  // whose fields escape the documented bounds.
  Rng rng(0x3a9cULL);
  const std::vector<uint8_t> good = SampleMap().Serialize();
  int decoded_ok = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> bytes = good;
    const int flips = 1 + static_cast<int>(rng.Below(3));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    }
    auto decoded = ClusterMap::Deserialize(bytes);
    if (!decoded.ok()) {
      continue;
    }
    ++decoded_ok;
    EXPECT_GE(decoded->epoch(), 1u) << "iteration " << iter;
    EXPECT_GE(decoded->groups(), 1u) << "iteration " << iter;
    EXPECT_LE(decoded->groups(), kMaxPageGroups) << "iteration " << iter;
    EXPECT_GE(decoded->members().size(), 1u) << "iteration " << iter;
    EXPECT_LE(decoded->members().size(), size_t{kMaxClusterMembers}) << "iteration " << iter;
    // Whatever survived must still run the ring without tripping asserts
    // (unless the flips deactivated every member, when there is no ring).
    if (decoded->active_members() > 0) {
      (void)decoded->OwnerOf(decoded->GroupOf(12345));
      (void)decoded->OwnerChain(0, 2);
    }
  }
  EXPECT_LT(decoded_ok, 400);  // The sweep genuinely exercised rejection.
}

// --- Seeded random corruption sweeps ---------------------------------------

TEST(WireFuzzTest, RandomByteFlipsNeverBreakTheDecoder) {
  const std::vector<Message> samples = SampleMessages();
  Rng rng(0xf02dULL);
  MemoryServer server;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> bytes = Encode(samples[static_cast<size_t>(iter) % samples.size()]);
    const int flips = 1 + static_cast<int>(rng.Below(3));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    }
    // The decoder must return — ok (the flip hit a don't-care field and the
    // CRC still holds) or a clean error — and a message it does accept must
    // then pass harmlessly through the server's dispatcher.
    auto decoded = Decode(bytes);
    if (decoded.ok()) {
      const Message reply = server.Handle(*decoded);
      EXPECT_NE(reply.type, MessageType::kPageOut) << "iteration " << iter;
    }
  }
}

// --- Hostile introspection frames (DESIGN.md §17) ----------------------------

std::vector<Message> SampleIntrospectionReplies() {
  std::vector<Message> samples;
  samples.push_back(MakeStatsReply(
      1, 3, R"({"server.live_pages":{"kind":"gauge","value":42}})"));
  samples.push_back(MakeTraceDumpReply(
      2, 3, R"([{"trace":7,"stage":"srv_service","start":1000,"dur":250}])"));
  samples.push_back(MakeEventsReply(
      3, 3, 9, R"([{"seq":8,"t":123,"kind":"crash","actor":"testbed","detail":"s-0 \"died\""}])"));
  samples.push_back(MakeStatsQuery(4));
  samples.push_back(MakeTraceDump(5, 1));
  samples.push_back(MakeEventsQuery(6, 8));
  return samples;
}

TEST(WireFuzzTest, EveryTruncationOfAnIntrospectionReplyIsACleanError) {
  for (const Message& sample : SampleIntrospectionReplies()) {
    const std::vector<uint8_t> bytes = Encode(sample);
    for (size_t len = 0; len < bytes.size(); ++len) {
      auto decoded = Decode(std::span<const uint8_t>(bytes.data(), len));
      ASSERT_FALSE(decoded.ok())
          << MessageTypeName(sample.type) << " prefix of " << len << " bytes decoded";
    }
    auto whole = Decode(bytes);
    ASSERT_TRUE(whole.ok()) << whole.status().ToString();
    EXPECT_EQ(*whole, sample);
    // The JSON payload round-trips byte-exact (escapes included).
    EXPECT_EQ(IntrospectionJson(*whole), IntrospectionJson(sample));
  }
}

TEST(WireFuzzTest, OversizedIntrospectionPayloadLengthIsRejectedBeforeAllocation) {
  // A stats/trace/events reply claiming a multi-gigabyte JSON document must
  // trip the payload bound, not size a string by the hostile length.
  for (const Message& sample : SampleIntrospectionReplies()) {
    std::vector<uint8_t> bytes = Encode(sample);
    const uint32_t huge = kMaxWirePayload + 1;
    std::memcpy(bytes.data() + kWireHeaderSize, &huge, sizeof(huge));
    auto decoded = Decode(bytes);
    ASSERT_FALSE(decoded.ok()) << MessageTypeName(sample.type);
    EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
    FrameReader reader;
    reader.Feed(bytes);
    auto streamed = reader.Next();
    ASSERT_FALSE(streamed.ok());
    EXPECT_EQ(streamed.status().code(), ErrorCode::kProtocol);
  }
}

TEST(WireFuzzTest, RandomByteFlipsNeverBreakIntrospectionReplies) {
  // Seeded sweep over the introspection frames: every flip either fails the
  // CRC/bounds cleanly or yields a frame whose IntrospectionJson is safe to
  // read — a string_view inside the payload, never past it.
  const std::vector<Message> samples = SampleIntrospectionReplies();
  Rng rng(0x0b5eULL);
  int decoded_ok = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> bytes = Encode(samples[static_cast<size_t>(iter) % samples.size()]);
    const int flips = 1 + static_cast<int>(rng.Below(3));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    }
    auto decoded = Decode(bytes);
    if (!decoded.ok()) {
      continue;
    }
    ++decoded_ok;
    const std::string_view json = IntrospectionJson(*decoded);
    EXPECT_LE(json.size(), decoded->payload.size()) << "iteration " << iter;
    if (!json.empty()) {
      // Touch both ends; ASan would flag any out-of-payload view.
      volatile char sink = json.front();
      sink = json.back();
      (void)sink;
    }
  }
  EXPECT_LT(decoded_ok, 400);  // The sweep genuinely exercised rejection.
}

TEST(WireFuzzTest, ServerAnswersIntrospectionQueriesUnderFlippedHeaders) {
  // Flipped header bytes on the query side: whatever survives decode must get
  // a well-formed reply (or clean error) out of a live server — the stats,
  // span-ring, and events handlers never abort on hostile slot/count fields.
  MemoryServer server;
  server.events().Append(EventKind::kInfo, "fuzz", "seed event");
  Rng rng(0x15e7ULL);
  const std::vector<Message> queries = {MakeStatsQuery(1), MakeTraceDump(2, 0),
                                        MakeTraceDump(3, 1), MakeEventsQuery(4, 0),
                                        MakeEventsQuery(5, 0xffffffffffffffffull)};
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> bytes = Encode(queries[static_cast<size_t>(iter) % queries.size()]);
    // Flip within the header only, so some frames keep a valid CRC.
    bytes[rng.Below(kWireHeaderSize)] ^= static_cast<uint8_t>(1 + rng.Below(255));
    auto decoded = Decode(bytes);
    if (!decoded.ok()) {
      continue;
    }
    const Message reply = server.Handle(*decoded);
    if (reply.type == MessageType::kStatsReply || reply.type == MessageType::kTraceDumpReply ||
        reply.type == MessageType::kEventsReply) {
      // Whatever JSON came back must re-encode into a valid frame.
      auto round = Decode(Encode(reply));
      ASSERT_TRUE(round.ok()) << "iteration " << iter;
    }
  }
}

TEST(WireFuzzTest, RandomTruncationsNeverBreakTheFrameReader) {
  const std::vector<Message> samples = SampleMessages();
  Rng rng(0xfeedULL);
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<uint8_t> bytes =
        Encode(samples[static_cast<size_t>(iter) % samples.size()]);
    FrameReader reader;
    // Feed a random-length prefix, then the rest; possibly flip one byte.
    const size_t cut = rng.Below(bytes.size());
    std::vector<uint8_t> mutated = bytes;
    if (rng.Bernoulli(0.5)) {
      mutated[rng.Below(mutated.size())] ^= 0x10;
    }
    reader.Feed(std::span<const uint8_t>(mutated.data(), cut));
    (void)reader.Next();  // May be NotFound or a hard error; must not abort.
    reader.Feed(std::span<const uint8_t>(mutated.data() + cut, mutated.size() - cut));
    (void)reader.Next();
  }
}

}  // namespace
}  // namespace rmp
