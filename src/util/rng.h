// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the project (workload access patterns, crash
// injection points, Ethernet backoff, cluster usage) draws from Rng seeded
// explicitly, so every experiment is bit-reproducible.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace rmp {

// xoshiro256** seeded via SplitMix64. Small, fast, and good enough for
// simulation workloads; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix(&sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed with the given mean (inter-arrival times).
  double Exponential(double mean);

  // Standard normal via Box-Muller (no state cache; second sample discarded).
  double Normal(double mean, double stddev);

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rmp

#endif  // SRC_UTIL_RNG_H_
