// Noisy-neighbor QoS: a well-behaved tenant's latency while a flooding
// tenant saturates the same server, with the multi-tenant QoS machinery
// (DESIGN.md §15) off vs on.
//
// The victim runs one connection of blocking pageouts — the latency-critical
// shape of a faulting client — while the hog keeps `kHogSessions` pipelined
// connections full of pageouts. With QoS off everything lands in one tenant
// queue and the victim's single request waits behind the hog's whole backlog
// (the starvation the paper's single-daemon design never had to face). With
// QoS on, tenant WFQ weights plus the per-tenant queue cap bound how much of
// the hog's flood can sit ahead of the victim, and a server-side rate cap on
// the hog shows admission control doing the same job one layer down.
//
// Configs emitted to BENCH_noisy_neighbor.json:
//   victim_alone     — no hog; the reference latency.
//   qos_off          — hog flooding, both untenanted (tenant 0, one queue).
//   qos_on/w1        — tenants bound, equal WFQ weights, queue cap + shed.
//   qos_on/w4        — victim weighted 4:1 over the hog.
//   qos_on/ratecap   — 4:1 weights plus a server-side rate cap on the hog.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/memory_server.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kSlots = 64;          // Per-connection slot span.
constexpr int kHogSessions = 4;     // The hog's connection fan-out.
constexpr int kHogDepth = 16;       // Pipelined pageouts in flight per hog session.
constexpr uint16_t kVictimTenant = 1;
constexpr uint16_t kHogTenant = 2;
// Loopback pageouts complete in a few microseconds, so with the real handler
// the scheduler queue never builds and every config looks the same. Emulate a
// network-like per-page service time (the delay sleeps outside the server
// mutex, so distinct slots overlap): 16 workers / 5 ms ≈ 3.2k pages/s of
// service capacity, far below what the hog's 64-deep pipeline can deliver, so
// the excess queues in the scheduler — exactly the contention QoS arbitrates.
// The long service time also keeps frame volume low enough that the shared
// 1-core CI box's loop threads stay unsaturated; at sub-ms service times the
// bench degenerates into measuring raw CPU contention, which no dispatch
// policy can fix.
constexpr int64_t kServiceMicros = 5000;
constexpr int kServiceWorkers = 16;

double Micros(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

double Percentile(std::vector<double>* latencies, double q) {
  if (latencies->empty()) {
    return 0.0;
  }
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(q * static_cast<double>(latencies->size() - 1));
  return (*latencies)[index];
}

uint64_t AllocSlots(Transport* transport) {
  auto alloc = transport->Call(MakeAllocRequest(1, kSlots));
  if (!alloc.ok() || alloc->status_code() != ErrorCode::kOk) {
    std::fprintf(stderr, "alloc failed: %s\n", alloc.status().ToString().c_str());
    std::exit(1);
  }
  return alloc->slot;
}

struct Handler : MessageHandler {
  explicit Handler(std::shared_ptr<MemoryServer> s) : server(std::move(s)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

struct ScenarioResult {
  double victim_pages_per_sec = 0;
  double victim_p50_us = 0;
  double victim_p99_us = 0;
  double hog_pages_per_sec = 0;  // Granted (kOk) pageouts only.
  double hog_denied_per_sec = 0; // Rate-denied or shed.
};

struct Scenario {
  std::string config;
  bool hog = true;
  uint16_t victim_tenant = 0;  // 0 = untenanted (QoS off on the wire).
  uint16_t hog_tenant = 0;
  TcpServerOptions options;
  TenantPolicyParams policy;
};

ScenarioResult RunScenario(const Scenario& scenario, double measure_seconds) {
  MemoryServerParams params;
  params.name = "noisy-bench";
  params.capacity_pages = static_cast<uint64_t>(kSlots) * (kHogSessions + 2) + 64;
  params.tenants = scenario.policy;
  auto server = std::make_shared<MemoryServer>(params);
  TcpServerOptions options = scenario.options;
  options.service_workers = kServiceWorkers;
  auto started = TcpServer::Start(
      0, [server] { return std::unique_ptr<MessageHandler>(new Handler(server)); },
      options);
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.status().ToString().c_str());
    std::exit(1);
  }
  const uint16_t port = (*started)->port();

  auto victim = TcpTransport::Connect("127.0.0.1", port, "", scenario.victim_tenant);
  if (!victim.ok()) {
    std::fprintf(stderr, "victim connect failed: %s\n", victim.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t victim_first = AllocSlots(victim->get());
  for (int i = 0; i < kSlots; ++i) {
    server->SetSlotDelayForTest(victim_first + static_cast<uint64_t>(i), kServiceMicros);
  }

  std::vector<std::unique_ptr<TcpTransport>> hogs;
  std::vector<uint64_t> hog_first;
  if (scenario.hog) {
    for (int s = 0; s < kHogSessions; ++s) {
      auto hog = TcpTransport::Connect("127.0.0.1", port, "", scenario.hog_tenant);
      if (!hog.ok()) {
        std::fprintf(stderr, "hog connect failed: %s\n", hog.status().ToString().c_str());
        std::exit(1);
      }
      const uint64_t first = AllocSlots(hog->get());
      for (int i = 0; i < kSlots; ++i) {
        // Jitter the hog's service times around the mean: identical delays
        // make the in-service ops free their workers in 5 ms convoys, and the
        // victim's measured wait becomes the convoy phase instead of the
        // scheduler's dispatch decision.
        const int64_t jitter = (s * kSlots + i) * 211 % (kServiceMicros / 2);
        server->SetSlotDelayForTest(first + static_cast<uint64_t>(i),
                                    kServiceMicros * 3 / 4 + jitter);
      }
      hog_first.push_back(first);
      hogs.push_back(std::move(*hog));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hog_granted{0};
  std::atomic<uint64_t> hog_denied{0};
  std::vector<std::thread> hog_threads;
  for (size_t s = 0; s < hogs.size(); ++s) {
    hog_threads.emplace_back([&, s] {
      PageBuffer page;
      FillPattern(page.span(), 7);
      std::deque<RpcFuture> window;
      uint64_t request_id = 1'000'000 * (s + 1);
      uint64_t granted = 0;
      uint64_t denied = 0;
      const auto join_oldest = [&] {
        auto reply = window.front().Wait();
        window.pop_front();
        // Rate denials (RESOURCE_EXHAUSTED) and sheds are the QoS layer
        // working as intended — count them, don't die on them.
        if (reply.ok() && reply->status_code() == ErrorCode::kOk) {
          ++granted;
        } else {
          ++denied;
        }
      };
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (window.size() >= kHogDepth) {
          join_oldest();
        }
        const uint64_t slot = hog_first[s] + (i++ % kSlots);
        window.push_back(hogs[s]->CallAsync(MakePageOut(++request_id, slot, page.span())));
      }
      while (!window.empty()) {
        join_oldest();
      }
      hog_granted.fetch_add(granted);
      hog_denied.fetch_add(denied);
    });
  }

  // Let the flood reach steady state before measuring the victim.
  if (scenario.hog) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Fixed measurement window rather than a fixed op count: a starved victim
  // at fixed ops would stretch the qos_off config into minutes.
  PageBuffer page;
  FillPattern(page.span(), 42);
  std::vector<double> latencies;
  uint64_t request_id = 100;
  uint64_t ops = 0;
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(measure_seconds));
  while (Clock::now() < deadline) {
    const uint64_t slot = victim_first + (ops++ % kSlots);
    const auto issued = Clock::now();
    auto reply = (*victim)->Call(MakePageOut(++request_id, slot, page.span()));
    if (!reply.ok() || reply->status_code() != ErrorCode::kOk) {
      std::fprintf(stderr, "victim pageout failed: %s\n", reply.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(Micros(Clock::now() - issued));
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  stop.store(true);
  for (auto& t : hog_threads) {
    t.join();
  }

  ScenarioResult result;
  result.victim_pages_per_sec = static_cast<double>(ops) / seconds;
  result.victim_p50_us = Percentile(&latencies, 0.50);
  result.victim_p99_us = Percentile(&latencies, 0.99);
  result.hog_pages_per_sec = static_cast<double>(hog_granted.load()) / seconds;
  result.hog_denied_per_sec = static_cast<double>(hog_denied.load()) / seconds;
  return result;
}

void Report(const Scenario& scenario, const ScenarioResult& row) {
  std::printf("%-16s victim %8.0f pages/s   p50 %7.1f us   p99 %7.1f us   hog %8.0f ok/s %8.0f denied/s\n",
              scenario.config.c_str(), row.victim_pages_per_sec, row.victim_p50_us,
              row.victim_p99_us, row.hog_pages_per_sec, row.hog_denied_per_sec);
  EmitBenchResult("noisy_neighbor", scenario.config, "victim_pages_per_sec",
                  row.victim_pages_per_sec, "pages/s");
  EmitBenchResult("noisy_neighbor", scenario.config, "victim_p50_latency", row.victim_p50_us,
                  "us");
  EmitBenchResult("noisy_neighbor", scenario.config, "victim_p99_latency", row.victim_p99_us,
                  "us");
  EmitBenchResult("noisy_neighbor", scenario.config, "hog_pages_per_sec", row.hog_pages_per_sec,
                  "pages/s");
}

TenantPolicyParams GenerousPolicy(uint64_t hog_rate) {
  // Quotas well past both working sets, so the enforcement path (attribution,
  // token-bucket checks) is on but only the optional hog rate cap ever denies.
  TenantPolicyParams policy;
  policy.tenants.push_back(TenantQuota{.id = kVictimTenant,
                                       .memory_quota_pages = 4096,
                                       .rate_pages_per_sec = 0,
                                       .burst_pages = 256});
  policy.tenants.push_back(TenantQuota{.id = kHogTenant,
                                       .memory_quota_pages = 4096,
                                       .rate_pages_per_sec = hog_rate,
                                       .burst_pages = 256});
  return policy;
}

TcpServerOptions QosOptions(int victim_weight) {
  TcpServerOptions options;
  options.scheduler.tenant_weights = {{kVictimTenant, victim_weight}, {kHogTenant, 1}};
  // Bound the hog's queued backlog: the victim's request can wait behind at
  // most tenant_queue_cap hog entries even before weights kick in.
  options.scheduler.tenant_queue_cap = 128;
  options.scheduler.shed_limit = 512;
  return options;
}

int Main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double measure_seconds = quick ? 0.3 : 2.0;

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.config = "victim_alone";
    s.hog = false;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.config = "qos_off";
    scenarios.push_back(std::move(s));
  }
  const auto qos_scenario = [](const char* config, int victim_weight, uint64_t hog_rate) {
    Scenario s;
    s.config = config;
    s.victim_tenant = kVictimTenant;
    s.hog_tenant = kHogTenant;
    s.options = QosOptions(victim_weight);
    s.policy = GenerousPolicy(hog_rate);
    return s;
  };
  scenarios.push_back(qos_scenario("qos_on/w1", 1, 0));
  scenarios.push_back(qos_scenario("qos_on/w4", 4, 0));
  scenarios.push_back(qos_scenario("qos_on/ratecap", 4, /*hog_rate=*/1000));

  ScenarioResult alone;
  ScenarioResult off;
  ScenarioResult best;
  for (const auto& scenario : scenarios) {
    const ScenarioResult row = RunScenario(scenario, measure_seconds);
    Report(scenario, row);
    if (scenario.config == "victim_alone") {
      alone = row;
    } else if (scenario.config == "qos_off") {
      off = row;
    } else if (scenario.config == "qos_on/w4") {
      best = row;
    }
  }
  if (alone.victim_p99_us > 0) {
    std::printf("victim p99 inflation: qos_off %.2fx   qos_on/w4 %.2fx\n",
                off.victim_p99_us / alone.victim_p99_us,
                best.victim_p99_us / alone.victim_p99_us);
  }
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
