#include "src/core/repair.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace rmp {

namespace {
// Repair/drain progress in the process-wide registry, mirroring RepairStats
// so a DumpMetrics() snapshot shows redundancy repair next to health and
// transport counters.
struct RepairMetrics {
  Counter& repairs_started;
  Counter& repairs_completed;
  Counter& pages_resilvered;
  Counter& drains_started;
  Counter& drains_completed;
  Counter& pages_migrated;
  Counter& rejoins;
  Counter& rebalances_started;
  Counter& rebalances_completed;
  Counter& pages_rebalanced;
  Counter& throttle_time_ns;
};

RepairMetrics& Metrics() {
  static RepairMetrics* metrics = new RepairMetrics{
      *MetricsRegistry::Global().GetCounter("repair.repairs_started"),
      *MetricsRegistry::Global().GetCounter("repair.repairs_completed"),
      *MetricsRegistry::Global().GetCounter("repair.pages_resilvered"),
      *MetricsRegistry::Global().GetCounter("repair.drains_started"),
      *MetricsRegistry::Global().GetCounter("repair.drains_completed"),
      *MetricsRegistry::Global().GetCounter("repair.pages_migrated"),
      *MetricsRegistry::Global().GetCounter("repair.rejoins"),
      *MetricsRegistry::Global().GetCounter("repair.rebalances_started"),
      *MetricsRegistry::Global().GetCounter("repair.rebalances_completed"),
      *MetricsRegistry::Global().GetCounter("repair.pages_rebalanced"),
      *MetricsRegistry::Global().GetCounter("repair.throttle_time_ns"),
  };
  return *metrics;
}
}  // namespace

RepairCoordinator::RepairCoordinator(RemotePagerBase* pager, HealthMonitor* monitor,
                                     const RepairParams& params)
    : pager_(pager),
      monitor_(monitor),
      params_(params),
      bucket_(params.repair_pages_per_sec, params.repair_burst_pages),
      rebalance_bucket_(params.rebalance_pages_per_sec, params.rebalance_burst_pages),
      repair_pending_(pager->cluster().size(), 0),
      drain_pending_(pager->cluster().size(), 0),
      rejoin_deferred_(pager->cluster().size(), 0),
      drained_(pager->cluster().size(), 0) {}

void RepairCoordinator::Absorb(const std::vector<HealthEvent>& events) {
  for (const HealthEvent& event : events) {
    const size_t peer = event.peer;
    if (event.from == event.to) {
      // Overload advice on a healthy peer (§2.1).
      if (event.overloaded) {
        if (!drain_pending_[peer]) {
          drain_pending_[peer] = 1;
          ++stats_.drains_started;
          Metrics().drains_started.Increment();
          Journal(EventKind::kMigrate, "drain armed for peer " + std::to_string(peer));
        }
      } else if (drained_[peer] && !drain_pending_[peer]) {
        // Load dropped after a completed drain: lift the stop the drain
        // placed so the server can take pages again.
        pager_->cluster().peer(peer).set_stopped(false);
        drained_[peer] = 0;
      }
      continue;
    }
    if (event.to == PeerHealth::kDead) {
      drain_pending_[peer] = 0;  // Draining a dead server is moot.
      rejoin_deferred_[peer] = 0;
      if (!repair_pending_[peer]) {
        repair_pending_[peer] = 1;
        ++stats_.repairs_started;
        Metrics().repairs_started.Increment();
        Journal(EventKind::kRepair, "repair armed for dead peer " + std::to_string(peer));
      }
      continue;
    }
    if (event.to == PeerHealth::kRejoining) {
      if (event.rebooted) {
        // The store came back empty: redundancy must be whole again before
        // placements can land there, so the rejoin waits on the repair.
        if (!repair_pending_[peer]) {
          repair_pending_[peer] = 1;
          ++stats_.repairs_started;
          Metrics().repairs_started.Increment();
          Journal(EventKind::kRepair,
                  "repair armed for rebooted peer " + std::to_string(peer));
        }
        rejoin_deferred_[peer] = 1;
      } else {
        // Healed partition: the pages survived, so re-admission also moots
        // whatever part of the crash repair has not run yet — the entries
        // still mapped to this peer are valid again.
        if (repair_pending_[peer]) {
          repair_pending_[peer] = 0;
          ++stats_.repairs_completed;
          Metrics().repairs_completed.Increment();
        }
        Readmit(peer);
      }
      continue;
    }
  }
}

void RepairCoordinator::Readmit(size_t peer) {
  // Reset is the single full-revival path: the old slot pool died with the
  // server's previous life (or was dropped by the repair), ADVISE_STOP state
  // is stale, and fresh extents are granted on demand.
  pager_->cluster().peer(peer).Reset();
  drained_[peer] = 0;
  monitor_->MarkReadmitted(peer);
  ++stats_.rejoins;
  Metrics().rejoins.Increment();
  Journal(EventKind::kMembership, "re-admitted peer " + std::to_string(peer));
  RMP_LOG(kInfo) << "repair: re-admitted peer " << peer;
}

Status RepairCoordinator::StepRepair(size_t peer, TimeNs* now, bool* progressed) {
  const uint64_t grant = bucket_.TakeUpTo(params_.repair_burst_pages, *now);
  if (grant == 0) {
    return OkStatus();  // Bucket dry; RunToQuiescence advances the clock.
  }
  auto done = pager_->RepairStep(peer, grant, now);
  if (!done.ok()) {
    bucket_.Refund(grant);
    return done.status();
  }
  if (*done < grant) {
    bucket_.Refund(grant - *done);
  }
  if (*done == 0) {
    repair_pending_[peer] = 0;
    ++stats_.repairs_completed;
    Metrics().repairs_completed.Increment();
    Journal(EventKind::kRepair, "repair completed for peer " + std::to_string(peer));
    *progressed = true;
    if (rejoin_deferred_[peer]) {
      rejoin_deferred_[peer] = 0;
      Readmit(peer);
    }
    if (pager_->has_cluster_map()) {
      // Crash reconstruction places pages wherever capacity allowed, not
      // where the map wants them — walk them home now that redundancy is
      // whole (crash-during-rebalance recovery, DESIGN.md §16).
      NoteMapChange();
    }
    return OkStatus();
  }
  stats_.pages_resilvered += static_cast<int64_t>(*done);
  Metrics().pages_resilvered.Increment(static_cast<int64_t>(*done));
  Journal(EventKind::kRepair, "resilvered " + std::to_string(*done) + " pages for peer " +
                                  std::to_string(peer));
  *progressed = true;
  return OkStatus();
}

Status RepairCoordinator::StepDrain(size_t peer, TimeNs* now, bool* progressed) {
  const uint64_t grant = bucket_.TakeUpTo(params_.repair_burst_pages, *now);
  if (grant == 0) {
    return OkStatus();
  }
  auto done = pager_->MigrateStep(peer, grant, now);
  if (!done.ok()) {
    bucket_.Refund(grant);
    return done.status();
  }
  if (*done < grant) {
    bucket_.Refund(grant - *done);
  }
  if (*done == 0) {
    drain_pending_[peer] = 0;
    ++stats_.drains_completed;
    Metrics().drains_completed.Increment();
    Journal(EventKind::kMigrate, "drain completed for peer " + std::to_string(peer));
    *progressed = true;
    return OkStatus();
  }
  drained_[peer] = 1;
  stats_.pages_migrated += static_cast<int64_t>(*done);
  Metrics().pages_migrated.Increment(static_cast<int64_t>(*done));
  Journal(EventKind::kMigrate, "drained " + std::to_string(*done) + " pages off peer " +
                                   std::to_string(peer));
  *progressed = true;
  return OkStatus();
}

Status RepairCoordinator::StepRebalance(TimeNs* now, bool* progressed) {
  const uint64_t grant = rebalance_bucket_.TakeUpTo(params_.rebalance_burst_pages, *now);
  if (grant == 0) {
    return OkStatus();  // Bucket dry; RunToQuiescence advances the clock.
  }
  auto done = pager_->RebalanceStep(grant, now);
  if (!done.ok()) {
    rebalance_bucket_.Refund(grant);
    return done.status();
  }
  if (*done < grant) {
    rebalance_bucket_.Refund(grant - *done);
  }
  if (*done == 0) {
    rebalance_pending_ = false;
    ++stats_.rebalances_completed;
    Metrics().rebalances_completed.Increment();
    Journal(EventKind::kRebalance, "rebalance converged to the map");
    *progressed = true;
    return OkStatus();
  }
  stats_.pages_rebalanced += static_cast<int64_t>(*done);
  Metrics().pages_rebalanced.Increment(static_cast<int64_t>(*done));
  Journal(EventKind::kRebalance, "moved " + std::to_string(*done) + " pages toward the map");
  *progressed = true;
  return OkStatus();
}

void RepairCoordinator::EnsurePeerCapacity() {
  const size_t n = pager_->cluster().size();
  if (repair_pending_.size() < n) {
    repair_pending_.resize(n, 0);
    drain_pending_.resize(n, 0);
    rejoin_deferred_.resize(n, 0);
    drained_.resize(n, 0);
  }
}

void RepairCoordinator::NoteMapChange() {
  EnsurePeerCapacity();
  if (!rebalance_pending_) {
    rebalance_pending_ = true;
    ++stats_.rebalances_started;
    Metrics().rebalances_started.Increment();
    Journal(EventKind::kRebalance, "rebalance armed (map changed)");
  }
}

Result<TimeNs> RepairCoordinator::Pump(TimeNs now) {
  EnsurePeerCapacity();
  std::vector<HealthEvent> events;
  monitor_->Tick(now, &events);
  Absorb(events);
  bool progressed = false;
  for (size_t peer = 0; peer < repair_pending_.size(); ++peer) {
    if (repair_pending_[peer]) {
      RMP_RETURN_IF_ERROR(StepRepair(peer, &now, &progressed));
    }
  }
  for (size_t peer = 0; peer < drain_pending_.size(); ++peer) {
    if (drain_pending_[peer]) {
      RMP_RETURN_IF_ERROR(StepDrain(peer, &now, &progressed));
    }
  }
  if (rebalance_pending_) {
    bool any_crash_repair = false;
    for (size_t peer = 0; peer < repair_pending_.size(); ++peer) {
      any_crash_repair = any_crash_repair || repair_pending_[peer] != 0;
    }
    // Redundancy repair outranks placement hygiene: while a crash is being
    // rebuilt the rebalance job waits, then sweeps whatever the rebuild
    // placed off-map.
    if (!any_crash_repair) {
      RMP_RETURN_IF_ERROR(StepRebalance(&now, &progressed));
    }
  }
  return now;
}

Result<TimeNs> RepairCoordinator::RunToQuiescence(TimeNs now) {
  while (!idle()) {
    const RepairStats before = stats_;
    auto after = Pump(now);
    if (!after.ok()) {
      return after.status();
    }
    now = *after;
    const bool progressed = stats_.repairs_completed != before.repairs_completed ||
                            stats_.drains_completed != before.drains_completed ||
                            stats_.pages_resilvered != before.pages_resilvered ||
                            stats_.pages_migrated != before.pages_migrated ||
                            stats_.rejoins != before.rejoins ||
                            stats_.rebalances_completed != before.rebalances_completed ||
                            stats_.pages_rebalanced != before.pages_rebalanced;
    if (!progressed && !idle()) {
      // Wait for whichever *runnable* pending job's bucket refills first. A
      // rebalance gated behind a crash repair is pending but not runnable,
      // so its (possibly full) bucket must not short-circuit the wait.
      bool repair_or_drain = false;
      bool any_crash_repair = false;
      for (size_t peer = 0; peer < repair_pending_.size(); ++peer) {
        repair_or_drain = repair_or_drain || repair_pending_[peer] || drain_pending_[peer];
        any_crash_repair = any_crash_repair || repair_pending_[peer] != 0;
      }
      TimeNs next = 0;
      if (repair_or_drain) {
        next = bucket_.NextAvailable(now);
      }
      if (rebalance_pending_ && !any_crash_repair) {
        const TimeNs rb = rebalance_bucket_.NextAvailable(now);
        next = repair_or_drain ? std::min(next, rb) : rb;
      }
      if (next <= now) {
        return InternalError("repair made no progress with tokens available");
      }
      stats_.throttle_time += next - now;
      Metrics().throttle_time_ns.Increment(next - now);
      now = next;
    }
  }
  return now;
}

bool RepairCoordinator::idle() const {
  if (rebalance_pending_) {
    return false;
  }
  for (size_t peer = 0; peer < repair_pending_.size(); ++peer) {
    if (repair_pending_[peer] || drain_pending_[peer]) {
      return false;
    }
  }
  return true;
}

}  // namespace rmp
