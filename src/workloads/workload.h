// Application workloads from the paper's evaluation (§4): GAUSS, QSORT, FFT,
// MVEC, FILTER and CC, reproduced as page-granularity access-pattern
// generators.
//
// Each generator preserves the structure that determines paging behaviour —
// working-set size, read/write mix, pass ordering and locality — rather than
// doing the arithmetic. Compute time is *interleaved* with the accesses (a
// uniform per-access cost summing to the paper's measured user time), which
// is what lets pageout write-behind overlap computation exactly as it did on
// the real machine.
//
// Sweep direction matters: well-behaved out-of-core programs revisit data in
// a zigzag (the next pass starts where the previous one ended), which keeps
// LRU faults proportional to the memory deficit instead of thrashing the
// whole array per pass. The paper's measured fault counts (FFT at 24 MB:
// 2718 pageouts, 2055 pageins — ~2.7x and ~2.0x the 768-page deficit) are
// only reachable with such locality, so the generators sweep zigzag.

#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"
#include "src/vm/paged_vm.h"

namespace rmp {

struct WorkloadInfo {
  std::string name;
  uint64_t data_bytes = 0;      // Address-space footprint.
  double user_seconds = 0.0;    // Pure compute (utime).
  double system_seconds = 0.0;  // Kernel time excluding paging (systime).
  double init_seconds = 0.0;    // Load/startup (inittime).
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual WorkloadInfo info() const = 0;

  // Total Touch() calls Run() will issue (exact; used to spread compute).
  virtual int64_t access_count() const = 0;

  // Replays the access pattern through `vm`, advancing *now by interleaved
  // compute slices and by fault service time.
  virtual Status Run(PagedVm* vm, TimeNs* now) const = 0;
};

// --- The paper's six applications, with its input sizes as defaults -------

// Matrix-vector multiply, 2100x2100 doubles, generated-and-consumed in one
// fused pass: a pure write stream. "MVEC performs many pageouts and almost
// no pageins" (§4.1) — the workload where write-behind matters most and
// MIRRORING loses to the disk.
std::unique_ptr<Workload> MakeMvec(uint64_t n = 2100);

// Gaussian elimination, 1700x1700 doubles: an initialization write pass,
// then elimination rounds that keep a hot pivot prefix resident and stream
// the tail in zigzag read+write sweeps.
std::unique_ptr<Workload> MakeGauss(uint64_t n = 1700);

// Quicksort of 3000 records (8 KB each, 24 MB): recursive partition passes;
// segments larger than memory stream read+write, recursion then works
// depth-first with natural locality.
std::unique_ptr<Workload> MakeQsort(uint64_t records = 3000, uint64_t record_bytes = kPageSize);

// FFT over `input_mb` megabytes (paper sweeps 17..24 MB): an initialization
// write pass plus out-of-core butterfly passes in zigzag; levels that fit in
// memory run blocked and fault-free. Compute scales ~ n log n.
std::unique_ptr<Workload> MakeFft(double input_mb = 24.0);

// Two-pass separable image filter on a 12 MB image with a 12 MB output:
// horizontal pass streams input to output; vertical pass re-reads the
// output in column panels and rewrites the result.
std::unique_ptr<Workload> MakeFilter(uint64_t image_mb = 12);

// Kernel build (cc of DEC OSF/1 V3.2 with the paper's driver): compile-bound
// with bursty reads of sources/headers and writes of objects inside a
// sliding window; headers are re-read randomly — seeks that hurt the disk.
std::unique_ptr<Workload> MakeCc(uint64_t tree_mb = 21);

// All six with the paper's Fig. 2 inputs, in the paper's plot order.
std::vector<std::unique_ptr<Workload>> MakePaperWorkloads();

// Lookup by name ("MVEC", "GAUSS", "QSORT", "FFT", "FILTER", "CC").
Result<std::unique_ptr<Workload>> MakeWorkloadByName(const std::string& name);

// Fills `page` with content of tunable compressibility (the uszram-style
// compr_min/compr_max knobs): a per-page percentage drawn seeded-uniform
// from [compr_min, compr_max] is trivially compressible (a zero run), the
// rest is incompressible random bytes. compr 0 = fully random, 100 = all
// zeroes. Deterministic in `seed`, so equal seeds give byte-identical pages
// (which is also how benches provoke dedup hits). Percentages clamp to
// [0, 100]; a reversed range is swapped.
void FillCompressiblePage(std::span<uint8_t> page, uint64_t seed, unsigned compr_min,
                          unsigned compr_max);

}  // namespace rmp

#endif  // SRC_WORKLOADS_WORKLOAD_H_
