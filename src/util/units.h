// Time and size units used throughout the project.
//
// Simulated time is kept as integer nanoseconds (TimeNs / DurationNs) so that
// event ordering is exact and runs are bit-reproducible; helper constructors
// convert from the units the paper quotes (ms, seconds, Mbit/s).

#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

#include <cstdint>

namespace rmp {

using TimeNs = int64_t;      // Absolute simulated time since run start.
using DurationNs = int64_t;  // Interval between two TimeNs.

inline constexpr DurationNs kNanosecond = 1;
inline constexpr DurationNs kMicrosecond = 1'000;
inline constexpr DurationNs kMillisecond = 1'000'000;
inline constexpr DurationNs kSecond = 1'000'000'000;

constexpr DurationNs Micros(double us) { return static_cast<DurationNs>(us * kMicrosecond); }
constexpr DurationNs Millis(double ms) { return static_cast<DurationNs>(ms * kMillisecond); }
constexpr DurationNs Seconds(double s) { return static_cast<DurationNs>(s * kSecond); }

constexpr double ToSeconds(DurationNs d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMillis(DurationNs d) { return static_cast<double>(d) / kMillisecond; }

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;

// The paper's DEC OSF/1 configuration pages in 8 KB units.
inline constexpr uint64_t kPageSize = 8 * kKiB;

constexpr uint64_t PagesForBytes(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// Time to push `bytes` through a link of `megabits_per_sec`, excluding any
// protocol or per-packet overhead.
constexpr DurationNs WireTime(uint64_t bytes, double megabits_per_sec) {
  const double bits = static_cast<double>(bytes) * 8.0;
  const double seconds = bits / (megabits_per_sec * 1e6);
  return static_cast<DurationNs>(seconds * kSecond);
}

}  // namespace rmp

#endif  // SRC_UTIL_UNITS_H_
