// PagedVm: the virtual-memory substrate that stands in for the DEC OSF/1
// kernel above the block device.
//
// An application owns a `virtual_pages`-page address space but only
// `physical_frames` frames of real memory (the paper's DEC Alpha had 32 MB,
// ~18 MB of it available to the application). Accesses to resident pages are
// free; a miss evicts a victim (writing it to the PagingBackend if dirty —
// a *pageout*) and, if the faulting page has been paged out before, reads it
// back (a *pagein*). First-touch pages are zero-filled without device
// traffic, exactly like a real VM.
//
// Two access layers:
//   Touch(vpage, write)    — page-granular, used by the workload generators.
//   Read/Write(addr, span) — byte-granular over real frame contents, used by
//                            the data-mode kernels and integrity tests.

#ifndef SRC_VM_PAGED_VM_H_
#define SRC_VM_PAGED_VM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/paging_backend.h"
#include "src/util/bytes.h"
#include "src/vm/replacement.h"

namespace rmp {

struct VmParams {
  uint64_t virtual_pages = 1024;
  uint32_t physical_frames = 256;
  ReplacementKind replacement = ReplacementKind::kLru;
};

struct VmStats {
  int64_t accesses = 0;
  int64_t hits = 0;
  int64_t faults = 0;       // Misses (zero-fill + pagein).
  int64_t zero_fills = 0;   // First-touch materializations.
  int64_t pageins = 0;      // Faults served by the backend.
  int64_t pageouts = 0;     // Dirty evictions written to the backend.
  int64_t clean_evictions = 0;
};

class PagedVm {
 public:
  // `backend` must outlive the VM.
  PagedVm(const VmParams& params, PagingBackend* backend);

  // Touches one virtual page; on a miss, runs the fault path against the
  // backend starting at *now and advances *now to the completion time.
  Status Touch(TimeNs* now, uint64_t vpage, bool write);

  // Byte-granular access across page boundaries (data mode).
  Status Read(TimeNs* now, uint64_t addr, std::span<uint8_t> out);
  Status Write(TimeNs* now, uint64_t addr, std::span<const uint8_t> in);

  // Flushes every dirty resident page to the backend (app exit / checkpoint).
  Status FlushDirty(TimeNs* now);

  // Drops every resident page WITHOUT writeback (dirty state is lost unless
  // flushed first). Resets residency, not the backend. For test scenarios.
  void InvalidateAll();

  // Observer invoked on every Touch (before the fault path); used by the
  // trace recorder. Pass nullptr to detach.
  using AccessObserver = std::function<void(uint64_t vpage, bool write)>;
  void SetAccessObserver(AccessObserver observer) { observer_ = std::move(observer); }

  const VmStats& stats() const { return stats_; }
  uint64_t resident_pages() const { return frame_of_.size(); }
  uint32_t physical_frames() const { return params_.physical_frames; }
  uint64_t virtual_pages() const { return params_.virtual_pages; }
  bool IsResident(uint64_t vpage) const { return frame_of_.count(vpage) > 0; }
  bool IsDirty(uint64_t vpage) const;

 private:
  struct Frame {
    PageBuffer data;
    uint64_t vpage = 0;
    bool dirty = false;
    bool live = false;
  };

  // Makes `vpage` resident; returns its frame index.
  Result<uint32_t> Fault(TimeNs* now, uint64_t vpage);

  Result<uint32_t> TakeFreeFrame(TimeNs* now);

  VmParams params_;
  PagingBackend* backend_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::unordered_map<uint64_t, uint32_t> frame_of_;   // vpage -> frame.
  std::vector<bool> ever_paged_out_;                  // vpage -> backend holds it.
  AccessObserver observer_;
  VmStats stats_;
};

}  // namespace rmp

#endif  // SRC_VM_PAGED_VM_H_
