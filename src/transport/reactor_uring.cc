// io_uring poll backend for the reactor (DESIGN.md §13).
//
// Compiled only under -DRMP_IO_URING=ON. No liburing: the ring is set up
// with raw io_uring_setup/io_uring_enter syscalls and the mmapped SQ/CQ
// rings, so the build needs nothing beyond <linux/io_uring.h>. The backend
// models epoll semantics on top of oneshot IORING_OP_POLL_ADD: each
// registered fd keeps one poll armed; when a completion fires, the fd is
// re-armed on the next Wait. That behaves level-triggered — a socket that
// still has unread bytes completes the fresh poll immediately.
//
// MakeIoUringBackend() probes at runtime: on kernels (or seccomp policies)
// that refuse io_uring_setup it returns nullptr and the event loop falls
// back to epoll, so an RMP_IO_URING build runs anywhere.

#ifdef RMP_IO_URING

#if !defined(__linux__) || !__has_include(<linux/io_uring.h>)
#error "RMP_IO_URING requires linux with <linux/io_uring.h>"
#endif

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/transport/reactor.h"

namespace rmp {
namespace {

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif

int IoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int IoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, nullptr, 0));
}

// user_data tags: low 32 bits carry the fd, the top bit marks a POLL_REMOVE
// completion (which we only need to discard).
constexpr uint64_t kRemoveTag = 1ull << 63;

uint32_t LoadAcquire(const uint32_t* p) {
  return std::atomic_ref<const uint32_t>(*p).load(std::memory_order_acquire);
}

void StoreRelease(uint32_t* p, uint32_t v) {
  std::atomic_ref<uint32_t>(*p).store(v, std::memory_order_release);
}

class IoUringBackend final : public PollBackend {
 public:
  static std::unique_ptr<PollBackend> TryCreate() {
    io_uring_params params{};
    const int ring_fd = IoUringSetup(kEntries, &params);
    if (ring_fd < 0) {
      return nullptr;  // Old kernel or seccomp: caller falls back to epoll.
    }
    auto backend = std::unique_ptr<IoUringBackend>(new IoUringBackend(ring_fd, params));
    if (!backend->MapRings()) {
      return nullptr;
    }
    return backend;
  }

  ~IoUringBackend() override {
    if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (cq_ring_ != MAP_FAILED && cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED && sqes_ != nullptr) {
      ::munmap(sqes_, sqe_bytes_);
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
    }
  }

  const char* name() const override { return "io_uring"; }

  Status Add(int fd, uint32_t events) override {
    FdState& state = fds_[fd];
    state.mask = events & ~static_cast<uint32_t>(EPOLLET);
    if (!state.rearm_pending && state.inflight == 0) {
      state.rearm_pending = true;
      rearm_queue_.push_back(fd);
    }
    return OkStatus();
  }

  Status Mod(int fd, uint32_t events) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return Add(fd, events);
    }
    it->second.mask = events & ~static_cast<uint32_t>(EPOLLET);
    if (it->second.inflight > 0) {
      // Cancel the armed poll (its CQE comes back ECANCELED); the new mask
      // arms once the cancellation drains.
      PushRemove(fd);
    } else if (!it->second.rearm_pending) {
      it->second.rearm_pending = true;
      rearm_queue_.push_back(fd);
    }
    return OkStatus();
  }

  void Del(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return;
    }
    it->second.mask = 0;
    it->second.rearm_pending = false;
    if (it->second.inflight > 0) {
      PushRemove(fd);  // Entry is erased when the cancellation CQE lands.
    } else {
      fds_.erase(it);
    }
  }

  int Wait(PollEvent* out, int max) override {
    // Arm every fd whose previous oneshot completed (or that was just
    // added), flushing the SQ in batches if the queue outgrows it.
    while (!rearm_queue_.empty()) {
      const int fd = rearm_queue_.back();
      auto it = fds_.find(fd);
      if (it == fds_.end() || !it->second.rearm_pending || it->second.inflight > 0 ||
          it->second.mask == 0) {
        rearm_queue_.pop_back();
        if (it != fds_.end()) {
          it->second.rearm_pending = false;
        }
        continue;
      }
      io_uring_sqe* sqe = NextSqe();
      if (sqe == nullptr) {
        if (!Flush()) {
          return -1;
        }
        continue;
      }
      rearm_queue_.pop_back();
      it->second.rearm_pending = false;
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_POLL_ADD;
      sqe->fd = fd;
      sqe->poll_events = static_cast<uint16_t>(it->second.mask & 0xffff);
      sqe->user_data = static_cast<uint64_t>(static_cast<uint32_t>(fd));
      it->second.inflight += 1;
      pending_sqes_ += 1;
    }

    int produced = 0;
    while (produced == 0) {
      const int rc = IoUringEnter(ring_fd_, pending_sqes_, /*min_complete=*/1,
                                  IORING_ENTER_GETEVENTS);
      if (rc < 0) {
        if (errno == EINTR) {
          return 0;
        }
        return -1;
      }
      pending_sqes_ = 0;
      produced = DrainCqes(out, max);
      // produced == 0 when every CQE was a cancellation echo; in that case
      // re-arm anything freed up and block again.
      if (produced == 0 && !rearm_queue_.empty()) {
        return 0;  // Let the caller re-enter Wait (which re-arms first).
      }
    }
    return produced;
  }

 private:
  struct FdState {
    uint32_t mask = 0;
    int inflight = 0;
    bool rearm_pending = false;
  };

  IoUringBackend(int ring_fd, const io_uring_params& params)
      : ring_fd_(ring_fd), params_(params) {}

  bool MapRings() {
    sq_ring_bytes_ = params_.sq_off.array + params_.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ = params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params_.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                      ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      return false;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        return false;
      }
    }
    sqe_bytes_ = params_.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                   ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) {
      return false;
    }
    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<uint32_t*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);
    return true;
  }

  // Next free SQE, or nullptr when the SQ is full (flush first).
  io_uring_sqe* NextSqe() {
    const uint32_t head = LoadAcquire(sq_head_);
    const uint32_t tail = *sq_tail_;
    if (tail - head >= params_.sq_entries) {
      return nullptr;
    }
    const uint32_t index = tail & sq_mask_;
    sq_array_[index] = index;
    StoreRelease(sq_tail_, tail + 1);
    return &static_cast<io_uring_sqe*>(sqes_)[index];
  }

  bool Flush() {
    while (pending_sqes_ > 0) {
      const int rc = IoUringEnter(ring_fd_, pending_sqes_, 0, 0);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      pending_sqes_ -= rc;
    }
    return true;
  }

  void PushRemove(int fd) {
    io_uring_sqe* sqe = NextSqe();
    if (sqe == nullptr) {
      if (!Flush()) {
        return;
      }
      sqe = NextSqe();
      if (sqe == nullptr) {
        return;
      }
    }
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->addr = static_cast<uint64_t>(static_cast<uint32_t>(fd));
    sqe->user_data = kRemoveTag | static_cast<uint64_t>(static_cast<uint32_t>(fd));
    pending_sqes_ += 1;
  }

  int DrainCqes(PollEvent* out, int max) {
    int produced = 0;
    uint32_t head = *cq_head_;
    const uint32_t tail = LoadAcquire(cq_tail_);
    while (head != tail && produced < max) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      head += 1;
      if ((cqe.user_data & kRemoveTag) != 0) {
        continue;  // POLL_REMOVE echo; the cancelled poll's own CQE follows.
      }
      const int fd = static_cast<int>(cqe.user_data & 0xffffffffu);
      auto it = fds_.find(fd);
      if (it != fds_.end() && it->second.inflight > 0) {
        it->second.inflight -= 1;
      }
      if (it != fds_.end() && it->second.mask == 0 && it->second.inflight == 0) {
        fds_.erase(it);  // Deferred Del.
        it = fds_.end();
      }
      if (cqe.res == -ECANCELED) {
        // Cancelled by Mod/Del; re-arm under the (possibly new) mask.
        if (it != fds_.end() && !it->second.rearm_pending && it->second.mask != 0) {
          it->second.rearm_pending = true;
          rearm_queue_.push_back(fd);
        }
        continue;
      }
      if (it == fds_.end()) {
        continue;  // Completion for an fd deregistered meanwhile.
      }
      out[produced].fd = fd;
      out[produced].events = cqe.res < 0 ? static_cast<uint32_t>(EPOLLERR)
                                         : static_cast<uint32_t>(cqe.res) & 0xffffu;
      produced += 1;
      // Oneshot fired: queue the re-arm for the next Wait, after the caller
      // has drained the socket.
      if (!it->second.rearm_pending) {
        it->second.rearm_pending = true;
        rearm_queue_.push_back(fd);
      }
    }
    StoreRelease(cq_head_, head);
    return produced;
  }

  static constexpr unsigned kEntries = 1024;

  const int ring_fd_;
  io_uring_params params_;

  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqe_bytes_ = 0;

  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  unsigned pending_sqes_ = 0;
  std::unordered_map<int, FdState> fds_;
  std::vector<int> rearm_queue_;
};

}  // namespace

std::unique_ptr<PollBackend> MakeIoUringBackend() { return IoUringBackend::TryCreate(); }

}  // namespace rmp

#endif  // RMP_IO_URING
