// RepairCoordinator: the reaction half of the self-healing layer
// (DESIGN.md §11).
//
// The HealthMonitor observes; this coordinator acts. On DEAD it drives the
// policy's RepairStep() until redundancy is fully restored (mirror resilver,
// parity-group reconstruction, write-through re-upload); on ADVISE_STOP it
// drives MigrateStep() until the overloaded server is drained (§2.1: pages
// move to other servers or the local disk); on REJOINING it re-admits the
// peer through ServerPeer::Reset() — immediately when a healed partition
// brought the pages back, or after the rebuild finishes when the server
// rebooted empty (re-admitting earlier would route reads at an empty store).
//
// All background traffic is paced by a deterministic token bucket measured
// in pages, so a resilver never starves foreground paging: each Pump() moves
// at most one bucket-burst of repair pages, and when the bucket runs dry
// RunToQuiescence() advances simulated time instead of hammering the wire.
// Integer arithmetic throughout keeps runs bit-reproducible.

#ifndef SRC_CORE_REPAIR_H_
#define SRC_CORE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "src/core/health.h"
#include "src/core/remote_pager.h"
#include "src/util/token_bucket.h"

namespace rmp {

struct RepairParams {
  // Token-bucket rate for repair + migration traffic, in pages per second
  // of simulated time. 0 = unpaced (tests that only care about the end
  // state; production-shaped configs should always pace).
  uint64_t repair_pages_per_sec = 0;
  // Bucket depth; also the largest chunk a single Pump() hands a policy.
  uint64_t repair_burst_pages = 64;
  // Separate bucket for elastic-membership rebalance traffic
  // (`cluster.rebalance_pages_per_sec`, DESIGN.md §16), so a scale-out fill
  // and a crash resilver do not contend for the same tokens. 0 = unpaced.
  uint64_t rebalance_pages_per_sec = 0;
  uint64_t rebalance_burst_pages = 64;
};

struct RepairStats {
  int64_t repairs_started = 0;
  int64_t repairs_completed = 0;
  int64_t pages_resilvered = 0;  // Repair traffic (RepairStep pages).
  int64_t drains_started = 0;
  int64_t drains_completed = 0;
  int64_t pages_migrated = 0;  // Drain traffic (MigrateStep pages).
  int64_t rejoins = 0;         // Peers re-admitted via Reset().
  int64_t rebalances_started = 0;    // Map changes that armed the job.
  int64_t rebalances_completed = 0;  // Placement converged to the map.
  int64_t pages_rebalanced = 0;      // Rebalance traffic (RebalanceStep pages).
  DurationNs throttle_time = 0;  // Simulated time repair waited for tokens.
};

class RepairCoordinator {
 public:
  // `pager` and `monitor` must outlive the coordinator and share the same
  // cluster. Not thread-safe: drive it from the simulation loop.
  RepairCoordinator(RemotePagerBase* pager, HealthMonitor* monitor,
                    const RepairParams& params = RepairParams());

  // One self-healing round at simulated time `now`: ticks the health
  // monitor, absorbs its events into pending jobs, then advances every
  // pending repair and drain job by at most one token-bucket grant.
  // Returns the advanced clock. Errors from a policy step propagate; the
  // job stays pending so a later Pump can retry.
  Result<TimeNs> Pump(TimeNs now);

  // Pumps until no repair or drain work remains, advancing `now` across
  // token-bucket refill waits (counted in stats().throttle_time).
  Result<TimeNs> RunToQuiescence(TimeNs now);

  // Arms the paced rebalance job (DESIGN.md §16). Call after every cluster
  // map adoption — join, decommission, or a refresh that brought a newer
  // epoch. Idempotent while a rebalance is already pending. Also grows the
  // per-peer job vectors when the cluster gained members.
  void NoteMapChange();

  // Flight recorder (DESIGN.md §17): job arm/step/complete decisions append
  // kRepair/kMigrate/kRebalance events. Not owned; null disables the hook.
  void AttachEvents(EventJournal* journal) { events_journal_ = journal; }

  bool idle() const;
  bool repair_pending(size_t peer) const { return repair_pending_[peer]; }
  bool drain_pending(size_t peer) const { return drain_pending_[peer]; }
  bool rebalance_pending() const { return rebalance_pending_; }
  const RepairStats& stats() const { return stats_; }

 private:
  void Absorb(const std::vector<HealthEvent>& events);
  void Readmit(size_t peer);
  // Grows the per-peer vectors after elastic scale-out appended peers.
  void EnsurePeerCapacity();
  // Runs one granted chunk of the job; sets *progressed when pages moved or
  // a job completed.
  Status StepRepair(size_t peer, TimeNs* now, bool* progressed);
  Status StepDrain(size_t peer, TimeNs* now, bool* progressed);
  Status StepRebalance(TimeNs* now, bool* progressed);

  void Journal(EventKind kind, const std::string& detail) {
    if (events_journal_ != nullptr) {
      events_journal_->Append(kind, "repair", detail);
    }
  }

  RemotePagerBase* pager_;
  HealthMonitor* monitor_;
  RepairParams params_;
  EventJournal* events_journal_ = nullptr;
  TokenBucket bucket_;
  TokenBucket rebalance_bucket_;

  std::vector<uint8_t> repair_pending_;
  std::vector<uint8_t> drain_pending_;
  std::vector<uint8_t> rejoin_deferred_;  // Reboot rejoin awaiting repair end.
  std::vector<uint8_t> drained_;          // We stopped it for a drain.
  bool rebalance_pending_ = false;        // Placement may disagree with the map.
  RepairStats stats_;
};

}  // namespace rmp

#endif  // SRC_CORE_REPAIR_H_
