#include "src/core/cluster.h"

#include <gtest/gtest.h>

#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

// A peer wired to a real in-process MemoryServer.
struct PeerFixture {
  explicit PeerFixture(uint64_t capacity) {
    MemoryServerParams params;
    params.capacity_pages = capacity;
    server = std::make_unique<MemoryServer>(params);
    transport = new InProcTransport(server.get());
    peer = std::make_unique<ServerPeer>("peer", std::unique_ptr<Transport>(transport));
  }
  std::unique_ptr<MemoryServer> server;
  InProcTransport* transport;  // Owned by peer.
  std::unique_ptr<ServerPeer> peer;
};

TEST(ServerPeerTest, AllocExtentFillsPool) {
  PeerFixture f(128);
  ASSERT_TRUE(f.peer->AllocExtent(16).ok());
  EXPECT_EQ(f.peer->pooled_slots(), 16u);
  auto slot = f.peer->TakeSlot();
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(f.peer->pooled_slots(), 15u);
}

TEST(ServerPeerTest, EmptyPoolIsNotFound) {
  PeerFixture f(128);
  EXPECT_EQ(f.peer->TakeSlot().status().code(), ErrorCode::kNotFound);
}

TEST(ServerPeerTest, ReturnedSlotsReusedFirst) {
  PeerFixture f(128);
  ASSERT_TRUE(f.peer->AllocExtent(4).ok());
  auto slot = f.peer->TakeSlot();
  f.peer->ReturnSlot(*slot);
  auto again = f.peer->TakeSlot();
  EXPECT_EQ(*again, *slot);
}

TEST(ServerPeerTest, PageOutAndInRoundTrip) {
  PeerFixture f(128);
  ASSERT_TRUE(f.peer->AllocExtent(4).ok());
  auto slot = f.peer->TakeSlot();
  PageBuffer page;
  FillPattern(page.span(), 50);
  auto advise = f.peer->PageOutTo(*slot, page.span());
  ASSERT_TRUE(advise.ok());
  EXPECT_FALSE(*advise);
  PageBuffer in;
  ASSERT_TRUE(f.peer->PageInFrom(*slot, in.span()).ok());
  EXPECT_EQ(in, page);
  EXPECT_EQ(f.peer->pages_sent(), 1);
  EXPECT_EQ(f.peer->pages_fetched(), 1);
}

TEST(ServerPeerTest, AllocDenialSurfacesNoSpace) {
  PeerFixture f(4);
  EXPECT_EQ(f.peer->AllocExtent(8).code(), ErrorCode::kNoSpace);
  EXPECT_TRUE(f.peer->alive());  // Denial is not death.
}

TEST(ServerPeerTest, TransportFailureMarksDead) {
  PeerFixture f(128);
  f.transport->Disconnect();
  EXPECT_EQ(f.peer->AllocExtent(4).code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(f.peer->alive());
}

TEST(ServerPeerTest, CrashedServerReplyMarksDead) {
  PeerFixture f(128);
  ASSERT_TRUE(f.peer->AllocExtent(4).ok());
  auto slot = f.peer->TakeSlot();
  f.server->Crash();  // Transport still up; server replies UNAVAILABLE.
  PageBuffer page;
  EXPECT_EQ(f.peer->PageOutTo(*slot, page.span()).status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(f.peer->alive());
}

TEST(ServerPeerTest, QueryLoadUpdatesKnownFree) {
  PeerFixture f(100);
  auto load = f.peer->QueryLoad();
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->free_pages, 100u);
  EXPECT_EQ(f.peer->known_free_pages(), 100u);
  ASSERT_TRUE(f.peer->AllocExtent(60).ok());
  load = f.peer->QueryLoad();
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->free_pages, 40u);
}

TEST(ServerPeerTest, FreeOnReturnsCapacity) {
  PeerFixture f(16);
  ASSERT_TRUE(f.peer->AllocExtent(16).ok());
  auto slot = f.peer->TakeSlot();
  ASSERT_TRUE(f.peer->FreeOn(*slot, 1).ok());
  EXPECT_EQ(f.server->free_pages(), 1u);
}

// The single full-revival path: after a server comes back (restart or healed
// partition + repair), Reset() must discard every piece of state from the
// peer's previous life — mark_alive() alone would revive it with a poisoned
// slot pool and latched ADVISE_STOP.
TEST(ServerPeerTest, ResetDropsPoolAndStaleAdvice) {
  PeerFixture f(128);
  ASSERT_TRUE(f.peer->AllocExtent(8).ok());
  ASSERT_TRUE(f.peer->TakeSlot().ok());
  f.peer->set_stopped(true);
  f.peer->set_no_new_extents(true);
  f.peer->set_known_free_pages(77);
  f.peer->mark_dead();

  f.peer->Reset();
  EXPECT_TRUE(f.peer->alive());
  EXPECT_FALSE(f.peer->stopped());
  EXPECT_FALSE(f.peer->no_new_extents());
  EXPECT_EQ(f.peer->pooled_slots(), 0u);  // Stale extents are gone.
  EXPECT_EQ(f.peer->known_free_pages(), 0u);
  EXPECT_TRUE(f.peer->usable());
  // Fresh extents are granted on demand, exactly like a brand-new peer.
  ASSERT_TRUE(f.peer->AllocExtent(4).ok());
  EXPECT_TRUE(f.peer->TakeSlot().ok());
}

TEST(ServerPeerTest, DeltaAndXorMergeRpcs) {
  PeerFixture f(32);
  ASSERT_TRUE(f.peer->AllocExtent(4).ok());
  auto data_slot = f.peer->TakeSlot();
  auto parity_slot = f.peer->TakeSlot();
  PageBuffer v1;
  FillPattern(v1.span(), 1);
  auto delta = f.peer->DeltaPageOutTo(*data_slot, v1.span());
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, v1);  // Old content was zero.
  ASSERT_TRUE(f.peer->XorMergeOn(*parity_slot, delta->span()).ok());
  auto parity = f.server->Load(*parity_slot);
  ASSERT_TRUE(parity.ok());
  EXPECT_EQ(*parity, v1);
}

// --- Cluster selection -------------------------------------------------------

class ClusterFixture : public ::testing::Test {
 protected:
  void AddServer(uint64_t capacity) {
    MemoryServerParams params;
    params.name = "s" + std::to_string(servers_.size());
    params.capacity_pages = capacity;
    servers_.push_back(std::make_unique<MemoryServer>(params));
    auto transport = std::make_unique<InProcTransport>(servers_.back().get());
    transports_.push_back(transport.get());
    cluster_.AddPeer(params.name, std::move(transport));
  }

  Cluster cluster_;
  std::vector<std::unique_ptr<MemoryServer>> servers_;
  std::vector<InProcTransport*> transports_;
};

TEST_F(ClusterFixture, MostPromisingPicksLargestFree) {
  AddServer(10);
  AddServer(100);
  AddServer(50);
  auto best = cluster_.MostPromising(/*refresh=*/true);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 1u);
}

TEST_F(ClusterFixture, MostPromisingSkipsStoppedAndDead) {
  AddServer(100);
  AddServer(50);
  cluster_.peer(0).set_stopped(true);
  auto best = cluster_.MostPromising(true);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 1u);
  cluster_.peer(1).mark_dead();
  EXPECT_FALSE(cluster_.MostPromising(true).ok());
}

TEST_F(ClusterFixture, NextUsableRoundRobins) {
  AddServer(10);
  AddServer(10);
  AddServer(10);
  size_t cursor = 0;
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 1u);
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 2u);
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 0u);
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 1u);
}

TEST_F(ClusterFixture, NextUsableSkipsUnusable) {
  AddServer(10);
  AddServer(10);
  AddServer(10);
  cluster_.peer(1).set_stopped(true);
  size_t cursor = 0;
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 2u);
  EXPECT_EQ(*cluster_.NextUsable(&cursor), 0u);
}

TEST_F(ClusterFixture, AnyUsableReflectsState) {
  AddServer(10);
  EXPECT_TRUE(cluster_.AnyUsable());
  cluster_.peer(0).set_stopped(true);
  EXPECT_FALSE(cluster_.AnyUsable());
  cluster_.peer(0).set_stopped(false);
  cluster_.peer(0).mark_dead();
  EXPECT_FALSE(cluster_.AnyUsable());
}

TEST_F(ClusterFixture, RefreshDetectsAdviseStop) {
  AddServer(10);
  // Fill the server past its advise threshold directly.
  ASSERT_TRUE(servers_[0]->Allocate(10).ok());
  auto best = cluster_.MostPromising(/*refresh=*/true);
  // The server advised stop and the client holds no pooled slots for it:
  // nothing is usable. The peer is flagged no-new-extents, not dead.
  EXPECT_FALSE(best.ok());
  EXPECT_TRUE(cluster_.peer(0).no_new_extents());
  EXPECT_FALSE(cluster_.peer(0).usable());
  EXPECT_TRUE(cluster_.peer(0).alive());
}

TEST_F(ClusterFixture, AdvisedPeerWithPooledSlotsStaysUsable) {
  AddServer(10);
  ASSERT_TRUE(cluster_.peer(0).AllocExtent(4).ok());
  cluster_.peer(0).set_no_new_extents(true);
  // Already-granted slots keep the peer usable until the pool drains.
  EXPECT_TRUE(cluster_.peer(0).usable());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster_.peer(0).TakeSlot().ok());
  }
  EXPECT_FALSE(cluster_.peer(0).usable());
}

}  // namespace
}  // namespace rmp
