// Quickstart: assemble an in-process cluster (4 data servers + 1 parity
// server), page data out through the PARITY LOGGING pager, crash a server,
// and read everything back intact.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API: Testbed (or hand-built
// Cluster + policy backend), PageOut/PageIn on the PagingBackend interface,
// and the stats counters every experiment is printed from.

#include <cstdio>

#include "src/core/testbed.h"
#include "src/net/ethernet_model.h"
#include "src/util/bytes.h"

int main() {
  using namespace rmp;

  // 1. A cluster: 4 data servers + 1 parity server, 16 MB donated each,
  //    talking over in-process transports (see tcp_cluster.cpp for real
  //    sockets) with the paper's 10 Mbit/s Ethernet timing model.
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 2048;  // 16 MB per server.
  params.network = std::make_shared<EthernetModel>();
  auto testbed = Testbed::Create(params);
  if (!testbed.ok()) {
    std::fprintf(stderr, "testbed: %s\n", testbed.status().ToString().c_str());
    return 1;
  }
  PagingBackend& pager = (*testbed)->backend();

  // 2. Page out 1000 pages (8 KB each) with verifiable contents.
  std::printf("paging out 1000 pages through %s...\n", pager.Name().c_str());
  PageBuffer page;
  TimeNs now = 0;
  for (uint64_t p = 0; p < 1000; ++p) {
    FillPattern(page.span(), /*seed=*/p);
    auto done = pager.PageOut(now, p, page.span());
    if (!done.ok()) {
      std::fprintf(stderr, "pageout %llu: %s\n", (unsigned long long)p,
                   done.status().ToString().c_str());
      return 1;
    }
    now = *done;
  }
  std::printf("  %lld page transfers (%.3f per pageout: 1 + 1/4 for parity)\n",
              (long long)pager.stats().page_transfers,
              (double)pager.stats().page_transfers / 1000.0);
  std::printf("  simulated time so far: %.2f s on the 10 Mbit/s Ethernet\n", ToSeconds(now));

  // 3. A workstation crashes. All of its pages are gone...
  std::printf("crashing server 2 (loses %llu stored pages)...\n",
              (unsigned long long)(*testbed)->server(2).live_pages());
  (*testbed)->CrashServer(2);

  // 4. ...but every page reads back bit-exactly: the first pagein that hits
  //    the dead server triggers parity reconstruction transparently.
  int verified = 0;
  for (uint64_t p = 0; p < 1000; ++p) {
    auto done = pager.PageIn(now, p, page.span());
    if (!done.ok()) {
      std::fprintf(stderr, "pagein %llu: %s\n", (unsigned long long)p,
                   done.status().ToString().c_str());
      return 1;
    }
    now = *done;
    if (!CheckPattern(page.span(), p)) {
      std::fprintf(stderr, "PAGE %llu CORRUPTED\n", (unsigned long long)p);
      return 1;
    }
    ++verified;
  }
  std::printf("verified %d/1000 pages after the crash — recovery is transparent.\n", verified);
  std::printf("total simulated time: %.2f s\n", ToSeconds(now));
  return 0;
}
