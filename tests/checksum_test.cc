#include "src/util/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace rmp {
namespace {

std::span<const uint8_t> AsBytes(const std::string& s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xcbf43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t oneshot = Crc32(AsBytes(data));
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Init();
    crc = Crc32Update(crc, AsBytes(data.substr(0, split)));
    crc = Crc32Update(crc, AsBytes(data.substr(split)));
    EXPECT_EQ(Crc32Finalize(crc), oneshot) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(1024, 0xa5);
  const uint32_t clean = Crc32(std::span<const uint8_t>(data));
  for (size_t byte : {0u, 511u, 1023u}) {
    data[byte] ^= 0x10;
    EXPECT_NE(Crc32(std::span<const uint8_t>(data)), clean);
    data[byte] ^= 0x10;
  }
}

TEST(Crc32Test, DetectsTransposition) {
  std::vector<uint8_t> a = {1, 2, 3, 4};
  std::vector<uint8_t> b = {1, 3, 2, 4};
  EXPECT_NE(Crc32(std::span<const uint8_t>(a)), Crc32(std::span<const uint8_t>(b)));
}

// Bit-at-a-time reference implementation; the slice-by-8 tables must agree
// with it on every input.
uint32_t ReferenceCrc(uint32_t poly, std::span<const uint8_t> data) {
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? poly : 0u);
    }
  }
  return crc ^ 0xffffffffu;
}

std::vector<uint8_t> PseudoRandomBuffer(size_t size, uint64_t seed) {
  std::vector<uint8_t> data(size);
  uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (auto& byte : data) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    byte = static_cast<uint8_t>(x);
  }
  return data;
}

TEST(Crc32Test, SliceBy8MatchesBitwiseReference) {
  // Odd lengths exercise the byte tail around the 8-byte inner loop.
  for (size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 8192u}) {
    const auto data = PseudoRandomBuffer(size, size + 1);
    const std::span<const uint8_t> span(data);
    EXPECT_EQ(Crc32(span), ReferenceCrc(0xedb88320u, span)) << "size " << size;
  }
}

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C (Castagnoli) check value.
  EXPECT_EQ(Crc32c(AsBytes("123456789")), 0xe3069283u);
}

TEST(Crc32cTest, EmptyInput) { EXPECT_EQ(Crc32c({}), 0u); }

TEST(Crc32cTest, MatchesBitwiseReference) {
  // Runs the hardware crc32q path when SSE4.2 is present and the software
  // slice-by-8 fallback otherwise; both must match the bitwise reference.
  for (size_t size : {1u, 7u, 8u, 9u, 100u, 8192u}) {
    const auto data = PseudoRandomBuffer(size, size * 31 + 5);
    const std::span<const uint8_t> span(data);
    EXPECT_EQ(Crc32c(span), ReferenceCrc(0x82f63b78u, span))
        << "size " << size << " hw=" << Crc32cHardwareAvailable();
  }
}

TEST(Crc32cTest, DiffersFromIeeeCrc32) {
  // The wire format pins IEEE; Crc32c is a different polynomial on purpose.
  EXPECT_NE(Crc32c(AsBytes("123456789")), Crc32(AsBytes("123456789")));
}

}  // namespace
}  // namespace rmp
