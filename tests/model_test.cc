#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/model/cluster_usage.h"
#include "src/model/extrapolation.h"
#include "src/model/run_simulator.h"
#include "src/net/ethernet_model.h"

namespace rmp {
namespace {

// --- Extrapolation (§4.3) ----------------------------------------------------

TEST(ExtrapolationTest, ReproducesPaperArithmeticExactly) {
  // The paper's FFT/24MB parity-logging run: etime 130.76 s, 66.138 u,
  // 3.133 sys, 0.21 init, 5452 transfers at 1.6 ms -> 8.7232 s protocol,
  // btime 52.556 s; a 10x network gives 83.459 s.
  RunResult run;
  run.etime_s = 130.76;
  run.utime_s = 66.138;
  run.systime_s = 3.133;
  run.inittime_s = 0.21;
  run.backend.page_transfers = 5452;
  const TimeDecomposition d = Decompose(run);
  EXPECT_NEAR(d.pptime_s, 8.7232, 1e-9);
  EXPECT_NEAR(d.btime_s, 52.5558, 1e-3);
  EXPECT_NEAR(ExpectedElapsedSeconds(d, 10.0), 83.459, 0.01);
  EXPECT_NEAR(AllMemorySeconds(d), 69.481, 1e-9);
  // Paging share on the 10x network is below the paper's 17% bound.
  const double paging = d.pptime_s + d.btime_s / 10.0;
  EXPECT_LT(paging / ExpectedElapsedSeconds(d, 10.0), 0.17);
}

TEST(ExtrapolationTest, FactorOneIsIdentity) {
  RunResult run;
  run.etime_s = 100.0;
  run.utime_s = 40.0;
  run.systime_s = 2.0;
  run.inittime_s = 1.0;
  run.backend.page_transfers = 1000;
  const TimeDecomposition d = Decompose(run);
  EXPECT_NEAR(ExpectedElapsedSeconds(d, 1.0), 100.0, 1e-9);
}

TEST(ExtrapolationTest, InfiniteBandwidthLeavesProtocolTime) {
  RunResult run;
  run.etime_s = 100.0;
  run.utime_s = 40.0;
  run.backend.page_transfers = 1000;
  const TimeDecomposition d = Decompose(run);
  const double limit = ExpectedElapsedSeconds(d, 1e9);
  EXPECT_NEAR(limit, 40.0 + 1000 * 0.0016, 1e-3);
}

TEST(ExtrapolationTest, NegativeBtimeClampsToZero) {
  RunResult run;
  run.etime_s = 10.0;
  run.utime_s = 9.999;
  run.backend.page_transfers = 1000;  // Protocol alone exceeds the residue.
  const TimeDecomposition d = Decompose(run);
  EXPECT_EQ(d.btime_s, 0.0);
}

// --- RunSimulator -------------------------------------------------------------

TEST(RunSimulatorTest, DecompositionAddsUp) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 8192;
  params.network = std::make_shared<EthernetModel>();
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = 2304;
  auto run = SimulateRun(*MakeFft(24.0), &(*bed)->backend(), config);
  ASSERT_TRUE(run.ok());
  EXPECT_NEAR(run->etime_s,
              run->utime_s + run->systime_s + run->inittime_s + run->ptime_s, 1e-6);
  EXPECT_GT(run->ptime_s, 0.0);
  EXPECT_EQ(run->vm.pageouts, run->backend.pageouts);
  EXPECT_EQ(run->vm.pageins, run->backend.pageins);
}

TEST(RunSimulatorTest, NoPagingWhenWorkingSetFits) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = 4096;  // 32 MB for a 24 MB input.
  auto run = SimulateRun(*MakeFft(24.0), &(*bed)->backend(), config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->backend.page_transfers, 0);
  EXPECT_NEAR(run->ptime_s, 0.0, 1e-6);
}

TEST(RunSimulatorTest, SmallerMemoryMeansLongerRun) {
  double last_etime = 0.0;
  for (uint32_t frames : {2816u, 2560u, 2304u}) {
    TestbedParams params;
    params.policy = Policy::kNoReliability;
    params.data_servers = 2;
    params.server_capacity_pages = 8192;
    params.network = std::make_shared<EthernetModel>();
    auto bed = Testbed::Create(params);
    ASSERT_TRUE(bed.ok());
    RunConfig config;
    config.physical_frames = frames;
    auto run = SimulateRun(*MakeFft(24.0), &(*bed)->backend(), config);
    ASSERT_TRUE(run.ok());
    if (last_etime > 0.0) {
      EXPECT_GT(run->etime_s, last_etime) << frames;
    }
    last_etime = run->etime_s;
  }
}

TEST(RunSimulatorTest, FormatRunResultMentionsKeyFields) {
  RunResult run;
  run.workload = "FFT";
  run.policy = "DISK";
  run.etime_s = 12.5;
  const std::string row = FormatRunResult(run);
  EXPECT_NE(row.find("FFT"), std::string::npos);
  EXPECT_NE(row.find("DISK"), std::string::npos);
  EXPECT_NE(row.find("12.5"), std::string::npos);
}

// --- Cluster usage (Fig. 1) ----------------------------------------------------

TEST(ClusterUsageTest, WeekHasExpectedSampleCount) {
  ClusterUsageParams params;
  const auto samples = SimulateClusterWeek(params, 30);
  EXPECT_EQ(samples.size(), 7u * 24 * 2);
  EXPECT_EQ(samples.front().day_of_week, 0);  // Thursday.
  EXPECT_EQ(samples.back().day_of_week, 6);   // Wednesday.
}

TEST(ClusterUsageTest, FreeMemoryNeverBelowPaperFloor) {
  ClusterUsageParams params;
  for (const auto& s : SimulateClusterWeek(params, 30)) {
    EXPECT_GE(s.free_mb, 250.0) << "at hour " << s.hours_since_start;
    EXPECT_LE(s.free_mb, 800.0 - 16 * params.os_base_mb + 1e-9);
  }
}

TEST(ClusterUsageTest, WeekdayNoonBusierThanNight) {
  ClusterUsageParams params;
  const auto samples = SimulateClusterWeek(params, 30);
  double noon_free = 0.0;
  int noon_n = 0;
  double night_free = 0.0;
  int night_n = 0;
  for (const auto& s : samples) {
    const bool weekend = s.day_of_week == 2 || s.day_of_week == 3;
    if (weekend) {
      continue;
    }
    if (s.hour_of_day >= 11.0 && s.hour_of_day < 16.0) {
      noon_free += s.free_mb;
      ++noon_n;
    } else if (s.hour_of_day >= 1.0 && s.hour_of_day < 5.0) {
      night_free += s.free_mb;
      ++night_n;
    }
  }
  EXPECT_LT(noon_free / noon_n, night_free / night_n - 30.0);
}

TEST(ClusterUsageTest, WeekendFreerThanWeekdayDaytime) {
  ClusterUsageParams params;
  const auto samples = SimulateClusterWeek(params, 30);
  double weekend_free = 0.0;
  int weekend_n = 0;
  double weekday_free = 0.0;
  int weekday_n = 0;
  for (const auto& s : samples) {
    if (s.hour_of_day < 9.0 || s.hour_of_day > 18.0) {
      continue;
    }
    const bool weekend = s.day_of_week == 2 || s.day_of_week == 3;
    if (weekend) {
      weekend_free += s.free_mb;
      ++weekend_n;
    } else {
      weekday_free += s.free_mb;
      ++weekday_n;
    }
  }
  EXPECT_GT(weekend_free / weekend_n, weekday_free / weekday_n);
}

TEST(ClusterUsageTest, SessionProbabilityShape) {
  EXPECT_GT(SessionProbability(0, 11.5), SessionProbability(0, 4.0));
  EXPECT_GT(SessionProbability(0, 15.5), SessionProbability(0, 22.0));
  // Weekend suppression.
  EXPECT_GT(SessionProbability(0, 12.0), SessionProbability(2, 12.0) * 3.0);
}

TEST(ClusterUsageTest, DeterministicForSeed) {
  ClusterUsageParams params;
  const auto a = SimulateClusterWeek(params, 60);
  const auto b = SimulateClusterWeek(params, 60);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].free_mb, b[i].free_mb);
  }
}

TEST(ClusterUsageTest, DayNames) {
  EXPECT_EQ(DayName(0), "Thursday");
  EXPECT_EQ(DayName(3), "Sunday");
  EXPECT_EQ(DayName(6), "Wednesday");
}

}  // namespace
}  // namespace rmp
