// HealthMonitor conformance: the ALIVE/SUSPECT/DEAD/REJOINING state machine
// (DESIGN.md §11) driven by deterministic heartbeat faults. Heartbeats are
// starved with a FaultPlan dropping kHeartbeat requests, connections are
// severed with PartitionServer, and crashes/reboots use the Testbed's crash
// and restart paths, so every transition fires from the same stimuli a live
// cluster would produce.

#include "src/core/health.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/testbed.h"
#include "src/proto/wire.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int servers = 3) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = servers;
  params.server_capacity_pages = 512;
  auto bed = Testbed::Create(params);
  EXPECT_TRUE(bed.ok()) << bed.status().message();
  return std::move(*bed);
}

HealthParams FastHealth() {
  HealthParams params;
  params.heartbeat_interval = Millis(50);
  params.suspect_after = 1;
  params.dead_after = 3;
  return params;
}

// A plan that swallows heartbeat requests (the server never sees the probe);
// `times` < 0 drops them forever.
std::shared_ptr<FaultPlan> DropHeartbeats(int times) {
  auto plan = std::make_shared<FaultPlan>(0xbeefu);
  FaultRule rule;
  rule.kind = FaultKind::kDropRequest;
  rule.only_type = MessageType::kHeartbeat;
  rule.probability = 1.0;
  rule.repeat = times;
  plan->AddRule(rule);
  return plan;
}

TEST(HealthMonitorTest, DroppedHeartbeatsWalkSuspectDeadRejoining) {
  auto bed = MakeBed();
  Cluster& cluster = bed->mirroring()->cluster();
  HealthMonitor monitor(&cluster, FastHealth());
  std::vector<HealthEvent> events;
  TimeNs now = 0;

  monitor.Tick(now, &events);  // Baseline round: everyone answers.
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(monitor.stats().heartbeats_sent, 3);

  bed->InstallFaultPlan(1, DropHeartbeats(-1));
  ServerPeer& peer = cluster.peer(1);

  now += Millis(50);
  monitor.Tick(now, &events);  // Miss 1: quarantine.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].peer, 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kAlive);
  EXPECT_EQ(events[0].to, PeerHealth::kSuspect);
  EXPECT_TRUE(peer.stopped());  // No new placements...
  EXPECT_TRUE(peer.alive());    // ...but reads still try it.

  events.clear();
  now += Millis(50);
  monitor.Tick(now, &events);  // Miss 2: still below the dead threshold.
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(monitor.health(1), PeerHealth::kSuspect);

  now += Millis(50);
  monitor.Tick(now, &events);  // Miss 3: counted out.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to, PeerHealth::kDead);
  EXPECT_FALSE(peer.alive());
  EXPECT_FALSE(peer.stopped());  // The quarantine stop is released on DEAD.

  events.clear();
  bed->fault(1).ClearPlan();
  now += Millis(50);
  monitor.Tick(now, &events);  // It answers again.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kDead);
  EXPECT_EQ(events[0].to, PeerHealth::kRejoining);
  EXPECT_FALSE(events[0].rebooted);  // Incarnation never changed.
  EXPECT_FALSE(peer.alive());        // Not re-admitted until the repair says so.

  monitor.MarkReadmitted(1);
  EXPECT_EQ(monitor.health(1), PeerHealth::kAlive);
  EXPECT_TRUE(peer.alive());
  EXPECT_EQ(monitor.stats().heartbeats_missed, 3);
  EXPECT_EQ(monitor.stats().heartbeats_sent, 15);  // 5 rounds x 3 peers.
}

TEST(HealthMonitorTest, SuspectRecoversOnNextAck) {
  auto bed = MakeBed();
  Cluster& cluster = bed->mirroring()->cluster();
  HealthMonitor monitor(&cluster, FastHealth());
  std::vector<HealthEvent> events;
  TimeNs now = 0;
  monitor.Tick(now, &events);

  bed->InstallFaultPlan(1, DropHeartbeats(1));  // One lost message only.
  now += Millis(50);
  monitor.Tick(now, &events);
  EXPECT_EQ(monitor.health(1), PeerHealth::kSuspect);

  events.clear();
  now += Millis(50);
  monitor.Tick(now, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kSuspect);
  EXPECT_EQ(events[0].to, PeerHealth::kAlive);
  EXPECT_FALSE(cluster.peer(1).stopped());
  EXPECT_TRUE(cluster.peer(1).alive());
}

TEST(HealthMonitorTest, DeadConnectionSkipsSuspect) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);

  bed->CrashServer(1);
  monitor.Tick(Millis(50), &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kAlive);
  EXPECT_EQ(events[0].to, PeerHealth::kDead);  // Hard evidence: no SUSPECT stop.
}

TEST(HealthMonitorTest, RebootedIncarnationMarksRejoinAsReboot) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);  // Records pre-crash incarnations.

  bed->CrashServer(1);
  monitor.Tick(Millis(50), &events);
  EXPECT_EQ(monitor.health(1), PeerHealth::kDead);

  events.clear();
  bed->RestartServer(1);  // Reboot: store empty, incarnation bumped.
  monitor.Tick(Millis(100), &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to, PeerHealth::kRejoining);
  EXPECT_TRUE(events[0].rebooted);
}

TEST(HealthMonitorTest, HealedPartitionRejoinsWithPagesIntact) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);

  bed->PartitionServer(1);  // Network gone, process (and pages) alive.
  monitor.Tick(Millis(50), &events);
  EXPECT_EQ(monitor.health(1), PeerHealth::kDead);

  events.clear();
  Testbed::RestartOptions heal;
  heal.preserve_memory = true;
  bed->RestartServer(1, heal);
  monitor.Tick(Millis(100), &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to, PeerHealth::kRejoining);
  EXPECT_FALSE(events[0].rebooted);  // Same incarnation: the pages survived.
}

TEST(HealthMonitorTest, FastRebootIsCaughtByIncarnation) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);

  // Crash + restart entirely between two probe rounds: the ack looks healthy
  // but the incarnation proves our pages did not survive.
  bed->CrashServer(1);
  bed->RestartServer(1);
  monitor.Tick(Millis(50), &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kAlive);
  EXPECT_EQ(events[0].to, PeerHealth::kRejoining);
  EXPECT_TRUE(events[0].rebooted);
}

TEST(HealthMonitorTest, ReportUnavailableCountsAsMisses) {
  auto bed = MakeBed();
  Cluster& cluster = bed->mirroring()->cluster();
  HealthParams params = FastHealth();
  params.suspect_after = 2;
  HealthMonitor monitor(&cluster, params);
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);

  // One failed data-path RPC on a live connection is transient by definition.
  monitor.ReportUnavailable(1, &events);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(monitor.health(1), PeerHealth::kAlive);
  EXPECT_TRUE(cluster.peer(1).alive());

  monitor.ReportUnavailable(1, &events);
  EXPECT_EQ(monitor.health(1), PeerHealth::kSuspect);
  monitor.ReportUnavailable(1, &events);
  EXPECT_EQ(monitor.health(1), PeerHealth::kDead);
}

TEST(HealthMonitorTest, ReportUnavailableWithDeadConnectionIsFatal) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::vector<HealthEvent> events;
  monitor.Tick(0, &events);

  bed->CrashServer(2);
  monitor.ReportUnavailable(2, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to, PeerHealth::kDead);
}

TEST(HealthMonitorTest, OverloadAdviceSurfacesAsAliveEvents) {
  auto bed = MakeBed();
  Cluster& cluster = bed->mirroring()->cluster();
  HealthMonitor monitor(&cluster, FastHealth());
  std::vector<HealthEvent> events;
  TimeNs now = 0;
  monitor.Tick(now, &events);
  EXPECT_TRUE(events.empty());

  bed->server(1).SetNativeLoad(1.0);  // Native processes want all the memory.
  now += Millis(50);
  monitor.Tick(now, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].peer, 1u);
  EXPECT_EQ(events[0].from, PeerHealth::kAlive);
  EXPECT_EQ(events[0].to, PeerHealth::kAlive);
  EXPECT_TRUE(events[0].overloaded);
  EXPECT_TRUE(cluster.peer(1).no_new_extents());

  events.clear();
  now += Millis(50);
  monitor.Tick(now, &events);  // Advice unchanged: no repeat event.
  EXPECT_TRUE(events.empty());

  bed->server(1).SetNativeLoad(0.0);
  now += Millis(50);
  monitor.Tick(now, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].overloaded);
  EXPECT_FALSE(cluster.peer(1).no_new_extents());
}

TEST(HealthMonitorTest, ReplayIsDeterministic) {
  auto run = [] {
    auto bed = MakeBed();
    HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
    std::vector<HealthEvent> events;
    TimeNs now = 0;
    monitor.Tick(now, &events);
    bed->InstallFaultPlan(2, DropHeartbeats(-1));
    for (int i = 0; i < 6; ++i) {
      now += Millis(50);
      monitor.Tick(now, &events);
    }
    bed->fault(2).ClearPlan();
    now += Millis(50);
    monitor.Tick(now, &events);
    const HealthStats stats = monitor.stats();
    return std::make_tuple(stats.heartbeats_sent, stats.heartbeats_missed, stats.transitions,
                           events.size(), monitor.health(2));
  };
  EXPECT_EQ(run(), run());
}

// Wall-clock mode: the pump thread probes while the main thread crashes a
// server and polls health() — the interleaving the sanitizer suites chase.
TEST(HealthMonitorTest, BackgroundPumpDetectsCrash) {
  auto bed = MakeBed();
  HealthMonitor monitor(&bed->mirroring()->cluster(), FastHealth());
  std::mutex mutex;
  std::vector<HealthEvent> events;
  monitor.StartBackgroundPump(Micros(200), [&](const HealthEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(event);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // A few clean rounds.
  bed->CrashServer(0);
  for (int i = 0; i < 2000 && monitor.health(0) != PeerHealth::kDead; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monitor.StopBackgroundPump();

  EXPECT_EQ(monitor.health(0), PeerHealth::kDead);
  EXPECT_GT(monitor.stats().heartbeats_sent, 0);
  bool saw_dead = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const HealthEvent& event : events) {
      saw_dead |= event.peer == 0 && event.to == PeerHealth::kDead;
    }
  }
  EXPECT_TRUE(saw_dead);
}

}  // namespace
}  // namespace rmp
