// Property tests for the shared TokenBucket (src/util/token_bucket.h): the
// pacing engine behind both repair-drain throttling and the per-tenant
// request-rate quotas. The bucket must be exact under integer math — no
// drift, no saturation surprises — because admission decisions and repair
// pacing are replayed bit-for-bit in the deterministic simulations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "src/util/rng.h"
#include "src/util/token_bucket.h"
#include "src/util/units.h"

namespace rmp {
namespace {

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0, 0);
  EXPECT_EQ(bucket.Available(0), UINT64_MAX);
  // Every grant succeeds in full, forever, at any clock value.
  EXPECT_EQ(bucket.TakeUpTo(1, 0), 1u);
  EXPECT_EQ(bucket.TakeUpTo(UINT64_MAX, 0), UINT64_MAX);
  EXPECT_EQ(bucket.TakeUpTo(12345, Seconds(1e9)), 12345u);
  EXPECT_EQ(bucket.Available(Seconds(1e9)), UINT64_MAX);
}

TEST(TokenBucketTest, ZeroBurstClampsToOne) {
  // A configured-but-tiny bucket must still be able to grant: burst 0 clamps
  // to 1 so NextAvailable always converges.
  TokenBucket bucket(10, 0);
  EXPECT_EQ(bucket.burst(), 1u);
  EXPECT_EQ(bucket.TakeUpTo(5, 0), 1u);  // Starts full (one token).
  EXPECT_EQ(bucket.TakeUpTo(1, 0), 0u);  // Dry until the refill lands.
  const TimeNs next = bucket.NextAvailable(0);
  EXPECT_GT(next, 0);
  EXPECT_LE(next, kSecond / 10 + 1);
  EXPECT_GE(bucket.Available(next), 1u);
}

TEST(TokenBucketTest, StartsFullAndCapsAtBurst) {
  TokenBucket bucket(100, 64);
  EXPECT_EQ(bucket.Available(0), 64u);
  // Arbitrarily long idle periods never accrue past the burst cap.
  EXPECT_EQ(bucket.Available(Seconds(3600)), 64u);
  EXPECT_EQ(bucket.TakeUpTo(200, Seconds(3600)), 64u);
}

TEST(TokenBucketTest, RefundNeverOverfills) {
  TokenBucket bucket(100, 8);
  EXPECT_EQ(bucket.TakeUpTo(8, 0), 8u);
  bucket.Refund(100);  // Hostile over-refund.
  EXPECT_LE(bucket.Available(0), 8u);
}

TEST(TokenBucketTest, SaturatedClockAndWantDoNotOverflow) {
  // u64 saturation probes: huge rates, huge wants, and a clock near the
  // TimeNs ceiling must neither wrap nor abort.
  TokenBucket huge(UINT64_MAX, UINT64_MAX);
  EXPECT_EQ(huge.TakeUpTo(UINT64_MAX, 0), UINT64_MAX);
  const TimeNs late = INT64_MAX - kSecond;
  EXPECT_EQ(huge.TakeUpTo(UINT64_MAX, late), UINT64_MAX);

  TokenBucket slow(1, 1);
  EXPECT_EQ(slow.TakeUpTo(UINT64_MAX, 0), 1u);
  // A full int64 worth of elapsed nanoseconds accrues ~292 years of tokens;
  // the grant must stay capped at burst.
  EXPECT_EQ(slow.TakeUpTo(UINT64_MAX, late), 1u);
}

TEST(TokenBucketTest, RefillIsExactOverSplitIntervals) {
  // Determinism core: refilling in N small steps must land on the same token
  // count as one big step — fractional accrual may never round-drop.
  constexpr uint64_t kRate = 333;
  constexpr uint64_t kBurst = 1'000'000;
  Rng rng(0x70b5ULL);
  for (int trial = 0; trial < 20; ++trial) {
    TokenBucket stepped(kRate, kBurst);
    TokenBucket jumped(kRate, kBurst);
    EXPECT_EQ(stepped.TakeUpTo(kBurst, 0), kBurst);
    EXPECT_EQ(jumped.TakeUpTo(kBurst, 0), kBurst);
    TimeNs now = 0;
    for (int step = 0; step < 100; ++step) {
      now += static_cast<TimeNs>(1 + rng.Below(kSecond / 7));
      // Touch the stepped bucket at every intermediate instant.
      (void)stepped.Available(now);
    }
    EXPECT_EQ(stepped.Available(now), jumped.Available(now)) << "trial " << trial;
  }
}

TEST(TokenBucketTest, SeededRandomScheduleIsReproducible) {
  // Two buckets driven by identical seeded op streams stay in lockstep; the
  // aggregate grant never exceeds initial burst + rate * elapsed.
  for (uint64_t seed : {0x1ULL, 0xabcdULL, 0xfeedbeefULL}) {
    Rng a(seed);
    Rng b(seed);
    TokenBucket first(47, 16);
    TokenBucket second(47, 16);
    TimeNs now = 0;
    uint64_t granted = 0;
    for (int op = 0; op < 2000; ++op) {
      now += static_cast<TimeNs>(a.Below(kSecond / 10));
      (void)b.Below(kSecond / 10);
      const uint64_t want = 1 + a.Below(8);
      ASSERT_EQ(1 + b.Below(8), want);
      const uint64_t got = first.TakeUpTo(want, now);
      ASSERT_EQ(second.TakeUpTo(want, now), got) << "seed " << seed << " op " << op;
      granted += got;
      const uint64_t ceiling =
          16 + static_cast<uint64_t>(now / kSecond + 1) * 47;
      ASSERT_LE(granted, ceiling) << "seed " << seed << " op " << op;
    }
  }
}

TEST(TokenBucketTest, NextAvailableIsTightAndMonotonic) {
  TokenBucket bucket(1000, 4);
  TimeNs now = 0;
  EXPECT_EQ(bucket.TakeUpTo(4, now), 4u);
  Rng rng(0x5eedULL);
  for (int i = 0; i < 500; ++i) {
    const TimeNs ready = bucket.NextAvailable(now);
    ASSERT_GE(ready, now);
    // One nanosecond early must still be dry; at `ready` a token exists.
    if (ready > now) {
      ASSERT_EQ(bucket.TakeUpTo(1, ready - 1), 0u);
    }
    ASSERT_GE(bucket.Available(ready), 1u);
    ASSERT_EQ(bucket.TakeUpTo(1, ready), 1u);
    now = ready + static_cast<TimeNs>(rng.Below(kMillisecond));
  }
}

}  // namespace
}  // namespace rmp
