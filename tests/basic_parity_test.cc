#include "src/core/basic_parity.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int data_servers, bool with_spare = false) {
  TestbedParams params;
  params.policy = Policy::kBasicParity;
  params.data_servers = data_servers;
  params.server_capacity_pages = 1024;
  params.pager.alloc_extent_pages = 32;
  params.with_spare = with_spare;
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(BasicParityTest, RoundTrip) {
  auto bed = MakeBed(3);
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  PageBuffer in;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(bed->backend().PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(BasicParityTest, TwoTransfersPerPageout) {
  auto bed = MakeBed(3);
  for (uint64_t p = 0; p < 12; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_EQ(bed->backend().stats().page_transfers, 24);
}

TEST(BasicParityTest, ParityRowIsXorOfStripe) {
  auto bed = MakeBed(3);
  BasicParityBackend* backend = bed->basic_parity();
  // Fill two complete stripe rows (3 columns each).
  for (uint64_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p + 50).span()).ok());
  }
  const size_t parity_peer = backend->parity_peer();
  for (uint64_t row = 0; row < 2; ++row) {
    PageBuffer expected;
    for (size_t column = 0; column < 3; ++column) {
      auto page = bed->server(column).Load(row);
      ASSERT_TRUE(page.ok());
      expected.XorWith(page->span());
    }
    auto parity = bed->server(parity_peer).Load(row);
    ASSERT_TRUE(parity.ok());
    EXPECT_EQ(*parity, expected) << "row " << row;
  }
}

TEST(BasicParityTest, ParityTracksOverwrites) {
  auto bed = MakeBed(3);
  BasicParityBackend* backend = bed->basic_parity();
  for (uint64_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  ASSERT_TRUE(backend->PageOut(0, 1, Patterned(999).span()).ok());
  // Row 0 parity must reflect the new version of page 1.
  PageBuffer expected;
  for (size_t column = 0; column < 3; ++column) {
    auto page = bed->server(column).Load(0);
    ASSERT_TRUE(page.ok());
    expected.XorWith(page->span());
  }
  auto parity = bed->server(backend->parity_peer()).Load(0);
  ASSERT_TRUE(parity.ok());
  EXPECT_EQ(*parity, expected);
}

TEST(BasicParityTest, DegradedReadServesFromParity) {
  auto bed = MakeBed(3);
  BasicParityBackend* backend = bed->basic_parity();
  std::vector<uint64_t> seeds;
  for (uint64_t p = 0; p < 30; ++p) {
    seeds.push_back(p + 300);
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(seeds.back()).span()).ok());
  }
  bed->CrashServer(1);  // Lose a data column; no rebuild.
  PageBuffer in;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), seeds[p])) << p;
  }
}

TEST(BasicParityTest, RecoverRequiresSpare) {
  auto bed = MakeBed(3, /*with_spare=*/false);
  ASSERT_TRUE(bed->backend().PageOut(0, 0, Patterned(1).span()).ok());
  bed->CrashServer(0);
  TimeNs now = 0;
  EXPECT_EQ(bed->basic_parity()->Recover(0, &now).code(), ErrorCode::kFailedPrecondition);
}

TEST(BasicParityTest, RebuildOntoSpare) {
  auto bed = MakeBed(3, /*with_spare=*/true);
  BasicParityBackend* backend = bed->basic_parity();
  Rng rng(5);
  std::vector<uint64_t> seeds;
  for (uint64_t p = 0; p < 40; ++p) {
    seeds.push_back(rng.Next());
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(seeds.back()).span()).ok());
  }
  bed->CrashServer(2);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(2, &now).ok());
  // After the rebuild everything reads normally...
  PageBuffer in;
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), seeds[p]));
  }
  // ...and even a SECOND crash (of another original column) is survivable,
  // proving the spare really holds reconstructed data and parity still
  // matches.
  bed->CrashServer(0);
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << "second crash, page " << p;
    EXPECT_TRUE(CheckPattern(in.span(), seeds[p]));
  }
}

TEST(BasicParityTest, RecoverOfNonColumnRejected) {
  auto bed = MakeBed(3, /*with_spare=*/true);
  TimeNs now = 0;
  EXPECT_EQ(bed->basic_parity()->Recover(bed->basic_parity()->parity_peer(), &now).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace rmp
