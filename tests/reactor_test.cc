// Reactor transport conformance: the event-loop core, the two-level
// fair-share scheduler, and the TcpServer session bookkeeping on top of them
// (ctest label: reactor_smoke, exercised under TSan/ASan by
// scripts/check_sanitizers.sh).
//
// The suite covers what the thread-per-session transport never had to prove:
// fairness under class contention (a background resilver flood must not
// starve a foreground page fault), hostile bytes on one multiplexed socket
// must not take down the loop serving every other session, and session
// bookkeeping must survive both connect/disconnect churn and thousands of
// concurrent sessions on a fixed thread pool.

#include <sys/resource.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/server/memory_server.h"
#include "src/transport/scheduler.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// --- FairShareScheduler unit tests ------------------------------------------
// Each test uses a unique metric prefix: the registry is process-global, so a
// shared prefix would alias gauges across tests.

TEST(FairShareScheduler, TryNextIsNonBlockingWhenEmpty) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_empty");
  FairShareScheduler::Item item;
  EXPECT_FALSE(scheduler.TryNext(&item));
}

TEST(FairShareScheduler, PerLaneFifoOrder) {
  SchedulerOptions options;
  options.lanes_per_session = 4;
  FairShareScheduler scheduler(options, "schedtest_fifo");
  auto session = scheduler.AddSession(nullptr);
  // Same slot → same lane → strict FIFO even though other lanes interleave.
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(scheduler.Submit(session, MakePageIn(id, /*slot=*/8)));
  }
  for (uint64_t id = 1; id <= 4; ++id) {
    FairShareScheduler::Item item;
    ASSERT_TRUE(scheduler.TryNext(&item));
    EXPECT_EQ(item.request.request_id, id);
    // The lane is held out of rotation until Done: the next same-lane item
    // must not be dispatchable yet.
    FairShareScheduler::Item stolen;
    EXPECT_FALSE(scheduler.TryNext(&stolen));
    scheduler.Done(item);
  }
}

TEST(FairShareScheduler, WeightedSharesFavorPageinUnderContention) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_wrr");
  // Two sessions so the classes ride distinct lanes: heartbeats carry slot 0
  // and would otherwise share (and FIFO-serialize with) the pagein lane.
  auto faulting = scheduler.AddSession(nullptr);
  auto resilver = scheduler.AddSession(nullptr);
  for (uint64_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(scheduler.Submit(faulting, MakePageIn(id, /*slot=*/0)));
    ASSERT_TRUE(scheduler.Submit(resilver, MakeHeartbeat(100 + id)));
  }
  // Default weights are 8:4:2:1, so one full credit round dispatches 8
  // pageins before the single background grant.
  int pageins_in_first_nine = 0;
  for (int i = 0; i < 9; ++i) {
    FairShareScheduler::Item item;
    ASSERT_TRUE(scheduler.TryNext(&item));
    if (ClassifyMessage(item.request.type) == TrafficClass::kPagein) {
      ++pageins_in_first_nine;
    }
    scheduler.Done(item);
  }
  EXPECT_EQ(pageins_in_first_nine, 8);
  // No starvation in either direction: the remaining 11 items (2 pagein, 9
  // background) all drain.
  int drained = 0;
  FairShareScheduler::Item item;
  while (scheduler.TryNext(&item)) {
    ++drained;
    scheduler.Done(item);
  }
  EXPECT_EQ(drained, 11);
  EXPECT_EQ(scheduler.queued(), 0u);
}

TEST(FairShareScheduler, RemoveSessionPurgesQueuedWork) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_purge");
  auto session = scheduler.AddSession(nullptr);
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(scheduler.Submit(session, MakePageIn(id, id)));
  }
  scheduler.RemoveSession(session);
  FairShareScheduler::Item item;
  EXPECT_FALSE(scheduler.TryNext(&item));
  EXPECT_FALSE(scheduler.Submit(session, MakePageIn(9, 9)));
  EXPECT_EQ(scheduler.queued(), 0u);
}

TEST(FairShareScheduler, DoneAndNextServesBacklogThenParksUntilStop) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_fused");
  auto session = scheduler.AddSession(nullptr);
  ASSERT_TRUE(scheduler.Submit(session, MakePageIn(1, 0)));
  ASSERT_TRUE(scheduler.Submit(session, MakePageIn(2, 0)));
  FairShareScheduler::Item item;
  ASSERT_TRUE(scheduler.Next(&item));
  EXPECT_EQ(item.request.request_id, 1u);
  // Fused completion: finishing request 1 must hand back request 2 without a
  // separate Done/Next pair.
  FairShareScheduler::Item second;
  ASSERT_TRUE(scheduler.DoneAndNext(item.session, item.lane, &second));
  EXPECT_EQ(second.request.request_id, 2u);
  scheduler.Done(second);
  EXPECT_FALSE(scheduler.TryNext(&item));
}

TEST(FairShareScheduler, StopUnblocksParkedWorkers) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_stop");
  std::atomic<int> returned{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&] {
      FairShareScheduler::Item item;
      EXPECT_FALSE(scheduler.Next(&item));
      returned.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.Stop();
  for (auto& t : workers) {
    t.join();
  }
  EXPECT_EQ(returned.load(), 3);
}

// --- Tenant-level WFQ and shedding (DESIGN.md §15) ---------------------------

TEST(FairShareScheduler, TenantWeightsSplitDispatchFourToOne) {
  SchedulerOptions options;
  options.tenant_weights = {{1, 4}, {2, 1}};
  options.lanes_per_session = 1;
  FairShareScheduler scheduler(options, "schedtest_tenant_wfq");
  auto heavy = scheduler.AddSession(nullptr, /*tenant=*/1);
  auto light = scheduler.AddSession(nullptr, /*tenant=*/2);
  // Both tenants keep a same-class backlog, so every dispatch is a pure
  // weight decision.
  for (uint64_t id = 1; id <= 200; ++id) {
    ASSERT_TRUE(scheduler.Submit(heavy, MakePageIn(id, id)));
    ASSERT_TRUE(scheduler.Submit(light, MakePageIn(1000 + id, id)));
  }
  for (int i = 0; i < 100; ++i) {
    FairShareScheduler::Item item;
    ASSERT_TRUE(scheduler.TryNext(&item));
    scheduler.Done(item);
  }
  // 4:1 within ±10% of the dispatch share.
  EXPECT_NEAR(static_cast<double>(scheduler.TenantServed(1)) / 100.0, 0.8, 0.1);
  EXPECT_NEAR(static_cast<double>(scheduler.TenantServed(2)) / 100.0, 0.2, 0.1);
  // Ratios, not priorities: the light tenant's backlog still drains fully.
  FairShareScheduler::Item item;
  while (scheduler.TryNext(&item)) {
    scheduler.Done(item);
  }
  EXPECT_EQ(scheduler.TenantServed(1), 200u);
  EXPECT_EQ(scheduler.TenantServed(2), 200u);
}

TEST(FairShareScheduler, FloodingTenantCannotStarveAnotherTenantsControl) {
  FairShareScheduler scheduler(SchedulerOptions{}, "schedtest_tenant_ctl");
  auto flood = scheduler.AddSession(nullptr, /*tenant=*/1);
  auto victim = scheduler.AddSession(nullptr, /*tenant=*/2);
  // Tenant 1 floods every class; tenant 2 has one control request queued.
  for (uint64_t id = 1; id <= 300; ++id) {
    ASSERT_TRUE(scheduler.Submit(flood, MakePageIn(id, id)));
  }
  ASSERT_TRUE(scheduler.Submit(victim, MakeLoadQuery(9999)));
  int dispatches_until_control = 0;
  bool found = false;
  FairShareScheduler::Item item;
  while (scheduler.TryNext(&item)) {
    ++dispatches_until_control;
    const bool is_control = item.session == victim;
    scheduler.Done(item);
    if (is_control) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  // Equal tenant weights alternate tenants, so the control op lands within a
  // few dispatches — not behind the 300-deep flood.
  EXPECT_LE(dispatches_until_control, 8);
}

TEST(FairShareScheduler, OverloadShedsBackgroundThenPageoutNeverPagein) {
  SchedulerOptions options;
  options.shed_limit = 8;
  options.lanes_per_session = 1;
  FairShareScheduler scheduler(options, "schedtest_shed");
  auto session = scheduler.AddSession(nullptr, /*tenant=*/1);
  PageBuffer page;
  FillPattern(page.span(), 1);
  // Fill the backlog to the background threshold with pageins (never shed).
  for (uint64_t id = 1; id <= 8; ++id) {
    ASSERT_EQ(scheduler.SubmitEx(session, MakePageIn(id, id)), SubmitResult::kOk);
  }
  // At total >= shed_limit, background submits shed; pageout still lands.
  EXPECT_EQ(scheduler.SubmitEx(session, MakeHeartbeat(100)), SubmitResult::kShed);
  EXPECT_EQ(scheduler.SubmitEx(session, MakePageOut(101, 50, page.span())),
            SubmitResult::kOk);
  // Push the backlog to 2x the limit: pageout sheds too, pagein never does.
  for (uint64_t id = 200; scheduler.queued() < 16; ++id) {
    ASSERT_EQ(scheduler.SubmitEx(session, MakePageIn(id, id)), SubmitResult::kOk);
  }
  EXPECT_EQ(scheduler.SubmitEx(session, MakePageOut(300, 51, page.span())),
            SubmitResult::kShed);
  EXPECT_EQ(scheduler.SubmitEx(session, MakePageIn(301, 52)), SubmitResult::kOk);
  EXPECT_GE(scheduler.shed_total(), 2);
  // Shed responses never consumed queue state: everything queued still drains.
  FairShareScheduler::Item item;
  while (scheduler.TryNext(&item)) {
    scheduler.Done(item);
  }
  EXPECT_EQ(scheduler.queued(), 0u);
}

TEST(FairShareScheduler, TenantQueueCapBoundsOneTenantsBacklog) {
  SchedulerOptions options;
  options.tenant_queue_cap = 4;
  options.lanes_per_session = 1;
  FairShareScheduler scheduler(options, "schedtest_cap");
  auto hog = scheduler.AddSession(nullptr, /*tenant=*/1);
  auto neighbor = scheduler.AddSession(nullptr, /*tenant=*/2);
  PageBuffer page;
  FillPattern(page.span(), 2);
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_EQ(scheduler.SubmitEx(hog, MakePageOut(id, id, page.span())), SubmitResult::kOk);
  }
  // The hog's fifth sheddable submit bounces off its per-tenant cap...
  EXPECT_EQ(scheduler.SubmitEx(hog, MakePageOut(5, 5, page.span())), SubmitResult::kShed);
  // ...while the neighbor still queues, and the hog's pageins are exempt.
  EXPECT_EQ(scheduler.SubmitEx(neighbor, MakePageOut(6, 6, page.span())),
            SubmitResult::kOk);
  EXPECT_EQ(scheduler.SubmitEx(hog, MakePageIn(7, 7)), SubmitResult::kOk);
}

// --- TcpServer integration ---------------------------------------------------

struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

class ReactorTcpTest : public ::testing::Test {
 protected:
  void StartServer(TcpServerOptions options = TcpServerOptions(), uint64_t capacity = 4096,
                   TenantPolicyParams tenants = TenantPolicyParams()) {
    MemoryServerParams params;
    params.name = "reactor-test";
    params.capacity_pages = capacity;
    params.tenants = std::move(tenants);
    server_ = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(
        0,
        [this]() -> std::unique_ptr<MessageHandler> {
          return std::make_unique<ForwardingHandler>(server_);
        },
        std::move(options));
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    tcp_server_ = std::move(*started);
  }

  Result<std::unique_ptr<TcpTransport>> Connect() {
    return TcpTransport::Connect("127.0.0.1", tcp_server_->port());
  }

  // Disconnect detection runs on the loop threads after the client's FIN, so
  // bookkeeping converges shortly after the transport is destroyed.
  void ExpectLiveSessions(size_t want, int timeout_ms = 5000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (tcp_server_->live_sessions() != want && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(tcp_server_->live_sessions(), want);
  }

  std::shared_ptr<MemoryServer> server_;
  std::unique_ptr<TcpServer> tcp_server_;
};

// Regression for the session-table leak: every connect/disconnect cycle must
// return the server to zero live sessions, with the reactor reaping closed
// connections rather than a per-session thread noticing EOF.
TEST_F(ReactorTcpTest, ConnectDisconnectChurnLeavesNoResidue) {
  StartServer();
  for (int cycle = 0; cycle < 200; ++cycle) {
    auto client = Connect();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto reply = (*client)->Call(MakeLoadQuery(static_cast<uint64_t>(cycle) + 1));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, MessageType::kLoadReport);
  }
  ExpectLiveSessions(0);
}

// A background pageout flood (64 requests, 1 ms service each, one worker)
// must not starve a foreground pagein: the weighted scheduler dispatches the
// fault as soon as the in-service request finishes, not after the flood.
TEST_F(ReactorTcpTest, BackgroundFloodDoesNotStarveForegroundPagein) {
  TcpServerOptions options;
  options.service_workers = 1;  // Worst case: zero service parallelism.
  StartServer(std::move(options));

  auto background = Connect();
  auto foreground = Connect();
  ASSERT_TRUE(background.ok());
  ASSERT_TRUE(foreground.ok());

  auto fg_alloc = (*foreground)->Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(fg_alloc.ok());
  auto bg_alloc = (*background)->Call(MakeAllocRequest(1, 64));
  ASSERT_TRUE(bg_alloc.ok());

  PageBuffer page;
  FillPattern(page.span(), 7);
  // Seed the foreground slot while it is still fast.
  auto seeded = (*foreground)->Call(MakePageOut(2, fg_alloc->slot, page.span()));
  ASSERT_TRUE(seeded.ok());
  ASSERT_EQ(seeded->status_code(), ErrorCode::kOk);

  for (uint64_t i = 0; i < 64; ++i) {
    server_->SetSlotDelayForTest(bg_alloc->slot + i, 1000);  // 1 ms each.
  }
  std::vector<RpcFuture> flood;
  flood.reserve(64);
  const auto flood_start = Clock::now();
  for (uint64_t i = 0; i < 64; ++i) {
    flood.push_back(
        (*background)->CallAsync(MakePageOut(100 + i, bg_alloc->slot + i, page.span())));
  }

  const auto issued = Clock::now();
  auto fault = (*foreground)->Call(MakePageIn(3, fg_alloc->slot));
  const double fault_ms = MillisSince(issued);
  ASSERT_TRUE(fault.ok()) << fault.status().ToString();
  ASSERT_EQ(fault->status_code(), ErrorCode::kOk);

  for (auto& f : flood) {
    auto ack = f.Wait();
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->status_code(), ErrorCode::kOk);
  }
  const double flood_ms = MillisSince(flood_start);

  // The flood occupies the lone worker for >= 64 ms of service time; a FIFO
  // dispatcher would make the fault wait for most of it. Generous bound for
  // sanitizer builds, but far below the FIFO floor.
  EXPECT_GE(flood_ms, 40.0);
  EXPECT_LT(fault_ms, flood_ms / 2.0);
}

// Garbage on one connection (bad magic / hostile length) must close exactly
// that connection: the loop thread and every other session keep serving.
TEST_F(ReactorTcpTest, HostileFrameClosesOnlyThatConnection) {
  StartServer();
  auto healthy = Connect();
  ASSERT_TRUE(healthy.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp_server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  uint8_t garbage[64];
  for (size_t i = 0; i < sizeof(garbage); ++i) {
    garbage[i] = static_cast<uint8_t>(0xA5 ^ i);
  }
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));
  // The server must reply with EOF (it closed us), not hang or crash.
  uint8_t buf[16];
  ssize_t n;
  do {
    n = ::recv(fd, buf, sizeof(buf), 0);
  } while (n < 0 && errno == EINTR);
  EXPECT_LE(n, 0);
  ::close(fd);

  auto reply = (*healthy)->Call(MakeLoadQuery(42));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kLoadReport);
  ExpectLiveSessions(1);
}

// --- Session tenant binding over the wire (DESIGN.md §15) --------------------

TEST_F(ReactorTcpTest, ConnectBindsTenantAndStampsUntaggedRequests) {
  TenantPolicyParams tenants;
  tenants.tenants = {{.id = 7, .memory_quota_pages = 64}};
  StartServer(TcpServerOptions(), 4096, std::move(tenants));
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "", /*tenant=*/7);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // The request carries no tenant; the transport stamps the bound one and
  // the enforcing server echoes and charges it.
  auto granted = (*client)->Call(MakeAllocRequest(1, 8));
  ASSERT_TRUE(granted.ok());
  ASSERT_EQ(granted->status_code(), ErrorCode::kOk);
  EXPECT_EQ(granted->tenant, 7);
  EXPECT_EQ(server_->TenantReservedPages(7), 8u);
  // The quota holds over the wire, not just on the direct API.
  auto over = (*client)->Call(MakeAllocRequest(2, 64));
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over->status_code(), ErrorCode::kNoSpace);
}

TEST_F(ReactorTcpTest, MidSessionTenantFlipIsRejected) {
  StartServer();
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "", /*tenant=*/7);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // The AUTH handshake bound tenant 7; a frame claiming tenant 9 on the same
  // session is a spoof attempt — rejected, never re-attributed.
  Message hostile = MakeAllocRequest(5, 4);
  hostile.tenant = 9;
  auto reply = (*client)->Call(hostile);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status_code(), ErrorCode::kFailedPrecondition);
  // The session itself survives for correctly-attributed traffic.
  auto good = (*client)->Call(MakeLoadQuery(6));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->type, MessageType::kLoadReport);
}

TEST_F(ReactorTcpTest, FirstTaggedFrameBindsOnOpenServers) {
  StartServer();
  auto client = Connect();  // No AUTH handshake, no tenant.
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Message tagged = MakeLoadQuery(1);
  tagged.tenant = 5;
  auto first = (*client)->Call(tagged);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, MessageType::kLoadReport);
  // Bound now: any other tag on this session is a flip.
  Message flipped = MakeLoadQuery(2);
  flipped.tenant = 6;
  auto second = (*client)->Call(flipped);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status_code(), ErrorCode::kFailedPrecondition);
  // The original binding still serves.
  Message again = MakeLoadQuery(3);
  again.tenant = 5;
  auto third = (*client)->Call(again);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->type, MessageType::kLoadReport);
}

#ifdef RMP_IO_URING
// Compile-gated smoke: with the io_uring backend requested the transport must
// still round-trip (falling back to epoll at runtime when the kernel or
// rlimits refuse the ring).
TEST_F(ReactorTcpTest, IoUringBackendRoundTrip) {
  TcpServerOptions options;
  options.reactor.use_io_uring = true;
  StartServer(std::move(options));
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Call(MakeLoadQuery(1));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kLoadReport);
}
#endif  // RMP_IO_URING

size_t CurrentRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      size_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

// Churn soak: thousands of concurrent sessions on the fixed loop pool — the
// load shape thread-per-session could not survive (it would need two threads
// per session). Scaled to the fd rlimit; RMP_SOAK_SESSIONS overrides.
TEST_F(ReactorTcpTest, ManyConcurrentSessionsSoak) {
  StartServer();
  size_t sessions = 10000;
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur != RLIM_INFINITY) {
    // Each session costs two fds (client + server end) plus slack for loops,
    // listen sockets, and the test binary itself.
    const size_t budget = nofile.rlim_cur > 2000 ? (nofile.rlim_cur - 1000) / 2 : 500;
    sessions = std::min(sessions, budget);
  }
  if (const char* env = std::getenv("RMP_SOAK_SESSIONS")) {
    sessions = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  ASSERT_GT(sessions, 0u);

  const size_t rss_before_kb = CurrentRssKb();
  std::vector<std::unique_ptr<TcpTransport>> clients(sessions);
  std::atomic<size_t> next{0};
  std::atomic<int> failures{0};
  constexpr int kConnectThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kConnectThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < sessions; i = next.fetch_add(1)) {
        auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port());
        if (!client.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto reply = (*client)->Call(MakeLoadQuery(i + 1));
        if (!reply.ok() || reply->type != MessageType::kLoadReport) {
          failures.fetch_add(1);
          continue;
        }
        clients[i] = std::move(*client);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ExpectLiveSessions(sessions - static_cast<size_t>(failures.load()), 30000);

  // Bounded memory: per-session state is a few KB (connection + codec
  // cursors), not a stack. Two threads per session at the default 8 MB stack
  // would reserve ~160 GB of address space for 10k sessions; here RSS growth
  // stays near flat. Generous bound to absorb sanitizer shadow memory.
  const size_t rss_after_kb = CurrentRssKb();
  if (rss_before_kb > 0 && rss_after_kb > rss_before_kb) {
    const size_t growth_kb = rss_after_kb - rss_before_kb;
    EXPECT_LT(growth_kb / std::max<size_t>(sessions, 1), 256u)
        << "per-session RSS growth " << growth_kb / sessions << " KB";
  }

  clients.clear();
  ExpectLiveSessions(0, 30000);
}

}  // namespace
}  // namespace rmp
