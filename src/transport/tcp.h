// Real TCP transport: the paper's deployment shape, usable across processes.
//
// Since DESIGN.md §13 the socket core is event-driven: every connection —
// client side and server side — is a nonblocking socket multiplexed onto a
// small pool of reactor event-loop threads (reactor.h) instead of owning
// dedicated I/O threads. The paper's user-level memory server forked "a new
// instance of the server" per client (§3.2); the per-connection state here is
// just a session object and a handler, so thousands of concurrent paging
// sessions fit in one process.
//
// TcpServer accepts on a loopback or LAN port through its own reactor. Each
// accepted connection gets a MessageHandler from the factory; decoded
// requests flow through a two-level fair-share scheduler (scheduler.h) to a
// shared service-worker pool, so foreground PAGEIN traffic is dispatched
// ahead of background repair/migration streams and no single session can
// monopolize the workers. Replies may leave the socket out of order — the
// pipelined client demultiplexes them by request_id. Same-slot requests of a
// session stay ordered (they share a scheduler lane).
//
// TcpTransport is the client half. CallAsync registers the future, queues
// the frame on the connection's reactor output queue (bounded: kMaxQueuedSends
// frames not yet on the wire block further submissions — backpressure toward
// the paging policies), and the reactor completes the matching future when
// the reply frame arrives. Call() is CallAsync().Wait().

#ifndef SRC_TRANSPORT_TCP_H_
#define SRC_TRANSPORT_TCP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/transport/reactor.h"
#include "src/transport/scheduler.h"
#include "src/transport/transport.h"

namespace rmp {

// Writes all of `bytes` to `fd`, retrying short writes. Returns IoError on
// failure (EPIPE after a peer crash surfaces here). Blocking-socket helper
// for tools and tests; the transports themselves go through the reactor.
Status SendAll(int fd, std::span<const uint8_t> bytes);

// Frames `message` onto `fd` with one sendmsg: a stack-allocated header iovec
// plus the payload iovec straight out of Message::payload (zero-copy).
Status SendFrame(int fd, const Message& message);

// Reads exactly one frame: the fixed-size prefix first, then the payload
// directly into Message::payload. UnavailableError on EOF.
Result<Message> ReadFrame(int fd);

class TcpTransport final : public Transport {
 public:
  // Frames the connection will buffer before CallAsync blocks for space
  // (backpressure toward the paging policies).
  static constexpr size_t kMaxQueuedSends = 64;

  // Connects to host:port (host is an IPv4 dotted quad or "localhost").
  // The connection is registered on the process-wide Reactor::Shared().
  // When `auth_token` is non-empty or `tenant` is nonzero, an AUTH handshake
  // runs before the connection is handed back (the AUTH frame is what binds
  // the session's tenant server-side, DESIGN.md §15); a server that requires
  // a different token fails the connect with FAILED_PRECONDITION. A nonzero
  // `tenant` is stamped onto every outgoing request that does not carry one.
  static Result<std::unique_ptr<TcpTransport>> Connect(const std::string& host, uint16_t port,
                                                       const std::string& auth_token = "",
                                                       uint16_t tenant = 0);

  ~TcpTransport() override { Close(); }

  Result<Message> Call(const Message& request) override;
  RpcFuture CallAsync(Message request) override;
  Status SendOneWay(const Message& request) override;
  bool connected() const override;

  // Closes the connection. Every outstanding future completes with
  // UnavailableError. Idempotent.
  void Close() override;

  // Number of requests currently awaiting a reply (test/debug probe).
  size_t inflight() const;

 private:
  class Demux;  // The connection's FrameSink: request_id → future demux.

  explicit TcpTransport(std::shared_ptr<ReactorConnection> conn, std::shared_ptr<Demux> demux);

  // RpcFuture private-state bridge for the nested Demux (only TcpTransport
  // is befriended by RpcFuture).
  static std::shared_ptr<RpcFuture::State> NewFutureState() { return RpcFuture::NewState(); }
  static void CompleteFuture(const std::shared_ptr<RpcFuture::State>& state,
                             Result<Message> result) {
    RpcFuture::Complete(state, std::move(result));
  }
  static RpcFuture WrapFuture(std::shared_ptr<RpcFuture::State> state) {
    return RpcFuture(std::move(state));
  }

  std::shared_ptr<ReactorConnection> conn_;
  std::shared_ptr<Demux> demux_;
  uint16_t tenant_ = 0;  // Stamped onto untagged requests; immutable.
};

// Server-side tuning. The defaults reproduce the paper-scale testbed; the
// config keys let deployments scale the loop pool and skew the fair-share
// weights without a rebuild.
struct TcpServerOptions {
  std::string required_token;  // Empty = open server.
  // Threads servicing requests (the blocking half; loop threads never run
  // handlers). 0 = pick a small default. The pool is shared by every session;
  // sizing it past the typical runnable-lane count buys nothing and costs a
  // futex wake/park round per dispatch (measured ~6% of depth-16 pipelined
  // throughput at 16 workers on one core).
  int service_workers = 8;
  int listen_backlog = 1024;
  ReactorOptions reactor;
  SchedulerOptions scheduler;

  // Reads reactor.*, scheduler.*, plus tcp.service_workers and
  // tcp.listen_backlog.
  static Result<TcpServerOptions> FromConfig(const Config& config);
};

// Reactor-backed server: one accept listener + N event loops + a fair-share
// scheduled service-worker pool shared by every session.
class TcpServer {
 public:
  using HandlerFactory = std::function<std::unique_ptr<MessageHandler>()>;

  // Binds to 127.0.0.1:`port` (0 picks an ephemeral port). `factory` is
  // invoked once per accepted connection. When `required_token` is
  // non-empty, every session must open with a matching AUTH message before
  // any other request is served (the paper's privileged-port restriction,
  // modernized). `session_workers` maps onto the reactor model: it sizes the
  // service-worker pool and the per-session lane count, reproducing the old
  // transport's ordering contract — `session_workers == 0` serves each
  // session's requests strictly in order, > 0 allows same-session
  // parallelism with same-slot requests kept ordered.
  static Result<std::unique_ptr<TcpServer>> Start(uint16_t port, HandlerFactory factory,
                                                  std::string required_token = "",
                                                  int session_workers = 0);

  // Full-control overload.
  static Result<std::unique_ptr<TcpServer>> Start(uint16_t port, HandlerFactory factory,
                                                  TcpServerOptions options);

  ~TcpServer();

  uint16_t port() const { return port_; }
  int connections_served() const { return connections_served_.load(); }

  // Sessions currently open (closed sessions are reaped eagerly, not at
  // Shutdown — the connect/disconnect churn regression probe).
  size_t live_sessions() const;

  // Scheduler introspection (per-class served counts in tests).
  const FairShareScheduler& scheduler() const { return *scheduler_; }
  // Poll backend actually selected at runtime ("epoll" or "io_uring").
  const char* backend_name() const { return reactor_->backend_name(); }

  // Stops accepting, closes every session, joins the loop and worker
  // threads. Idempotent.
  void Shutdown();

 private:
  class ServerSession;

  TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory, TcpServerOptions options);

  void OnAccept(UniqueFd fd);
  void WorkerLoop();
  void Reap(ServerSession* session);

  uint16_t port_;
  HandlerFactory factory_;
  TcpServerOptions options_;
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<FairShareScheduler> scheduler_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> connections_served_{0};

  mutable std::mutex sessions_mutex_;
  std::unordered_map<ServerSession*, std::shared_ptr<ServerSession>> sessions_;

  std::vector<std::thread> workers_;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_TCP_H_
