// FIFO-queued devices for the analytic timing model.
//
// The client in the paper is sequential — a page fault blocks the
// application — but devices keep state between requests: the disk arm is
// where the last transfer left it, the NIC may still be draining an
// asynchronous parity flush. Resource captures exactly that: each request
// begins at max(request time, busy-until) and occupies the device for its
// service time.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>

#include "src/util/histogram.h"
#include "src/util/units.h"

namespace rmp {

class Resource {
 public:
  explicit Resource(const char* name) : name_(name) {}

  // Serves a request issued at `start` taking `service` device time.
  // Returns the completion time. Queueing delay is (begin - start).
  TimeNs Serve(TimeNs start, DurationNs service);

  // Completion time of the most recent request (device idle after this).
  TimeNs busy_until() const { return busy_until_; }

  const char* name() const { return name_; }

  // Total device-busy time accumulated, for utilization reporting.
  DurationNs busy_time() const { return busy_time_; }
  int64_t requests() const { return requests_; }
  const RunningStats& queue_delay_stats() const { return queue_delay_; }

  void Reset();

 private:
  const char* name_;
  TimeNs busy_until_ = 0;
  DurationNs busy_time_ = 0;
  int64_t requests_ = 0;
  RunningStats queue_delay_;
};

}  // namespace rmp

#endif  // SRC_SIM_RESOURCE_H_
