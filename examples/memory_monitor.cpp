// Cluster memory monitor: the §2.1 selection loop made visible. Replays a
// simulated week of cluster usage (the Fig. 1 model), and at a few sampled
// instants queries every server's load report and picks "the most promising
// server" the way the pager does — most free pages, skipping any host that
// advises stop.
//
//   $ ./memory_monitor

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/cluster.h"
#include "src/model/cluster_usage.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

int Main() {
  constexpr int kWorkstations = 8;
  constexpr uint64_t kPagesEach = 50ull * kMiB / kPageSize;  // 50 MB hosts.

  std::vector<std::unique_ptr<MemoryServer>> servers;
  Cluster cluster;
  for (int i = 0; i < kWorkstations; ++i) {
    MemoryServerParams params;
    params.name = "ws" + std::to_string(i);
    params.capacity_pages = kPagesEach;
    servers.push_back(std::make_unique<MemoryServer>(params));
    cluster.AddPeer(params.name,
                    std::make_unique<InProcTransport>(servers.back().get()));
  }

  // One usage trace per workstation, derived from the Fig. 1 model.
  ClusterUsageParams usage_params;
  usage_params.workstations = 1;
  std::vector<std::vector<UsageSample>> traces;
  for (int i = 0; i < kWorkstations; ++i) {
    usage_params.seed = 7700 + static_cast<uint64_t>(i);
    traces.push_back(SimulateClusterWeek(usage_params, /*step_minutes=*/60));
  }

  std::printf("=== a week in the cluster, through the pager's eyes ===\n\n");
  std::printf("%-22s %10s %14s %s\n", "time", "free MB", "most promising", "stopped hosts");
  const size_t steps = traces[0].size();
  for (size_t t = 0; t < steps; t += 12) {  // Every 12 hours.
    // Apply each workstation's native load to its server.
    double total_free_mb = 0.0;
    for (int i = 0; i < kWorkstations; ++i) {
      const UsageSample& s = traces[i][t];
      servers[i]->SetNativeLoad(s.used_mb / 50.0);
      cluster.peer(i).set_stopped(false);  // Re-probe each round.
      total_free_mb += s.free_mb;
    }
    auto best = cluster.MostPromising(/*refresh=*/true);
    int stopped = 0;
    for (int i = 0; i < kWorkstations; ++i) {
      stopped += cluster.peer(i).stopped() ? 1 : 0;
    }
    char when[64];
    std::snprintf(when, sizeof(when), "%s %04.1fh", DayName(traces[0][t].day_of_week).c_str(),
                  traces[0][t].hour_of_day);
    if (best.ok()) {
      std::printf("%-22s %10.1f %14s %d\n", when, total_free_mb,
                  cluster.peer(*best).name().c_str(), stopped);
    } else {
      std::printf("%-22s %10.1f %14s %d\n", when, total_free_mb, "(none!)", stopped);
    }
  }
  std::printf("\nThe pager would park pages on its local disk whenever no server\n"
              "qualifies, and replicate them back when memory frees up (§2.1).\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
