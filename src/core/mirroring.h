// MIRRORING policy (§2.2): every page is sent to two different servers, so a
// single server crash loses nothing and recovery is trivial — the surviving
// copy is promoted and re-replicated. The price is double the pageout
// traffic (both copies serialize on the shared Ethernet) and half the
// effective remote memory, which is why the paper's MVEC — all pageouts,
// almost no pageins — is the one workload where MIRRORING loses to the disk.

#ifndef SRC_CORE_MIRRORING_H_
#define SRC_CORE_MIRRORING_H_

#include <cstdint>
#include <unordered_map>

#include "src/core/remote_pager.h"

namespace rmp {

class MirroringBackend final : public RemotePagerBase {
 public:
  MirroringBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                   const RemotePagerParams& params)
      : RemotePagerBase(std::move(cluster), std::move(fabric), params) {}

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  std::string Name() const override { return "MIRRORING"; }

  // Re-establishes two live replicas for every page that lost one to the
  // crash of `peer_index`. Charged against *now; also invoked lazily by
  // PageIn when it trips over a dead primary. Implemented as a loop over
  // ResilverChunk, so it shares every code path with the incremental
  // RepairStep the RepairCoordinator drives.
  Status Recover(size_t peer_index, TimeNs* now);

  // Incremental resilver: re-replicates up to `max_pages` orphaned copies
  // per call; 0 = every page is fully replicated again.
  Result<uint64_t> RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Overload drain (§2.1): moves up to `max_pages` replicas off the live
  // peer onto other servers with MIGRATE (read + free in one round trip),
  // keeping both copies of every page on distinct servers throughout.
  Result<uint64_t> MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Elastic-membership rebalance quantum (DESIGN.md §16): moves replica
  // copies whose placement disagrees with the map's two-deep owner chain.
  // One copy moves per page per step (read, write to the chain peer, free
  // the stray copy — in that order), so the page keeps two acknowledged
  // copies except for the stray being retired.
  Result<uint64_t> RebalanceStep(uint64_t max_pages, TimeNs* now) override;

  // Replica copies currently stored on `peer` (both copies count).
  uint64_t PagesOn(size_t peer) const override;

  // Number of pages currently holding two live replicas (invariant probe).
  int64_t fully_replicated_pages() const;

 private:
  struct Replica {
    size_t peer = 0;
    uint64_t slot = 0;
  };
  struct MirrorEntry {
    Replica copies[2];
  };

  // Reserves a fresh slot on some usable peer other than `avoid` (pass
  // cluster_.size() to allow any). Does not touch the page data.
  Result<Replica> AcquireReplicaSlot(TimeNs* now, size_t avoid);

  // Like AcquireReplicaSlot but tries `preferred` first (the map's owner-
  // chain peer); falls back to the round-robin scan when the preferred peer
  // is unusable, full, or equal to `avoid`. Pass cluster_.size() as
  // `preferred` to skip the preference.
  Result<Replica> AcquireReplicaSlotPreferring(size_t preferred, size_t avoid, TimeNs* now);

  // Writes `data` to a fresh slot on some usable peer other than `avoid`
  // (pass cluster_.size() to allow any). Returns the written replica.
  Result<Replica> WriteNewReplica(TimeNs* now, std::span<const uint8_t> data, size_t avoid);

  // Joins two replica writes previously issued with StartPageOut (slots
  // `issued[c]`), charging both transfers from the same instant *now and
  // advancing *now to the later completion. A copy whose server went away
  // mid-write is repaired onto a different peer via WriteNewReplica.
  Status JoinReplicaWrites(TimeNs* now, std::span<const uint8_t> data, MirrorEntry* entry,
                           RpcFuture futures[2], const bool issued[2]);

  // One bounded resilver pass (the body RepairStep and Recover share).
  Result<uint64_t> ResilverChunk(size_t peer_index, uint64_t max_pages, TimeNs* now);

  std::unordered_map<uint64_t, MirrorEntry> table_;
};

}  // namespace rmp

#endif  // SRC_CORE_MIRRORING_H_
