#include "src/core/testbed.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

TEST(TestbedTest, BuildsEveryPolicy) {
  for (Policy policy : {Policy::kNoReliability, Policy::kMirroring, Policy::kBasicParity,
                        Policy::kParityLogging, Policy::kWriteThrough, Policy::kDisk}) {
    TestbedParams params;
    params.policy = policy;
    params.data_servers = 3;
    auto bed = Testbed::Create(params);
    ASSERT_TRUE(bed.ok()) << PolicyName(policy) << ": " << bed.status().ToString();
    EXPECT_EQ((*bed)->backend().Name(), PolicyName(policy));
  }
}

TEST(TestbedTest, ParityPoliciesGetExtraServer) {
  TestbedParams params;
  params.data_servers = 4;
  params.policy = Policy::kParityLogging;
  auto pl = Testbed::Create(params);
  ASSERT_TRUE(pl.ok());
  EXPECT_EQ((*pl)->server_count(), 5u);
  params.policy = Policy::kMirroring;
  auto mirror = Testbed::Create(params);
  ASSERT_TRUE(mirror.ok());
  EXPECT_EQ((*mirror)->server_count(), 4u);
}

TEST(TestbedTest, SpareAddsOneMore) {
  TestbedParams params;
  params.policy = Policy::kBasicParity;
  params.data_servers = 3;
  params.with_spare = true;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  EXPECT_EQ((*bed)->server_count(), 5u);  // 3 data + parity + spare.
}

TEST(TestbedTest, PolicyViewsMatch) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  EXPECT_NE((*bed)->parity_logging(), nullptr);
  EXPECT_EQ((*bed)->mirroring(), nullptr);
  EXPECT_EQ((*bed)->no_reliability(), nullptr);
}

TEST(TestbedTest, CrashAndRestartCycle) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 1;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  (*bed)->CrashServer(0);
  EXPECT_TRUE((*bed)->server(0).crashed());
  EXPECT_FALSE((*bed)->transport(0).connected());
  (*bed)->RestartServer(0);
  EXPECT_FALSE((*bed)->server(0).crashed());
  EXPECT_TRUE((*bed)->transport(0).connected());
}

TEST(TestbedTest, ZeroServersRejectedForRemotePolicies) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 0;
  EXPECT_FALSE(Testbed::Create(params).ok());
}

TEST(TestbedTest, PreloadRoundTripsEveryPolicy) {
  // NO_RELIABILITY takes the vectored PAGEOUT_BATCH path; the others run the
  // default per-page loop behind the same interface.
  for (Policy policy : {Policy::kNoReliability, Policy::kMirroring, Policy::kBasicParity,
                        Policy::kParityLogging, Policy::kWriteThrough, Policy::kDisk}) {
    TestbedParams params;
    params.policy = policy;
    params.data_servers = 3;
    auto bed = Testbed::Create(params);
    ASSERT_TRUE(bed.ok()) << PolicyName(policy);
    constexpr uint64_t kPages = 300;  // Exceeds one kMaxBatchPages chunk.
    constexpr uint64_t kSeed = 17;
    auto done = (*bed)->Preload(kPages, kSeed);
    ASSERT_TRUE(done.ok()) << PolicyName(policy) << ": " << done.status().ToString();
    EXPECT_EQ((*bed)->backend().stats().pageouts, static_cast<int64_t>(kPages));
    PageBuffer page;
    for (const uint64_t id : {uint64_t{0}, uint64_t{17}, kPages - 1}) {
      ASSERT_TRUE((*bed)->backend().PageIn(0, id, page.span()).ok()) << PolicyName(policy);
      EXPECT_TRUE(CheckPattern(page.span(), Testbed::PreloadSeed(kSeed, id)))
          << PolicyName(policy) << " page " << id;
    }
  }
}

TEST(TestbedTest, PreloadBatchesTheWireForNoReliability) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE((*bed)->Preload(512, 3).ok());
  // 512 fresh pages must not cost 512 PAGEOUT messages: batches of up to
  // kMaxBatchPages keep the per-server message count tiny.
  int64_t pages_stored = 0;
  int64_t batch_messages = 0;
  for (size_t s = 0; s < (*bed)->server_count(); ++s) {
    pages_stored += (*bed)->server(s).stats().pageouts_served;
    batch_messages += (*bed)->server(s).stats().batch_requests;
  }
  EXPECT_EQ(pages_stored, 512);
  EXPECT_GE(batch_messages, 2);
  EXPECT_LE(batch_messages, 8);
  EXPECT_EQ((*bed)->backend().stats().pageouts, 512);
}

TEST(TestbedTest, PolicyNamesComplete) {
  EXPECT_EQ(PolicyName(Policy::kNoReliability), "NO_RELIABILITY");
  EXPECT_EQ(PolicyName(Policy::kMirroring), "MIRRORING");
  EXPECT_EQ(PolicyName(Policy::kBasicParity), "BASIC_PARITY");
  EXPECT_EQ(PolicyName(Policy::kParityLogging), "PARITY_LOGGING");
  EXPECT_EQ(PolicyName(Policy::kWriteThrough), "WRITE_THROUGH");
  EXPECT_EQ(PolicyName(Policy::kDisk), "DISK");
}

}  // namespace
}  // namespace rmp
