// §4.4: the latency of one remote-memory page transfer, decomposed by stage.
//
// Paper: 11.24 ms per 8 KB page = 1.6 ms protocol processing + 9.64 ms on
// the Ethernet; contrasted with the 45 ms (4 KB!) of Schilit & Duchamp's
// Mach-based pager, whose TCP+IPC overhead alone was ~23 ms.
//
// The first half prints the closed-form model numbers for reference. The
// second half measures the same decomposition from real trace spans: a
// testbed per policy runs a pageout phase and a pagein phase through the
// backend's instrumented paths, and the per-stage latency histograms the
// PageTracer feeds ("trace.stage.<stage>_ns") yield p50/p95/p99 for the
// paper's stages — protocol service, Ethernet queueing, wire occupancy,
// parity work, disk. Phase separation uses registry snapshot deltas, so the
// pagein rows exclude the pageout phase's samples.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/ethernet_model.h"
#include "src/util/metrics.h"

namespace rmp {
namespace {

constexpr uint64_t kPages = 512;

struct PolicySetup {
  Policy policy;
  int data_servers;
};

// The stage histograms worth decomposing, in pipeline order. The model
// stages (policy..disk) are simulated-clock; the srv_* stages are *measured*
// wall-clock spans pulled back from the servers' span rings (DESIGN.md §17),
// so their magnitudes are real handler microseconds, not modeled Ethernet
// milliseconds.
const char* const kStages[] = {"policy",  "backoff",     "queue",     "wire",     "service",
                               "parity",  "disk",        "srv_queue", "srv_service",
                               "srv_store", "srv_disk"};

void EmitStageRows(const char* config_prefix, const MetricsSnapshot& snapshot) {
  for (const char* stage : kStages) {
    const std::string key = std::string("trace.stage.") + stage + "_ns";
    const MetricValue* value = snapshot.Find(key);
    if (value == nullptr || value->kind != MetricValue::Kind::kHistogram ||
        value->histogram.count == 0) {
      continue;
    }
    const HistogramData& h = value->histogram;
    const std::string config = std::string(config_prefix) + "/" + stage;
    // Measured server-side spans are real wall-clock handler time (µs scale);
    // the model stages are simulated Ethernet time (ms scale).
    const bool measured = std::strncmp(stage, "srv_", 4) == 0;
    const double scale = measured ? 1e3 : 1e6;
    const char* unit = measured ? "us" : "ms";
    std::printf("  %-28s n=%-6lld p50 %8.3f %s  p95 %8.3f %s  p99 %8.3f %s\n", config.c_str(),
                static_cast<long long>(h.count), h.Percentile(50) / scale, unit,
                h.Percentile(95) / scale, unit, h.Percentile(99) / scale, unit);
    EmitBenchResult("latency_breakdown", config, "p50", h.Percentile(50) / scale, unit);
    EmitBenchResult("latency_breakdown", config, "p95", h.Percentile(95) / scale, unit);
    EmitBenchResult("latency_breakdown", config, "p99", h.Percentile(99) / scale, unit);
  }
}

void EmitTotalRow(const char* config_prefix, const char* op, const MetricsSnapshot& snapshot) {
  const MetricValue* value = snapshot.Find(std::string("trace.") + op + ".total_ns");
  if (value == nullptr || value->histogram.count == 0) {
    return;
  }
  const HistogramData& h = value->histogram;
  const std::string config = std::string(config_prefix) + "/total";
  std::printf("  %-28s n=%-6lld p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms\n", config.c_str(),
              static_cast<long long>(h.count), h.Percentile(50) / 1e6, h.Percentile(95) / 1e6,
              h.Percentile(99) / 1e6);
  EmitBenchResult("latency_breakdown", config, "p50", h.Percentile(50) / 1e6, "ms");
  EmitBenchResult("latency_breakdown", config, "p95", h.Percentile(95) / 1e6, "ms");
  EmitBenchResult("latency_breakdown", config, "p99", h.Percentile(99) / 1e6, "ms");
}

Status RunPolicy(const PolicySetup& setup) {
  TestbedParams params;
  params.policy = setup.policy;
  params.data_servers = setup.data_servers;
  params.network = PaperEthernet();
  params.server_capacity_pages = kPages * 4;
  params.disk_blocks = kPages + 1024;
  auto testbed = Testbed::Create(params);
  if (!testbed.ok()) {
    return testbed.status();
  }
  PagingBackend& backend = (*testbed)->backend();
  auto* pager = dynamic_cast<RemotePagerBase*>(&backend);
  if (pager == nullptr) {
    return FailedPreconditionError("latency breakdown needs a remote-memory policy");
  }
  const std::string name(PolicyName(setup.policy));
  std::printf("--- %s (%d data servers) ---\n", name.c_str(), setup.data_servers);

  // Pageout phase: kPages individual pageouts on the simulated clock.
  PageBuffer page;
  TimeNs now = 0;
  for (uint64_t id = 0; id < kPages; ++id) {
    FillPattern(page.span(), id + 1);
    auto done = backend.PageOut(now, id, page.span());
    if (!done.ok()) {
      return done.status();
    }
    now = *done;
  }
  // Pull the measured server-side spans into the client stage histograms
  // before snapshotting, so the srv_* rows report real handler time.
  (*testbed)->StitchServerSpans();
  const MetricsSnapshot after_out = pager->metrics().Snapshot();
  EmitStageRows((name + "/pageout").c_str(), after_out);
  EmitTotalRow((name + "/pageout").c_str(), "pageout", after_out);

  // Pagein phase: read every page back; the delta against the pageout-phase
  // snapshot isolates this phase's samples.
  for (uint64_t id = 0; id < kPages; ++id) {
    auto done = backend.PageIn(now, id, page.span());
    if (!done.ok()) {
      return done.status();
    }
    now = *done;
  }
  (*testbed)->StitchServerSpans();
  const MetricsSnapshot after_in = pager->metrics().Snapshot().Delta(after_out);
  EmitStageRows((name + "/pagein").c_str(), after_in);
  EmitTotalRow((name + "/pagein").c_str(), "pagein", after_in);
  std::printf("\n");
  return OkStatus();
}

int Main() {
  std::printf("=== §4.4: remote memory page-transfer latency ===\n\n");
  EthernetModel ethernet;
  const double wire_ms = ToMillis(ethernet.TransferTime(kPageWireBytes));
  const double protocol_ms = ToMillis(ethernet.ProtocolTime());
  std::printf("model:    wire %.2f ms + protocol %.2f ms = %.2f ms per 8 KB page\n", wire_ms,
              protocol_ms, wire_ms + protocol_ms);
  std::printf("paper:    wire 9.64 ms + protocol 1.60 ms = 11.24 ms per 8 KB page\n");
  std::printf("frames per page: %d (1460 B TCP payload each)\n",
              ethernet.FramesForBytes(kPageWireBytes));
  std::printf("effective bandwidth for page transfers: %.2f Mbit/s of the 10 Mbit/s wire\n\n",
              ethernet.EffectiveBandwidthMbps());

  std::printf("=== measured per-stage decomposition (from trace spans) ===\n\n");
  const std::vector<PolicySetup> setups = {
      {Policy::kNoReliability, 2}, {Policy::kMirroring, 2},    {Policy::kBasicParity, 4},
      {Policy::kParityLogging, 4}, {Policy::kWriteThrough, 2},
  };
  for (const PolicySetup& setup : setups) {
    const Status status = RunPolicy(setup);
    if (!status.ok()) {
      std::printf("!! %s failed: %s\n", PolicyName(setup.policy).data(), status.message().c_str());
      return 1;
    }
  }

  std::printf("prior work (Schilit & Duchamp, 4 KB page over Mach 2.5): 45 ms/pagein,\n"
              "~19 ms TCP + ~4 ms Mach IPC; this pager's software latency is 1.6 ms.\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
