// Transport abstraction between the paging client and a memory server.
//
// The paper's client runs "one dedicated paging daemon" that issues blocking
// request/reply exchanges over a TCP socket per server (§3.1). Transport
// keeps that blocking Call() but extends it with a pipelined CallAsync():
// many requests can be outstanding on one connection, with replies
// demultiplexed by request_id. Two implementations exist:
//   - InProcTransport: direct dispatch to a MessageHandler in the same
//     process. Deterministic (CallAsync completes immediately); used by
//     tests, benches and the simulator.
//   - TcpTransport: a real socket to a ServerRunner, possibly in another
//     process (tools/rmp_server). A sender thread drains a bounded
//     submission queue and a receiver thread completes futures, so the
//     connection carries many requests concurrently.

#ifndef SRC_TRANSPORT_TRANSPORT_H_
#define SRC_TRANSPORT_TRANSPORT_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "src/proto/wire.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace rmp {

// Server-side message dispatch: a MemoryServer implements this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  // Processes one request and produces the reply. Transport-level failures
  // are not representable here; a handler that cannot satisfy a request
  // returns a reply message with a non-OK status field. May be invoked
  // concurrently when the server pipelines a session's requests.
  virtual Message Handle(const Message& request) = 0;
};

// Completion handle for one in-flight CallAsync. Copyable; all copies share
// the same completion state. Wait() may be called from any thread and is
// idempotent.
class RpcFuture {
 public:
  RpcFuture() = default;  // Invalid until assigned from a CallAsync.

  // A future that is already complete (used by synchronous transports and
  // for immediately-failed submissions).
  static RpcFuture MakeReady(Result<Message> result);

  bool valid() const { return state_ != nullptr; }

  // Non-blocking completion poll.
  bool ready() const;

  // Blocks until the reply (or transport failure) arrives.
  Result<Message> Wait();

  // Wait() with a deadline: if no reply arrives within `timeout`, returns
  // UnavailableError without consuming the future — the reply (should it
  // still arrive) completes the shared state and a later Wait() observes it.
  // This is the client-side failure detector's primitive: a server that
  // stops answering is indistinguishable from a crashed one (§2.2), so
  // after the deadline the caller treats the peer as UNAVAILABLE.
  Result<Message> WaitFor(DurationNs timeout);

 private:
  friend class TcpTransport;

  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<Result<Message>> result;
  };

  static std::shared_ptr<State> NewState() { return std::make_shared<State>(); }
  static void Complete(const std::shared_ptr<State>& state, Result<Message> result);

  explicit RpcFuture(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Blocking RPC: sends `request`, waits for the matching reply.
  // Returns UnavailableError if the peer is gone (crash / closed socket).
  virtual Result<Message> Call(const Message& request) = 0;

  // Pipelined RPC: submits `request` and returns immediately; the future
  // completes when the matching reply (by request_id) arrives. request_ids
  // must be unique among in-flight calls — a duplicate fails the future
  // with InvalidArgument. The base implementation degrades to a blocking
  // Call with an already-complete future, which is also the deterministic
  // behavior InProcTransport wants.
  virtual RpcFuture CallAsync(Message request);

  // Fire-and-forget send (e.g. SHUTDOWN). Best effort.
  virtual Status SendOneWay(const Message& request) = 0;

  virtual bool connected() const = 0;
  virtual void Close() = 0;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_TRANSPORT_H_
