#!/usr/bin/env python3
"""Compare two BENCH_*.json result files and flag regressions.

The figure benches append one JSON object per line (see
bench/bench_util.h::EmitBenchResult):

    {"bench":"...","config":"...","metric":"...","value":1.23,"unit":"ms"}

Usage:

    scripts/diff_bench.py BASELINE.json CANDIDATE.json [--threshold 10]
    scripts/diff_bench.py --help

Rows are keyed by (bench, config, metric). For latency-like units (ms, s,
ns, us) bigger is worse; for throughput-like units (pages_per_sec, mbps,
ops_per_sec, per_sec) smaller is worse. A row whose worse-direction change
exceeds the threshold (percent, default 10) is flagged as a REGRESSION and
the exit status is 1; improvements and small drifts are reported but pass.
Rows present in only one file are listed as added/removed and do not fail
the comparison.
"""

import argparse
import json
import sys

# Units where a larger value means slower/worse.
LATENCY_UNITS = {"ms", "s", "ns", "us", "seconds"}


def load(path):
    """Returns {(bench, config, metric): (value, unit)} from a results file.

    Duplicate keys keep the last occurrence: benches append on re-runs, so
    the newest line is the current measurement.
    """
    rows = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as err:
                    print(f"{path}:{lineno}: skipping unparseable line: {err}",
                          file=sys.stderr)
                    continue
                key = (obj.get("bench", ""), obj.get("config", ""),
                       obj.get("metric", ""))
                rows[key] = (float(obj.get("value", 0.0)), obj.get("unit", ""))
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    return rows


def worse_direction_change(base, cand, unit):
    """Signed percent change in the 'worse' direction (positive = worse)."""
    if base == 0.0:
        return 0.0 if cand == 0.0 else float("inf")
    change = (cand - base) / abs(base) * 100.0
    if unit.lower() in LATENCY_UNITS:
        return change  # Bigger latency is worse.
    return -change  # Smaller throughput is worse.


def main():
    parser = argparse.ArgumentParser(
        description="Flag >threshold%% regressions between two BENCH_*.json files.")
    parser.add_argument("baseline", help="baseline results file")
    parser.add_argument("candidate", help="candidate results file")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default: 10)")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    improvements = []
    common = sorted(set(base) & set(cand))
    for key in common:
        base_value, unit = base[key]
        cand_value, _ = cand[key]
        worse = worse_direction_change(base_value, cand_value, unit)
        label = "/".join(key)
        if worse > args.threshold:
            regressions.append((label, base_value, cand_value, unit, worse))
        elif worse < -args.threshold:
            improvements.append((label, base_value, cand_value, unit, worse))

    for label, b, c, unit, worse in regressions:
        print(f"REGRESSION  {label}: {b:g} -> {c:g} {unit} ({worse:+.1f}% worse)")
    for label, b, c, unit, worse in improvements:
        print(f"improved    {label}: {b:g} -> {c:g} {unit} ({-worse:+.1f}% better)")
    for key in sorted(set(cand) - set(base)):
        print(f"added       {'/'.join(key)}: {cand[key][0]:g} {cand[key][1]}")
    for key in sorted(set(base) - set(cand)):
        print(f"removed     {'/'.join(key)}")

    print(f"{len(common)} compared, {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), threshold {args.threshold:g}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
