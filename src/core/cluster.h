// Client-side view of the server cluster: one peer per remote memory server,
// with the blocking RPC helpers the paging daemon uses and a per-peer pool of
// granted swap slots.
//
// Swap space is requested in extents (§2.1: the client "asks for a number of
// page frames and starts sending requests"), so most pageouts hit a locally
// cached slot and cost exactly one page transfer on the wire.

#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/proto/cluster_map.h"
#include "src/transport/transport.h"
#include "src/util/bytes.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace rmp {

// A run of slots granted by one ALLOC_REQUEST.
struct SlotExtent {
  uint64_t first = 0;
  uint64_t count = 0;
};

class ServerPeer {
 public:
  ServerPeer(std::string name, std::unique_ptr<Transport> transport)
      : name_(std::move(name)), transport_(std::move(transport)) {}

  const std::string& name() const { return name_; }
  Transport& transport() { return *transport_; }

  bool stopped() const { return stopped_; }
  void set_stopped(bool stopped) { stopped_ = stopped; }

  // Tenant id stamped onto every outgoing request that does not already
  // carry one (DESIGN.md §15). 0 = legacy/untenanted: requests go out
  // untagged and a tenant-enforcing server attributes them to the session's
  // AUTH-bound tenant (or the legacy lane). Set once at cluster assembly,
  // before any RPC.
  uint16_t tenant() const { return tenant_; }
  void set_tenant(uint16_t tenant) { tenant_ = tenant; }

  // Cluster-map epoch stamped (in the `aux` header field) onto every
  // epoch-gated data request (DESIGN.md §16). 0 = no map adopted: requests go
  // out unstamped and the server's epoch gate ignores them. Updated by
  // RemotePagerBase whenever it adopts a newer map.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  // Distributed-trace stamping (DESIGN.md §17): when attached, every
  // epoch-gated data request reads this atomic (the client PageTracer's
  // active trace id, 0 = none) and, if nonzero, carries it in the reserved
  // `status` header bytes with the TRACED flag set. The same id is re-stamped
  // on every retry of the operation — including retries against a *different*
  // peer after failover — so server spans from all attempts stitch into one
  // trace. Null (the default) leaves the wire format untouched.
  void set_trace_source(const std::atomic<uint32_t>* source) { trace_source_ = source; }

  // ADVISE_STOP semantics (§2.1): "send no more pages to this server" means
  // no *new* swap-space grants; slots the client already holds in its pool
  // remain valid (the server accounted for them when it granted them).
  bool no_new_extents() const { return no_new_extents_; }
  void set_no_new_extents(bool value) { no_new_extents_ = value; }

  // Eligible as a pageout target right now.
  bool usable() const {
    return alive_ && !stopped_ && (!no_new_extents_ || pooled_slots() > 0);
  }

  bool alive() const { return alive_; }
  void mark_dead() {
    alive_ = false;
    if (dead_marks_ != nullptr) {
      dead_marks_->Increment();
    }
  }
  // Pure liveness flip, used on the hot retry path when a peer was only
  // *pessimistically* marked dead by a failed RPC: the pool and ADVISE_STOP
  // state are still accurate, so they must survive. A peer that genuinely
  // went away and came back must go through Reset() instead — flipping
  // alive_ alone would revive it with a poisoned slot pool (stale extents
  // the restarted server no longer accounts for) and a latched
  // no_new_extents_ from its previous life.
  void mark_alive() { alive_ = true; }

  // The single full-revival path: drops the (now meaningless) slot pool,
  // clears ADVISE_STOP and stop state, forgets stale load info, and marks
  // the peer alive. Called when a restarted or re-admitted server rejoins
  // the cluster (RepairCoordinator, policy recovery).
  void Reset();

  uint64_t known_free_pages() const { return known_free_pages_; }
  void set_known_free_pages(uint64_t pages) { known_free_pages_ = pages; }

  // --- Slot pool -----------------------------------------------------------

  // Takes one slot from the cached extents; NotFound when the pool is empty
  // (caller then issues an ALLOC_REQUEST).
  Result<uint64_t> TakeSlot();
  void AddExtent(SlotExtent extent) { extents_.push_back(extent); }
  void ReturnSlot(uint64_t slot) { returned_.push_back(slot); }
  uint64_t pooled_slots() const;
  void DropPool();

  // --- Blocking RPCs (functional path; timing is charged by the caller) ----

  // Requests `pages` fresh slots; adds them to the pool on success.
  Status AllocExtent(uint64_t pages);

  // Sends one page. On success reports whether the server advised stop.
  Result<bool> PageOutTo(uint64_t slot, std::span<const uint8_t> page);

  Status PageInFrom(uint64_t slot, std::span<uint8_t> out);

  // --- Pipelined RPCs ------------------------------------------------------
  // Start issues the request without waiting on the reply; Join blocks on it
  // and applies the same reply-parsing and liveness bookkeeping as the
  // blocking form. Between Start and Join the caller can issue RPCs to
  // *other* peers — that is how mirroring writes both replicas in parallel
  // and parity logging overlaps its parity flush with the next stripe.
  RpcFuture StartPageOut(uint64_t slot, std::span<const uint8_t> page);
  Result<bool> JoinPageOut(RpcFuture future);
  RpcFuture StartPageIn(uint64_t slot);
  Status JoinPageIn(RpcFuture future, std::span<uint8_t> out);

  // --- Batched RPCs --------------------------------------------------------
  // One frame carries slots.size() (slot, page) pairs (`pages` is their
  // concatenation), amortizing header, CRC, and round trip across the batch.
  // The server applies entries in order and fails the whole message on the
  // first bad entry, so on error the caller should retry per-page or treat
  // the batch as failed. Join validates the reply against `expected`, the
  // entry count of the request.
  RpcFuture StartPageOutBatch(std::span<const uint64_t> slots, std::span<const uint8_t> pages);
  Result<bool> JoinPageOutBatch(RpcFuture future, uint64_t expected);
  Result<bool> PageOutBatchTo(std::span<const uint64_t> slots, std::span<const uint8_t> pages);

  RpcFuture StartPageInBatch(std::span<const uint64_t> slots);
  Status JoinPageInBatch(RpcFuture future, uint64_t expected, std::span<uint8_t> out);
  Status PageInBatchFrom(std::span<const uint64_t> slots, std::span<uint8_t> out);

  Status FreeOn(uint64_t first_slot, uint64_t count);

  // Basic-parity RPCs: store-and-return-delta, and parity fold-in.
  Result<PageBuffer> DeltaPageOutTo(uint64_t slot, std::span<const uint8_t> page);
  Status XorMergeOn(uint64_t slot, std::span<const uint8_t> delta);

  struct LoadInfo {
    uint64_t free_pages = 0;
    uint64_t total_pages = 0;
    bool advise_stop = false;
  };
  Result<LoadInfo> QueryLoad();

  // Lightweight liveness probe (HEARTBEAT). Success does NOT flip alive_ —
  // state transitions belong to the HealthMonitor, which also needs to see
  // a dead peer answering (that is the REJOINING signal). Failure marks the
  // peer dead like every other RPC.
  struct HeartbeatInfo {
    uint64_t incarnation = 0;
    uint64_t free_pages = 0;
    uint64_t total_pages = 0;
    bool advise_stop = false;
  };
  Result<HeartbeatInfo> Heartbeat();

  // MIGRATE: reads the page at `slot` into `out` and frees the slot on the
  // server in one round trip (the §2.1 drain path's read side).
  Status MigrateRead(uint64_t slot, std::span<uint8_t> out);

  // Counters.
  int64_t pages_sent() const { return pages_sent_; }
  int64_t pages_fetched() const { return pages_fetched_; }

  // --- Telemetry -----------------------------------------------------------

  // Registers this peer's counters under "peer.<name>." in `registry` and
  // mirrors RPC accounting into them from then on. Reset() clears the prefix
  // so a restarted server's new incarnation never mixes with the old one.
  void AttachMetrics(MetricsRegistry* registry);

  // Live introspection RPCs: fetch the remote server's metrics-registry
  // snapshot / trace ring as JSON (STATS_QUERY / TRACE_DUMP).
  Result<std::string> QueryStats();
  Result<std::string> DumpRemoteTrace();
  // Fetches the server's span ring (TRACE_DUMP, document 1) as JSON.
  Result<std::string> DumpServerSpans();
  // Fetches the server's flight-recorder events with seq >= min_seq
  // (EVENTS_QUERY) as JSON; `next_seq`/`incarnation` (optional) receive the
  // reply's cursor and the server incarnation that produced it, so a poller
  // can detect both new events and a restart that reset the journal.
  Result<std::string> QueryEvents(uint64_t min_seq = 0, uint64_t* next_seq = nullptr,
                                  uint64_t* incarnation = nullptr);

  // --- Cluster-map exchange (DESIGN.md §16) --------------------------------
  // Pulls the server's current map (NotFound when it holds none).
  Result<ClusterMap> QueryMap();
  // Installs `map_bytes` (a serialized ClusterMap of epoch `epoch`) on the
  // server; STALE_EPOCH if the server already holds a newer one.
  Status PublishMap(uint64_t epoch, std::span<const uint8_t> map_bytes);

 private:
  uint64_t NextRequestId() { return ++request_id_; }
  // Transport forwarders that stamp tenant_ onto untagged requests; every
  // RPC helper goes through one of them.
  Result<Message> Call(Message request);
  RpcFuture CallAsync(Message request);
  void NoteSent(int64_t n) {
    pages_sent_ += n;
    if (sent_counter_ != nullptr) {
      sent_counter_->Increment(n);
    }
  }
  void NoteFetched(int64_t n) {
    pages_fetched_ += n;
    if (fetched_counter_ != nullptr) {
      fetched_counter_->Increment(n);
    }
  }

  std::string name_;
  std::unique_ptr<Transport> transport_;
  bool stopped_ = false;
  uint16_t tenant_ = 0;
  uint64_t epoch_ = 0;
  const std::atomic<uint32_t>* trace_source_ = nullptr;
  bool no_new_extents_ = false;
  bool alive_ = true;
  uint64_t known_free_pages_ = 0;
  uint64_t request_id_ = 0;
  std::vector<SlotExtent> extents_;
  std::vector<uint64_t> returned_;
  int64_t pages_sent_ = 0;
  int64_t pages_fetched_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  std::string metric_prefix_;
  Counter* sent_counter_ = nullptr;
  Counter* fetched_counter_ = nullptr;
  Counter* dead_marks_ = nullptr;
  Counter* reset_count_ = nullptr;
};

// The registry of peers plus selection helpers.
class Cluster {
 public:
  Cluster() = default;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;

  void AddPeer(std::string name, std::unique_ptr<Transport> transport) {
    peers_.push_back(std::make_unique<ServerPeer>(std::move(name), std::move(transport)));
  }

  size_t size() const { return peers_.size(); }
  ServerPeer& peer(size_t i) { return *peers_[i]; }
  const ServerPeer& peer(size_t i) const { return *peers_[i]; }

  // "Picks the most promising server" (§2.1): the usable peer with the most
  // known free pages. Refreshes load info when `refresh` is set. Returns the
  // peer index or NotFound when every peer is stopped/dead.
  Result<size_t> MostPromising(bool refresh);

  // Round-robin over usable peers starting after `cursor`; updates `cursor`.
  Result<size_t> NextUsable(size_t* cursor) const;

  bool AnyUsable() const;

 private:
  std::vector<std::unique_ptr<ServerPeer>> peers_;
};

}  // namespace rmp

#endif  // SRC_CORE_CLUSTER_H_
