// End-to-end data integrity: real computations (quicksort, two-pass filter)
// running through the paged VM with every byte round-tripping through the
// remote memory pager — including crash + recovery mid-computation. This is
// the strongest functional statement of the paper's reliability claim: the
// application not only survives a workstation crash, it computes the right
// answer.

#include "src/workloads/data_kernels.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

struct KernelParam {
  Policy policy;
  int data_servers;
};

std::string ParamName(const ::testing::TestParamInfo<KernelParam>& info) {
  return std::string(PolicyName(info.param.policy)) + "_" +
         std::to_string(info.param.data_servers);
}

class DataKernelTest : public ::testing::TestWithParam<KernelParam> {
 protected:
  std::unique_ptr<Testbed> MakeBed() {
    TestbedParams params;
    params.policy = GetParam().policy;
    params.data_servers = GetParam().data_servers;
    params.server_capacity_pages = 2048;
    params.pager.alloc_extent_pages = 16;
    auto testbed = Testbed::Create(params);
    EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
    return std::move(*testbed);
  }
};

// ~64 pages of data through a 16-frame VM: heavy paging guaranteed.
constexpr uint64_t kElements = 32 * kPageSize / sizeof(uint64_t);
constexpr uint32_t kFrames = 16;

TEST_P(DataKernelTest, QuicksortThroughThePager) {
  auto bed = MakeBed();
  VmParams vm_params;
  vm_params.virtual_pages = 80;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &bed->backend());
  VmArray<uint64_t> array(&vm, 0, kElements);
  TimeNs now = 0;
  ASSERT_TRUE(FillRandom(&array, &now, /*seed=*/42).ok());
  auto checksum_before = ChecksumVm(array, &now);
  ASSERT_TRUE(checksum_before.ok());
  ASSERT_TRUE(QuicksortVm(&array, &now).ok());
  ASSERT_TRUE(VerifySorted(array, &now).ok());
  // Sorting permutes; the multiset (and thus this order-independent
  // checksum over values) is preserved only if we recompute without index
  // weighting — use a plain sum instead.
  uint64_t sum = 0;
  for (uint64_t i = 0; i < array.size(); ++i) {
    auto v = array.Get(&now, i);
    ASSERT_TRUE(v.ok());
    sum += *v;
  }
  Rng rng(42);
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kElements; ++i) {
    expected += rng.Next();
  }
  EXPECT_EQ(sum, expected);
  EXPECT_GT(vm.stats().pageouts, 30);  // It really paged.
}

TEST_P(DataKernelTest, TwoPassFilterMatchesReference) {
  auto bed = MakeBed();
  VmParams vm_params;
  vm_params.virtual_pages = 160;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &bed->backend());
  VmArray<uint64_t> src(&vm, 0, kElements);
  VmArray<uint64_t> dst(&vm, src.end_offset(), kElements);
  TimeNs now = 0;
  ASSERT_TRUE(FillRandom(&src, &now, /*seed=*/7).ok());
  auto checksum = TwoPassFilterVm(&src, &dst, &now, /*radius=*/3);
  ASSERT_TRUE(checksum.ok());
  EXPECT_EQ(*checksum, TwoPassFilterReference(kElements, 7, 3));
}

TEST_P(DataKernelTest, GaussianSolveThroughThePager) {
  auto bed = MakeBed();
  VmParams vm_params;
  vm_params.virtual_pages = 160;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &bed->backend());
  TimeNs now = 0;
  // 120x121 augmented system of doubles: ~14 pages through 16 frames, with
  // the elimination's row sweeps forcing continuous traffic.
  auto error = GaussSolveVm(&vm, &now, /*base=*/0, /*n=*/120, /*seed=*/101);
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_LT(*error, 1e-9) << "solution drifted from the all-ones truth";
}

TEST_P(DataKernelTest, MatrixVectorThroughThePager) {
  auto bed = MakeBed();
  VmParams vm_params;
  vm_params.virtual_pages = 160;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &bed->backend());
  TimeNs now = 0;
  auto checksum = MatrixVectorVm(&vm, &now, /*base=*/0, /*n=*/500, /*seed=*/77);
  ASSERT_TRUE(checksum.ok()) << checksum.status().ToString();
  EXPECT_EQ(*checksum, MatrixVectorReference(500, 77));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DataKernelTest,
    ::testing::Values(KernelParam{Policy::kNoReliability, 2},
                      KernelParam{Policy::kMirroring, 3},
                      KernelParam{Policy::kParityLogging, 4},
                      KernelParam{Policy::kBasicParity, 3},
                      KernelParam{Policy::kWriteThrough, 2}, KernelParam{Policy::kDisk, 0}),
    ParamName);

// The flagship scenario: a server crashes in the MIDDLE of the sort; the
// pager recovers from parity; the sort finishes; the output is correct.
TEST(DataKernelCrashTest, QuicksortSurvivesMidRunCrashUnderParityLogging) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 2048;
  params.pager.alloc_extent_pages = 16;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  VmParams vm_params;
  vm_params.virtual_pages = 80;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &(*bed)->backend());
  VmArray<uint64_t> array(&vm, 0, kElements);
  TimeNs now = 0;
  ASSERT_TRUE(FillRandom(&array, &now, /*seed=*/11).ok());
  // Push everything out to the cluster, then crash a server. The next
  // pagein reconstructs transparently (PageIn -> Recover).
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  (*bed)->CrashServer(1);
  ASSERT_TRUE(QuicksortVm(&array, &now).ok());
  ASSERT_TRUE(VerifySorted(array, &now).ok());
  Rng rng(11);
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kElements; ++i) {
    expected += rng.Next();
  }
  uint64_t sum = 0;
  for (uint64_t i = 0; i < array.size(); ++i) {
    auto v = array.Get(&now, i);
    ASSERT_TRUE(v.ok());
    sum += *v;
  }
  EXPECT_EQ(sum, expected);
}

TEST(DataKernelCrashTest, GaussianSolveSurvivesCrashUnderParityLogging) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 2048;
  params.pager.alloc_extent_pages = 16;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  VmParams vm_params;
  vm_params.virtual_pages = 160;
  vm_params.physical_frames = 8;  // Tiny memory: the matrix lives remotely.
  PagedVm vm(vm_params, &(*bed)->backend());
  TimeNs now = 0;
  // Warm the cluster with part of the matrix, crash, then solve end to end.
  VmArray<double> warm(&vm, 0, 2048);
  for (uint64_t i = 0; i < warm.size(); ++i) {
    ASSERT_TRUE(warm.Set(&now, i, 1.0).ok());
  }
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  (*bed)->CrashServer(2);
  auto error = GaussSolveVm(&vm, &now, /*base=*/0, /*n=*/100, /*seed=*/55);
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_LT(*error, 1e-9);
}

TEST(DataKernelCrashTest, FilterSurvivesCrashUnderMirroring) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 2048;
  params.pager.alloc_extent_pages = 16;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  VmParams vm_params;
  vm_params.virtual_pages = 160;
  vm_params.physical_frames = kFrames;
  PagedVm vm(vm_params, &(*bed)->backend());
  VmArray<uint64_t> src(&vm, 0, kElements);
  VmArray<uint64_t> dst(&vm, src.end_offset(), kElements);
  TimeNs now = 0;
  ASSERT_TRUE(FillRandom(&src, &now, /*seed=*/13).ok());
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  (*bed)->CrashServer(0);
  auto checksum = TwoPassFilterVm(&src, &dst, &now, /*radius=*/5);
  ASSERT_TRUE(checksum.ok()) << checksum.status().ToString();
  EXPECT_EQ(*checksum, TwoPassFilterReference(kElements, 13, 5));
}

}  // namespace
}  // namespace rmp
