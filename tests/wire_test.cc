#include "src/proto/wire.h"

#include <gtest/gtest.h>

#include "src/util/bytes.h"

namespace rmp {
namespace {

Message SamplePage(uint64_t request_id) {
  PageBuffer page;
  FillPattern(page.span(), request_id);
  return MakePageOut(request_id, 17, page.span());
}

TEST(WireTest, HeaderSizeAudited) {
  const Message m = MakeLoadQuery(1);
  EXPECT_EQ(Encode(m).size(), kWireHeaderSize + 4);
}

TEST(WireTest, RoundTripEmptyPayload) {
  const Message m = MakeAllocRequest(7, 256);
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(WireTest, RoundTripPagePayload) {
  const Message m = SamplePage(11);
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(decoded->payload), 11));
}

// Round-trip every message constructor.
class WireRoundTripTest : public ::testing::TestWithParam<Message> {};

TEST_P(WireRoundTripTest, EncodeDecodeIdentity) {
  const Message& m = GetParam();
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

std::vector<Message> AllMessageKinds() {
  PageBuffer page;
  FillPattern(page.span(), 3);
  std::vector<Message> all;
  all.push_back(MakeAllocRequest(1, 64));
  all.push_back(MakeAllocReply(1, 64, ErrorCode::kOk));
  all.push_back(MakeAllocReply(2, 0, ErrorCode::kNoSpace));
  all.push_back(MakeFreeRequest(3, 10, 4));
  all.push_back(MakePageOut(4, 99, page.span()));
  all.push_back(MakePageOutAck(4, 99, ErrorCode::kOk, /*advise_stop=*/true));
  all.push_back(MakePageIn(5, 99));
  all.push_back(MakePageInReply(5, 99, page.span(), ErrorCode::kOk));
  all.push_back(MakePageInReply(6, 99, {}, ErrorCode::kNotFound));
  all.push_back(MakeLoadQuery(7));
  all.push_back(MakeLoadReport(7, 100, 4096, /*advise_stop=*/false));
  all.push_back(MakeShutdown(8));
  all.push_back(MakeErrorReply(9, ErrorCode::kProtocol));
  Message delta = MakePageOut(10, 5, page.span());
  delta.type = MessageType::kDeltaPageOut;
  all.push_back(delta);
  Message merge = MakePageOut(11, 5, page.span());
  merge.type = MessageType::kXorMerge;
  all.push_back(merge);
  all.push_back(MakeAuth(12, "secret-token"));
  all.push_back(MakeAuthReply(12, ErrorCode::kOk));
  all.push_back(MakeAuthReply(13, ErrorCode::kFailedPrecondition));
  return all;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WireRoundTripTest, ::testing::ValuesIn(AllMessageKinds()));

TEST(WireTest, AdviseStopFlagSurvives) {
  const Message ack = MakePageOutAck(1, 2, ErrorCode::kOk, true);
  auto decoded = Decode(std::span<const uint8_t>(Encode(ack)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->advise_stop());
}

TEST(WireTest, CorruptPayloadDetected) {
  std::vector<uint8_t> encoded = Encode(SamplePage(1));
  encoded[kWireHeaderSize + 4 + 100] ^= 0xff;  // Flip a payload byte.
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);
}

TEST(WireTest, BadMagicRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded[0] = 0x00;
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(WireTest, UnknownTypeRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded[4] = 250;
  EXPECT_FALSE(Decode(std::span<const uint8_t>(encoded)).ok());
}

TEST(WireTest, TruncatedMessageRejected) {
  const std::vector<uint8_t> encoded = Encode(SamplePage(1));
  auto decoded = Decode(std::span<const uint8_t>(encoded.data(), encoded.size() - 1));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, TrailingGarbageRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded.push_back(0);
  EXPECT_FALSE(Decode(std::span<const uint8_t>(encoded)).ok());
}

TEST(FrameReaderTest, ReassemblesFromSingleFeed) {
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(Encode(MakeLoadQuery(5))));
  auto m = reader.Next();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, MessageType::kLoadQuery);
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
}

TEST(FrameReaderTest, ReassemblesByteByByte) {
  const std::vector<uint8_t> encoded = Encode(SamplePage(21));
  FrameReader reader;
  for (size_t i = 0; i + 1 < encoded.size(); ++i) {
    reader.Feed(std::span<const uint8_t>(&encoded[i], 1));
    EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
  }
  reader.Feed(std::span<const uint8_t>(&encoded.back(), 1));
  auto m = reader.Next();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(m->payload), 21));
}

TEST(FrameReaderTest, MultipleMessagesInOneFeed) {
  std::vector<uint8_t> stream;
  EncodeTo(MakeLoadQuery(1), &stream);
  EncodeTo(SamplePage(2), &stream);
  EncodeTo(MakeShutdown(3), &stream);
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(stream));
  EXPECT_EQ(reader.Next()->type, MessageType::kLoadQuery);
  EXPECT_EQ(reader.Next()->type, MessageType::kPageOut);
  EXPECT_EQ(reader.Next()->type, MessageType::kShutdown);
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, DesynchronizedStreamReportsProtocolError) {
  FrameReader reader;
  std::vector<uint8_t> junk(kWireHeaderSize + 4, 0xab);
  reader.Feed(std::span<const uint8_t>(junk));
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kProtocol);
}

TEST(FrameReaderTest, CorruptFrameConsumedNotStuck) {
  std::vector<uint8_t> encoded = Encode(SamplePage(1));
  encoded[kWireHeaderSize + 4] ^= 0xff;
  std::vector<uint8_t> stream = encoded;
  EncodeTo(MakeLoadQuery(2), &stream);
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(stream));
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kCorruption);
  // The broken frame was consumed; the next one still parses.
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->type, MessageType::kLoadQuery);
}

TEST(WireTest, MessageTypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kPageOut), "PAGEOUT");
  EXPECT_EQ(MessageTypeName(MessageType::kLoadReport), "LOAD_REPORT");
  EXPECT_EQ(MessageTypeName(MessageType::kXorMerge), "XOR_MERGE");
}

}  // namespace
}  // namespace rmp
