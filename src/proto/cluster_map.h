// Epoch-numbered cluster map for elastic membership (DESIGN.md §16).
//
// The paper's pager runs against a server set fixed at startup; this module
// makes placement a first-class, versioned runtime artifact. A ClusterMap
// carries a monotonically increasing epoch, the member list (server id,
// incarnation, lifecycle state), and the parameters of a consistent-hash
// ring mapping page groups to owners. The ring itself is *derived* — every
// holder of the same member list computes byte-identical vnode points — so
// the wire format only ships the inputs, and two maps with equal epochs are
// guaranteed to agree on placement.
//
// Serialized layout (all integers little-endian, fail-closed decoder):
//   magic        u32   'RMPM'
//   epoch        u64
//   groups       u32   page groups on the ring, in [1, kMaxPageGroups]
//   member_count u32   in [1, kMaxClusterMembers]
//   per member:
//     server_id    u32
//     incarnation  u64
//     state        u8   ClusterMember::State
//
// Every bound is checked on decode and the exact byte length must match;
// truncated, oversized, or out-of-range frames are rejected with
// ProtocolError like the rest of the wire layer.

#ifndef SRC_PROTO_CLUSTER_MAP_H_
#define SRC_PROTO_CLUSTER_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/status.h"

namespace rmp {

// Bounds enforced by the decoder so a hostile frame cannot demand unbounded
// member or ring state.
inline constexpr uint32_t kMaxClusterMembers = 1024;
inline constexpr uint32_t kMaxPageGroups = 65536;
// Virtual nodes per ACTIVE member on the ring. More vnodes smooth the load
// split; 64 keeps the moved-fraction on a join near 1/n without making ring
// rebuilds expensive.
inline constexpr uint32_t kRingVnodes = 64;

struct ClusterMember {
  enum class State : uint8_t {
    kActive = 0,   // On the ring: owns hash ranges, accepts new pages.
    kLeaving = 1,  // Decommissioning: off the ring (owns nothing new) but
                   // still serving reads for pages not yet drained away.
  };

  uint32_t server_id = 0;    // Index into the client's ServerCluster.
  uint64_t incarnation = 0;  // Server's restart counter at admission time.
  State state = State::kActive;

  bool operator==(const ClusterMember& other) const {
    return server_id == other.server_id && incarnation == other.incarnation &&
           state == other.state;
  }
};

class ClusterMap {
 public:
  ClusterMap() = default;

  // Builds a map and derives its ring. `groups` and the member list are
  // clamped/validated by the caller; Build asserts the decoder's bounds.
  static ClusterMap Build(uint64_t epoch, uint32_t groups, std::vector<ClusterMember> members);

  uint64_t epoch() const { return epoch_; }
  uint32_t groups() const { return groups_; }
  const std::vector<ClusterMember>& members() const { return members_; }

  // The member entry for `server_id`, or nullptr if not in the map.
  const ClusterMember* FindMember(uint32_t server_id) const;

  // Number of members in State::kActive (i.e. on the ring).
  size_t active_members() const;

  // The page group a page id hashes into.
  uint32_t GroupOf(uint64_t page_id) const;

  // The ring owner of `group`: the ACTIVE member whose vnode is the hash
  // successor of the group's point. Returns the server_id. Requires at least
  // one ACTIVE member (asserted).
  uint32_t OwnerOf(uint32_t group) const;

  // The first `replicas` *distinct* ACTIVE owners walking the ring from the
  // group's point — the owner chain for a mirrored placement. Returns fewer
  // entries when the cluster has fewer ACTIVE members than `replicas`.
  std::vector<uint32_t> OwnerChain(uint32_t group, size_t replicas) const;

  // Wire codec. Deserialize fails closed: exact length, every bound checked.
  std::vector<uint8_t> Serialize() const;
  static Result<ClusterMap> Deserialize(std::span<const uint8_t> bytes);

  bool operator==(const ClusterMap& other) const {
    return epoch_ == other.epoch_ && groups_ == other.groups_ && members_ == other.members_;
  }

 private:
  void RebuildRing();

  uint64_t epoch_ = 0;  // 0 = "no map": epoch numbering starts at 1.
  uint32_t groups_ = 0;
  std::vector<ClusterMember> members_;

  // Derived: (vnode point, server_id) sorted by point. ACTIVE members only.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace rmp

#endif  // SRC_PROTO_CLUSTER_MAP_H_
