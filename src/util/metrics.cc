#include "src/util/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace rmp {
namespace {

// Relaxed atomic add for doubles (no fetch_add for floating point pre-C++20
// on all our toolchains): CAS loop, contention is reporting-path rare.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double x) {
  double cur = target->load(std::memory_order_relaxed);
  while (x < cur && !target->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double x) {
  double cur = target->load(std::memory_order_relaxed);
  while (x > cur && !target->compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

double HistogramData::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  if (count == 0) {
    return 0.0;
  }
  // The exact extremes need no interpolation — and a one-sample histogram
  // has nothing to interpolate between.
  if (p >= 100.0 || count == 1) {
    return max;
  }
  if (p <= 0.0) {
    return min;
  }
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t seen = 0;
  const int n = static_cast<int>(buckets.size());
  for (int i = 0; i < n; ++i) {
    const int64_t in_bucket = buckets[i];
    if (in_bucket > 0 && static_cast<double>(seen + in_bucket) >= target) {
      const double frac = (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double value;
      if (options.log_scale) {
        const double log_lo = std::log(options.lo);
        const double log_width = (std::log(options.hi) - log_lo) / n;
        value = std::exp(log_lo + (static_cast<double>(i) + frac) * log_width);
      } else {
        const double width = (options.hi - options.lo) / n;
        value = options.lo + (static_cast<double>(i) + frac) * width;
      }
      // Clamped samples land in edge buckets whose nominal range does not
      // contain them; the observed extremes are the honest bounds.
      return std::clamp(value, min, max);
    }
    seen += in_bucket;
  }
  return max;
}

HistogramMetric::HistogramMetric(const HistogramOptions& options)
    : options_(options), buckets_(static_cast<size_t>(std::max(1, options.buckets))) {
  assert(options_.hi > options_.lo);
  options_.buckets = static_cast<int>(buckets_.size());
  if (options_.log_scale) {
    assert(options_.lo > 0.0);
    log_lo_ = std::log(options_.lo);
    log_width_ = (std::log(options_.hi) - log_lo_) / options_.buckets;
  } else {
    bucket_width_ = (options_.hi - options_.lo) / options_.buckets;
  }
}

int HistogramMetric::BucketIndex(double x) const {
  int idx;
  if (options_.log_scale) {
    idx = x <= 0.0 ? 0 : static_cast<int>((std::log(x) - log_lo_) / log_width_);
  } else {
    idx = static_cast<int>((x - options_.lo) / bucket_width_);
  }
  return std::clamp(idx, 0, options_.buckets - 1);
}

void HistogramMetric::Observe(double x) {
  buckets_[static_cast<size_t>(BucketIndex(x))].fetch_add(1, std::memory_order_relaxed);
  // First-sample min/max initialization: claim the slot with count 0 -> 1.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // Racy first observation is fine: the CAS folds below still converge on
    // the true extremes because every observer also runs AtomicMin/Max.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  }
  AtomicMin(&min_, x);
  AtomicMax(&max_, x);
  AtomicAdd(&sum_, x);
}

HistogramData HistogramMetric::Snapshot() const {
  HistogramData data;
  data.options = options_;
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.min = data.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  data.max = data.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  data.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    data.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  return data;
}

void HistogramMetric::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  auto it = values_.find(std::string(name));
  return it == values_.end() ? nullptr : &it->second;
}

int64_t MetricsSnapshot::Scalar(std::string_view name) const {
  const MetricValue* v = Find(name);
  if (v == nullptr) {
    return 0;
  }
  return v->kind == MetricValue::Kind::kHistogram ? v->histogram.count : v->scalar;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [key, value] : delta.values_) {
    auto it = earlier.values_.find(key);
    if (it == earlier.values_.end() || it->second.kind != value.kind) {
      continue;
    }
    switch (value.kind) {
      case MetricValue::Kind::kCounter:
        value.scalar -= it->second.scalar;
        break;
      case MetricValue::Kind::kGauge:
        break;  // Levels have no delta; keep the current reading.
      case MetricValue::Kind::kHistogram: {
        HistogramData& h = value.histogram;
        const HistogramData& old = it->second.histogram;
        if (h.buckets.size() == old.buckets.size()) {
          h.count -= old.count;
          h.sum -= old.sum;
          for (size_t i = 0; i < h.buckets.size(); ++i) {
            h.buckets[i] -= old.buckets[i];
          }
          // Extremes are not invertible; the window's true min/max is
          // unknown, so report the lifetime bounds (documented caveat).
        }
        break;
      }
    }
  }
  return delta;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [key, value] : values_) {
    switch (value.kind) {
      case MetricValue::Kind::kCounter:
        std::snprintf(line, sizeof(line), "%-48s counter %lld\n", key.c_str(),
                      static_cast<long long>(value.scalar));
        break;
      case MetricValue::Kind::kGauge:
        std::snprintf(line, sizeof(line), "%-48s gauge   %lld\n", key.c_str(),
                      static_cast<long long>(value.scalar));
        break;
      case MetricValue::Kind::kHistogram: {
        const HistogramData& h = value.histogram;
        std::snprintf(line, sizeof(line),
                      "%-48s histo   count=%lld mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
                      key.c_str(), static_cast<long long>(h.count),
                      h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0, h.Percentile(50),
                      h.Percentile(95), h.Percentile(99), h.max);
        break;
      }
    }
    out += line;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + key + "\":";
    switch (value.kind) {
      case MetricValue::Kind::kCounter:
      case MetricValue::Kind::kGauge:
        out += value.kind == MetricValue::Kind::kCounter ? "{\"kind\":\"counter\",\"value\":"
                                                         : "{\"kind\":\"gauge\",\"value\":";
        out += std::to_string(value.scalar);
        out += "}";
        break;
      case MetricValue::Kind::kHistogram: {
        const HistogramData& h = value.histogram;
        out += "{\"kind\":\"histogram\",\"count\":" + std::to_string(h.count) + ",\"sum\":";
        AppendJsonNumber(&out, h.sum);
        out += ",\"min\":";
        AppendJsonNumber(&out, h.min);
        out += ",\"max\":";
        AppendJsonNumber(&out, h.max);
        out += ",\"p50\":";
        AppendJsonNumber(&out, h.Percentile(50));
        out += ",\"p95\":";
        AppendJsonNumber(&out, h.Percentile(95));
        out += ",\"p99\":";
        AppendJsonNumber(&out, h.Percentile(99));
        out += "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();  // Never destroyed.
  return *global;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricValue::Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.kind == MetricValue::Kind::kCounter ? it->second.counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricValue::Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.kind == MetricValue::Kind::kGauge ? it->second.gauge.get() : nullptr;
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name,
                                               const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricValue::Kind::kHistogram;
    entry.histogram = std::make_unique<HistogramMetric>(options);
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second.kind == MetricValue::Kind::kHistogram ? it->second.histogram.get() : nullptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    MetricValue value;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        value.scalar = entry.counter->value();
        break;
      case MetricValue::Kind::kGauge:
        value.scalar = entry.gauge->value();
        break;
      case MetricValue::Kind::kHistogram:
        value.histogram = entry.histogram->Snapshot();
        break;
    }
    snapshot.values_.emplace(key, std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::Reset() { ResetPrefix(""); }

void MetricsRegistry::ResetPrefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    if (key.size() < prefix.size() || std::string_view(key).substr(0, prefix.size()) != prefix) {
      continue;
    }
    switch (entry.kind) {
      case MetricValue::Kind::kCounter:
        entry.counter->Reset();
        break;
      case MetricValue::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricValue::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace rmp
