// Fig. 1 substrate: a diurnal model of memory usage across a workstation
// cluster, standing in for the week of profiling (Feb 2-8, 1995) the paper
// ran over its 16 workstations / 800 MB lab.
//
// Shape targets from the figure: free memory peaks above 700 MB at night and
// through the weekend, dips hardest around noon and mid-afternoon on working
// days, and never falls below ~300 MB.

#ifndef SRC_MODEL_CLUSTER_USAGE_H_
#define SRC_MODEL_CLUSTER_USAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/units.h"

namespace rmp {

struct ClusterUsageParams {
  int workstations = 16;
  double memory_mb_each = 50.0;
  double os_base_mb = 10.0;          // Kernel + daemons, always resident.
  double session_min_mb = 8.0;       // Interactive session (X, editor...).
  double session_max_mb = 30.0;
  double batch_job_mb = 14.0;        // VERILOG-style batch simulation.
  double batch_probability = 0.08;   // Per-workstation, any hour.
  uint64_t seed = 19950202;          // The paper's week.
};

struct UsageSample {
  double hours_since_start = 0.0;  // The trace starts Thursday 00:00.
  int day_of_week = 0;             // 0 = Thursday ... 6 = Wednesday.
  double hour_of_day = 0.0;
  double free_mb = 0.0;
  double used_mb = 0.0;
};

// Returns samples at `step_minutes` over one week.
std::vector<UsageSample> SimulateClusterWeek(const ClusterUsageParams& params, int step_minutes);

// Day name for reporting ("Thursday"...).
std::string DayName(int day_of_week);

// Occupancy probability of an interactive session at the given local time —
// the diurnal curve itself, exposed for tests (monotone into the midday
// peak, near zero at 4am, suppressed on weekends).
double SessionProbability(int day_of_week, double hour_of_day);

}  // namespace rmp

#endif  // SRC_MODEL_CLUSTER_USAGE_H_
