#include "src/net/token_ring_model.h"

#include <cassert>
#include <cstdio>

namespace rmp {

TokenRingModel::TokenRingModel(const TokenRingParams& params) : params_(params) {
  assert(params_.bandwidth_mbps > 0.0);
  assert(params_.background_stations >= 0);
}

double TokenRingModel::RingEfficiency(int stations) const {
  assert(stations >= 1);
  // Each token rotation services every active station once; the rotation
  // wastes one token_walk_time regardless of how many frames it carries.
  const double frame_time = static_cast<double>(
      WireTime(params_.mtu_payload_bytes + params_.frame_overhead_bytes, params_.bandwidth_mbps));
  const double useful = frame_time * static_cast<double>(stations);
  return useful / (useful + static_cast<double>(params_.token_walk_time));
}

DurationNs TokenRingModel::TransferTime(uint64_t bytes) const {
  DurationNs raw = 0;
  uint64_t remaining = bytes == 0 ? 1 : bytes;
  while (remaining > 0) {
    const uint64_t payload =
        remaining > params_.mtu_payload_bytes ? params_.mtu_payload_bytes : remaining;
    remaining -= payload;
    raw += WireTime(payload + params_.frame_overhead_bytes, params_.bandwidth_mbps);
    raw += params_.per_frame_host_cost;
  }
  const int stations = params_.background_stations + 1;
  // Fair round-robin sharing: with k active stations this client sees 1/k of
  // the ring's (high, non-collapsing) efficiency.
  const double share = RingEfficiency(stations) / static_cast<double>(stations);
  return static_cast<DurationNs>(static_cast<double>(raw) / share);
}

double TokenRingModel::EffectiveBandwidthMbps() const {
  const DurationNs t = TransferTime(kPageSize);
  if (t <= 0) {
    return 0.0;
  }
  return static_cast<double>(kPageSize) * 8.0 / ToSeconds(t) / 1e6;
}

std::string TokenRingModel::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "token-ring-%.0fMbps", params_.bandwidth_mbps);
  return buf;
}

}  // namespace rmp
