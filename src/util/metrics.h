// Process-wide telemetry: named counters, gauges, and latency histograms
// behind one MetricsRegistry (DESIGN.md §12).
//
// The paper's evaluation (§4) decomposes paging cost stage by stage; our
// reproduction grew one ad-hoc counter struct per subsystem (BackendStats,
// MemoryServerStats, HealthStats, RepairStats, ...) with no way to see them
// together, diff them across a run window, or pull them off a remote server.
// This module is the common substrate those surfaces migrate onto:
//
//   Counter          — monotonic atomic int64 (events, pages, bytes).
//   Gauge            — atomic int64 level (queue depth, in-flight, occupancy).
//   HistogramMetric  — thread-safe distribution with linear or log-scale
//                      buckets (latencies spanning µs to seconds need log).
//   MetricsRegistry  — owns metrics by hierarchical "subsystem.name" key,
//                      hands out stable pointers for lock-free hot-path
//                      updates, and produces snapshots.
//   MetricsSnapshot  — a point-in-time copy: delta against an earlier
//                      snapshot, text and JSON export.
//
// Hot-path contract: Get* is a one-time (mutex-guarded) lookup; the returned
// pointer lives as long as the registry and every update on it is a relaxed
// atomic op. Prefix-scoped Reset (ResetPrefix) supports per-incarnation
// surfaces: a restarted server or a Reset() peer zeroes only its own metrics.

#ifndef SRC_UTIL_METRICS_H_
#define SRC_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rmp {

// Monotonic event counter. All updates are relaxed atomics: counters are
// read for reporting, not for synchronization.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Atomic-compatible aliases so counter-backed stat structs keep the
  // std::atomic surface their call sites already use. All orders collapse to
  // relaxed: counters are reporting data, not synchronization.
  int64_t load(std::memory_order = std::memory_order_relaxed) const { return value(); }
  void store(int64_t v, std::memory_order = std::memory_order_relaxed) {
    value_.store(v, std::memory_order_relaxed);
  }
  int64_t fetch_add(int64_t n, std::memory_order = std::memory_order_relaxed) {
    return value_.fetch_add(n, std::memory_order_relaxed);
  }
  operator int64_t() const { return value(); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A level that can move both ways (queue depth, live pages, in-flight RPCs).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

struct HistogramOptions {
  double lo = 0.0;
  double hi = 1.0;
  int buckets = 32;
  // Geometric bucket widths between lo and hi (lo must be > 0): the right
  // shape for latencies spanning microseconds to seconds, where linear
  // buckets either blur the fast path or truncate the tail.
  bool log_scale = false;
};

// The numeric state of one histogram at a point in time.
struct HistogramData {
  HistogramOptions options;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // Meaningful only when count > 0.
  double max = 0.0;
  std::vector<int64_t> buckets;

  // Approximate p-th percentile (p in [0, 100]) from the buckets: exact max
  // at p=100 and for single-sample data; interpolated (linearly, or
  // geometrically for log-scale buckets) otherwise, clamped to [min, max].
  double Percentile(double p) const;
};

// Thread-safe histogram: atomic buckets and moments, min/max via CAS. One
// Observe is a handful of relaxed atomic ops — safe on RPC hot paths.
class HistogramMetric {
 public:
  explicit HistogramMetric(const HistogramOptions& options);

  void Observe(double x);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Percentile(double p) const { return Snapshot().Percentile(p); }
  const HistogramOptions& options() const { return options_; }

  HistogramData Snapshot() const;
  void Reset();

 private:
  int BucketIndex(double x) const;

  HistogramOptions options_;
  double log_lo_ = 0.0;      // ln(lo) when log-scale.
  double log_width_ = 0.0;   // ln(hi/lo)/buckets when log-scale.
  double bucket_width_ = 0.0;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// One metric's value inside a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  int64_t scalar = 0;       // Counter / gauge value.
  HistogramData histogram;  // Kind::kHistogram only.
};

// Point-in-time copy of a registry, ordered by key for stable export.
class MetricsSnapshot {
 public:
  const std::map<std::string, MetricValue>& values() const { return values_; }
  const MetricValue* Find(std::string_view name) const;
  // Scalar convenience: counter/gauge value, or histogram count; 0 if absent.
  int64_t Scalar(std::string_view name) const;

  // This snapshot minus `earlier`: counters and histogram counts subtract,
  // gauges keep their current level (a level has no meaningful delta).
  // Metrics absent from `earlier` pass through unchanged.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  // "key kind value" lines, one metric per line, keys sorted.
  std::string ToText() const;
  // One JSON object: {"key":{"kind":...,"value":...},...}; histograms carry
  // count/sum/min/max and percentiles. Stable key order.
  std::string ToJson() const;

 private:
  friend class MetricsRegistry;
  std::map<std::string, MetricValue> values_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry (transport-level metrics with no natural
  // owner register here). Subsystems with a lifetime (a server, a backend)
  // own their own instance so restarts can reset in isolation.
  static MetricsRegistry& Global();

  // Lookup-or-create. The returned pointer is stable for the registry's
  // lifetime. A name registered once keeps its kind; asking for the same
  // name as a different kind returns nullptr (programming error surfaced
  // loudly in tests rather than silently aliasing).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // `options` applies on first registration only.
  HistogramMetric* GetHistogram(std::string_view name,
                                const HistogramOptions& options = HistogramOptions());

  MetricsSnapshot Snapshot() const;
  std::string ExportText() const { return Snapshot().ToText(); }
  std::string ExportJson() const { return Snapshot().ToJson(); }

  // Zeroes every metric (values only; registrations and pointers survive).
  void Reset();
  // Zeroes metrics whose key starts with `prefix` — the per-incarnation
  // reset a restarted server or a Reset() peer performs.
  void ResetPrefix(std::string_view prefix);

  size_t size() const;

 private:
  struct Entry {
    MetricValue::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace rmp

#endif  // SRC_UTIL_METRICS_H_
