// Deterministic fault injection at the transport boundary.
//
// The paper's reliability claim (§4) is that remote memory paging survives a
// single server crash under mirroring, parity, parity logging and
// write-through. Exercising that claim requires crashing servers *mid-RPC* —
// between a request landing and its reply returning, between a stripe's data
// write and its parity flush — not only at the quiescent points
// Testbed::CrashServer reaches naturally. This module provides that:
//
//   FaultPlan               — a seeded, deterministic schedule of faults,
//                             triggered by op-count, simulated time, or a
//                             seeded per-op probability, optionally filtered
//                             by message type. The same seed always yields
//                             the same fault interleaving, so any failing
//                             scenario is reproducible from one integer.
//   FaultInjectingTransport — a Transport decorator that consults the plan
//                             on every RPC and perturbs delivery: drop the
//                             request, drop the reply, delay it past a
//                             deadline, deliver it twice, flip payload bits
//                             (caught by the wire CRC), sever the
//                             connection, or crash the server before/after
//                             the request applies (via a crash hook the
//                             Testbed wires to CrashServer).
//
// Both the in-process testbed transports and TcpTransport can be wrapped:
// the decorator only speaks the Transport interface. The non-faulted path
// forwards CallAsync to the inner transport, so pipelining is preserved when
// no fault fires.

#ifndef SRC_TRANSPORT_FAULT_INJECTION_H_
#define SRC_TRANSPORT_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/transport/transport.h"
#include "src/util/events.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace rmp {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDropRequest,       // Request never reaches the server; client sees UNAVAILABLE.
  kDropReply,         // Server applies the op, the ack is lost: the classic
                      // ambiguous-outcome window (did my pageout land?).
  kDelay,             // Reply arrives late; past the RPC deadline it becomes
                      // a timeout with the op applied server-side.
  kDuplicate,         // Request delivered twice (retransmit storm); exercises
                      // server-side idempotency.
  kCorruptPayload,    // A payload bit flips in flight; the wire CRC must
                      // catch it and the op must not apply.
  kDisconnect,        // Connection drops (server process alive); persists
                      // until Reconnect().
  kCrashBeforeApply,  // Server workstation dies before applying the request.
  kCrashAfterApply,   // Server applies the request, then dies; the reply is
                      // lost with it.
};

std::string_view FaultKindName(FaultKind kind);

// One scheduled fault. A rule *matches* an operation when the optional
// message-type filter accepts it; among matching operations the rule *fires*
// when any trigger condition holds, at most `repeat` times.
struct FaultRule {
  FaultKind kind = FaultKind::kNone;

  // Fires on the `at_op`-th matching operation (0-based). Negative: unused.
  int64_t at_op = -1;
  // Fires on the first matching operation at or after this simulated time
  // (requires a clock hook on the wrapper). 0: unused.
  TimeNs at_time = 0;
  // Fires on any matching operation with this probability, drawn from the
  // plan's seeded RNG (deterministic given the seed and the op sequence).
  double probability = 0.0;

  // Only operations of this message type match; nullopt matches everything.
  std::optional<MessageType> only_type;

  // How many times the rule may fire; negative = unlimited.
  int repeat = 1;

  // Injected latency for kDelay.
  DurationNs delay = 0;
};

// Counts of injected faults, by kind (index = FaultKind value).
struct FaultStats {
  int64_t injected[9] = {};
  int64_t total() const {
    int64_t n = 0;
    for (int64_t k : injected) {
      n += k;
    }
    return n;
  }
  int64_t count(FaultKind kind) const { return injected[static_cast<size_t>(kind)]; }
};

// A deterministic fault schedule. May be shared by several transports (the
// op counter is then global across them, which lets one plan order faults
// across peers); all methods are thread-safe.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : seed_(seed), rng_(seed) {}

  void AddRule(FaultRule rule);

  // Decision for the next operation `request` issued at simulated time
  // `now`. The first firing rule wins; *fired (when non-null) receives a
  // copy of it (for kDelay's duration). Advances the op counter and — for
  // probability rules — the RNG, so calls must be made once per op.
  FaultKind Decide(const Message& request, TimeNs now, FaultRule* fired);

  uint64_t seed() const { return seed_; }
  int64_t ops_seen() const;
  int64_t faults_fired() const;

  // Flight recorder (DESIGN.md §17): every firing appends one kFault event
  // ("<KIND> on <op> at op #N") under `actor`. Not owned; null disables.
  void AttachEvents(EventJournal* journal, std::string actor = "faults");

 private:
  struct ArmedRule {
    FaultRule rule;
    int64_t matches_seen = 0;
    int fired = 0;
  };

  const uint64_t seed_;
  mutable std::mutex mutex_;
  EventJournal* events_journal_ = nullptr;
  std::string actor_;
  Rng rng_;
  std::vector<ArmedRule> rules_;
  int64_t ops_seen_ = 0;
  int64_t faults_fired_ = 0;
};

// Transport decorator that injects the plan's faults. Without a plan (or
// with a plan that never fires) it is a transparent passthrough — CallAsync
// keeps the inner transport's pipelining.
class FaultInjectingTransport final : public Transport {
 public:
  using CrashHook = std::function<void()>;
  using Clock = std::function<TimeNs()>;

  explicit FaultInjectingTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  // --- Configuration -------------------------------------------------------

  void InstallPlan(std::shared_ptr<FaultPlan> plan);
  void ClearPlan();
  bool has_plan() const;

  // Invoked when a kCrashBeforeApply / kCrashAfterApply fault fires; the
  // Testbed wires this to CrashServer(i). Called without any wrapper lock
  // held, so the hook may re-enter Disconnect().
  void SetCrashHook(CrashHook hook);

  // Source of simulated time for FaultRule::at_time triggers. Without a
  // clock, time-triggered rules never fire.
  void SetClock(Clock clock);

  // Per-RPC deadline: an injected delay longer than this turns into an
  // UNAVAILABLE timeout (the op still applied server-side). 0 = no deadline,
  // delays always succeed.
  void set_rpc_deadline(DurationNs deadline) { rpc_deadline_.store(deadline); }
  DurationNs rpc_deadline() const { return rpc_deadline_.load(); }

  // --- Fault state ---------------------------------------------------------

  // Severs the logical connection (kDisconnect does this internally). The
  // inner transport is left open, so Reconnect() fully restores service —
  // this models a dropped connection to a live server, distinct from a
  // crash.
  void Disconnect() { connected_.store(false); }
  void Reconnect() { connected_.store(true); }

  const FaultStats& fault_stats() const { return fault_stats_; }
  // Total injected latency that successfully-delivered replies accrued
  // (kDelay faults under the deadline). The paging layers fold this into
  // their timing via the retry/backoff accounting.
  DurationNs injected_delay() const { return injected_delay_.load(); }

  Transport& inner() { return *inner_; }

  // --- Transport -----------------------------------------------------------

  Result<Message> Call(const Message& request) override;
  RpcFuture CallAsync(Message request) override;
  Status SendOneWay(const Message& request) override;
  bool connected() const override { return connected_.load() && inner_->connected(); }
  void Close() override {
    connected_.store(false);
    inner_->Close();
  }

 private:
  // Applies the decided fault around one blocking exchange.
  Result<Message> FaultedCall(const Message& request, FaultKind kind, const FaultRule& rule);

  void CountFault(FaultKind kind);
  void InvokeCrashHook();

  std::unique_ptr<Transport> inner_;
  std::atomic<bool> connected_{true};
  std::atomic<int64_t> rpc_deadline_{0};
  std::atomic<int64_t> injected_delay_{0};

  mutable std::mutex mutex_;  // Guards plan_, hooks and fault_stats_.
  std::shared_ptr<FaultPlan> plan_;
  CrashHook crash_hook_;
  Clock clock_;
  FaultStats fault_stats_;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_FAULT_INJECTION_H_
