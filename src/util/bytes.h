// Page-sized byte buffers and the XOR kernels that parity policies build on.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/units.h"

namespace rmp {

// One operating-system page of data (8 KB). Value-semantic; zero-filled on
// construction, which doubles as the parity-accumulator identity.
class PageBuffer {
 public:
  PageBuffer() : data_(kPageSize, 0) {}
  explicit PageBuffer(std::span<const uint8_t> bytes) : data_(kPageSize, 0) { Assign(bytes); }

  std::span<uint8_t> span() { return std::span<uint8_t>(data_.data(), data_.size()); }
  std::span<const uint8_t> span() const {
    return std::span<const uint8_t>(data_.data(), data_.size());
  }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  // Copies `bytes` into the page; a short span zero-pads the remainder.
  void Assign(std::span<const uint8_t> bytes);

  // XOR-accumulates `other` into this page (the parity-logging primitive).
  void XorWith(std::span<const uint8_t> other);

  void Clear();
  bool IsZero() const;

  bool operator==(const PageBuffer& other) const { return data_ == other.data_; }

 private:
  std::vector<uint8_t> data_;
};

// dst ^= src over `n` bytes. Word-at-a-time; tolerates any alignment.
void XorBytes(uint8_t* dst, const uint8_t* src, size_t n);

// Fills a page with a deterministic pattern derived from `seed`, so tests and
// workloads can later verify a page's identity after round-tripping through
// servers, parity reconstruction, or the disk.
void FillPattern(std::span<uint8_t> page, uint64_t seed);

// True iff `page` matches FillPattern(seed).
bool CheckPattern(std::span<const uint8_t> page, uint64_t seed);

}  // namespace rmp

#endif  // SRC_UTIL_BYTES_H_
