// Elastic rebalance pacing bench: foreground pagein latency vs. the
// cluster.rebalance_pages_per_sec token bucket (DESIGN.md §16).
//
// A NO_RELIABILITY cluster on the paper's 10 Mbit/s shared Ethernet gains a
// third server under steady foreground load; the armed rebalance walks the
// moved hash ranges onto it, then the same server is decommissioned and the
// drain walks them back off. Both rebalance directions share the wire with
// the foreground faults, so every granted chunk delays the arrivals queued
// behind it — exactly the repair-pacing tradeoff, applied to scale-out.
// Sweeping the bucket rate shows it directly: unpaced rebalance converges
// fastest but pushes foreground p99 to whole migration bursts; a modest
// rate holds p99 near the bare service time while the fill/drain stretch
// out proportionally.
//
// Emits BENCH_rebalance.json rows per rate: foreground p50/p99 (ms), fill
// and drain elapsed (s), and pages moved.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace rmp {
namespace {

constexpr uint64_t kPages = 192;             // Working set preloaded before the join.
constexpr uint64_t kSeed = 23;
constexpr DurationNs kArrival = Millis(20);  // Foreground fault every 20 ms.
constexpr size_t kMaxSamples = 4000;         // Safety bound per phase.

struct RateResult {
  double steady_p99_ms = 0;  // Pre-join baseline: the wire with no rebalance.
  double p50_ms = 0;
  double p99_ms = 0;
  double fill_elapsed_s = 0;
  double drain_elapsed_s = 0;
  int64_t pages_rebalanced = 0;
  size_t samples = 0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = std::min(values.size() - 1,
                                static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[index];
}

// Drives foreground arrivals against the pump until the pending rebalance
// completes (rebalances_completed advances past `completed_before`), then
// samples a short post-convergence tail. Returns the completion instant.
Result<TimeNs> DrivePhase(Testbed* bed, TimeNs now, int64_t completed_before,
                          std::vector<double>* latencies_ms, uint64_t* next_page,
                          TimeNs* arrival) {
  PageBuffer buffer;
  TimeNs done_at = 0;
  size_t samples_at_done = 0;
  const size_t start = latencies_ms->size();
  while (latencies_ms->size() < start + kMaxSamples) {
    // The rebalance runs one bucket grant at the current instant (or stalls
    // on an empty bucket)...
    auto pumped = bed->repair()->Pump(now);
    if (!pumped.ok()) {
      return pumped.status();
    }
    now = *pumped;
    if (done_at == 0 && bed->repair()->stats().rebalances_completed > completed_before &&
        bed->repair()->idle()) {
      done_at = now;
      samples_at_done = latencies_ms->size();
    }
    // ...then every foreground fault that arrived while the wire carried the
    // chunk is served behind it; when none are backlogged, the next arrival
    // is served on time, which also advances the clock the bucket refills
    // against.
    do {
      auto done = bed->backend().PageIn(std::max(now, *arrival), *next_page, buffer.span());
      if (!done.ok()) {
        return done.status();
      }
      latencies_ms->push_back(ToMillis(*done - *arrival));
      now = *done;
      *next_page = (*next_page + 1) % kPages;
      *arrival += kArrival;
    } while (*arrival <= now);
    if (done_at != 0 && latencies_ms->size() >= samples_at_done + 32) {
      return done_at;
    }
  }
  return InternalError("rebalance did not converge within the sample budget");
}

Result<RateResult> RunAtRate(uint64_t rate_pages_per_sec) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 1024;
  params.network = PaperEthernet();
  auto made = Testbed::Create(params);
  if (!made.ok()) {
    return made.status();
  }
  auto bed = std::move(*made);
  RepairParams repair_params;
  repair_params.rebalance_pages_per_sec = rate_pages_per_sec;
  // A page move costs two wire transfers, so even a small burst parks real
  // time in front of a foreground fault; paced configs keep it at 2 while
  // the unpaced baseline moves full 8-page trains.
  repair_params.rebalance_burst_pages = rate_pages_per_sec == 0 ? 8 : 2;
  RMP_RETURN_IF_ERROR(bed->EnableSelfHealing(HealthParams(), repair_params));
  RMP_RETURN_IF_ERROR(bed->EnableElasticMembership());

  auto loaded = bed->Preload(kPages, kSeed);
  if (!loaded.ok()) {
    return loaded.status();
  }
  // Placement was map-directed from the first pageout, so the arm from
  // EnableElasticMembership retires with nothing to move.
  auto settled = bed->repair()->RunToQuiescence(*loaded);
  if (!settled.ok()) {
    return settled.status();
  }
  TimeNs now = *settled;

  RateResult result;
  std::vector<double> latencies_ms;
  uint64_t next_page = 0;
  TimeNs arrival = now + kArrival;

  // Phase 0 — steady state: the same arrival process with no rebalance in
  // flight, giving the baseline the paced p99 is judged against.
  {
    std::vector<double> steady_ms;
    PageBuffer buffer;
    for (int i = 0; i < 200; ++i) {
      auto done = bed->backend().PageIn(std::max(now, arrival), next_page, buffer.span());
      if (!done.ok()) {
        return done.status();
      }
      steady_ms.push_back(ToMillis(*done - arrival));
      now = *done;
      next_page = (next_page + 1) % kPages;
      arrival += kArrival;
    }
    result.steady_p99_ms = Percentile(steady_ms, 0.99);
  }

  // Phase 1 — scale-out: the new server joins and the fill walks the moved
  // hash ranges onto it under load.
  int64_t completed = bed->repair()->stats().rebalances_completed;
  auto joined = bed->JoinServer(&now);
  if (!joined.ok()) {
    return joined.status();
  }
  const TimeNs join_time = now;
  auto fill_done = DrivePhase(bed.get(), now, completed, &latencies_ms, &next_page, &arrival);
  if (!fill_done.ok()) {
    return fill_done.status();
  }
  now = std::max(*fill_done, arrival - kArrival);
  result.fill_elapsed_s = ToSeconds(*fill_done - join_time);

  // Phase 2 — scale-in: the same server leaves and the drain walks its
  // ranges back onto the survivors.
  completed = bed->repair()->stats().rebalances_completed;
  RMP_RETURN_IF_ERROR(bed->DecommissionServer(*joined, &now));
  const TimeNs leave_time = now;
  auto drain_done = DrivePhase(bed.get(), now, completed, &latencies_ms, &next_page, &arrival);
  if (!drain_done.ok()) {
    return drain_done.status();
  }
  now = *drain_done;
  result.drain_elapsed_s = ToSeconds(*drain_done - leave_time);
  if (bed->remote_pager()->PagesOn(*joined) != 0) {
    return InternalError("drain left pages on the decommissioned server");
  }
  RMP_RETURN_IF_ERROR(bed->CompleteDecommission(*joined, &now));

  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.pages_rebalanced = bed->repair()->stats().pages_rebalanced;
  result.samples = latencies_ms.size();
  return result;
}

}  // namespace
}  // namespace rmp

int main() {
  using namespace rmp;
  // The shared wire serves ~45 page transfers/s and a move costs two (read +
  // write), so the bucket only bites below ~20 moves/s; 0 = unpaced baseline.
  const uint64_t rates[] = {0, 5, 10, 20};
  std::printf("rebalance pacing vs foreground pagein latency "
              "(NO_RELIABILITY, join+decommission, %llu pages)\n",
              static_cast<unsigned long long>(kPages));
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "bucket", "steady p99", "p50 ms",
              "p99 ms", "fill s", "drain s", "pages");
  for (const uint64_t rate : rates) {
    auto result = RunAtRate(rate);
    if (!result.ok()) {
      std::fprintf(stderr, "rate %llu: %s\n", static_cast<unsigned long long>(rate),
                   std::string(result.status().message()).c_str());
      return 1;
    }
    const std::string config =
        rate == 0 ? "no_reliability/unpaced" : "no_reliability/rate" + std::to_string(rate);
    std::printf("%-22s %10.2f %10.2f %10.2f %10.2f %10.2f %10lld\n", config.c_str(),
                result->steady_p99_ms, result->p50_ms, result->p99_ms, result->fill_elapsed_s,
                result->drain_elapsed_s, static_cast<long long>(result->pages_rebalanced));
    EmitBenchResult("rebalance", config, "steady_p99", result->steady_p99_ms, "ms");
    EmitBenchResult("rebalance", config, "foreground_p50", result->p50_ms, "ms");
    EmitBenchResult("rebalance", config, "foreground_p99", result->p99_ms, "ms");
    EmitBenchResult("rebalance", config, "fill_elapsed", result->fill_elapsed_s, "s");
    EmitBenchResult("rebalance", config, "drain_elapsed", result->drain_elapsed_s, "s");
    EmitBenchResult("rebalance", config, "pages_rebalanced",
                    static_cast<double>(result->pages_rebalanced), "pages");
  }
  return 0;
}
