#include "src/core/no_reliability.h"

#include <cstring>
#include <map>
#include <vector>

#include "src/util/logging.h"

namespace rmp {

Result<TimeNs> NoReliabilityBackend::SendToDisk(TimeNs now, uint64_t page_id,
                                                std::span<const uint8_t> data) {
  if (local_disk_ == nullptr) {
    return NoSpaceError("no usable server and no local disk fallback");
  }
  auto done = local_disk_->PageOut(now, page_id, data);
  if (!done.ok()) {
    return done.status();
  }
  Location& loc = table_[page_id];
  if (!loc.on_disk) {
    loc.on_disk = true;
    ++pages_on_disk_;
  }
  ++stats_.disk_transfers;
  stats_.disk_time += *done - now;
  tracer_.Span(TraceStage::kDisk, now, *done);
  return *done;
}

Result<TimeNs> NoReliabilityBackend::PlaceAndSend(TimeNs now, uint64_t page_id,
                                                  std::span<const uint8_t> data) {
  // Try servers until one takes the page; denial marks the server stopped
  // (§2.1) and the search continues. With a cluster map adopted, the map
  // owner gets first refusal so steady-state placement matches the ring.
  while (cluster_.AnyUsable()) {
    auto pick = PickPeerForPage(page_id, &now);
    if (!pick.ok()) {
      break;
    }
    const size_t peer_index = *pick;
    ServerPeer& peer = cluster_.peer(peer_index);
    auto slot = TakeSlotOn(peer_index, &now);
    if (!slot.ok()) {
      if (slot.status().code() == ErrorCode::kNoSpace) {
        peer.set_stopped(true);
        continue;
      }
      if (IsRetryableError(slot.status())) {
        continue;  // Peer died; marked dead by the RPC layer.
      }
      return slot.status();
    }
    auto advise = ReliablePageOut(peer_index, *slot, data, &now);
    if (!advise.ok()) {
      if (IsRetryableError(advise.status())) {
        continue;
      }
      return advise.status();
    }
    now = ChargePageTransferAsync(now, peer_index);
    Location& loc = table_[page_id];
    loc.on_disk = false;
    loc.peer = peer_index;
    loc.slot = *slot;
    if (*advise) {
      // No new swap space from this server; already-granted slots stay
      // usable. The next explicit MigrateFrom (or natural overwrites)
      // drains the peer.
      peer.set_no_new_extents(true);
    }
    return now;
  }
  return SendToDisk(now, page_id, data);
}

Result<TimeNs> NoReliabilityBackend::PageOut(TimeNs now, uint64_t page_id,
                                             std::span<const uint8_t> data) {
  if (data.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  ++stats_.pageouts;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageOut, page_id, &now);
  auto it = table_.find(page_id);
  if (it != table_.end() && !it->second.on_disk) {
    // Overwrite in place on the same server.
    ServerPeer& peer = cluster_.peer(it->second.peer);
    if (peer.alive() || peer.transport().connected()) {
      auto advise = ReliablePageOut(it->second.peer, it->second.slot, data, &now);
      if (advise.ok()) {
        now = ChargePageTransferAsync(now, it->second.peer);
        if (*advise) {
          peer.set_no_new_extents(true);
        }
        stats_.paging_time += now - start;
        trace.set_ok();
        return now;
      }
      if (!IsRetryableError(advise.status())) {
        return advise.status();
      }
      // Server died under us; we still hold the data, so relocate.
    }
    table_.erase(it);
  } else if (it != table_.end() && it->second.on_disk) {
    // Page currently parked on disk: prefer putting the fresh copy on a
    // server again if any has room.
    if (cluster_.AnyUsable()) {
      table_.erase(it);
      --pages_on_disk_;
    } else {
      auto done = SendToDisk(now, page_id, data);
      if (done.ok()) {
        now = *done;  // Keep the trace scope's clock at the true completion.
        stats_.paging_time += now - start;
        trace.set_ok();
      }
      return done;
    }
  }
  auto done = PlaceAndSend(now, page_id, data);
  if (done.ok()) {
    now = *done;
    stats_.paging_time += now - start;
    trace.set_ok();
  }
  return done;
}

Result<TimeNs> NoReliabilityBackend::PlaceBatch(TimeNs now, std::span<const uint64_t> page_ids,
                                                std::span<const uint8_t> data) {
  if (has_cluster_map()) {
    return PlaceBatchByOwner(now, page_ids, data);
  }
  const TimeNs start = now;
  size_t placed = 0;
  while (placed < page_ids.size() && cluster_.AnyUsable()) {
    auto pick = PickPeer(&now);
    if (!pick.ok()) {
      break;
    }
    const size_t peer_index = *pick;
    ServerPeer& peer = cluster_.peer(peer_index);
    // Take as many slots as the peer will grant for the rest of the run.
    std::vector<uint64_t> slots;
    Status slot_status = OkStatus();
    while (placed + slots.size() < page_ids.size() && slots.size() < kMaxBatchPages) {
      auto slot = TakeSlotOn(peer_index, &now);
      if (!slot.ok()) {
        slot_status = slot.status();
        break;
      }
      slots.push_back(*slot);
    }
    if (!slot_status.ok() && slot_status.code() != ErrorCode::kNoSpace &&
        slot_status.code() != ErrorCode::kUnavailable) {
      return slot_status;
    }
    if (slot_status.code() == ErrorCode::kNoSpace) {
      peer.set_stopped(true);
    }
    if (slots.empty()) {
      continue;
    }
    auto advise =
        peer.PageOutBatchTo(slots, data.subspan(placed * kPageSize, slots.size() * kPageSize));
    if (!advise.ok()) {
      if (advise.status().code() == ErrorCode::kUnavailable) {
        continue;  // Peer died mid-batch; its slots die with it. Retry elsewhere.
      }
      return advise.status();
    }
    now = ChargePageBatchTransferAsync(now, slots.size(), peer_index);
    if (*advise) {
      peer.set_no_new_extents(true);
    }
    for (size_t j = 0; j < slots.size(); ++j) {
      Location& loc = table_[page_ids[placed + j]];
      loc.on_disk = false;
      loc.peer = peer_index;
      loc.slot = slots[j];
    }
    stats_.pageouts += static_cast<int64_t>(slots.size());
    placed += slots.size();
  }
  stats_.paging_time += now - start;
  for (; placed < page_ids.size(); ++placed) {
    auto done = PageOut(now, page_ids[placed], data.subspan(placed * kPageSize, kPageSize));
    if (!done.ok()) {
      return done;
    }
    now = *done;
  }
  return now;
}

Result<TimeNs> NoReliabilityBackend::PlaceBatchByOwner(TimeNs now,
                                                       std::span<const uint64_t> page_ids,
                                                       std::span<const uint8_t> data) {
  const TimeNs start = now;
  // Bucket the run by map owner so each batch frame lands where the ring
  // says the pages belong. The run is hash-interleaved, so batches are
  // assembled in a staging buffer rather than sliced out of `data`.
  std::map<size_t, std::vector<size_t>> by_owner;
  for (size_t i = 0; i < page_ids.size(); ++i) {
    auto owner = MapOwnerPeer(page_ids[i]);
    if (owner.ok() && cluster_.peer(*owner).usable()) {
      by_owner[*owner].push_back(i);
    }
    // Unusable owner: the page rides the single-page path below, which
    // falls back exactly like PlaceAndSend.
  }
  std::vector<bool> placed(page_ids.size(), false);
  std::vector<uint8_t> staging;
  for (auto& [peer_index, indices] : by_owner) {
    ServerPeer& peer = cluster_.peer(peer_index);
    size_t pos = 0;
    while (pos < indices.size() && peer.usable()) {
      std::vector<uint64_t> slots;
      Status slot_status = OkStatus();
      while (pos + slots.size() < indices.size() && slots.size() < kMaxBatchPages) {
        auto slot = TakeSlotOn(peer_index, &now);
        if (!slot.ok()) {
          slot_status = slot.status();
          break;
        }
        slots.push_back(*slot);
      }
      if (!slot_status.ok() && slot_status.code() != ErrorCode::kNoSpace &&
          slot_status.code() != ErrorCode::kUnavailable) {
        return slot_status;
      }
      if (slot_status.code() == ErrorCode::kNoSpace) {
        peer.set_stopped(true);
      }
      if (slots.empty()) {
        break;
      }
      staging.resize(slots.size() * kPageSize);
      for (size_t j = 0; j < slots.size(); ++j) {
        std::memcpy(staging.data() + j * kPageSize,
                    data.data() + indices[pos + j] * kPageSize, kPageSize);
      }
      auto advise = peer.PageOutBatchTo(slots, staging);
      if (!advise.ok()) {
        if (advise.status().code() == ErrorCode::kStaleEpoch) {
          // The server is alive and the slots are still ours — hand them
          // back, refresh the map, and let the single-page path (which
          // retries under the new epoch) take the rest of this bucket.
          for (const uint64_t slot : slots) {
            peer.ReturnSlot(slot);
          }
          NoteStaleEpoch(1, &now);
          break;
        }
        if (advise.status().code() == ErrorCode::kUnavailable) {
          break;  // Peer died mid-batch; its slots die with it.
        }
        return advise.status();
      }
      now = ChargePageBatchTransferAsync(now, slots.size(), peer_index);
      if (*advise) {
        peer.set_no_new_extents(true);
      }
      for (size_t j = 0; j < slots.size(); ++j) {
        const size_t i = indices[pos + j];
        Location& loc = table_[page_ids[i]];
        loc.on_disk = false;
        loc.peer = peer_index;
        loc.slot = slots[j];
        placed[i] = true;
      }
      stats_.pageouts += static_cast<int64_t>(slots.size());
      pos += slots.size();
    }
  }
  stats_.paging_time += now - start;
  for (size_t i = 0; i < page_ids.size(); ++i) {
    if (placed[i]) {
      continue;
    }
    auto done = PageOut(now, page_ids[i], data.subspan(i * kPageSize, kPageSize));
    if (!done.ok()) {
      return done;
    }
    now = *done;
  }
  return now;
}

Result<TimeNs> NoReliabilityBackend::PageOutBatch(TimeNs now, std::span<const uint64_t> page_ids,
                                                  std::span<const uint8_t> data) {
  if (data.size() != page_ids.size() * kPageSize) {
    return InvalidArgumentError("batch data must be page_ids.size() * kPageSize bytes");
  }
  size_t i = 0;
  while (i < page_ids.size()) {
    // Known pages overwrite in place and disk-parked pages re-route, both
    // through the single-page path; only runs of fresh pages vector.
    if (table_.count(page_ids[i]) > 0 || !cluster_.AnyUsable()) {
      auto done = PageOut(now, page_ids[i], data.subspan(i * kPageSize, kPageSize));
      if (!done.ok()) {
        return done;
      }
      now = *done;
      ++i;
      continue;
    }
    size_t run = i + 1;
    while (run < page_ids.size() && run - i < kMaxBatchPages && table_.count(page_ids[run]) == 0) {
      ++run;
    }
    auto done = PlaceBatch(now, page_ids.subspan(i, run - i),
                           data.subspan(i * kPageSize, (run - i) * kPageSize));
    if (!done.ok()) {
      return done;
    }
    now = *done;
    i = run;
  }
  return now;
}

Result<TimeNs> NoReliabilityBackend::PageIn(TimeNs now, uint64_t page_id,
                                            std::span<uint8_t> out) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  ++stats_.pageins;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageIn, page_id, &now);
  if (it->second.on_disk) {
    auto done = local_disk_->PageIn(now, page_id, out);
    if (!done.ok()) {
      return done.status();
    }
    ++stats_.disk_transfers;
    stats_.disk_time += *done - now;
    tracer_.Span(TraceStage::kDisk, now, *done);
    now = *done;
    stats_.paging_time += now - start;
    trace.set_ok();
    return now;
  }
  ServerPeer& peer = cluster_.peer(it->second.peer);
  const Status status = ReliablePageIn(it->second.peer, it->second.slot, out, &now);
  if (!status.ok()) {
    if (IsRetryableError(status) && !peer.transport().connected()) {
      // Without redundancy a crashed server means the page is gone — the
      // situation §2.2 calls unacceptable and the reliable policies fix.
      return DataLossError("page " + std::to_string(page_id) + " lost with " + peer.name());
    }
    return status;
  }
  now = ChargePageTransfer(now, it->second.peer);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Result<uint64_t> NoReliabilityBackend::MigrateStep(size_t peer_index, uint64_t max_pages,
                                                   TimeNs* now) {
  ServerPeer& source = cluster_.peer(peer_index);
  if (!source.alive()) {
    return UnavailableError("cannot migrate from a crashed server");
  }
  if (!source.stopped()) {
    source.set_stopped(true);
  }
  std::vector<uint64_t> victims;
  for (const auto& [page_id, loc] : table_) {
    if (!loc.on_disk && loc.peer == peer_index) {
      victims.push_back(page_id);
      if (victims.size() >= max_pages) {
        break;
      }
    }
  }
  PageBuffer buffer;
  for (const uint64_t page_id : victims) {
    const Location loc = table_[page_id];
    // MIGRATE reads the page and frees its slot in one round trip.
    RMP_RETURN_IF_ERROR(source.MigrateRead(loc.slot, buffer.span()));
    *now = ChargePageTransfer(*now, peer_index);
    auto done = PlaceAndSend(*now, page_id, buffer.span());
    if (!done.ok()) {
      return done.status();
    }
    *now = *done;
  }
  return victims.size();
}

Result<uint64_t> NoReliabilityBackend::RebalanceStep(uint64_t max_pages, TimeNs* now) {
  if (!has_cluster_map() || max_pages == 0) {
    return 0;
  }
  struct Move {
    uint64_t page_id = 0;
    size_t from = 0;
    uint64_t slot = 0;
    size_t to = 0;
  };
  std::vector<Move> moves;
  for (const auto& [page_id, loc] : table_) {
    if (loc.on_disk) {
      continue;  // Disk-parked pages drain via DrainDiskToServers.
    }
    auto owner = MapOwnerPeer(page_id);
    if (!owner.ok() || *owner == loc.peer) {
      continue;
    }
    ServerPeer& holder = cluster_.peer(loc.peer);
    if (!holder.transport().connected()) {
      continue;  // Crashed holder: without redundancy there is nothing to move.
    }
    if (!cluster_.peer(*owner).usable()) {
      continue;
    }
    moves.push_back({page_id, loc.peer, loc.slot, *owner});
    if (moves.size() >= max_pages) {
      break;
    }
  }
  uint64_t moved = 0;
  PageBuffer buffer;
  for (const Move& mv : moves) {
    // Read without freeing: the old holder keeps the only copy until the new
    // owner has acked the write, so a crash mid-move never loses the page
    // (the table still points at whichever server last acked it).
    Status read = ReliablePageIn(mv.from, mv.slot, buffer.span(), now);
    if (!read.ok()) {
      continue;  // Holder hiccup; a later step retries this page.
    }
    *now = ChargePageTransfer(*now, mv.from);
    auto slot = TakeSlotOn(mv.to, now);
    if (!slot.ok()) {
      continue;
    }
    auto advise = ReliablePageOut(mv.to, *slot, buffer.span(), now);
    if (!advise.ok()) {
      cluster_.peer(mv.to).ReturnSlot(*slot);
      continue;
    }
    *now = ChargePageTransferAsync(*now, mv.to);
    if (*advise) {
      cluster_.peer(mv.to).set_no_new_extents(true);
    }
    // Only now does the table flip: reads keep hitting the old holder until
    // the new owner holds an acknowledged copy.
    Location& loc = table_[mv.page_id];
    loc.on_disk = false;
    loc.peer = mv.to;
    loc.slot = *slot;
    // Best-effort free of the old copy; a missed free costs the old server
    // capacity, never the client data.
    (void)ReliableFree(mv.from, mv.slot, 1, now);
    ++moved;
  }
  return moved;
}

uint64_t NoReliabilityBackend::PagesOn(size_t peer) const {
  uint64_t count = 0;
  for (const auto& [page_id, loc] : table_) {
    if (!loc.on_disk && loc.peer == peer) {
      ++count;
    }
  }
  return count;
}

Status NoReliabilityBackend::MigrateFrom(size_t peer_index, TimeNs* now) {
  uint64_t total = 0;
  while (true) {
    auto moved = MigrateStep(peer_index, kMaxBatchPages, now);
    if (!moved.ok()) {
      return moved.status();
    }
    if (*moved == 0) {
      break;
    }
    total += *moved;
  }
  RMP_LOG(kInfo) << "migrated " << total << " pages off " << cluster_.peer(peer_index).name();
  return OkStatus();
}

Result<int> NoReliabilityBackend::DrainDiskToServers(TimeNs* now, int max_pages) {
  if (local_disk_ == nullptr || pages_on_disk_ == 0) {
    return 0;
  }
  // Re-open stopped-but-alive servers whose load has dropped. Peers the
  // cluster map stopped (kLeaving or absent members) stay stopped — the map,
  // not the load probe, owns their placement state.
  for (size_t i = 0; i < cluster_.size(); ++i) {
    ServerPeer& peer = cluster_.peer(i);
    if (has_cluster_map()) {
      const ClusterMember* member = cluster_map().FindMember(static_cast<uint32_t>(i));
      if (member == nullptr || member->state != ClusterMember::State::kActive) {
        continue;
      }
    }
    if (peer.alive() && (peer.stopped() || peer.no_new_extents())) {
      auto load = peer.QueryLoad();
      *now = ChargeControl(*now);
      if (load.ok() && !load->advise_stop && load->free_pages > 0) {
        peer.set_stopped(false);
        peer.set_no_new_extents(false);
      }
    }
  }
  if (!cluster_.AnyUsable()) {
    return 0;
  }
  std::vector<uint64_t> parked;
  for (const auto& [page_id, loc] : table_) {
    if (loc.on_disk) {
      parked.push_back(page_id);
      if (static_cast<int>(parked.size()) >= max_pages) {
        break;
      }
    }
  }
  int moved = 0;
  PageBuffer buffer;
  for (const uint64_t page_id : parked) {
    auto read = local_disk_->PageIn(*now, page_id, buffer.span());
    if (!read.ok()) {
      return read.status();
    }
    stats_.disk_time += *read - *now;
    *now = *read;
    auto done = PlaceAndSend(*now, page_id, buffer.span());
    if (!done.ok()) {
      break;  // Cluster filled up again; the rest stay parked.
    }
    *now = *done;
    --pages_on_disk_;
    ++moved;
  }
  return moved;
}

}  // namespace rmp
