// Cluster flight recorder (DESIGN.md §17).
//
// The fault/repair/membership machinery makes decisions that leave no
// durable record: a health transition flips a flag, a STALE_EPOCH refusal
// bumps a counter, a fault-injection rule fires silently. When the
// 18-scenario crash matrix fails under TSan, reconstructing *what the
// cluster was doing* from counters alone is a repro hunt. The EventJournal
// closes that gap: every state machine appends one structured line —
// monotonic sequence number, process-monotonic wall timestamp, kind, actor,
// detail — into a bounded ring. Journals are per-owner (each MemoryServer
// holds one, the client pager another); a server's journal is queryable over
// the EVENTS_QUERY wire op, and the Testbed merges all of them into one
// sorted timeline for post-mortem dumps.
//
// Appends are lock-cheap, not lock-free: events are *decisions* (transitions,
// refusals, fault firings), orders of magnitude rarer than data ops, so one
// short mutex-guarded ring write is the right complexity. The ring bounds
// memory; overwritten events count in dropped() and leave a sequence gap the
// reader can detect (first returned seq > requested seq).

#ifndef SRC_UTIL_EVENTS_H_
#define SRC_UTIL_EVENTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/config.h"
#include "src/util/status.h"

namespace rmp {

// What kind of decision the event records. Order is wire-stable (the kind
// ships as its name string, but tests index by enum).
enum class EventKind : uint8_t {
  kHealth = 0,      // Peer health transition (ALIVE -> SUSPECT -> DEAD -> ...).
  kRepair = 1,      // Repair job armed / stepped / completed.
  kRebalance = 2,   // Rebalance range moved / job completed.
  kMigrate = 3,     // Overload-migration drain step.
  kEpoch = 4,       // Cluster-map epoch adopted or published.
  kStaleEpoch = 5,  // Data op refused with STALE_EPOCH.
  kTenantShed = 6,  // Tenant admission denial (rate / quota / strict).
  kFault = 7,       // Fault-injection rule fired.
  kCrash = 8,       // Server crashed (page store dropped).
  kRestart = 9,     // Server restarted / partition healed.
  kMembership = 10, // Join / decommission lifecycle.
  kInfo = 11,       // Anything else worth a timeline line.
};
inline constexpr int kNumEventKinds = 12;

std::string_view EventKindName(EventKind kind);

struct Event {
  uint64_t seq = 0;     // 1-based, monotonic per journal; gaps = overwritten.
  int64_t wall_ns = 0;  // Process-monotonic clock; comparable across in-proc
                        // journals, which is what timeline merging needs.
  EventKind kind = EventKind::kInfo;
  std::string actor;    // Which state machine / server appended it.
  std::string detail;
};

struct EventJournalOptions {
  // Events held before the oldest is overwritten. 0 disables the journal
  // entirely: Append becomes a cheap early-out.
  size_t ring_capacity = 1024;
  // Detail strings longer than this are truncated at append (a hostile or
  // buggy caller must not balloon a ring entry).
  size_t max_detail_bytes = 256;
};

// Applies the `events.*` Config keys over `options`:
//   events.ring        -> ring_capacity   (0 = journal disabled)
//   events.max_detail  -> max_detail_bytes
// Absent keys keep the current values.
Status ApplyEventsConfig(const Config& config, EventJournalOptions* options);

// Bounded, thread-safe structured event ring. Not copyable; hand out
// pointers (state machines hold an `EventJournal*` that may be null —
// appending through a null journal is the disabled path).
class EventJournal {
 public:
  explicit EventJournal(const EventJournalOptions& options = EventJournalOptions());
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  void Append(EventKind kind, std::string_view actor, std::string_view detail);

  // Events with seq >= min_seq, oldest first, at most `limit` (0 = all still
  // in the ring). The first returned seq exceeding min_seq when min_seq is
  // within [1, next_seq) tells the reader the ring wrapped past it.
  std::vector<Event> Since(uint64_t min_seq, size_t limit = 0) const;
  std::vector<Event> All() const { return Since(0); }

  // JSON array of Since(min_seq, limit) — the EVENTS_QUERY reply payload.
  // Example element: {"seq":7,"t":123456,"kind":"health","actor":"health",
  // "detail":"peer=1 ALIVE->SUSPECT"}.
  std::string ToJson(uint64_t min_seq = 0, size_t limit = 0) const;

  size_t size() const;
  uint64_t next_seq() const;   // Seq the next Append will take.
  int64_t dropped() const;     // Events overwritten (oldest lost).
  size_t capacity() const;

  // Resizes the ring (clearing it; sequence numbering continues).
  void SetCapacity(size_t capacity);
  void Clear();

 private:
  mutable std::mutex mutex_;
  EventJournalOptions options_;
  std::vector<Event> ring_;
  size_t ring_next_ = 0;
  size_t ring_size_ = 0;
  uint64_t next_seq_ = 1;
  int64_t dropped_ = 0;
};

// Escapes `in` for embedding inside a JSON string literal (quotes,
// backslashes, control bytes). Shared by the journal and the span-ring JSON.
std::string JsonEscape(std::string_view in);

// The process-monotonic timestamp Append stamps (steady-clock nanoseconds).
// Exposed so timeline consumers (Testbed::DumpFlightRecorder) can anchor
// "now" on the same clock.
int64_t EventWallNanos();

}  // namespace rmp

#endif  // SRC_UTIL_EVENTS_H_
