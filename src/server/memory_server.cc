#include "src/server/memory_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace rmp {

MemoryServer::MemoryServer(const MemoryServerParams& params) : params_(params) {
  const uint32_t wanted = std::max<uint32_t>(1, params_.store_shards);
  shard_bits_ = 0;
  while ((1u << shard_bits_) < wanted) {
    ++shard_bits_;
  }
  shard_count_ = 1u << shard_bits_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

MemoryServer::Shard& MemoryServer::ShardFor(uint64_t slot) const {
  // Fibonacci hash: consecutive slots of an extent land on distinct shards,
  // and strided slot patterns do not alias onto one stripe.
  const uint64_t h = slot * 0x9e3779b97f4a7c15ULL;
  const uint32_t index = shard_bits_ == 0 ? 0 : static_cast<uint32_t>(h >> (64 - shard_bits_));
  return shards_[index];
}

uint8_t* MemoryServer::FramePtr(const Shard& shard, uint32_t frame) {
  return shard.slabs[frame / kSlabPages].get() +
         static_cast<size_t>(frame % kSlabPages) * kPageSize;
}

uint32_t MemoryServer::TakeFrameLocked(Shard* shard) {
  if (shard->free_frames.empty()) {
    const uint32_t base = static_cast<uint32_t>(shard->slabs.size()) * kSlabPages;
    shard->slabs.push_back(std::make_unique<uint8_t[]>(size_t{kSlabPages} * kPageSize));
    // Push in reverse so frames are handed out in ascending address order.
    for (uint32_t i = kSlabPages; i > 0; --i) {
      shard->free_frames.push_back(base + i - 1);
    }
  }
  const uint32_t frame = shard->free_frames.back();
  shard->free_frames.pop_back();
  return frame;
}

uint64_t MemoryServer::EffectiveCapacityLocked() const {
  const double available = static_cast<double>(params_.capacity_pages) * (1.0 - native_load_);
  return available <= 0.0 ? 0 : static_cast<uint64_t>(available);
}

uint64_t MemoryServer::FreePagesLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  return capacity > reserved_slots_ ? capacity - reserved_slots_ : 0;
}

bool MemoryServer::AdviseStopLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  if (capacity == 0) {
    return true;
  }
  return static_cast<double>(reserved_slots_) >=
         params_.advise_stop_fraction * static_cast<double>(capacity);
}

Result<uint64_t> MemoryServer::Allocate(uint64_t pages) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0) {
    return InvalidArgumentError("cannot allocate zero pages");
  }
  if (FreePagesLocked() < pages) {
    stats_.denials.fetch_add(1, std::memory_order_relaxed);
    return NoSpaceError(params_.name + " denies allocation of " + std::to_string(pages) +
                        " pages (free " + std::to_string(FreePagesLocked()) + ")");
  }
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  reserved_slots_ += pages;
  // Reuse freed slot runs first so long-lived servers do not leak slot space.
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second >= pages) {
      const uint64_t start = it->first;
      it->first += pages;
      it->second -= pages;
      if (it->second == 0) {
        free_runs_.erase(it);
      }
      return start;
    }
  }
  const uint64_t start = next_slot_.load(std::memory_order_relaxed);
  next_slot_.store(start + pages, std::memory_order_release);
  return start;
}

Status MemoryServer::Free(uint64_t first_slot, uint64_t pages) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0 || first_slot + pages > next_slot_.load(std::memory_order_relaxed)) {
    return InvalidArgumentError("bad free range");
  }
  for (uint64_t s = first_slot; s < first_slot + pages; ++s) {
    Shard& shard = ShardFor(s);
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    auto it = shard.frames.find(s);
    if (it != shard.frames.end()) {
      shard.free_frames.push_back(it->second);
      shard.frames.erase(it);
    }
  }
  reserved_slots_ -= std::min(reserved_slots_, pages);
  free_runs_.emplace_back(first_slot, pages);
  std::sort(free_runs_.begin(), free_runs_.end());
  return OkStatus();
}

Status MemoryServer::Store(uint64_t slot, std::span<const uint8_t> page) {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Recheck under the shard lock: Crash() raises the flag before sweeping the
  // shards, so a store that loses the race cannot resurrect a dropped page.
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.frames.try_emplace(slot, 0);
  if (inserted) {
    it->second = TakeFrameLocked(&shard);
  }
  std::memcpy(FramePtr(shard, it->second), page.data(), kPageSize);
  if (params_.store_service_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(params_.store_service_micros));
  }
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(page.size(), std::memory_order_relaxed);
  return OkStatus();
}

Result<PageBuffer> MemoryServer::MigrateOut(uint64_t slot) {
  auto page = Load(slot);
  if (!page.ok()) {
    return page;
  }
  // The pagein counter was already bumped by Load; Free reclaims the slot so
  // the drained server's donated memory is immediately reusable.
  RMP_RETURN_IF_ERROR(Free(slot, 1));
  stats_.migrations_served.fetch_add(1, std::memory_order_relaxed);
  return page;
}

Result<PageBuffer> MemoryServer::Load(uint64_t slot) const {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto it = shard.frames.find(slot);
  if (it == shard.frames.end()) {
    return NotFoundError("slot " + std::to_string(slot) + " holds no page");
  }
  if (params_.store_service_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(params_.store_service_micros));
  }
  stats_.pageins_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_returned.fetch_add(kPageSize, std::memory_order_relaxed);
  return PageBuffer(std::span<const uint8_t>(FramePtr(shard, it->second), kPageSize));
}

Status MemoryServer::StoreBatch(std::span<const uint64_t> slots, std::span<const uint8_t> pages,
                                uint64_t* stored_out) {
  if (pages.size() != slots.size() * kPageSize) {
    if (stored_out != nullptr) {
      *stored_out = 0;
    }
    return InvalidArgumentError("batch pages must be slots.size() * kPageSize bytes");
  }
  uint64_t stored = 0;
  Status status = OkStatus();
  for (size_t i = 0; i < slots.size(); ++i) {
    status = Store(slots[i], pages.subspan(i * kPageSize, kPageSize));
    if (!status.ok()) {
      break;
    }
    ++stored;
  }
  if (stored_out != nullptr) {
    *stored_out = stored;
  }
  return status;
}

Status MemoryServer::LoadBatch(std::span<const uint64_t> slots, std::vector<uint8_t>* out) const {
  out->reserve(out->size() + slots.size() * kPageSize);
  for (const uint64_t slot : slots) {
    auto page = Load(slot);
    if (!page.ok()) {
      return page.status();
    }
    out->insert(out->end(), page->span().begin(), page->span().end());
  }
  return OkStatus();
}

Result<PageBuffer> MemoryServer::DeltaStore(uint64_t slot, std::span<const uint8_t> page) {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.frames.try_emplace(slot, 0);
  if (inserted) {
    it->second = TakeFrameLocked(&shard);
    // Recycled frames carry stale bytes; an absent slot must read as zeroes.
    std::memset(FramePtr(shard, it->second), 0, kPageSize);
  }
  uint8_t* stored = FramePtr(shard, it->second);
  PageBuffer delta(std::span<const uint8_t>(stored, kPageSize));
  delta.XorWith(page);
  std::memcpy(stored, page.data(), kPageSize);
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(page.size(), std::memory_order_relaxed);
  return delta;
}

Status MemoryServer::XorMerge(uint64_t slot, std::span<const uint8_t> delta) {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (delta.size() != kPageSize) {
    return InvalidArgumentError("delta must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.frames.try_emplace(slot, 0);
  if (inserted) {
    it->second = TakeFrameLocked(&shard);
    std::memset(FramePtr(shard, it->second), 0, kPageSize);
  }
  XorBytes(FramePtr(shard, it->second), delta.data(), kPageSize);
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(delta.size(), std::memory_order_relaxed);
  return OkStatus();
}

bool MemoryServer::Holds(uint64_t slot) const {
  if (crashed()) {
    return false;
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.frames.count(slot) > 0;
}

std::vector<uint64_t> MemoryServer::LiveSlots() const {
  std::vector<uint64_t> slots;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    for (const auto& [slot, frame] : shards_[i].frames) {
      slots.push_back(slot);
    }
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

void MemoryServer::Crash() {
  // Raise the flag first: data ops recheck it under their shard lock, so any
  // store racing the sweep either completes before the shard is cleared or
  // observes the crash and fails.
  crashed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    free_runs_.clear();
    reserved_slots_ = 0;
    next_slot_.store(0, std::memory_order_release);
  }
  for (uint32_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].frames.clear();
    shards_[i].free_frames.clear();
    shards_[i].slabs.clear();
  }
  RMP_LOG(kInfo) << params_.name << " crashed, all pages lost";
}

void MemoryServer::Restart() {
  incarnation_.fetch_add(1, std::memory_order_acq_rel);
  crashed_.store(false, std::memory_order_release);
}

void MemoryServer::ResetStats() {
  // Every counter and gauge lives in the registry, so a registry-wide reset
  // zeroes stats() and the STATS-visible surface in one stroke — a restarted
  // incarnation must not leak the previous life's totals.
  registry_.Reset();
}

std::string MemoryServer::StatsJson() const {
  registry_.GetGauge("server.capacity_pages")->Set(static_cast<int64_t>(capacity_pages()));
  registry_.GetGauge("server.free_pages")->Set(static_cast<int64_t>(free_pages()));
  registry_.GetGauge("server.live_pages")->Set(static_cast<int64_t>(live_pages()));
  registry_.GetGauge("server.incarnation")->Set(static_cast<int64_t>(incarnation()));
  registry_.GetGauge("server.advise_stop")->Set(ShouldAdviseStop() ? 1 : 0);
  return registry_.ExportJson();
}

void MemoryServer::SetNativeLoad(double fraction) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  native_load_ = std::clamp(fraction, 0.0, 1.0);
}

void MemoryServer::SetSlotDelayForTest(uint64_t slot, int64_t micros) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (micros <= 0) {
    slot_delays_micros_.erase(slot);
  } else {
    slot_delays_micros_[slot] = micros;
  }
  has_slot_delays_.store(!slot_delays_micros_.empty(), std::memory_order_release);
}

uint64_t MemoryServer::capacity_pages() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return EffectiveCapacityLocked();
}

uint64_t MemoryServer::free_pages() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return FreePagesLocked();
}

uint64_t MemoryServer::live_pages() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    total += shards_[i].frames.size();
  }
  return total;
}

bool MemoryServer::ShouldAdviseStop() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return AdviseStopLocked();
}

Message MemoryServer::Handle(const Message& request) {
  if (has_slot_delays_.load(std::memory_order_acquire)) {
    int64_t delay_micros = 0;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      auto it = slot_delays_micros_.find(request.slot);
      if (it != slot_delays_micros_.end()) {
        delay_micros = it->second;
      }
    }
    if (delay_micros > 0) {
      // Sleep outside any lock: a stalled slot must not stall the others.
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    }
  }
  switch (request.type) {
    case MessageType::kAllocRequest: {
      auto slot = Allocate(request.count);
      if (!slot.ok()) {
        Message reply = MakeAllocReply(request.request_id, 0, slot.status().code());
        return reply;
      }
      Message reply = MakeAllocReply(request.request_id, request.count, ErrorCode::kOk);
      reply.slot = *slot;
      return reply;
    }
    case MessageType::kFreeRequest: {
      const Status status = Free(request.slot, request.count);
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kPageOut: {
      const Status status = Store(request.slot, std::span<const uint8_t>(request.payload));
      return MakePageOutAck(request.request_id, request.slot, status.code(),
                            status.ok() && ShouldAdviseStop());
    }
    case MessageType::kPageIn: {
      auto page = Load(request.slot);
      if (!page.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, page.status().code());
      }
      return MakePageInReply(request.request_id, request.slot, page->span(), ErrorCode::kOk);
    }
    case MessageType::kPageOutBatch: {
      auto count = ValidateBatch(request);
      if (!count.ok()) {
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      stats_.batch_requests.fetch_add(1, std::memory_order_relaxed);
      uint64_t stored = 0;
      Status status = OkStatus();
      for (size_t i = 0; i < *count; ++i) {
        status = Store(BatchSlot(request, i), BatchPage(request, i));
        if (!status.ok()) {
          break;
        }
        ++stored;
      }
      Message ack = MakePageOutBatchAck(request.request_id, stored, status.code(),
                                        status.ok() && ShouldAdviseStop());
      if (!status.ok()) {
        ack.aux = stored;  // Index of the first failing entry.
      }
      return ack;
    }
    case MessageType::kPageInBatch: {
      auto count = ValidateBatch(request);
      if (!count.ok()) {
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      stats_.batch_requests.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> pages;
      pages.reserve(*count * kPageSize);
      for (size_t i = 0; i < *count; ++i) {
        auto page = Load(BatchSlot(request, i));
        if (!page.ok()) {
          Message reply = MakePageInBatchReply(request.request_id, {}, page.status().code());
          reply.aux = i;  // Index of the failing entry.
          return reply;
        }
        pages.insert(pages.end(), page->span().begin(), page->span().end());
      }
      return MakePageInBatchReply(request.request_id, pages, ErrorCode::kOk);
    }
    case MessageType::kLoadQuery: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      return MakeLoadReport(request.request_id, FreePagesLocked(), EffectiveCapacityLocked(),
                            AdviseStopLocked());
    }
    case MessageType::kDeltaPageOut: {
      auto delta = DeltaStore(request.slot, std::span<const uint8_t>(request.payload));
      if (!delta.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, delta.status().code());
      }
      // The delta travels back in a PAGEIN_REPLY-shaped message.
      return MakePageInReply(request.request_id, request.slot, delta->span(), ErrorCode::kOk);
    }
    case MessageType::kXorMerge: {
      const Status status = XorMerge(request.slot, std::span<const uint8_t>(request.payload));
      Message reply;
      reply.type = MessageType::kXorMergeAck;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kHeartbeat: {
      if (crashed()) {
        // A crashed process cannot answer; in the simulated fabric the
        // transport is disconnected too, but keep the direct API honest.
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      stats_.heartbeats_served.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(control_mutex_);
      return MakeHeartbeatAck(request.request_id, incarnation(), FreePagesLocked(),
                              EffectiveCapacityLocked(), AdviseStopLocked());
    }
    case MessageType::kMigrate: {
      auto page = MigrateOut(request.slot);
      if (!page.ok()) {
        return MakeMigrateReply(request.request_id, request.slot, {}, page.status().code());
      }
      return MakeMigrateReply(request.request_id, request.slot, page->span(), ErrorCode::kOk);
    }
    case MessageType::kStatsQuery: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      return MakeStatsReply(request.request_id, incarnation(), StatsJson());
    }
    case MessageType::kTraceDump: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      return MakeTraceDumpReply(request.request_id, incarnation(),
                                tracer_ != nullptr ? tracer_->ToJson() : "[]");
    }
    case MessageType::kShutdown: {
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      return reply;
    }
    default:
      return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
  }
}

}  // namespace rmp
