#include "src/util/histogram.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, MomentsMatchClosedForm) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(HistogramTest, CountsAndPercentiles) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    hist.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(hist.count(), 100);
  EXPECT_NEAR(hist.Percentile(50), 50.0, 1.5);
  EXPECT_NEAR(hist.Percentile(90), 90.0, 1.5);
  EXPECT_NEAR(hist.Percentile(100), 100.0, 1.5);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(-5.0);
  hist.Add(50.0);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_LE(hist.Percentile(25), 1.0);
  EXPECT_GE(hist.Percentile(75), 9.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram hist(0.0, 1.0, 4);
  EXPECT_EQ(hist.Percentile(50), 0.0);
}

TEST(HistogramTest, ToStringRendersNonEmptyBuckets) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(1.5);
  hist.Add(1.6);
  const std::string out = hist.ToString();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
}

}  // namespace
}  // namespace rmp
