// PARITY LOGGING — the paper's novel reliability policy (§2.2).
//
// A page is not bound to a server or a parity group: every pageout goes to a
// fresh slot on the next data server in round-robin order while the client
// XORs the page into an in-memory parity accumulator. After S pages the
// accumulator is shipped to the parity server and the group is sealed, so a
// pageout costs 1 + 1/S page transfers instead of mirroring's 2.
//
// Re-paging-out a page marks its previous version *inactive* in the old
// group, but the old bytes stay on their server (footnote 3: deleting them
// would force a parity update). A group whose entries are all inactive is
// reclaimed wholesale: every slot plus the parity slot is freed. The stale
// versions living in sealed groups are why servers need ~10% overflow
// memory; when a server still runs out, garbage collection "combin[es] the
// active pages to new ones".
//
// Group construction guarantees at most one entry per server per group (a
// group is flushed early rather than doubling up), so a single server crash
// loses at most one entry per group and every loss is reconstructible as
// parity XOR surviving entries. The open group is covered too: its parity
// accumulator lives in client memory.

#ifndef SRC_CORE_PARITY_LOGGING_H_
#define SRC_CORE_PARITY_LOGGING_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/core/remote_pager.h"

namespace rmp {

struct ParityLoggingParams {
  // Entries per parity group; 0 means "number of data servers".
  int group_size = 0;
  // Sealed groups whose inactive fraction triggers GC eligibility first.
  int gc_reclaim_target = 64;  // Pages of server memory GC tries to free.
};

class ParityLoggingBackend final : public RemotePagerBase {
 public:
  // The peer at `parity_peer` is the parity server; all others hold data.
  // The parity server is an ordinary MemoryServer — it "just performs
  // pageins and pageouts... without knowing whether it stores memory pages
  // or parity pages" (§3.2).
  ParityLoggingBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                       const RemotePagerParams& params, size_t parity_peer,
                       const ParityLoggingParams& pl_params = ParityLoggingParams());

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  std::string Name() const override { return "PARITY_LOGGING"; }

  // Reconstructs every page lost to the crash of `peer_index` (data or
  // parity server) and re-establishes redundancy. Affected groups are
  // dissolved: their active pages are re-paged-out into fresh groups.
  // Implemented as a loop over RepairStep, so the one-shot and the
  // coordinator-driven incremental paths share every line.
  Status Recover(size_t peer_index, TimeNs* now);

  // Incremental repair quantum. For the parity server, rebuilds sealed
  // groups' parity in queue-driven chunks; for a data server, dissolves a
  // page budget's worth of affected groups per call (degraded XOR
  // reconstruction of the lost member, survivors re-homed into fresh
  // groups). 0 = redundancy fully restored.
  Result<uint64_t> RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Overload drain (§2.1): re-pages-out up to `max_pages` *active* pages
  // living on `peer` into fresh groups elsewhere. The retired slots stay on
  // the server until their groups reclaim — deleting them would force a
  // parity update (footnote 3) — so a drain bounds active pages, not total
  // occupancy. The parity server cannot be drained (its role is fixed);
  // asking reports completion immediately.
  Result<uint64_t> MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Forces a garbage-collection pass (also triggered automatically when
  // every data server denies allocation).
  Status GarbageCollect(TimeNs* now);

  // --- Introspection for tests, invariants and the ablation benches -------

  struct EntrySnapshot {
    size_t peer = 0;
    uint64_t slot = 0;
    uint64_t page_id = 0;
    bool active = false;
  };
  struct GroupSnapshot {
    uint64_t group_id = 0;
    std::vector<EntrySnapshot> entries;
    uint64_t parity_slot = 0;
    bool sealed = false;
  };
  std::vector<GroupSnapshot> Snapshot() const;

  size_t parity_peer() const { return parity_peer_; }
  int64_t groups_reclaimed() const { return groups_reclaimed_; }
  int64_t gc_passes() const { return gc_passes_; }
  int64_t parity_flushes() const { return parity_flushes_; }
  int64_t live_groups() const { return static_cast<int64_t>(groups_.size()); }

  // Client-side structural invariants; returns the first violation found.
  Status CheckInvariants() const;

 private:
  struct GroupEntry {
    size_t peer = 0;
    uint64_t slot = 0;
    uint64_t page_id = 0;
    bool active = false;
  };
  struct ParityGroup {
    std::vector<GroupEntry> entries;
    uint64_t parity_slot = 0;
    bool sealed = false;
    int active_count = 0;
  };
  struct PageLocation {
    uint64_t group_id = 0;
    size_t entry_index = 0;
  };

  int EffectiveGroupSize() const;

  // Marks the active version of `page_id` (if any) inactive; reclaims the
  // group when it empties.
  void RetireOldVersion(uint64_t page_id, TimeNs* now);

  // Sends `data` to a data server not yet used by the open group and logs it
  // into the open group + accumulator. The core pageout step, shared with GC
  // and recovery re-placement.
  Status PlacePage(uint64_t page_id, std::span<const uint8_t> data, TimeNs* now);

  // Ships the accumulator to the parity server and seals the open group.
  // The write is issued pipelined: over a real transport it stays in flight
  // while the next stripe's pageouts proceed, and is settled by
  // JoinParityFlush at the next point that needs it.
  Status FlushParity(TimeNs* now);

  // Settles the outstanding parity write (if any) and folds its modeled
  // completion time into *now. Must run before anything reads or frees the
  // pending group's parity slot.
  Status JoinParityFlush(TimeNs* now);

  // Frees every server slot of a dead group (all entries inactive).
  void ReclaimGroup(uint64_t group_id, TimeNs* now);

  // Chunked halves of RepairStep.
  Result<uint64_t> RebuildParityChunk(uint64_t max_pages, TimeNs* now);
  Result<uint64_t> RecoverDataChunk(size_t peer_index, uint64_t max_pages, TimeNs* now);

  // True if the open group already holds an entry on `peer`.
  bool OpenGroupUses(size_t peer) const;

  Result<size_t> PickDataPeer(TimeNs* now);

  std::vector<size_t> DataPeers() const;

  size_t parity_peer_;
  ParityLoggingParams pl_params_;

  std::map<uint64_t, ParityGroup> groups_;  // Ordered: GC scans oldest first.
  uint64_t open_group_id_ = 0;
  uint64_t next_group_id_ = 1;
  PageBuffer accumulator_;
  std::unordered_map<uint64_t, PageLocation> table_;

  int64_t groups_reclaimed_ = 0;
  int64_t gc_passes_ = 0;
  int64_t parity_flushes_ = 0;
  bool in_gc_ = false;

  // In-progress parity-server rebuild: sealed groups still awaiting a new
  // parity page. Populated by the first RebuildParityChunk of a repair,
  // drained chunk by chunk; cleared on error so a retry re-enumerates.
  std::vector<uint64_t> parity_rebuild_queue_;
  bool parity_rebuild_active_ = false;

  // Outstanding parity write. Over an in-process transport the future
  // completes inline and only the completion time stays pending; over TCP
  // the write itself overlaps the next stripe's pageouts.
  RpcFuture pending_parity_;
  uint64_t pending_parity_group_ = 0;
  TimeNs pending_parity_completion_ = 0;
};

}  // namespace rmp

#endif  // SRC_CORE_PARITY_LOGGING_H_
