#include "src/server/memory_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "src/util/checksum.h"
#include "src/util/compress.h"
#include "src/util/logging.h"
#include "src/util/units.h"

namespace rmp {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - t0).count();
}

// Demotion requires this much saving before it keeps the compressed form;
// pages that barely shrink go into the extent raw, so a later cold pagein
// skips a decompress that buys almost nothing.
constexpr size_t kCompressCeiling = kPageSize - kPageSize / 16;

TimeNs NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now().time_since_epoch())
      .count();
}

// Accumulates this scope's wall time into a ServerTraceScratch sink, but only
// when a traced request is in flight on this thread (DESIGN.md §17) — the
// untraced path pays one thread_local bool test and no clock reads.
class ScratchTimer {
 public:
  explicit ScratchTimer(int64_t ServerTraceScratch::* sink) {
    ServerTraceScratch& scratch = ServerScratch();
    if (scratch.active) {
      sink_ = &(scratch.*sink);
      t0_ = NowNanos();
    }
  }
  ~ScratchTimer() {
    if (sink_ != nullptr) {
      *sink_ += NowNanos() - t0_;
    }
  }
  ScratchTimer(const ScratchTimer&) = delete;
  ScratchTimer& operator=(const ScratchTimer&) = delete;

 private:
  int64_t* sink_ = nullptr;
  TimeNs t0_ = 0;
};

// A rate denial travels back in the reply shape the op expects, so clients
// that only look at the status field keep working. Pageout-shaped denials
// carry ADVISE_STOP: an over-rate tenant should back off exactly like one
// paging against a full server.
Message RateLimitedReply(const Message& request) {
  switch (request.type) {
    case MessageType::kPageIn:
    case MessageType::kDeltaPageOut:
      return MakePageInReply(request.request_id, request.slot, {}, ErrorCode::kResourceExhausted);
    case MessageType::kPageOut:
      return MakePageOutAck(request.request_id, request.slot, ErrorCode::kResourceExhausted, true);
    case MessageType::kPageOutBatch:
      return MakePageOutBatchAck(request.request_id, 0, ErrorCode::kResourceExhausted, true);
    case MessageType::kPageInBatch:
      return MakePageInBatchReply(request.request_id, {}, ErrorCode::kResourceExhausted);
    case MessageType::kMigrate:
      return MakeMigrateReply(request.request_id, request.slot, {}, ErrorCode::kResourceExhausted);
    case MessageType::kXorMerge: {
      Message reply;
      reply.type = MessageType::kXorMergeAck;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(ErrorCode::kResourceExhausted);
      return reply;
    }
    default:
      return MakeErrorReply(request.request_id, ErrorCode::kResourceExhausted);
  }
}

// A stale-epoch denial travels back in the reply shape the op expects, with
// the server's current epoch in `aux` so the client learns the new epoch
// before it even re-queries the map (DESIGN.md §16). Never ADVISE_STOP: the
// client is not overloading anyone, it is just behind.
Message EpochStaleReply(const Message& request, uint64_t epoch) {
  Message reply;
  switch (request.type) {
    case MessageType::kAllocRequest:
      reply = MakeAllocReply(request.request_id, 0, ErrorCode::kStaleEpoch);
      break;
    case MessageType::kFreeRequest:
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(ErrorCode::kStaleEpoch);
      break;
    case MessageType::kPageIn:
    case MessageType::kDeltaPageOut:
      reply = MakePageInReply(request.request_id, request.slot, {}, ErrorCode::kStaleEpoch);
      break;
    case MessageType::kPageOut:
      reply = MakePageOutAck(request.request_id, request.slot, ErrorCode::kStaleEpoch, false);
      break;
    case MessageType::kPageOutBatch:
      reply = MakePageOutBatchAck(request.request_id, 0, ErrorCode::kStaleEpoch, false);
      break;
    case MessageType::kPageInBatch:
      reply = MakePageInBatchReply(request.request_id, {}, ErrorCode::kStaleEpoch);
      break;
    case MessageType::kMigrate:
      reply = MakeMigrateReply(request.request_id, request.slot, {}, ErrorCode::kStaleEpoch);
      break;
    case MessageType::kXorMerge:
      reply.type = MessageType::kXorMergeAck;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(ErrorCode::kStaleEpoch);
      break;
    default:
      reply = MakeErrorReply(request.request_id, ErrorCode::kStaleEpoch);
      break;
  }
  reply.aux = epoch;
  return reply;
}

// True for the ops a stale map can misroute: everything that names slots or
// changes occupancy. Control traffic (heartbeat, stats, map exchange itself)
// must keep flowing whatever epoch the client holds.
bool EpochGated(MessageType type) {
  switch (type) {
    case MessageType::kAllocRequest:
    case MessageType::kFreeRequest:
    case MessageType::kPageOut:
    case MessageType::kPageIn:
    case MessageType::kPageOutBatch:
    case MessageType::kPageInBatch:
    case MessageType::kDeltaPageOut:
    case MessageType::kXorMerge:
    case MessageType::kMigrate:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status ApplyTenantConfig(const Config& config, TenantPolicyParams* params) {
  auto strict = config.GetBool("tenant.strict", params->strict);
  RMP_RETURN_IF_ERROR(strict.status());
  params->strict = *strict;
  for (const std::string& key : config.Keys()) {
    if (key.rfind("tenant.", 0) != 0) {
      continue;
    }
    const std::string rest = key.substr(7);
    if (rest == "strict") {
      continue;
    }
    const size_t dot = rest.find('.');
    if (dot == std::string::npos || dot == 0) {
      return InvalidArgumentError("malformed tenant key: " + key);
    }
    uint64_t id = 0;
    for (size_t i = 0; i < dot; ++i) {
      const char ch = rest[i];
      if (ch < '0' || ch > '9') {
        return InvalidArgumentError("malformed tenant id in key: " + key);
      }
      id = id * 10 + static_cast<uint64_t>(ch - '0');
      if (id > kMaxTenantId) {
        return InvalidArgumentError("tenant id out of range in key: " + key);
      }
    }
    if (id == 0) {
      return InvalidArgumentError("tenant 0 is the legacy lane and takes no quota: " + key);
    }
    TenantQuota* row = nullptr;
    for (TenantQuota& q : params->tenants) {
      if (q.id == id) {
        row = &q;
        break;
      }
    }
    if (row == nullptr) {
      TenantQuota fresh;
      fresh.id = static_cast<uint16_t>(id);
      params->tenants.push_back(fresh);
      row = &params->tenants.back();
    }
    const std::string field = rest.substr(dot + 1);
    if (field == "quota_pages") {
      auto v = config.GetInt(key, static_cast<int64_t>(row->memory_quota_pages));
      RMP_RETURN_IF_ERROR(v.status());
      row->memory_quota_pages = static_cast<uint64_t>(std::max<int64_t>(0, *v));
    } else if (field == "rate") {
      auto v = config.GetInt(key, static_cast<int64_t>(row->rate_pages_per_sec));
      RMP_RETURN_IF_ERROR(v.status());
      row->rate_pages_per_sec = static_cast<uint64_t>(std::max<int64_t>(0, *v));
    } else if (field == "burst") {
      auto v = config.GetInt(key, static_cast<int64_t>(row->burst_pages));
      RMP_RETURN_IF_ERROR(v.status());
      row->burst_pages = static_cast<uint64_t>(std::max<int64_t>(1, *v));
    } else if (field == "advise_fraction") {
      auto v = config.GetDouble(key, row->advise_stop_fraction);
      RMP_RETURN_IF_ERROR(v.status());
      row->advise_stop_fraction = std::clamp(*v, 0.0, 1.0);
    } else if (field == "weight") {
      continue;  // The scheduler's knob (SchedulerOptions::FromConfig), not ours.
    } else {
      return InvalidArgumentError("unknown tenant key: " + key);
    }
  }
  return OkStatus();
}

Status ApplyStoreConfig(const Config& config, MemoryServerParams* params) {
  auto shards = config.GetInt("store.shards", params->store_shards);
  RMP_RETURN_IF_ERROR(shards.status());
  params->store_shards = static_cast<uint32_t>(std::max<int64_t>(1, *shards));
  auto service = config.GetInt("store.service_micros", params->store_service_micros);
  RMP_RETURN_IF_ERROR(service.status());
  params->store_service_micros = *service;

  StoreTierParams& tier = params->tier;
  auto hot = config.GetInt("store.hot_pages", static_cast<int64_t>(tier.hot_page_limit));
  RMP_RETURN_IF_ERROR(hot.status());
  tier.hot_page_limit = static_cast<uint64_t>(std::max<int64_t>(0, *hot));
  auto compress = config.GetBool("store.compress", tier.compress);
  RMP_RETURN_IF_ERROR(compress.status());
  tier.compress = *compress;
  auto dedup = config.GetBool("store.dedup", tier.dedup);
  RMP_RETURN_IF_ERROR(dedup.status());
  tier.dedup = *dedup;
  auto promote = config.GetInt("store.promote_hits", tier.promote_after_hits);
  RMP_RETURN_IF_ERROR(promote.status());
  tier.promote_after_hits = static_cast<uint32_t>(std::max<int64_t>(0, *promote));
  auto budget_kb =
      config.GetInt("store.cold_budget_kb", static_cast<int64_t>(tier.cold_budget_bytes / 1024));
  RMP_RETURN_IF_ERROR(budget_kb.status());
  tier.cold_budget_bytes = static_cast<uint64_t>(std::max<int64_t>(0, *budget_kb)) * 1024;
  auto spill = config.GetInt("store.spill_blocks", static_cast<int64_t>(tier.spill_blocks));
  RMP_RETURN_IF_ERROR(spill.status());
  tier.spill_blocks = static_cast<uint64_t>(std::max<int64_t>(0, *spill));
  auto overcommit = config.GetDouble("store.overcommit", tier.logical_overcommit);
  RMP_RETURN_IF_ERROR(overcommit.status());
  tier.logical_overcommit = std::max(1.0, *overcommit);
  return OkStatus();
}

MemoryServer::MemoryServer(const MemoryServerParams& params)
    : params_(params), spans_(params.span_ring_capacity), events_(params.events) {
  const uint32_t wanted = std::max<uint32_t>(1, params_.store_shards);
  shard_bits_ = 0;
  while ((1u << shard_bits_) < wanted) {
    ++shard_bits_;
  }
  shard_count_ = 1u << shard_bits_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
  if (params_.tier.hot_page_limit > 0) {
    per_shard_hot_limit_ = std::max<uint64_t>(1, params_.tier.hot_page_limit / shard_count_);
    if (params_.tier.cold_budget_bytes > 0) {
      per_shard_cold_budget_ =
          std::max<uint64_t>(kExtentBytes, params_.tier.cold_budget_bytes / shard_count_);
    }
    if (params_.tier.spill_blocks > 0) {
      auto disk = DiskStore::Create(params_.tier.spill_blocks);
      if (disk.ok()) {
        disk_ = std::make_unique<DiskStore>(std::move(*disk));
      } else {
        RMP_LOG(kWarning) << params_.name << " spill store unavailable ("
                          << disk.status().message() << "); cold tier stays in memory";
      }
    }
  }
  tenant_enforced_ = params_.tenants.enabled();
  if (tenant_enforced_) {
    std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
    for (const TenantQuota& quota : params_.tenants.tenants) {
      if (quota.id == 0 || quota.id > kMaxTenantId) {
        RMP_LOG(kWarning) << params_.name << " ignores tenant quota row with bad id " << quota.id;
        continue;
      }
      TenantState state;
      state.quota = quota;
      state.bucket = TokenBucket(quota.rate_pages_per_sec, quota.burst_pages);
      auto [it, inserted] = tenant_states_.emplace(quota.id, std::move(state));
      if (inserted) {
        BindTenantMetricsLocked(quota.id, &it->second);
      }
    }
  }
}

void MemoryServer::BindTenantMetricsLocked(uint16_t tenant, TenantState* state) const {
  const std::string prefix = "tenant." + std::to_string(tenant);
  state->ops = registry_.GetCounter(prefix + ".ops");
  state->denials = registry_.GetCounter(prefix + ".denials");
  state->rate_denials = registry_.GetCounter(prefix + ".rate_denials");
  state->reserved_gauge = registry_.GetGauge(prefix + ".reserved_pages");
  state->service_us = registry_.GetHistogram(prefix + ".service_us",
                                             {.lo = 0.1, .hi = 1e5, .buckets = 40,
                                              .log_scale = true});
}

MemoryServer::TenantState* MemoryServer::TenantStateLocked(uint16_t tenant) const {
  auto it = tenant_states_.find(tenant);
  if (it != tenant_states_.end()) {
    return &it->second;
  }
  if (params_.tenants.strict || tenant > kMaxTenantId) {
    return nullptr;
  }
  TenantState state;
  state.quota.id = tenant;  // Unlimited row: attribution only.
  auto [inserted, ok] = tenant_states_.emplace(tenant, std::move(state));
  BindTenantMetricsLocked(tenant, &inserted->second);
  return &inserted->second;
}

MemoryServer::Shard& MemoryServer::ShardFor(uint64_t slot) const {
  // Fibonacci hash: consecutive slots of an extent land on distinct shards,
  // and strided slot patterns do not alias onto one stripe.
  const uint64_t h = slot * 0x9e3779b97f4a7c15ULL;
  const uint32_t index = shard_bits_ == 0 ? 0 : static_cast<uint32_t>(h >> (64 - shard_bits_));
  return shards_[index];
}

uint8_t* MemoryServer::FramePtr(const Shard& shard, uint32_t frame) {
  return shard.slabs[frame / kSlabPages].get() +
         static_cast<size_t>(frame % kSlabPages) * kPageSize;
}

uint32_t MemoryServer::TakeFrameLocked(Shard* shard) {
  if (shard->free_frames.empty()) {
    const uint32_t base = static_cast<uint32_t>(shard->slabs.size()) * kSlabPages;
    shard->slabs.push_back(std::make_unique<uint8_t[]>(size_t{kSlabPages} * kPageSize));
    // Push in reverse so frames are handed out in ascending address order.
    for (uint32_t i = kSlabPages; i > 0; --i) {
      shard->free_frames.push_back(base + i - 1);
    }
  }
  const uint32_t frame = shard->free_frames.back();
  shard->free_frames.pop_back();
  return frame;
}

// --- Cold-tier internals (shard mutex held) ----------------------------------

void MemoryServer::MakeHotLocked(Shard* shard, uint64_t slot, SlotRef* ref,
                                 uint32_t frame) const {
  ref->tier = SlotRef::Tier::kHot;
  ref->clock = 1;
  ref->ref = frame;
  ++shard->hot_count;
  if (per_shard_hot_limit_ > 0) {
    // With the tier off nothing ever pops the ring, so do not feed it.
    ref->ring_epoch = ++shard->next_ring_epoch;
    shard->clock_ring.emplace_back(slot, ref->ring_epoch);
  }
}

void MemoryServer::ReleaseStorageLocked(Shard* shard, SlotRef* ref) const {
  switch (ref->tier) {
    case SlotRef::Tier::kHot:
      shard->free_frames.push_back(ref->ref);
      --shard->hot_count;
      break;  // The slot's ring entry goes stale; the epoch check drops it.
    case SlotRef::Tier::kCold:
      ReleaseColdRefLocked(shard, ref->ref);
      break;
    case SlotRef::Tier::kZero:
      break;
  }
}

void MemoryServer::ReleaseColdRefLocked(Shard* shard, uint32_t entry_index) const {
  ColdEntry& entry = shard->cold_entries[entry_index];
  if (--entry.refs > 0) {
    return;
  }
  if (params_.tier.dedup) {
    auto range = shard->dedup.equal_range(entry.crc);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == entry_index) {
        shard->dedup.erase(it);
        break;
      }
    }
  }
  Extent& extent = shard->extents[entry.extent];
  extent.dead += entry.bytes;
  if (!extent.spilled()) {
    shard->cold_live_bytes -= entry.bytes;
  }
  shard->cold_free.push_back(entry_index);
  if (extent.sealed && extent.dead == extent.used) {
    ReleaseExtentLocked(shard, entry.extent);
  }
}

void MemoryServer::ReleaseExtentLocked(Shard* shard, uint32_t extent_index) const {
  Extent& extent = shard->extents[extent_index];
  if (extent.spilled()) {
    std::lock_guard<std::mutex> disk_lock(disk_mutex_);
    const Status freed = disk_->Free(extent.disk_block, extent.disk_blocks);
    if (!freed.ok()) {
      RMP_LOG(kWarning) << params_.name << " failed to free a spill run: " << freed.message();
    }
  }
  extent = Extent{};
  if (shard->open_extent == extent_index) {
    shard->open_extent = kNoIndex;
  }
  shard->extent_free.push_back(extent_index);
}

void MemoryServer::AppendColdLocked(Shard* shard, const uint8_t* bytes, uint32_t len,
                                    uint32_t* extent_out, uint32_t* offset_out) const {
  if (shard->open_extent == kNoIndex ||
      shard->extents[shard->open_extent].capacity - shard->extents[shard->open_extent].used <
          len) {
    if (shard->open_extent != kNoIndex) {
      Extent& full = shard->extents[shard->open_extent];
      full.sealed = true;
      const uint32_t sealed_index = shard->open_extent;
      shard->open_extent = kNoIndex;
      if (full.dead == full.used) {
        ReleaseExtentLocked(shard, sealed_index);
      }
    }
    uint32_t index;
    if (!shard->extent_free.empty()) {
      index = shard->extent_free.back();
      shard->extent_free.pop_back();
    } else {
      index = static_cast<uint32_t>(shard->extents.size());
      shard->extents.emplace_back();
    }
    Extent& fresh = shard->extents[index];
    fresh.data = std::make_unique<uint8_t[]>(kExtentBytes);
    fresh.capacity = kExtentBytes;
    shard->open_extent = index;
  }
  Extent& open = shard->extents[shard->open_extent];
  std::memcpy(open.data.get() + open.used, bytes, len);
  *extent_out = shard->open_extent;
  *offset_out = open.used;
  open.used += len;
  shard->cold_live_bytes += len;
}

bool MemoryServer::ColdEntryMatchesLocked(Shard* shard, const ColdEntry& entry,
                                          const uint8_t* page) const {
  const Extent& extent = shard->extents[entry.extent];
  if (extent.spilled()) {
    return false;  // Dedup only probes resident extents; a disk read per probe
                   // would make demotion slower than the copy it saves.
  }
  const uint8_t* stored = extent.data.get() + entry.offset;
  if (!entry.compressed) {
    return entry.bytes == kPageSize && std::memcmp(stored, page, kPageSize) == 0;
  }
  thread_local std::vector<uint8_t> verify;
  verify.resize(kPageSize);
  if (!DecompressBlock(stored, entry.bytes, verify.data(), kPageSize).ok()) {
    return false;
  }
  return std::memcmp(verify.data(), page, kPageSize) == 0;
}

void MemoryServer::DemoteLocked(Shard* shard, SlotRef* ref) const {
  const uint32_t frame = ref->ref;
  const uint8_t* page = FramePtr(*shard, frame);
  const uint32_t crc = Crc32c(std::span<const uint8_t>(page, kPageSize));
  uint32_t entry_index = kNoIndex;
  if (params_.tier.dedup) {
    auto range = shard->dedup.equal_range(crc);
    for (auto it = range.first; it != range.second; ++it) {
      if (ColdEntryMatchesLocked(shard, shard->cold_entries[it->second], page)) {
        entry_index = it->second;
        break;
      }
    }
  }
  if (entry_index != kNoIndex) {
    ++shard->cold_entries[entry_index].refs;
    stats_.dedup_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    thread_local std::vector<uint8_t> scratch;
    scratch.resize(CompressBound(kPageSize));
    const uint8_t* stored = page;
    uint32_t stored_bytes = kPageSize;
    bool compressed = false;
    if (params_.tier.compress) {
      const auto t0 = SteadyClock::now();
      const size_t csize = CompressBlock(page, kPageSize, scratch.data(), kCompressCeiling);
      stats_.compress_us.Observe(MicrosSince(t0));
      if (csize > 0) {
        stored = scratch.data();
        stored_bytes = static_cast<uint32_t>(csize);
        compressed = true;
      } else {
        stats_.incompressible.fetch_add(1, std::memory_order_relaxed);
      }
    }
    uint32_t extent = 0;
    uint32_t offset = 0;
    AppendColdLocked(shard, stored, stored_bytes, &extent, &offset);
    if (!shard->cold_free.empty()) {
      entry_index = shard->cold_free.back();
      shard->cold_free.pop_back();
    } else {
      entry_index = static_cast<uint32_t>(shard->cold_entries.size());
      shard->cold_entries.emplace_back();
    }
    shard->cold_entries[entry_index] = ColdEntry{crc, stored_bytes, extent, offset, 1, compressed};
    if (params_.tier.dedup) {
      shard->dedup.emplace(crc, entry_index);
    }
    stats_.cold_source_bytes.fetch_add(kPageSize, std::memory_order_relaxed);
    stats_.cold_stored_bytes.fetch_add(stored_bytes, std::memory_order_relaxed);
  }
  shard->free_frames.push_back(frame);
  --shard->hot_count;
  ref->tier = SlotRef::Tier::kCold;
  ref->clock = 0;
  ref->ref = entry_index;
  stats_.demotions.fetch_add(1, std::memory_order_relaxed);
  MaybeSpillLocked(shard);
}

void MemoryServer::MaybeDemoteLocked(Shard* shard) const {
  if (per_shard_hot_limit_ == 0) {
    return;
  }
  // Bounded pass: a ring full of referenced pages gets its bits cleared and
  // re-queued once; the next store finishes the job. Amortized O(1).
  size_t budget = shard->clock_ring.size() * 2;
  while (shard->hot_count > per_shard_hot_limit_ && budget-- > 0 && !shard->clock_ring.empty()) {
    const auto [slot, epoch] = shard->clock_ring.front();
    shard->clock_ring.pop_front();
    auto it = shard->pages.find(slot);
    if (it == shard->pages.end() || it->second.tier != SlotRef::Tier::kHot ||
        it->second.ring_epoch != epoch) {
      continue;  // Stale: the slot was freed, demoted, or re-stored since.
    }
    SlotRef& ref = it->second;
    if (ref.clock != 0) {
      ref.clock = 0;  // Second chance.
      shard->clock_ring.emplace_back(slot, epoch);
      continue;
    }
    DemoteLocked(shard, &ref);
  }
}

Status MemoryServer::UnspillExtentLocked(Shard* shard, uint32_t extent_index) const {
  ScratchTimer disk_timer(&ServerTraceScratch::disk_ns);
  Extent& extent = shard->extents[extent_index];
  auto data = std::make_unique<uint8_t[]>(extent.capacity);
  {
    std::lock_guard<std::mutex> disk_lock(disk_mutex_);
    // capacity is a multiple of kPageSize, so whole-block reads stay in
    // bounds even when `used` ends mid-block.
    for (uint64_t b = 0; b < extent.disk_blocks; ++b) {
      RMP_RETURN_IF_ERROR(disk_->Read(extent.disk_block + b,
                                      std::span<uint8_t>(data.get() + b * kPageSize, kPageSize)));
    }
    const Status freed = disk_->Free(extent.disk_block, extent.disk_blocks);
    if (!freed.ok()) {
      RMP_LOG(kWarning) << params_.name << " failed to free a spill run: " << freed.message();
    }
  }
  extent.data = std::move(data);
  extent.disk_block = 0;
  extent.disk_blocks = 0;
  shard->cold_live_bytes += extent.used - extent.dead;
  stats_.unspills.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

void MemoryServer::MaybeSpillLocked(Shard* shard) const {
  if (disk_ == nullptr || per_shard_cold_budget_ == 0) {
    return;
  }
  ScratchTimer disk_timer(&ServerTraceScratch::disk_ns);
  while (shard->cold_live_bytes > per_shard_cold_budget_) {
    uint32_t victim = kNoIndex;
    for (uint32_t i = 0; i < shard->extents.size(); ++i) {
      const Extent& x = shard->extents[i];
      if (x.sealed && !x.spilled() && x.data != nullptr && x.used > x.dead) {
        victim = i;  // Lowest index ≈ oldest extent ≈ coldest payloads.
        break;
      }
    }
    if (victim == kNoIndex) {
      return;  // Only the open extent is resident; nothing sealed to evict.
    }
    Extent& extent = shard->extents[victim];
    const uint64_t blocks = (extent.used + kPageSize - 1) / kPageSize;
    {
      std::lock_guard<std::mutex> disk_lock(disk_mutex_);
      auto run = disk_->Allocate(blocks);
      if (!run.ok()) {
        return;  // Spill store full: keep extents resident.
      }
      bool failed = false;
      for (uint64_t b = 0; b < blocks; ++b) {
        if (!disk_->Write(*run + b, std::span<const uint8_t>(extent.data.get() + b * kPageSize,
                                                             kPageSize))
                 .ok()) {
          failed = true;
          break;
        }
      }
      if (failed) {
        (void)disk_->Free(*run, blocks);
        return;
      }
      extent.disk_block = *run;
      extent.disk_blocks = blocks;
    }
    extent.data.reset();
    shard->cold_live_bytes -= extent.used - extent.dead;
    stats_.spills.fetch_add(1, std::memory_order_relaxed);
  }
}

Status MemoryServer::ReadColdLocked(Shard* shard, uint32_t entry_index, uint8_t* out) const {
  ColdEntry& entry = shard->cold_entries[entry_index];
  if (shard->extents[entry.extent].spilled()) {
    RMP_RETURN_IF_ERROR(UnspillExtentLocked(shard, entry.extent));
  }
  const Extent& extent = shard->extents[entry.extent];
  const uint8_t* stored = extent.data.get() + entry.offset;
  if (entry.compressed) {
    const auto t0 = SteadyClock::now();
    RMP_RETURN_IF_ERROR(DecompressBlock(stored, entry.bytes, out, kPageSize));
    stats_.decompress_us.Observe(MicrosSince(t0));
  } else {
    std::memcpy(out, stored, kPageSize);
  }
  // End-to-end net: a bit flip anywhere in the cold path (extent memory, the
  // spill file, the codec) surfaces here instead of reaching the client.
  if (Crc32c(std::span<const uint8_t>(out, kPageSize)) != entry.crc) {
    return CorruptionError(params_.name + " cold page failed its integrity check");
  }
  return OkStatus();
}

void MemoryServer::PromoteLocked(Shard* shard, uint64_t slot, SlotRef* ref,
                                 const uint8_t* page) const {
  const uint32_t entry_index = ref->ref;
  const uint32_t frame = TakeFrameLocked(shard);
  std::memcpy(FramePtr(*shard, frame), page, kPageSize);
  ReleaseColdRefLocked(shard, entry_index);
  MakeHotLocked(shard, slot, ref, frame);
  stats_.promotions.fetch_add(1, std::memory_order_relaxed);
  MaybeDemoteLocked(shard);
}

Result<uint32_t> MemoryServer::MaterializeHotLocked(Shard* shard, uint64_t slot,
                                                    SlotRef* ref) const {
  switch (ref->tier) {
    case SlotRef::Tier::kHot:
      return ref->ref;
    case SlotRef::Tier::kZero: {
      const uint32_t frame = TakeFrameLocked(shard);
      std::memset(FramePtr(*shard, frame), 0, kPageSize);
      MakeHotLocked(shard, slot, ref, frame);
      return frame;
    }
    case SlotRef::Tier::kCold: {
      thread_local std::vector<uint8_t> page;
      page.resize(kPageSize);
      RMP_RETURN_IF_ERROR(ReadColdLocked(shard, ref->ref, page.data()));
      const uint32_t entry_index = ref->ref;
      const uint32_t frame = TakeFrameLocked(shard);
      std::memcpy(FramePtr(*shard, frame), page.data(), kPageSize);
      ReleaseColdRefLocked(shard, entry_index);
      MakeHotLocked(shard, slot, ref, frame);
      return frame;
    }
  }
  return InternalError("unreachable tier");
}

// --- Allocation and data path ------------------------------------------------

uint64_t MemoryServer::EffectiveCapacityLocked() const {
  double available = static_cast<double>(params_.capacity_pages) * (1.0 - native_load_);
  if (per_shard_hot_limit_ > 0) {
    // Compression + dedup make extra logical pages physically affordable.
    available *= params_.tier.logical_overcommit;
  }
  return available <= 0.0 ? 0 : static_cast<uint64_t>(available);
}

uint64_t MemoryServer::FreePagesLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  return capacity > reserved_slots_ ? capacity - reserved_slots_ : 0;
}

bool MemoryServer::AdviseStopLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  if (capacity == 0) {
    return true;
  }
  return static_cast<double>(reserved_slots_) >=
         params_.advise_stop_fraction * static_cast<double>(capacity);
}

Result<uint64_t> MemoryServer::Allocate(uint64_t pages, uint16_t tenant) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0) {
    return InvalidArgumentError("cannot allocate zero pages");
  }
  if (FreePagesLocked() < pages) {
    stats_.denials.fetch_add(1, std::memory_order_relaxed);
    if (tenant_enforced_ && tenant != 0) {
      std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
      if (TenantState* state = TenantStateLocked(tenant)) {
        state->denials->Increment();
      }
    }
    return NoSpaceError(params_.name + " denies allocation of " + std::to_string(pages) +
                        " pages (free " + std::to_string(FreePagesLocked()) + ")");
  }
  if (tenant_enforced_ && tenant != 0) {
    std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
    TenantState* state = TenantStateLocked(tenant);
    if (state == nullptr) {
      return FailedPreconditionError(params_.name + " knows no tenant " + std::to_string(tenant));
    }
    if (state->quota.memory_quota_pages > 0 &&
        state->reserved + pages > state->quota.memory_quota_pages) {
      state->denials->Increment();
      stats_.denials.fetch_add(1, std::memory_order_relaxed);
      return NoSpaceError(params_.name + " denies tenant " + std::to_string(tenant) + " " +
                          std::to_string(pages) + " pages (quota " +
                          std::to_string(state->quota.memory_quota_pages) + ", reserved " +
                          std::to_string(state->reserved) + ")");
    }
    state->reserved += pages;  // The remaining path below cannot fail.
  }
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  reserved_slots_ += pages;
  uint64_t start = 0;
  bool reused = false;
  // Reuse freed slot runs first so long-lived servers do not leak slot space.
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second >= pages) {
      start = it->first;
      it->first += pages;
      it->second -= pages;
      if (it->second == 0) {
        free_runs_.erase(it);
      }
      reused = true;
      break;
    }
  }
  if (!reused) {
    start = next_slot_.load(std::memory_order_relaxed);
    next_slot_.store(start + pages, std::memory_order_release);
  }
  if (tenant_enforced_) {
    // Track tenant-0 runs too: ownership checks must know a slot is legacy
    // (anyone may touch it) rather than merely unknown.
    tenant_runs_.emplace(start, std::make_pair(pages, tenant));
  }
  return start;
}

Status MemoryServer::Free(uint64_t first_slot, uint64_t pages, uint16_t tenant) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0 || first_slot + pages > next_slot_.load(std::memory_order_relaxed)) {
    return InvalidArgumentError("bad free range");
  }
  if (tenant_enforced_ && tenant != 0) {
    // A nonzero tenant may free only its own runs (and legacy tenant-0 ones);
    // check the whole range up front so a denied free leaves nothing behind.
    const uint64_t end = first_slot + pages;
    auto it = tenant_runs_.upper_bound(first_slot);
    if (it != tenant_runs_.begin()) {
      --it;
    }
    for (; it != tenant_runs_.end() && it->first < end; ++it) {
      if (it->first + it->second.first <= first_slot) {
        continue;
      }
      const uint16_t owner = it->second.second;
      if (owner != tenant && owner != 0) {
        std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
        if (TenantState* state = TenantStateLocked(tenant)) {
          state->denials->Increment();
        }
        return FailedPreconditionError("tenant " + std::to_string(tenant) +
                                       " cannot free slots owned by tenant " +
                                       std::to_string(owner));
      }
    }
  }
  for (uint64_t s = first_slot; s < first_slot + pages; ++s) {
    Shard& shard = ShardFor(s);
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    auto it = shard.pages.find(s);
    if (it != shard.pages.end()) {
      ReleaseStorageLocked(&shard, &it->second);
      shard.pages.erase(it);
    }
  }
  reserved_slots_ -= std::min(reserved_slots_, pages);
  free_runs_.emplace_back(first_slot, pages);
  std::sort(free_runs_.begin(), free_runs_.end());
  if (tenant_enforced_) {
    ReleaseTenantRunsLocked(first_slot, pages);
  }
  return OkStatus();
}

void MemoryServer::ReleaseTenantRunsLocked(uint64_t first_slot, uint64_t pages) {
  const uint64_t end = first_slot + pages;
  std::vector<std::pair<uint64_t, std::pair<uint64_t, uint16_t>>> remnants;
  std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
  auto it = tenant_runs_.upper_bound(first_slot);
  if (it != tenant_runs_.begin()) {
    --it;
  }
  while (it != tenant_runs_.end() && it->first < end) {
    const uint64_t run_start = it->first;
    const uint64_t run_end = run_start + it->second.first;
    const uint16_t owner = it->second.second;
    if (run_end <= first_slot) {
      ++it;
      continue;
    }
    const uint64_t cut_start = std::max(first_slot, run_start);
    const uint64_t cut_end = std::min(end, run_end);
    if (owner != 0) {
      if (TenantState* state = TenantStateLocked(owner)) {
        state->reserved -= std::min(state->reserved, cut_end - cut_start);
      }
    }
    it = tenant_runs_.erase(it);
    if (run_start < cut_start) {
      remnants.emplace_back(run_start, std::make_pair(cut_start - run_start, owner));
    }
    if (cut_end < run_end) {
      remnants.emplace_back(cut_end, std::make_pair(run_end - cut_end, owner));
    }
  }
  for (const auto& piece : remnants) {
    tenant_runs_.emplace(piece.first, piece.second);
  }
}

Status MemoryServer::CheckSlotOwner(uint64_t slot, uint16_t tenant) const {
  if (!tenant_enforced_ || tenant == 0) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(control_mutex_);
  auto it = tenant_runs_.upper_bound(slot);
  if (it == tenant_runs_.begin()) {
    return OkStatus();  // Untracked slot: legacy space.
  }
  --it;
  if (slot >= it->first + it->second.first) {
    return OkStatus();
  }
  const uint16_t owner = it->second.second;
  if (owner != tenant && owner != 0) {
    std::lock_guard<std::mutex> tenant_lock(tenant_mutex_);
    if (TenantState* state = TenantStateLocked(tenant)) {
      state->denials->Increment();
    }
    return FailedPreconditionError("slot " + std::to_string(slot) + " belongs to tenant " +
                                   std::to_string(owner) + ", not " + std::to_string(tenant));
  }
  return OkStatus();
}

Status MemoryServer::Store(uint64_t slot, std::span<const uint8_t> page) {
  ScratchTimer store_timer(&ServerTraceScratch::store_ns);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Recheck under the shard lock: Crash() raises the flag before sweeping the
  // shards, so a store that loses the race cannot resurrect a dropped page.
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.pages.try_emplace(slot);
  SlotRef& ref = it->second;
  const bool elide_zero =
      per_shard_hot_limit_ > 0 && params_.tier.compress && IsZeroBytes(page.data(), kPageSize);
  if (elide_zero) {
    if (!inserted) {
      ReleaseStorageLocked(&shard, &ref);
    }
    ref.tier = SlotRef::Tier::kZero;
    ref.clock = 0;
    ref.ref = 0;
    stats_.zero_elisions.fetch_add(1, std::memory_order_relaxed);
  } else if (!inserted && ref.tier == SlotRef::Tier::kHot) {
    // Overwrite in place: the frame is already ours.
    std::memcpy(FramePtr(shard, ref.ref), page.data(), kPageSize);
    ref.clock = 1;
  } else {
    if (!inserted) {
      ReleaseStorageLocked(&shard, &ref);
    }
    const uint32_t frame = TakeFrameLocked(&shard);
    std::memcpy(FramePtr(shard, frame), page.data(), kPageSize);
    MakeHotLocked(&shard, slot, &ref, frame);
    MaybeDemoteLocked(&shard);
  }
  if (params_.store_service_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(params_.store_service_micros));
  }
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(page.size(), std::memory_order_relaxed);
  return OkStatus();
}

Result<PageBuffer> MemoryServer::MigrateOut(uint64_t slot, uint16_t tenant) {
  // Ownership gate before the Load: a cross-tenant MIGRATE must not even read
  // the page, let alone free it.
  RMP_RETURN_IF_ERROR(CheckSlotOwner(slot, tenant));
  auto page = Load(slot);
  if (!page.ok()) {
    return page;
  }
  // The pagein counter was already bumped by Load; Free reclaims the slot so
  // the drained server's donated memory is immediately reusable.
  RMP_RETURN_IF_ERROR(Free(slot, 1, tenant));
  stats_.migrations_served.fetch_add(1, std::memory_order_relaxed);
  return page;
}

Result<PageBuffer> MemoryServer::Load(uint64_t slot) const {
  ScratchTimer store_timer(&ServerTraceScratch::store_ns);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto it = shard.pages.find(slot);
  if (it == shard.pages.end()) {
    return NotFoundError("slot " + std::to_string(slot) + " holds no page");
  }
  if (params_.store_service_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(params_.store_service_micros));
  }
  SlotRef& ref = it->second;
  PageBuffer out;  // Zero-filled: the kZero tier returns it as-is.
  switch (ref.tier) {
    case SlotRef::Tier::kHot:
      ref.clock = 1;
      out.Assign(std::span<const uint8_t>(FramePtr(shard, ref.ref), kPageSize));
      break;
    case SlotRef::Tier::kZero:
      break;
    case SlotRef::Tier::kCold: {
      RMP_RETURN_IF_ERROR(ReadColdLocked(&shard, ref.ref, out.data()));
      const uint32_t hits = params_.tier.promote_after_hits;
      if (hits > 0) {
        if (ref.clock < 255) {
          ++ref.clock;
        }
        if (ref.clock >= hits) {
          PromoteLocked(&shard, slot, &ref, out.data());
        }
      }
      break;
    }
  }
  stats_.pageins_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_returned.fetch_add(kPageSize, std::memory_order_relaxed);
  return out;
}

Status MemoryServer::StoreBatch(std::span<const uint64_t> slots, std::span<const uint8_t> pages,
                                uint64_t* stored_out) {
  if (pages.size() != slots.size() * kPageSize) {
    if (stored_out != nullptr) {
      *stored_out = 0;
    }
    return InvalidArgumentError("batch pages must be slots.size() * kPageSize bytes");
  }
  uint64_t stored = 0;
  Status status = OkStatus();
  for (size_t i = 0; i < slots.size(); ++i) {
    status = Store(slots[i], pages.subspan(i * kPageSize, kPageSize));
    if (!status.ok()) {
      break;
    }
    ++stored;
  }
  if (stored_out != nullptr) {
    *stored_out = stored;
  }
  return status;
}

Status MemoryServer::LoadBatch(std::span<const uint64_t> slots, std::vector<uint8_t>* out) const {
  out->reserve(out->size() + slots.size() * kPageSize);
  for (const uint64_t slot : slots) {
    auto page = Load(slot);
    if (!page.ok()) {
      return page.status();
    }
    out->insert(out->end(), page->span().begin(), page->span().end());
  }
  return OkStatus();
}

Result<PageBuffer> MemoryServer::DeltaStore(uint64_t slot, std::span<const uint8_t> page) {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.pages.try_emplace(slot);
  uint32_t frame;
  if (inserted) {
    frame = TakeFrameLocked(&shard);
    // Recycled frames carry stale bytes; an absent slot must read as zeroes.
    std::memset(FramePtr(shard, frame), 0, kPageSize);
    MakeHotLocked(&shard, slot, &it->second, frame);
  } else {
    auto hot = MaterializeHotLocked(&shard, slot, &it->second);
    if (!hot.ok()) {
      return hot.status();
    }
    frame = *hot;
    it->second.clock = 1;
  }
  uint8_t* stored = FramePtr(shard, frame);
  PageBuffer delta(std::span<const uint8_t>(stored, kPageSize));
  delta.XorWith(page);
  std::memcpy(stored, page.data(), kPageSize);
  MaybeDemoteLocked(&shard);
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(page.size(), std::memory_order_relaxed);
  return delta;
}

Status MemoryServer::XorMerge(uint64_t slot, std::span<const uint8_t> delta) {
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_.load(std::memory_order_acquire)) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (delta.size() != kPageSize) {
    return InvalidArgumentError("delta must be exactly kPageSize bytes");
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (crashed()) {
    return UnavailableError(params_.name + " crashed");
  }
  auto [it, inserted] = shard.pages.try_emplace(slot);
  uint32_t frame;
  if (inserted) {
    frame = TakeFrameLocked(&shard);
    std::memset(FramePtr(shard, frame), 0, kPageSize);
    MakeHotLocked(&shard, slot, &it->second, frame);
  } else {
    auto hot = MaterializeHotLocked(&shard, slot, &it->second);
    if (!hot.ok()) {
      return hot.status();
    }
    frame = *hot;
    it->second.clock = 1;
  }
  XorBytes(FramePtr(shard, frame), delta.data(), kPageSize);
  MaybeDemoteLocked(&shard);
  stats_.pageouts_served.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_stored.fetch_add(delta.size(), std::memory_order_relaxed);
  return OkStatus();
}

bool MemoryServer::Holds(uint64_t slot) const {
  if (crashed()) {
    return false;
  }
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.pages.count(slot) > 0;
}

std::vector<uint64_t> MemoryServer::LiveSlots() const {
  std::vector<uint64_t> slots;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    for (const auto& [slot, ref] : shards_[i].pages) {
      slots.push_back(slot);
    }
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

void MemoryServer::Crash() {
  // Raise the flag first: data ops recheck it under their shard lock, so any
  // store racing the sweep either completes before the shard is cleared or
  // observes the crash and fails.
  crashed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    free_runs_.clear();
    reserved_slots_ = 0;
    next_slot_.store(0, std::memory_order_release);
    tenant_runs_.clear();
  }
  if (tenant_enforced_) {
    // Every tenant's pages died with the process; their occupancy goes too.
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    for (auto& [id, state] : tenant_states_) {
      state.reserved = 0;
    }
  }
  {
    // The map died with the process: a restarted server waits for the
    // coordinator to republish before its epoch gate bites again.
    std::lock_guard<std::mutex> lock(map_mutex_);
    map_bytes_.clear();
    map_epoch_.store(0, std::memory_order_release);
  }
  for (uint32_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (uint32_t x = 0; x < shard.extents.size(); ++x) {
      if (shard.extents[x].spilled()) {
        ReleaseExtentLocked(&shard, x);  // Returns the disk run too.
      }
    }
    shard.pages.clear();
    shard.free_frames.clear();
    shard.slabs.clear();
    shard.clock_ring.clear();
    shard.next_ring_epoch = 0;
    shard.hot_count = 0;
    shard.cold_entries.clear();
    shard.cold_free.clear();
    shard.dedup.clear();
    shard.extents.clear();
    shard.extent_free.clear();
    shard.open_extent = kNoIndex;
    shard.cold_live_bytes = 0;
  }
  events_.Append(EventKind::kCrash, params_.name, "all pages lost");
  RMP_LOG(kInfo) << params_.name << " crashed, all pages lost";
}

void MemoryServer::Restart() {
  incarnation_.fetch_add(1, std::memory_order_acq_rel);
  crashed_.store(false, std::memory_order_release);
  events_.Append(EventKind::kRestart, params_.name,
                 "incarnation=" + std::to_string(incarnation()));
}

std::vector<uint8_t> MemoryServer::map_bytes() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return map_bytes_;
}

void MemoryServer::ResetStats() {
  // Every counter and gauge lives in the registry, so a registry-wide reset
  // zeroes stats() and the STATS-visible surface in one stroke — a restarted
  // incarnation must not leak the previous life's totals.
  registry_.Reset();
}

TierOccupancy MemoryServer::tier_occupancy() const {
  TierOccupancy occ;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    occ.hot_pages += shard.hot_count;
    for (const auto& [slot, ref] : shard.pages) {
      if (ref.tier == SlotRef::Tier::kCold) {
        ++occ.cold_pages;
      } else if (ref.tier == SlotRef::Tier::kZero) {
        ++occ.zero_pages;
      }
    }
    occ.unique_cold_entries += shard.cold_entries.size() - shard.cold_free.size();
    for (const Extent& x : shard.extents) {
      if (x.used <= x.dead) {
        continue;  // Empty husk or fully dead.
      }
      if (x.spilled()) {
        occ.spilled_bytes += x.used - x.dead;
      } else if (x.data != nullptr) {
        occ.cold_physical_bytes += x.used - x.dead;
      }
    }
    occ.logical_bytes += shard.pages.size() * kPageSize;
  }
  occ.physical_bytes = occ.hot_pages * kPageSize + occ.cold_physical_bytes;
  return occ;
}

std::string MemoryServer::StatsJson() const {
  registry_.GetGauge("server.capacity_pages")->Set(static_cast<int64_t>(capacity_pages()));
  registry_.GetGauge("server.free_pages")->Set(static_cast<int64_t>(free_pages()));
  registry_.GetGauge("server.live_pages")->Set(static_cast<int64_t>(live_pages()));
  registry_.GetGauge("server.incarnation")->Set(static_cast<int64_t>(incarnation()));
  registry_.GetGauge("server.advise_stop")->Set(ShouldAdviseStop() ? 1 : 0);
  const TierOccupancy occ = tier_occupancy();
  registry_.GetGauge("server.hot_pages")->Set(static_cast<int64_t>(occ.hot_pages));
  registry_.GetGauge("server.cold_pages")->Set(static_cast<int64_t>(occ.cold_pages));
  registry_.GetGauge("server.zero_pages")->Set(static_cast<int64_t>(occ.zero_pages));
  registry_.GetGauge("server.cold_unique")->Set(static_cast<int64_t>(occ.unique_cold_entries));
  registry_.GetGauge("server.cold_spilled_bytes")->Set(static_cast<int64_t>(occ.spilled_bytes));
  registry_.GetGauge("server.logical_bytes")->Set(static_cast<int64_t>(occ.logical_bytes));
  registry_.GetGauge("server.physical_bytes")->Set(static_cast<int64_t>(occ.physical_bytes));
  if (tenant_enforced_) {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    for (auto& [id, state] : tenant_states_) {
      state.reserved_gauge->Set(static_cast<int64_t>(state.reserved));
    }
  }
  return registry_.ExportJson();
}

void MemoryServer::SetNativeLoad(double fraction) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  native_load_ = std::clamp(fraction, 0.0, 1.0);
}

void MemoryServer::SetSlotDelayForTest(uint64_t slot, int64_t micros) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  if (micros <= 0) {
    slot_delays_micros_.erase(slot);
  } else {
    slot_delays_micros_[slot] = micros;
  }
  has_slot_delays_.store(!slot_delays_micros_.empty(), std::memory_order_release);
}

uint64_t MemoryServer::capacity_pages() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return EffectiveCapacityLocked();
}

uint64_t MemoryServer::free_pages() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return FreePagesLocked();
}

uint64_t MemoryServer::live_pages() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    total += shards_[i].pages.size();
  }
  return total;
}

bool MemoryServer::ShouldAdviseStop() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  return AdviseStopLocked();
}

uint64_t MemoryServer::TenantReservedPages(uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_states_.find(tenant);
  return it == tenant_states_.end() ? 0 : it->second.reserved;
}

bool MemoryServer::TenantShouldAdviseStop(uint16_t tenant) const {
  if (!tenant_enforced_ || tenant == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_states_.find(tenant);
  if (it == tenant_states_.end() || it->second.quota.memory_quota_pages == 0) {
    return false;
  }
  const TenantState& state = it->second;
  return static_cast<double>(state.reserved) >=
         state.quota.advise_stop_fraction * static_cast<double>(state.quota.memory_quota_pages);
}

bool MemoryServer::AdmitTenant(const Message& request, Message* denial,
                               HistogramMetric** service_us_out) {
  *service_us_out = nullptr;
  const uint16_t tenant = request.tenant;
  if (tenant == 0) {
    return true;
  }
  // Classify into a priority lane and a token cost. Lower lanes must leave a
  // slice of the bucket untouched, so when a tenant runs hot its background
  // and pageout traffic throttles first and pageins keep landing — the same
  // ordering the scheduler's shedding uses (DESIGN.md §15).
  uint64_t cost = 0;
  int lane = 0;  // 0 = pagein (no reserve), 1 = pageout-ish, 2 = background.
  switch (request.type) {
    case MessageType::kPageIn:
      cost = 1;
      break;
    case MessageType::kPageInBatch:
      cost = std::clamp<uint64_t>(request.count, 1, kMaxBatchPages);
      break;
    case MessageType::kPageOut:
    case MessageType::kDeltaPageOut:
    case MessageType::kXorMerge:
      cost = 1;
      lane = 1;
      break;
    case MessageType::kPageOutBatch:
      cost = std::clamp<uint64_t>(request.count, 1, kMaxBatchPages);
      lane = 1;
      break;
    case MessageType::kMigrate:
      cost = 1;
      lane = 2;
      break;
    default:
      break;  // Control traffic (alloc, heartbeat, stats) is never rate-gated.
  }
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  TenantState* state = TenantStateLocked(tenant);
  if (state == nullptr) {
    *denial = MakeErrorReply(request.request_id, ErrorCode::kFailedPrecondition);
    return false;
  }
  state->ops->Increment();
  if (cost > 0 && state->quota.rate_pages_per_sec > 0) {
    const TimeNs now = NowNanos();
    const uint64_t burst = state->bucket.burst();
    const uint64_t reserve = lane == 0 ? 0 : (lane == 1 ? burst / 8 : burst / 2);
    if (state->bucket.Available(now) < cost + reserve) {
      state->rate_denials->Increment();
      *denial = RateLimitedReply(request);
      return false;
    }
    state->bucket.TakeUpTo(cost, now);
  }
  *service_us_out = state->service_us;
  return true;
}

Message MemoryServer::Handle(const Message& request) {
  // Trace shim (DESIGN.md §17). Requests without a wire trace id — legacy
  // frames, sampled-out operations, tracing off — pay exactly one flag test
  // and fall through to the pre-§17 path.
  const uint32_t trace_id = request.trace_id();
  if (trace_id == 0) {
    return HandleAdmitted(request);
  }
  // Traced request: time the handler wall-to-wall and let the store path
  // accumulate its share into the per-thread scratch; the transport worker
  // already deposited the scheduler queue delay there (0 for in-proc calls).
  ServerTraceScratch& scratch = ServerScratch();
  const int64_t queue_ns = scratch.queue_ns;
  scratch.queue_ns = 0;
  scratch.store_ns = 0;
  scratch.disk_ns = 0;
  scratch.active = true;
  const TimeNs t0 = NowNanos();
  Message reply = HandleAdmitted(request);
  const TimeNs t1 = NowNanos();
  scratch.active = false;
  if (queue_ns > 0) {
    spans_.Record(trace_id, TraceStage::kServerQueue, t0 - queue_ns, queue_ns);
  }
  spans_.Record(trace_id, TraceStage::kServerService, t0, t1 - t0);
  // Store/disk are sub-spans of service (same start anchor): the breakdown
  // reports how much of the service time the store path accounts for.
  if (scratch.store_ns > 0) {
    spans_.Record(trace_id, TraceStage::kServerStore, t0, scratch.store_ns);
  }
  if (scratch.disk_ns > 0) {
    spans_.Record(trace_id, TraceStage::kServerDisk, t0, scratch.disk_ns);
  }
  return reply;
}

Message MemoryServer::HandleAdmitted(const Message& request) {
  if (!tenant_enforced_) {
    // Tenant policy off: the request takes exactly the pre-§15 path, whatever
    // its tenant field says (attribution without enforcement costs nothing).
    return HandleInternal(request);
  }
  Message denial;
  HistogramMetric* service_us = nullptr;
  if (!AdmitTenant(request, &denial, &service_us)) {
    denial.tenant = request.tenant;
    events_.Append(EventKind::kTenantShed, params_.name,
                   "tenant=" + std::to_string(request.tenant) + " op=" +
                       std::string(MessageTypeName(request.type)) + " shed");
    return denial;
  }
  const auto t0 = SteadyClock::now();
  Message reply = HandleInternal(request);
  reply.tenant = request.tenant;  // Replies echo the tenant for attribution.
  if (service_us != nullptr) {
    service_us->Observe(MicrosSince(t0));
  }
  return reply;
}

Message MemoryServer::HandleInternal(const Message& request) {
  if (has_slot_delays_.load(std::memory_order_acquire)) {
    int64_t delay_micros = 0;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      auto it = slot_delays_micros_.find(request.slot);
      if (it != slot_delays_micros_.end()) {
        delay_micros = it->second;
      }
    }
    if (delay_micros > 0) {
      // Sleep outside any lock: a stalled slot must not stall the others.
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    }
  }
  // Epoch gate (DESIGN.md §16): a data op stamped (aux != 0) with an epoch
  // strictly older than the map in force here was routed by a placement the
  // cluster has since abandoned — deny it before it can land a page on the
  // wrong owner. Unstamped requests (aux == 0, legacy clients) pass: the gate
  // only bites clients that opted into the map protocol.
  const uint64_t epoch_now = map_epoch_.load(std::memory_order_acquire);
  if (epoch_now != 0 && request.aux != 0 && request.aux < epoch_now &&
      EpochGated(request.type)) {
    stats_.stale_epoch_rejections.fetch_add(1, std::memory_order_relaxed);
    events_.Append(EventKind::kStaleEpoch, params_.name,
                   "op=" + std::string(MessageTypeName(request.type)) + " stamped=" +
                       std::to_string(request.aux) + " current=" + std::to_string(epoch_now));
    return EpochStaleReply(request, epoch_now);
  }
  switch (request.type) {
    case MessageType::kAllocRequest: {
      auto slot = Allocate(request.count, request.tenant);
      if (!slot.ok()) {
        Message reply = MakeAllocReply(request.request_id, 0, slot.status().code());
        return reply;
      }
      Message reply = MakeAllocReply(request.request_id, request.count, ErrorCode::kOk);
      reply.slot = *slot;
      return reply;
    }
    case MessageType::kFreeRequest: {
      const Status status = Free(request.slot, request.count, request.tenant);
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kPageOut: {
      const Status owner = CheckSlotOwner(request.slot, request.tenant);
      if (!owner.ok()) {
        return MakePageOutAck(request.request_id, request.slot, owner.code(), false);
      }
      const Status status = Store(request.slot, std::span<const uint8_t>(request.payload));
      // Per-tenant backpressure rides the same bit: a tenant near its own
      // quota sees ADVISE_STOP even when the server as a whole has room.
      return MakePageOutAck(
          request.request_id, request.slot, status.code(),
          status.ok() && (ShouldAdviseStop() || TenantShouldAdviseStop(request.tenant)));
    }
    case MessageType::kPageIn: {
      const Status owner = CheckSlotOwner(request.slot, request.tenant);
      if (!owner.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, owner.code());
      }
      auto page = Load(request.slot);
      if (!page.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, page.status().code());
      }
      return MakePageInReply(request.request_id, request.slot, page->span(), ErrorCode::kOk);
    }
    case MessageType::kPageOutBatch: {
      auto count = ValidateBatch(request);
      if (!count.ok()) {
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      stats_.batch_requests.fetch_add(1, std::memory_order_relaxed);
      uint64_t stored = 0;
      Status status = OkStatus();
      for (size_t i = 0; i < *count; ++i) {
        status = CheckSlotOwner(BatchSlot(request, i), request.tenant);
        if (status.ok()) {
          status = Store(BatchSlot(request, i), BatchPage(request, i));
        }
        if (!status.ok()) {
          break;
        }
        ++stored;
      }
      Message ack = MakePageOutBatchAck(
          request.request_id, stored, status.code(),
          status.ok() && (ShouldAdviseStop() || TenantShouldAdviseStop(request.tenant)));
      if (!status.ok()) {
        ack.aux = stored;  // Index of the first failing entry.
      }
      return ack;
    }
    case MessageType::kPageInBatch: {
      auto count = ValidateBatch(request);
      if (!count.ok()) {
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      stats_.batch_requests.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> pages;
      pages.reserve(*count * kPageSize);
      for (size_t i = 0; i < *count; ++i) {
        const Status owner = CheckSlotOwner(BatchSlot(request, i), request.tenant);
        if (!owner.ok()) {
          Message reply = MakePageInBatchReply(request.request_id, {}, owner.code());
          reply.aux = i;
          return reply;
        }
        auto page = Load(BatchSlot(request, i));
        if (!page.ok()) {
          Message reply = MakePageInBatchReply(request.request_id, {}, page.status().code());
          reply.aux = i;  // Index of the failing entry.
          return reply;
        }
        pages.insert(pages.end(), page->span().begin(), page->span().end());
      }
      return MakePageInBatchReply(request.request_id, pages, ErrorCode::kOk);
    }
    case MessageType::kLoadQuery: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      return MakeLoadReport(request.request_id, FreePagesLocked(), EffectiveCapacityLocked(),
                            AdviseStopLocked());
    }
    case MessageType::kDeltaPageOut: {
      const Status owner = CheckSlotOwner(request.slot, request.tenant);
      if (!owner.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, owner.code());
      }
      auto delta = DeltaStore(request.slot, std::span<const uint8_t>(request.payload));
      if (!delta.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, delta.status().code());
      }
      // The delta travels back in a PAGEIN_REPLY-shaped message.
      return MakePageInReply(request.request_id, request.slot, delta->span(), ErrorCode::kOk);
    }
    case MessageType::kXorMerge: {
      Status status = CheckSlotOwner(request.slot, request.tenant);
      if (status.ok()) {
        status = XorMerge(request.slot, std::span<const uint8_t>(request.payload));
      }
      Message reply;
      reply.type = MessageType::kXorMergeAck;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kHeartbeat: {
      if (crashed()) {
        // A crashed process cannot answer; in the simulated fabric the
        // transport is disconnected too, but keep the direct API honest.
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      stats_.heartbeats_served.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(control_mutex_);
      return MakeHeartbeatAck(request.request_id, incarnation(), FreePagesLocked(),
                              EffectiveCapacityLocked(), AdviseStopLocked());
    }
    case MessageType::kMigrate: {
      auto page = MigrateOut(request.slot, request.tenant);
      if (!page.ok()) {
        return MakeMigrateReply(request.request_id, request.slot, {}, page.status().code());
      }
      return MakeMigrateReply(request.request_id, request.slot, page->span(), ErrorCode::kOk);
    }
    case MessageType::kStatsQuery: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      return MakeStatsReply(request.request_id, incarnation(), StatsJson());
    }
    case MessageType::kTraceDump: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      // Document 0: the attached tracer's ring (client-side records).
      // Document 1: this server's span ring (the stitch source).
      if (request.slot == 1) {
        return MakeTraceDumpReply(request.request_id, incarnation(), spans_.ToJson());
      }
      return MakeTraceDumpReply(request.request_id, incarnation(),
                                tracer_ != nullptr ? tracer_->ToJson() : "[]");
    }
    case MessageType::kEventsQuery: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      return MakeEventsReply(request.request_id, incarnation(), events_.next_seq(),
                             events_.ToJson(request.slot));
    }
    case MessageType::kMapQuery: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      std::lock_guard<std::mutex> lock(map_mutex_);
      const uint64_t epoch = map_epoch_.load(std::memory_order_acquire);
      if (epoch == 0) {
        return MakeMapReply(request.request_id, 0, {}, ErrorCode::kNotFound);
      }
      return MakeMapReply(request.request_id, epoch, map_bytes_, ErrorCode::kOk);
    }
    case MessageType::kMapPublish: {
      if (crashed()) {
        return MakeErrorReply(request.request_id, ErrorCode::kUnavailable);
      }
      auto map = ClusterMap::Deserialize(std::span<const uint8_t>(request.payload));
      if (!map.ok()) {
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      if (request.slot != map->epoch()) {
        // The header epoch exists so receivers can order frames without
        // decoding; a frame whose two epochs disagree is lying somewhere.
        return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
      }
      std::lock_guard<std::mutex> lock(map_mutex_);
      const uint64_t current = map_epoch_.load(std::memory_order_acquire);
      if (map->epoch() < current) {
        stats_.stale_epoch_rejections.fetch_add(1, std::memory_order_relaxed);
        events_.Append(EventKind::kStaleEpoch, params_.name,
                       "MAP_PUBLISH epoch=" + std::to_string(map->epoch()) +
                           " refused, current=" + std::to_string(current));
        return MakeMapPublishAck(request.request_id, current, ErrorCode::kStaleEpoch);
      }
      map_bytes_.assign(request.payload.begin(), request.payload.end());
      map_epoch_.store(map->epoch(), std::memory_order_release);
      stats_.map_publishes.fetch_add(1, std::memory_order_relaxed);
      events_.Append(EventKind::kEpoch, params_.name,
                     "adopted map epoch=" + std::to_string(map->epoch()));
      return MakeMapPublishAck(request.request_id, map->epoch(), ErrorCode::kOk);
    }
    case MessageType::kShutdown: {
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      return reply;
    }
    default:
      return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
  }
}

}  // namespace rmp
