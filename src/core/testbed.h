// Testbed: assembles an in-process cluster — memory servers, transports,
// shared Ethernet fabric, and a paging backend for the chosen policy — in
// one call. Used by the unit/integration tests, the examples, and the
// figure benches. The TCP tools assemble the same pieces over sockets.

#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/basic_parity.h"
#include "src/core/health.h"
#include "src/proto/cluster_map.h"
#include "src/util/config.h"
#include "src/core/mirroring.h"
#include "src/core/no_reliability.h"
#include "src/core/parity_logging.h"
#include "src/core/repair.h"
#include "src/core/write_through.h"
#include "src/server/memory_server.h"
#include "src/transport/fault_injection.h"
#include "src/transport/inproc_transport.h"
#include "src/util/events.h"

namespace rmp {

// The paging configurations of the paper's evaluation (Fig. 2 / Fig. 5).
enum class Policy {
  kNoReliability,
  kMirroring,
  kBasicParity,
  kParityLogging,
  kWriteThrough,
  kDisk,
};

std::string_view PolicyName(Policy policy);

// Elastic-membership tuning (DESIGN.md §16).
struct ElasticParams {
  // Consistent-hash groups in the map (`cluster.page_groups`). More groups
  // = finer rebalance ranges at a few bytes of map each.
  uint32_t page_groups = 64;
};

struct TestbedParams {
  Policy policy = Policy::kNoReliability;
  // Number of data-holding servers; parity policies add one parity server
  // on top (the paper: 2 for NO_RELIABILITY/MIRRORING, 4 + parity for
  // PARITY_LOGGING).
  int data_servers = 2;
  uint64_t server_capacity_pages = 8192;
  // Timing model for the shared segment; nullptr runs untimed (functional
  // tests). Ignored by kDisk.
  std::shared_ptr<const NetworkModel> network;
  DiskParams disk;
  uint64_t disk_blocks = 1 << 16;
  RemotePagerParams pager;
  ParityLoggingParams parity_logging;
  // Give NO_RELIABILITY a local-disk fallback (needed for the §2.1
  // migration-to-disk path; benches leave it off so denials surface).
  bool no_reliability_disk_fallback = false;
  // Extra server appended as the basic-parity hot spare.
  bool with_spare = false;
  // Compressed cold tier applied to every server (off by default; see
  // StoreTierParams). Tests use it to cross tier behaviour with the
  // reliability policies and crash recovery.
  StoreTierParams store_tier;
  // Per-tenant QoS policy applied to every server (empty = tenant
  // enforcement off, the byte-identical legacy path; DESIGN.md §15).
  TenantPolicyParams tenants;
  // Tenant id stamped onto every client RPC (0 = legacy/untenanted).
  uint16_t client_tenant = 0;
  // Server-side observability (DESIGN.md §17): span-ring capacity and
  // flight-recorder journal options applied to every server. The client
  // pager's tracer/journal/SLO knobs live in `pager` (RemotePagerParams).
  size_t server_span_ring = 4096;
  EventJournalOptions server_events;
};

class Testbed {
 public:
  static Result<std::unique_ptr<Testbed>> Create(const TestbedParams& params);

  PagingBackend& backend() { return *backend_; }

  // Bulk-loads pages 0..pages-1 through the backend's vectored pageout path
  // (PageOutBatch), each filled with FillPattern(PreloadSeed(seed, id)).
  // Returns the completion time. Used by tests and benches to stand up a
  // populated cluster without paying one round trip per page.
  Result<TimeNs> Preload(uint64_t pages, uint64_t seed = 1, TimeNs now = 0);

  // The per-page pattern seed Preload uses; tests verify read-back with
  // CheckPattern(page, PreloadSeed(seed, id)).
  static uint64_t PreloadSeed(uint64_t seed, uint64_t page_id) {
    return seed ^ (page_id * 0x9e3779b97f4a7c15ULL + 1);
  }

  size_t server_count() const { return servers_.size(); }
  MemoryServer& server(size_t i) { return *servers_[i]; }
  InProcTransport& transport(size_t i) { return *transports_[i]; }

  // The fault-injection wrapper in front of server `i`'s transport. Every
  // client RPC flows through it; install a FaultPlan to perturb delivery.
  // Crash faults fired by a plan invoke CrashServer(i) via the wrapper's
  // crash hook, so a mid-RPC crash behaves exactly like an explicit one.
  FaultInjectingTransport& fault(size_t i) { return *faults_[i]; }
  // Also points the plan's flight-recorder hook at the client journal
  // (actor "faults@server-i"), so every injected fault lands on the merged
  // timeline next to the transitions it caused.
  void InstallFaultPlan(size_t i, std::shared_ptr<FaultPlan> plan);

  // Crashes server `i`: its stored pages vanish and its transport drops.
  void CrashServer(size_t i);

  struct RestartOptions {
    // false (default): the server process restarts — memory empty, stats
    // zeroed, incarnation bumped, so a health monitor sees a *reboot* and
    // repairs before re-admission. true: the store is left untouched and
    // only the transports reconnect, modeling a healed network partition —
    // the incarnation is unchanged and the pages are still there.
    bool preserve_memory = false;
  };

  // Brings server `i` back and reconnects its transport (fault wrapper
  // included); see RestartOptions for the reboot/partition distinction.
  void RestartServer(size_t i, RestartOptions opts);
  void RestartServer(size_t i) { RestartServer(i, RestartOptions()); }

  // Severs server `i`'s transports without crashing it: RPCs fail with the
  // connection down but the stored pages survive. Undo with
  // RestartServer(i, {.preserve_memory = true}).
  void PartitionServer(size_t i);

  // One-stop live introspection: the client pager's registry (BackendStats
  // synced in, trace stage histograms included), each server's registry
  // (per-tenant tenant.<id>.* counters/gauges included when enforcement is
  // on), and the process-wide registry, as labeled text sections. Works for
  // kDisk too (client section omitted).
  std::string DumpMetrics();

  // Points server `i`'s TRACE_DUMP handler at the client pager's tracer so
  // a trace ring can be pulled back over the wire. No-op for kDisk.
  void AttachTracerToServer(size_t i);

  // --- Observability (DESIGN.md §17) ---------------------------------------

  // Drains every server's span ring into the client tracer: each measured
  // srv_* span feeds its stage histogram and attaches to the matching trace
  // record, so the next TRACE_DUMP / latency_breakdown snapshot reports
  // *measured* server-side stages. The in-proc equivalent of pulling
  // TRACE_DUMP (document 1) from each server. Returns the number of spans
  // stitched; 0 for kDisk.
  size_t StitchServerSpans();

  // The client pager's flight-recorder journal (null for kDisk). The
  // Testbed wires the health monitor, repair coordinator, fault plans, and
  // its own lifecycle calls (crash/restart/join/decommission) into it.
  EventJournal* events();

  // Merges the client journal and every server's journal into one timeline
  // (sorted on the shared process-monotonic clock) and renders it as text —
  // the post-mortem dump a failed crash-recovery scenario prints.
  std::string DumpFlightRecorder();

  // Attaches the self-healing layer (HealthMonitor + RepairCoordinator) to
  // the backend. Call once, after Create; fails for kDisk (no cluster).
  // Drive it with repair().Pump()/RunToQuiescence() on the simulated clock.
  Status EnableSelfHealing(const HealthParams& health_params = HealthParams(),
                           const RepairParams& repair_params = RepairParams());
  HealthMonitor* health() { return monitor_.get(); }
  RepairCoordinator* repair() { return repair_.get(); }

  // --- Elastic membership (DESIGN.md §16) ----------------------------------

  // Builds the epoch-1 cluster map (every current server ACTIVE at its boot
  // incarnation), adopts it on the client, publishes it to every server, and
  // arms the rebalance job. Requires a remote-memory policy; call after
  // EnableSelfHealing when the paced rebalance should run (without the
  // coordinator the map still drives placement and epoch checks).
  Status EnableElasticMembership(const ElasticParams& elastic = {}, TimeNs* now = nullptr);

  // Live scale-out: spins up one more server + transport, appends it to the
  // cluster, and publishes an epoch+1 map with the new member ACTIVE. The
  // armed rebalance then walks each moved hash range onto it. Returns the
  // new peer index.
  Result<size_t> JoinServer(TimeNs* now = nullptr);

  // Live scale-in, step 1: mark peer `i` kLeaving in an epoch+1 map. It
  // takes no new pages but keeps serving reads while the rebalance drains
  // the ranges it owned.
  Status DecommissionServer(size_t i, TimeNs* now = nullptr);

  // Live scale-in, step 2: once the policy holds no pages on `i`
  // (PagesOn(i) == 0), drop the member from the map entirely (epoch+1).
  // FailedPrecondition while pages remain — finish the drain first.
  Status CompleteDecommission(size_t i, TimeNs* now = nullptr);

  // The backend as a remote pager (null for kDisk).
  RemotePagerBase* remote_pager() { return dynamic_cast<RemotePagerBase*>(backend_.get()); }

  // The policy-typed views (null when the policy does not match).
  ParityLoggingBackend* parity_logging() {
    return params_.policy == Policy::kParityLogging
               ? static_cast<ParityLoggingBackend*>(backend_.get())
               : nullptr;
  }
  MirroringBackend* mirroring() {
    return params_.policy == Policy::kMirroring ? static_cast<MirroringBackend*>(backend_.get())
                                                : nullptr;
  }
  NoReliabilityBackend* no_reliability() {
    return params_.policy == Policy::kNoReliability
               ? static_cast<NoReliabilityBackend*>(backend_.get())
               : nullptr;
  }
  WriteThroughBackend* write_through() {
    return params_.policy == Policy::kWriteThrough
               ? static_cast<WriteThroughBackend*>(backend_.get())
               : nullptr;
  }
  BasicParityBackend* basic_parity() {
    return params_.policy == Policy::kBasicParity
               ? static_cast<BasicParityBackend*>(backend_.get())
               : nullptr;
  }

  const TestbedParams& params() const { return params_; }

 private:
  explicit Testbed(TestbedParams params) : params_(std::move(params)) {}

  TestbedParams params_;
  std::vector<std::unique_ptr<MemoryServer>> servers_;
  // Both owned by the Cluster inside backend_: each peer's transport is a
  // FaultInjectingTransport wrapping the InProcTransport to its server.
  std::vector<InProcTransport*> transports_;
  std::vector<FaultInjectingTransport*> faults_;
  std::unique_ptr<PagingBackend> backend_;
  // Declared after backend_ (destroyed first): both reference its cluster.
  std::unique_ptr<HealthMonitor> monitor_;
  std::unique_ptr<RepairCoordinator> repair_;

  // Builds one server + transport + fault wrapper and appends it to the
  // given cluster (Create's local cluster, or the live one on JoinServer).
  void AddServerTo(Cluster* cluster);

  // Appends a lifecycle event (actor "testbed") to the client journal; the
  // disabled path (kDisk, no pager) is a no-op.
  void JournalClient(EventKind kind, const std::string& detail);

  // Publishes `members` as the next map (epoch+1) and re-arms the rebalance.
  Status AdoptNextMap(RemotePagerBase* pager, std::vector<ClusterMember> members, TimeNs* now);
};

// Applies the `cluster.*` Config keys (README: elastic membership knobs)
// over the given params:
//   cluster.page_groups             -> elastic->page_groups            (default 64)
//   cluster.rebalance_pages_per_sec -> repair->rebalance_pages_per_sec (0 = unpaced)
//   cluster.rebalance_burst         -> repair->rebalance_burst_pages   (default 64)
//   cluster.epoch_refresh_ms        -> pager->map_refresh_interval     (0 = reactive)
// Null out-params skip their keys. Absent keys keep the current values.
Status ApplyClusterConfig(const Config& config, ElasticParams* elastic, RepairParams* repair,
                          RemotePagerParams* pager);

// Applies the observability Config keys (README: observability knobs) over
// the given testbed params:
//   trace.*           -> params->pager.trace   (ApplyTraceConfig)
//   trace.span_ring   -> params->server_span_ring (per-server span ring)
//   events.*          -> params->pager.events AND params->server_events
//   slo.*             -> params->pager.slo     (ApplySloConfig)
// Absent keys keep the current values.
Status ApplyObservabilityConfig(const Config& config, TestbedParams* params);

}  // namespace rmp

#endif  // SRC_CORE_TESTBED_H_
