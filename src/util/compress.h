// LZ4-block-class page codec for the server's compressed cold tier.
//
// The format is a byte-oriented LZ77 stream (greedy hash-chain parse, 16-bit
// offsets, minimum match 4) in the style of an LZ4 block: a token byte packs
// the literal-run and match lengths, runs of 255 extend either, literals are
// raw, and the final sequence carries no match. It is our own framing — we
// do not promise LZ4 interoperability — chosen because an 8 KB page fits
// comfortably in the 64 KB window and decode is a short branchy loop that
// runs at memcpy-class speed on swap-cached data.
//
// The hot inner loop is match *extension* (how far do two windows agree?),
// so that kernel is runtime-dispatched exactly like XorBytes in bytes.cc:
// AVX2 -> SSE2 -> pinned-scalar, one CPUID probe at first use. The scalar
// reference is pinned against autovectorization so differential tests
// compare a genuinely scalar parse with the SIMD one; all paths compute the
// same longest-common-prefix, so compressed output is byte-identical across
// implementations and a differential test can assert equality, not just
// round-tripping.
//
// The decoder trusts nothing: every length, offset, and copy is bounds
// checked against both buffers, so a truncated or bit-flipped extent read
// back from the cold tier (or its disk spill) surfaces as a clean
// kCorruption status — never an out-of-bounds write. Zero pages are not
// special-cased here; the store elides them entirely via IsZeroBytes before
// the codec ever runs (the degenerate "compresses to nothing" case).

#ifndef SRC_UTIL_COMPRESS_H_
#define SRC_UTIL_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/util/status.h"

namespace rmp {

// Worst-case compressed size for `n` input bytes (all-literal stream plus
// length-extension overhead). Size destination buffers with this.
size_t CompressBound(size_t n);

// Compresses `src[0..n)` into `dst[0..max_out)`. Returns the compressed size
// (>= 1) on success, or 0 when the input does not fit under `max_out` —
// the caller's "incompressible, store it raw" signal. Deterministic: the
// same input always yields the same bytes, on every dispatch path.
size_t CompressBlock(const uint8_t* src, size_t n, uint8_t* dst, size_t max_out);

// The pinned-scalar reference parse (differential tests, non-x86 fallback).
size_t CompressBlockScalar(const uint8_t* src, size_t n, uint8_t* dst, size_t max_out);

// Decompresses exactly `n` bytes into `dst` from `src[0..src_len)`. Fails
// with kCorruption unless the stream is well-formed, produces exactly `n`
// output bytes, and consumes exactly `src_len` input bytes.
Status DecompressBlock(const uint8_t* src, size_t src_len, uint8_t* dst, size_t n);

// Name of the match-scan kernel the dispatcher picked: "avx2", "sse2" or
// "scalar". Benches report it alongside codec throughput.
std::string_view CompressImplName();

}  // namespace rmp

#endif  // SRC_UTIL_COMPRESS_H_
