#include <gtest/gtest.h>

#include "src/disk/disk_backend.h"
#include "src/disk/disk_model.h"
#include "src/disk/disk_store.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

// --- DiskModel -------------------------------------------------------------

TEST(DiskModelTest, SequentialReadsStream) {
  DiskModel disk;
  disk.Access(0, 1, /*is_write=*/false);
  const DurationNs sequential = disk.Access(1, 1, /*is_write=*/false);
  // Track-buffer continuation: controller + transfer only, ~7 ms.
  EXPECT_LT(sequential, Millis(8));
  EXPECT_GT(sequential, Millis(6));
}

TEST(DiskModelTest, WritesPayRotationEvenWhenSequential) {
  DiskModel disk;
  disk.Access(0, 1, /*is_write=*/true);
  const DurationNs sequential_write = disk.Access(1, 1, /*is_write=*/true);
  // No write cache on the RZ55: ~8.3 ms rotation + ~6.6 ms transfer.
  EXPECT_GT(sequential_write, Millis(14));
  EXPECT_LT(sequential_write, Millis(17));
}

TEST(DiskModelTest, RandomAccessPaysSeekAndRotation) {
  DiskModel disk;
  disk.Access(0, 1, false);
  const DurationNs far = disk.Access(20000, 1, false);
  EXPECT_GT(far, Millis(25));
}

TEST(DiskModelTest, AverageRandomPageNearPaperFigure) {
  DiskModel disk;
  // 16 ms average seek + 8.3 ms rotation + 6.6 ms transfer + overhead ~ 31 ms.
  EXPECT_NEAR(ToMillis(disk.AverageRandomPageTime()), 31.0, 2.0);
}

TEST(DiskModelTest, HeadMovesWithAccesses) {
  DiskModel disk;
  disk.Access(100, 4, false);
  EXPECT_EQ(disk.head_position(), 104u);
}

TEST(DiskModelTest, SeekCountsOnlyRealMoves) {
  DiskModel disk;
  disk.Access(0, 1, false);
  disk.Access(1, 1, false);      // Within window: no seek.
  disk.Access(30000, 1, false);  // Far: seek.
  EXPECT_EQ(disk.seeks(), 1);
  EXPECT_EQ(disk.requests(), 3);
}

TEST(DiskModelTest, SeekTimeGrowsWithDistance) {
  DiskModel near_disk;
  DiskModel far_disk;
  near_disk.set_head_position(0);
  far_disk.set_head_position(0);
  const DurationNs near_time = near_disk.Access(500, 1, false);
  const DurationNs far_time = far_disk.Access(39000, 1, false);
  EXPECT_LT(near_time, far_time);
}

TEST(DiskModelTest, StatsReset) {
  DiskModel disk;
  disk.Access(9999, 1, true);
  disk.ResetStats();
  EXPECT_EQ(disk.requests(), 0);
  EXPECT_EQ(disk.busy_time(), 0);
}

// --- DiskStore ---------------------------------------------------------------

TEST(DiskStoreTest, WriteReadRoundTrip) {
  auto store = DiskStore::Create(16);
  ASSERT_TRUE(store.ok());
  PageBuffer page;
  FillPattern(page.span(), 5);
  ASSERT_TRUE(store->Write(3, page.span()).ok());
  PageBuffer out;
  ASSERT_TRUE(store->Read(3, out.span()).ok());
  EXPECT_EQ(out, page);
}

TEST(DiskStoreTest, UnwrittenBlocksReadZero) {
  auto store = DiskStore::Create(4);
  ASSERT_TRUE(store.ok());
  PageBuffer out;
  FillPattern(out.span(), 1);
  ASSERT_TRUE(store->Read(0, out.span()).ok());
  EXPECT_TRUE(out.IsZero());
}

TEST(DiskStoreTest, OutOfRangeRejected) {
  auto store = DiskStore::Create(4);
  ASSERT_TRUE(store.ok());
  PageBuffer page;
  EXPECT_FALSE(store->Write(4, page.span()).ok());
  EXPECT_FALSE(store->Read(4, page.span()).ok());
}

TEST(DiskStoreTest, WrongSizeRejected) {
  auto store = DiskStore::Create(4);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> tiny(7);
  EXPECT_FALSE(store->Write(0, std::span<const uint8_t>(tiny)).ok());
}

TEST(DiskStoreTest, BumpAllocationIsSequential) {
  auto store = DiskStore::Create(64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*store->Allocate(4), 0u);
  EXPECT_EQ(*store->Allocate(4), 4u);
  EXPECT_EQ(store->allocated_blocks(), 8u);
}

TEST(DiskStoreTest, FreeListReusedAfterExhaustion) {
  auto store = DiskStore::Create(8);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Allocate(8).ok());
  EXPECT_EQ(store->Allocate(1).status().code(), ErrorCode::kNoSpace);
  ASSERT_TRUE(store->Free(2, 2).ok());
  auto again = store->Allocate(2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 2u);
}

TEST(DiskStoreTest, AdjacentFreesCoalesce) {
  auto store = DiskStore::Create(8);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Allocate(8).ok());
  ASSERT_TRUE(store->Free(0, 2).ok());
  ASSERT_TRUE(store->Free(2, 2).ok());
  // A 4-block run must now exist.
  auto run = store->Allocate(4);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(*run, 0u);
}

TEST(DiskStoreTest, MoveTransfersOwnership) {
  auto store = DiskStore::Create(4);
  ASSERT_TRUE(store.ok());
  PageBuffer page;
  FillPattern(page.span(), 9);
  ASSERT_TRUE(store->Write(1, page.span()).ok());
  DiskStore moved = std::move(*store);
  PageBuffer out;
  ASSERT_TRUE(moved.Read(1, out.span()).ok());
  EXPECT_EQ(out, page);
}

// --- DiskBackend -------------------------------------------------------------

TEST(DiskBackendTest, PageRoundTripWithRealBytes) {
  auto backend = DiskBackend::Create(DiskParams(), 64);
  ASSERT_TRUE(backend.ok());
  PageBuffer page;
  FillPattern(page.span(), 12);
  auto out_done = backend->PageOut(0, /*page_id=*/7, page.span());
  ASSERT_TRUE(out_done.ok());
  PageBuffer in;
  auto in_done = backend->PageIn(*out_done, 7, in.span());
  ASSERT_TRUE(in_done.ok());
  EXPECT_EQ(in, page);
  EXPECT_EQ(backend->stats().pageouts, 1);
  EXPECT_EQ(backend->stats().pageins, 1);
}

TEST(DiskBackendTest, PageInOfUnknownPageFails) {
  auto backend = DiskBackend::Create(DiskParams(), 64);
  ASSERT_TRUE(backend.ok());
  PageBuffer out;
  EXPECT_EQ(backend->PageIn(0, 3, out.span()).status().code(), ErrorCode::kNotFound);
}

TEST(DiskBackendTest, OverwriteKeepsSameBlock) {
  auto backend = DiskBackend::Create(DiskParams(), 64);
  ASSERT_TRUE(backend.ok());
  PageBuffer v1;
  PageBuffer v2;
  FillPattern(v1.span(), 1);
  FillPattern(v2.span(), 2);
  ASSERT_TRUE(backend->PageOut(0, 5, v1.span()).ok());
  ASSERT_TRUE(backend->PageOut(0, 5, v2.span()).ok());
  EXPECT_EQ(backend->store().allocated_blocks(), 1u);
  PageBuffer in;
  ASSERT_TRUE(backend->PageIn(0, 5, in.span()).ok());
  EXPECT_EQ(in, v2);
}

TEST(DiskBackendTest, WriteBehindUnblocksBeforeArmFinishes) {
  DiskParams params;
  params.writeback_lag = Millis(100);
  auto backend = DiskBackend::Create(params, 64);
  ASSERT_TRUE(backend.ok());
  PageBuffer page;
  const auto done = backend->PageOut(0, 1, page.span());
  ASSERT_TRUE(done.ok());
  // The arm is busy past the unblock time.
  EXPECT_LE(*done, backend->arm().busy_until());
  EXPECT_EQ(*done, 0);  // Fully absorbed by the 100 ms lag window.
}

TEST(DiskBackendTest, PageInQueuesBehindPendingWrites) {
  DiskParams params;
  params.writeback_lag = Seconds(10);  // Writes never block.
  auto backend = DiskBackend::Create(params, 256);
  ASSERT_TRUE(backend.ok());
  PageBuffer page;
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, page.span()).ok());
  }
  const TimeNs arm_busy_until = backend->arm().busy_until();
  PageBuffer in;
  auto done = backend->PageIn(0, 0, in.span());
  ASSERT_TRUE(done.ok());
  EXPECT_GT(*done, arm_busy_until);  // Waited for the write backlog.
}

TEST(DiskBackendTest, SequentialPageoutsLandOnAdjacentBlocks) {
  auto backend = DiskBackend::Create(DiskParams(), 64);
  ASSERT_TRUE(backend.ok());
  PageBuffer page;
  ASSERT_TRUE(backend->PageOut(0, 100, page.span()).ok());
  ASSERT_TRUE(backend->PageOut(0, 200, page.span()).ok());
  ASSERT_TRUE(backend->PageOut(0, 300, page.span()).ok());
  // Bump allocation: pageout order defines layout, so the model sees
  // sequential writes (the OSF/1 swap behaviour the timing relies on).
  EXPECT_EQ(backend->model().seeks(), 0);
}

}  // namespace
}  // namespace rmp
