// The block-device boundary.
//
// In the paper the DEC OSF/1 kernel "just performs ordinary paging activities
// using a block device" (§3): every configuration — local disk, remote memory
// with any reliability policy, write-through — is a block device that reads
// and writes 8 KB pages. PagingBackend is that boundary. The VM subsystem
// above it is policy-oblivious, exactly as the unmodified kernel was.
//
// Each operation takes the simulated time at which it is issued and returns
// the simulated time at which it completes, so one interface serves both the
// functional system (real bytes move) and the timing reproduction (device
// models charge seek/wire/protocol costs). Callers that only care about
// functionality pass now = 0 and ignore the returned time.

#ifndef SRC_CORE_PAGING_BACKEND_H_
#define SRC_CORE_PAGING_BACKEND_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/util/status.h"
#include "src/util/units.h"

namespace rmp {

// Counters every backend maintains; the benches and EXPERIMENTS.md rows are
// printed from these.
struct BackendStats {
  int64_t pageouts = 0;        // Pages written by the VM.
  int64_t pageins = 0;         // Pages read by the VM.
  int64_t page_transfers = 0;  // Network page transfers (incl. parity/mirror copies).
  int64_t disk_transfers = 0;  // Pages moved to/from the local disk.
  DurationNs protocol_time = 0;  // Client CPU spent in the protocol stack.
  DurationNs wire_time = 0;      // Network blocking time.
  DurationNs disk_time = 0;      // Disk blocking time.
  DurationNs paging_time = 0;    // Total time the client was blocked on paging.

  // Failure-detector counters: how often the client had to work around a
  // fault rather than take the happy path.
  int64_t retries = 0;          // RPC attempts beyond the first.
  int64_t failovers = 0;        // Reads served by a non-primary source.
  int64_t degraded_reads = 0;   // Reads served by reconstruction or disk
                                // fallback instead of the stored remote copy.
  int64_t reconstructions = 0;  // Pages rebuilt (parity XOR or re-upload)
                                // after a crash.
  DurationNs backoff_time = 0;  // Time spent sleeping between retry attempts.
  int64_t stale_epoch_retries = 0;  // Ops denied with STALE_EPOCH and retried
                                    // after a map refresh (DESIGN.md §16) —
                                    // never surfaced as data loss.
};

class PagingBackend {
 public:
  virtual ~PagingBackend() = default;

  // Writes one page. `data` must be exactly kPageSize bytes.
  virtual Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) = 0;

  // Reads one page previously written. `out` must be exactly kPageSize bytes.
  virtual Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) = 0;

  // Writes `page_ids.size()` pages in one call; `data` is their concatenation
  // (page_ids.size() * kPageSize bytes). Backends that can vector the wire
  // traffic override this; the default is a plain loop over PageOut, so every
  // backend accepts the bulk-load interface (Testbed::Preload, the benches).
  virtual Result<TimeNs> PageOutBatch(TimeNs now, std::span<const uint64_t> page_ids,
                                      std::span<const uint8_t> data) {
    if (data.size() != page_ids.size() * kPageSize) {
      return InvalidArgumentError("batch data must be page_ids.size() * kPageSize bytes");
    }
    for (size_t i = 0; i < page_ids.size(); ++i) {
      auto done = PageOut(now, page_ids[i], data.subspan(i * kPageSize, kPageSize));
      if (!done.ok()) {
        return done;
      }
      now = *done;
    }
    return now;
  }

  virtual const BackendStats& stats() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace rmp

#endif  // SRC_CORE_PAGING_BACKEND_H_
