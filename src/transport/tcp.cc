#include "src/transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace rmp {
namespace {

// Transport-level telemetry lives in the process-wide registry: transports
// come and go per connection, but queue depth and in-flight totals are only
// meaningful summed across all of them.
struct TransportMetrics {
  Counter& frames_sent;
  Counter& frames_received;
  Counter& connection_failures;
  Gauge& send_queue_depth;
  Gauge& inflight_rpcs;
};

TransportMetrics& TcpMetrics() {
  static TransportMetrics* metrics = new TransportMetrics{
      *MetricsRegistry::Global().GetCounter("tcp.frames_sent"),
      *MetricsRegistry::Global().GetCounter("tcp.frames_received"),
      *MetricsRegistry::Global().GetCounter("tcp.connection_failures"),
      *MetricsRegistry::Global().GetGauge("tcp.send_queue_depth"),
      *MetricsRegistry::Global().GetGauge("tcp.inflight_rpcs"),
  };
  return *metrics;
}

Status ErrnoError(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

// Reads exactly `len` bytes. UnavailableError on clean EOF, IoError otherwise.
Status RecvExact(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) {
      return UnavailableError("peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("recv");
    }
    got += static_cast<size_t>(n);
  }
  return OkStatus();
}

// Per-session request pipeline on the server: `workers` threads pull decoded
// requests and send replies as they finish, serialized per frame by
// `send_mutex`. Requests are keyed to a worker by slot, so two requests for
// the same slot are handled in arrival order while different slots overlap —
// the ordering contract DESIGN.md documents for the pipelined wire model.
class SessionWorkerPool {
 public:
  SessionWorkerPool(int workers, MessageHandler* handler, int fd, std::mutex* send_mutex)
      : handler_(handler), fd_(fd), send_mutex_(send_mutex) {
    queues_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      queues_.push_back(std::make_unique<Queue>());
    }
    threads_.reserve(queues_.size());
    for (auto& queue : queues_) {
      threads_.emplace_back([this, q = queue.get()] { WorkerLoop(q); });
    }
  }

  ~SessionWorkerPool() {
    for (auto& queue : queues_) {
      {
        std::lock_guard<std::mutex> lock(queue->mutex);
        queue->stopping = true;
      }
      queue->cv.notify_all();
    }
    for (auto& t : threads_) {
      t.join();
    }
  }

  void Dispatch(Message request) {
    Queue& queue = *queues_[request.slot % queues_.size()];
    {
      std::lock_guard<std::mutex> lock(queue.mutex);
      queue.items.push_back(std::move(request));
    }
    queue.cv.notify_one();
  }

  bool send_failed() const { return send_failed_.load(); }

 private:
  struct Queue {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> items;
    bool stopping = false;
  };

  void WorkerLoop(Queue* queue) {
    for (;;) {
      Message request;
      {
        std::unique_lock<std::mutex> lock(queue->mutex);
        queue->cv.wait(lock, [queue] { return queue->stopping || !queue->items.empty(); });
        if (queue->items.empty()) {
          return;  // Stopping and drained.
        }
        request = std::move(queue->items.front());
        queue->items.pop_front();
      }
      const Message reply = handler_->Handle(request);
      std::lock_guard<std::mutex> lock(*send_mutex_);
      if (!SendFrame(fd_, reply).ok()) {
        send_failed_.store(true);
      }
    }
  }

  MessageHandler* handler_;
  int fd_;
  std::mutex* send_mutex_;
  std::atomic<bool> send_failed_{false};
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
};

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    Reset(other.Release());
  }
  return *this;
}

int UniqueFd::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status SendFrame(int fd, const Message& message) {
  uint8_t prefix[kWirePrefixSize];
  EncodeHeader(message, PayloadCrc(std::span<const uint8_t>(message.payload)), prefix);
  iovec iov[2];
  iov[0].iov_base = prefix;
  iov[0].iov_len = kWirePrefixSize;
  iov[1].iov_base = const_cast<uint8_t*>(message.payload.data());
  iov[1].iov_len = message.payload.size();
  size_t first = 0;  // Index of the first iovec with bytes left.
  const int iovcnt = message.payload.empty() ? 1 : 2;
  while (first < static_cast<size_t>(iovcnt)) {
    msghdr msg{};
    msg.msg_iov = &iov[first];
    msg.msg_iovlen = static_cast<size_t>(iovcnt) - first;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("sendmsg");
    }
    size_t remaining = static_cast<size_t>(n);
    while (first < static_cast<size_t>(iovcnt) && remaining >= iov[first].iov_len) {
      remaining -= iov[first].iov_len;
      ++first;
    }
    if (first < static_cast<size_t>(iovcnt)) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + remaining;
      iov[first].iov_len -= remaining;
    }
  }
  return OkStatus();
}

Result<Message> ReadFrame(int fd) {
  uint8_t prefix[kWirePrefixSize];
  Status status = RecvExact(fd, prefix, kWirePrefixSize);
  if (!status.ok()) {
    return status;
  }
  auto header = DecodeHeader(std::span<const uint8_t>(prefix, kWirePrefixSize));
  if (!header.ok()) {
    return header.status();
  }
  Message message = MessageFromHeader(*header);
  if (header->payload_len > 0) {
    message.payload.resize(header->payload_len);
    status = RecvExact(fd, message.payload.data(), message.payload.size());
    if (!status.ok()) {
      return status;
    }
  }
  if (PayloadCrc(std::span<const uint8_t>(message.payload)) != header->payload_crc) {
    return CorruptionError("payload CRC mismatch");
  }
  return message;
}

TcpTransport::TcpTransport(UniqueFd fd) : fd_(std::move(fd)) {
  sender_ = std::thread([this] { SenderLoop(); });
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(const std::string& host,
                                                            uint16_t port,
                                                            const std::string& auth_token) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoError("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad host address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("connect");
  }
  // Page-sized RPCs benefit from immediate sends.
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::unique_ptr<TcpTransport>(new TcpTransport(std::move(fd)));
  if (!auth_token.empty()) {
    auto reply = transport->Call(MakeAuth(1, auth_token));
    if (!reply.ok()) {
      return reply.status();
    }
    if (reply->type != MessageType::kAuthReply || reply->status_code() != ErrorCode::kOk) {
      return FailedPreconditionError("server rejected authentication");
    }
  }
  return transport;
}

void TcpTransport::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already closing/closed; fall through to join in case the first
      // closer was FailConnection (which cannot join the I/O threads).
    }
    stopping_ = true;
    connected_.store(false);
  }
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
  }
  send_cv_.notify_all();
  space_cv_.notify_all();
  if (sender_.joinable()) {
    sender_.join();
  }
  if (receiver_.joinable()) {
    receiver_.join();
  }
  FailConnection("transport closed");
  fd_.Reset();
}

void TcpTransport::FailConnection(const std::string& reason) {
  std::deque<SendItem> dropped;
  std::unordered_map<uint64_t, std::shared_ptr<RpcFuture::State>> orphaned;
  bool first_closer = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_closer = !stopping_;
    stopping_ = true;
    connected_.store(false);
    dropped.swap(queue_);
    orphaned.swap(pending_);
  }
  if (first_closer) {
    TcpMetrics().connection_failures.Increment();
  }
  TcpMetrics().send_queue_depth.Add(-static_cast<int64_t>(dropped.size()));
  TcpMetrics().inflight_rpcs.Add(-static_cast<int64_t>(orphaned.size()));
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
  }
  send_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& [id, state] : orphaned) {
    RpcFuture::Complete(state, UnavailableError(reason));
  }
}

RpcFuture TcpTransport::CallAsync(Message request) {
  auto state = RpcFuture::NewState();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      return RpcFuture::MakeReady(UnavailableError("transport closed"));
    }
    if (pending_.count(request.request_id) > 0) {
      return RpcFuture::MakeReady(InvalidArgumentError(
          "request_id " + std::to_string(request.request_id) + " already in flight"));
    }
    space_cv_.wait(lock, [this] { return stopping_ || queue_.size() < kMaxQueuedSends; });
    if (stopping_) {
      return RpcFuture::MakeReady(UnavailableError("transport closed"));
    }
    pending_.emplace(request.request_id, state);
    queue_.push_back(SendItem{std::move(request)});
    TcpMetrics().inflight_rpcs.Add(1);
    TcpMetrics().send_queue_depth.Add(1);
  }
  send_cv_.notify_one();
  return RpcFuture(std::move(state));
}

Result<Message> TcpTransport::Call(const Message& request) { return CallAsync(request).Wait(); }

Status TcpTransport::SendOneWay(const Message& request) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      return UnavailableError("transport closed");
    }
    space_cv_.wait(lock, [this] { return stopping_ || queue_.size() < kMaxQueuedSends; });
    if (stopping_) {
      return UnavailableError("transport closed");
    }
    queue_.push_back(SendItem{request});
    TcpMetrics().send_queue_depth.Add(1);
  }
  send_cv_.notify_one();
  return OkStatus();
}

size_t TcpTransport::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void TcpTransport::SenderLoop() {
  for (;;) {
    SendItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      send_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;  // Queued items are failed by FailConnection/Close.
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      TcpMetrics().send_queue_depth.Add(-1);
    }
    space_cv_.notify_one();
    const Status sent = SendFrame(fd_.get(), item.message);
    if (!sent.ok()) {
      FailConnection("send failed: " + sent.message());
      return;
    }
    TcpMetrics().frames_sent.Increment();
  }
}

void TcpTransport::ReceiverLoop() {
  for (;;) {
    auto reply = ReadFrame(fd_.get());
    if (!reply.ok()) {
      FailConnection(reply.status().code() == ErrorCode::kUnavailable
                         ? "peer closed connection"
                         : "receive failed: " + reply.status().message());
      return;
    }
    TcpMetrics().frames_received.Increment();
    std::shared_ptr<RpcFuture::State> state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(reply->request_id);
      if (it != pending_.end()) {
        state = std::move(it->second);
        pending_.erase(it);
        TcpMetrics().inflight_rpcs.Add(-1);
      }
    }
    if (state != nullptr) {
      RpcFuture::Complete(state, std::move(*reply));
    } else {
      RMP_LOG(kWarning) << "dropping unmatched reply for request_id " << reply->request_id;
    }
  }
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(uint16_t port, HandlerFactory factory,
                                                    std::string required_token,
                                                    int session_workers) {
  UniqueFd listen_fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd.valid()) {
    return ErrnoError("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(listen_fd.get(), 16) != 0) {
    return ErrnoError("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoError("getsockname");
  }
  const uint16_t bound_port = ntohs(addr.sin_port);
  return std::unique_ptr<TcpServer>(new TcpServer(std::move(listen_fd), bound_port,
                                                  std::move(factory), std::move(required_token),
                                                  session_workers));
}

TcpServer::TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory,
                     std::string required_token, int session_workers)
    : listen_fd_(std::move(listen_fd)),
      port_(port),
      factory_(std::move(factory)),
      required_token_(std::move(required_token)),
      session_workers_(session_workers) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  if (stopping_.exchange(true)) {
    return;
  }
  // shutdown() (not close) unblocks accept() while leaving the descriptor
  // valid for the accept thread to keep reading; it is released only after
  // the join, so the thread can never race the Reset or hit a recycled fd.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listen_fd_.Reset();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
    // Wake session threads blocked in recv(); they observe EOF and exit.
    for (const int fd : session_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& t : sessions) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // Listen socket closed by Shutdown().
    }
    ++connections_served_;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_fds_.push_back(fd);
    sessions_.emplace_back([this, session_fd = UniqueFd(fd)]() mutable {
      Session(std::move(session_fd));
    });
  }
}

void TcpServer::Session(UniqueFd fd) {
  SessionLoop(fd);
  // Deregister while the fd is still open so Shutdown() can never hit a
  // recycled descriptor; the socket closes when `fd` goes out of scope.
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  session_fds_.erase(std::remove(session_fds_.begin(), session_fds_.end(), fd.get()),
                     session_fds_.end());
}

void TcpServer::SessionLoop(UniqueFd& fd) {
  std::unique_ptr<MessageHandler> handler = factory_();
  // Serializes frames onto the socket: the inline path below and, when
  // pipelining is on, the worker threads. Declared before the pool so the
  // pool (whose workers lock it) is destroyed first.
  std::mutex send_mutex;
  std::unique_ptr<SessionWorkerPool> pool;
  if (session_workers_ > 0) {
    pool = std::make_unique<SessionWorkerPool>(session_workers_, handler.get(), fd.get(),
                                               &send_mutex);
  }
  bool authenticated = required_token_.empty();
  for (;;) {
    auto next = ReadFrame(fd.get());
    if (!next.ok()) {
      if (next.status().code() != ErrorCode::kUnavailable) {
        RMP_LOG(kWarning) << "dropping connection: " << next.status().ToString();
      }
      return;
    }
    if (pool != nullptr && pool->send_failed()) {
      return;
    }
    if (next->type == MessageType::kShutdown) {
      return;
    }
    if (next->type == MessageType::kAuth) {
      const std::string presented(next->payload.begin(), next->payload.end());
      const bool good = required_token_.empty() || presented == required_token_;
      authenticated = authenticated || good;
      const Message reply =
          MakeAuthReply(next->request_id, good ? ErrorCode::kOk : ErrorCode::kFailedPrecondition);
      std::lock_guard<std::mutex> lock(send_mutex);
      if (!SendFrame(fd.get(), reply).ok() || !good) {
        return;  // Bad token: reply then drop the connection.
      }
      continue;
    }
    if (!authenticated) {
      // Nothing but AUTH is served before the handshake.
      const Message reply = MakeErrorReply(next->request_id, ErrorCode::kFailedPrecondition);
      std::lock_guard<std::mutex> lock(send_mutex);
      if (!SendFrame(fd.get(), reply).ok()) {
        return;
      }
      continue;
    }
    if (pool != nullptr) {
      pool->Dispatch(std::move(*next));
      continue;
    }
    const Message reply = handler->Handle(*next);
    std::lock_guard<std::mutex> lock(send_mutex);
    if (!SendFrame(fd.get(), reply).ok()) {
      return;
    }
  }
}

}  // namespace rmp
