// Real TCP transport: the paper's deployment shape, usable across processes.
//
// TcpServer accepts connections on a loopback or LAN port and — like the
// paper's user-level memory server, which forks "a new instance of the
// server" per client (§3.2) — serves each connection on its own thread with
// its own MessageHandler created by a factory.
//
// TcpTransport is the client half: a blocking Call() that writes one encoded
// request and reads frames until the reply arrives.

#ifndef SRC_TRANSPORT_TCP_H_
#define SRC_TRANSPORT_TCP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/transport/transport.h"

namespace rmp {

// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release();
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Writes all of `bytes` to `fd`, retrying short writes. Returns IoError on
// failure (EPIPE after a peer crash surfaces here).
Status SendAll(int fd, std::span<const uint8_t> bytes);

class TcpTransport final : public Transport {
 public:
  // Connects to host:port (host is an IPv4 dotted quad or "localhost").
  // When `auth_token` is non-empty, an AUTH handshake is performed before
  // the connection is handed back; a server that requires a different token
  // fails the connect with FAILED_PRECONDITION.
  static Result<std::unique_ptr<TcpTransport>> Connect(const std::string& host, uint16_t port,
                                                       const std::string& auth_token = "");

  ~TcpTransport() override { Close(); }

  Result<Message> Call(const Message& request) override;
  Status SendOneWay(const Message& request) override;
  bool connected() const override { return fd_.valid(); }
  void Close() override;

 private:
  explicit TcpTransport(UniqueFd fd) : fd_(std::move(fd)) {}

  // Reads until one full frame is decodable.
  Result<Message> ReadReply();

  UniqueFd fd_;
  FrameReader reader_;
  std::mutex mutex_;  // Serializes concurrent Call()s on one connection.
};

// Accept loop + per-connection session threads.
class TcpServer {
 public:
  using HandlerFactory = std::function<std::unique_ptr<MessageHandler>()>;

  // Binds to 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  // accept thread. `factory` is invoked once per accepted connection. When
  // `required_token` is non-empty, every session must open with a matching
  // AUTH message before any other request is served (the paper's
  // privileged-port restriction, modernized).
  static Result<std::unique_ptr<TcpServer>> Start(uint16_t port, HandlerFactory factory,
                                                  std::string required_token = "");

  ~TcpServer();

  uint16_t port() const { return port_; }
  int connections_served() const { return connections_served_.load(); }

  // Stops accepting and joins all session threads. Idempotent.
  void Shutdown();

 private:
  TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory,
            std::string required_token);

  void AcceptLoop();
  void Session(UniqueFd fd);
  void SessionLoop(UniqueFd& fd);

  UniqueFd listen_fd_;
  uint16_t port_;
  HandlerFactory factory_;
  std::string required_token_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> connections_served_{0};
  std::thread accept_thread_;
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
  // Raw fds of live sessions; Shutdown() half-closes them so session
  // threads blocked in recv() wake up and can be joined.
  std::vector<int> session_fds_;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_TCP_H_
