// Transport throughput/latency: blocking Call() vs pipelined CallAsync() at
// queue depths {1, 4, 16}, over the in-process transport and a loopback TCP
// connection. The pipelined TCP numbers are the point of the exercise: one
// connection carrying many outstanding pageouts amortizes the per-request
// round trip that the paper's single blocking daemon pays in full.
//
// Each configuration emits one BENCH_transport.json-compatible line:
//   BENCH_transport.json: {"transport":"tcp","mode":"pipelined","depth":16,...}

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kSlots = 64;  // > max depth, so no two in-flight ops share a slot.

double Micros(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

double Percentile(std::vector<double>* latencies, double q) {
  if (latencies->empty()) {
    return 0.0;
  }
  std::sort(latencies->begin(), latencies->end());
  const size_t index = static_cast<size_t>(q * static_cast<double>(latencies->size() - 1));
  return (*latencies)[index];
}

struct BenchRow {
  double pages_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// Pages out `ops` pages round-robin over kSlots slots. `depth` == 0 uses the
// blocking Call(); otherwise up to `depth` CallAsync requests stay in flight
// and the oldest is joined FIFO when the window fills.
BenchRow RunPageouts(Transport* transport, uint64_t first_slot, int ops, int depth,
                     std::vector<double>* out_latencies = nullptr) {
  PageBuffer page;
  FillPattern(page.span(), 42);
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(ops));
  std::deque<std::pair<RpcFuture, Clock::time_point>> window;
  uint64_t request_id = 1000;

  const auto join_oldest = [&] {
    auto [future, issued] = std::move(window.front());
    window.pop_front();
    auto reply = future.Wait();
    if (!reply.ok() || reply->status_code() != ErrorCode::kOk) {
      std::fprintf(stderr, "pageout failed: %s\n", reply.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(Micros(Clock::now() - issued));
  };

  const auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    const uint64_t slot = first_slot + static_cast<uint64_t>(i % kSlots);
    if (depth == 0) {
      const auto issued = Clock::now();
      auto reply = transport->Call(MakePageOut(++request_id, slot, page.span()));
      if (!reply.ok() || reply->status_code() != ErrorCode::kOk) {
        std::fprintf(stderr, "pageout failed: %s\n", reply.status().ToString().c_str());
        std::exit(1);
      }
      latencies.push_back(Micros(Clock::now() - issued));
      continue;
    }
    if (window.size() >= static_cast<size_t>(depth)) {
      join_oldest();
    }
    window.emplace_back(transport->CallAsync(MakePageOut(++request_id, slot, page.span())),
                        Clock::now());
  }
  while (!window.empty()) {
    join_oldest();
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  BenchRow row;
  row.pages_per_sec = static_cast<double>(ops) / seconds;
  row.p50_us = Percentile(&latencies, 0.50);
  row.p99_us = Percentile(&latencies, 0.99);
  if (out_latencies != nullptr) {
    *out_latencies = std::move(latencies);
  }
  return row;
}


void Report(const char* transport, int depth, const BenchRow& row) {
  const char* mode = depth == 0 ? "blocking" : "pipelined";
  std::printf("%-7s %-9s depth %2d   %9.0f pages/s   p50 %7.1f us   p99 %7.1f us\n", transport,
              mode, depth == 0 ? 1 : depth, row.pages_per_sec, row.p50_us, row.p99_us);
  const std::string config = std::string(transport) + "/" + mode + "/depth" +
                             std::to_string(depth == 0 ? 1 : depth);
  EmitBenchResult("transport", config, "pages_per_sec", row.pages_per_sec, "pages/s");
  EmitBenchResult("transport", config, "p50_latency", row.p50_us, "us");
  EmitBenchResult("transport", config, "p99_latency", row.p99_us, "us");
}

uint64_t AllocSlots(Transport* transport) {
  auto alloc = transport->Call(MakeAllocRequest(1, kSlots));
  if (!alloc.ok() || alloc->status_code() != ErrorCode::kOk) {
    std::fprintf(stderr, "alloc failed: %s\n", alloc.status().ToString().c_str());
    std::exit(1);
  }
  return alloc->slot;
}

// Many concurrent sessions, each a modest pipelined stream: the fan-out shape
// a remote memory server actually faces (one lane per faulting client), as
// opposed to the single fat pipe above. Thread-per-session pays `sessions`
// idle reader threads plus a worker pool per session here; the reactor
// multiplexes everything onto a fixed loop+worker pool.
void RunMultiSession(uint16_t port, MemoryServer* server, int sessions, int per_session_ops,
                     int depth) {
  std::vector<std::unique_ptr<TcpTransport>> clients;
  std::vector<uint64_t> first_slots;
  for (int s = 0; s < sessions; ++s) {
    auto client = TcpTransport::Connect("127.0.0.1", port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect %d failed: %s\n", s, client.status().ToString().c_str());
      std::exit(1);
    }
    const uint64_t first_slot = AllocSlots(client->get());
    for (uint64_t i = 0; i < kSlots; ++i) {
      server->SetSlotDelayForTest(first_slot + i, 100);
    }
    first_slots.push_back(first_slot);
    clients.push_back(std::move(*client));
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(sessions));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      RunPageouts(clients[static_cast<size_t>(s)].get(), first_slots[static_cast<size_t>(s)],
                  per_session_ops, depth, &latencies[static_cast<size_t>(s)]);
    });
  }
  while (ready.load() < sessions) {
    std::this_thread::yield();
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) {
    t.join();
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> pooled;
  for (auto& per_session : latencies) {
    pooled.insert(pooled.end(), per_session.begin(), per_session.end());
  }
  BenchRow row;
  row.pages_per_sec = static_cast<double>(sessions) * per_session_ops / seconds;
  row.p50_us = Percentile(&pooled, 0.50);
  row.p99_us = Percentile(&pooled, 0.99);
  std::printf("tcp     multisess x%-3d depth %2d  %9.0f pages/s   p50 %7.1f us   p99 %7.1f us\n",
              sessions, depth, row.pages_per_sec, row.p50_us, row.p99_us);
  const std::string config = "tcp/multisession/sessions" + std::to_string(sessions);
  EmitBenchResult("transport", config, "pages_per_sec", row.pages_per_sec, "pages/s");
  EmitBenchResult("transport", config, "p50_latency", row.p50_us, "us");
  EmitBenchResult("transport", config, "p99_latency", row.p99_us, "us");
}

struct Handler : MessageHandler {
  explicit Handler(std::shared_ptr<MemoryServer> s) : server(std::move(s)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

int Main() {
  const int depths[] = {0, 1, 4, 16};  // 0 == blocking Call().

  {
    MemoryServerParams params;
    params.name = "inproc-bench";
    params.capacity_pages = kSlots + 16;
    MemoryServer server(params);
    InProcTransport transport(&server);
    const uint64_t first_slot = AllocSlots(&transport);
    for (const int depth : depths) {
      Report("inproc", depth, RunPageouts(&transport, first_slot, /*ops=*/20000, depth));
    }
  }

  {
    MemoryServerParams params;
    params.name = "tcp-bench";
    params.capacity_pages = kSlots + 16;
    auto server = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(
        0, [server] { return std::unique_ptr<MessageHandler>(new Handler(server)); },
        /*required_token=*/"", /*session_workers=*/16);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", started.status().ToString().c_str());
      return 1;
    }
    auto client = TcpTransport::Connect("127.0.0.1", (*started)->port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
      return 1;
    }
    const uint64_t first_slot = AllocSlots(client->get());
    // Loopback round trips are ~20 us — far below any real network — so the
    // blocking baseline would look unrealistically good. Emulate a LAN-like
    // per-request service time; the delay sleeps outside the server mutex, so
    // pipelined requests to distinct slots overlap it.
    constexpr int64_t kServiceMicros = 100;
    for (uint64_t s = 0; s < kSlots; ++s) {
      server->SetSlotDelayForTest(first_slot + s, kServiceMicros);
    }
    BenchRow blocking;
    BenchRow deep;
    for (const int depth : depths) {
      // 12000 ops so the p99 rests on the 120th-worst sample, not the 40th:
      // shared-box scheduling noise at 4000 ops swung single-run p99 by ±25%,
      // which is useless against diff_bench's 10% gate.
      const BenchRow row = RunPageouts(client->get(), first_slot, /*ops=*/12000, depth);
      Report("tcp", depth, row);
      if (depth == 0) {
        blocking = row;
      }
      if (depth == 16) {
        deep = row;
      }
    }
    std::printf("tcp pipelined(16) / blocking speedup: %.2fx\n",
                deep.pages_per_sec / blocking.pages_per_sec);
  }

  {
    constexpr int kSessions = 32;
    MemoryServerParams params;
    params.name = "tcp-multi-bench";
    params.capacity_pages = kSlots * (kSessions + 1);
    auto server = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(
        0, [server] { return std::unique_ptr<MessageHandler>(new Handler(server)); },
        /*required_token=*/"", /*session_workers=*/16);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", started.status().ToString().c_str());
      return 1;
    }
    RunMultiSession((*started)->port(), server.get(), kSessions, /*per_session_ops=*/500,
                    /*depth=*/4);
  }
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
