#!/usr/bin/env bash
# Sanitizer gate for the fault-injection conformance suites.
#
# Builds the tree under ASan+UBSan (RMP_SANITIZE=address enables both, see the
# top-level CMakeLists.txt) and runs the `faults_smoke` and `repair_smoke`
# ctest labels — the fault-injection, crash-recovery, wire-fuzz, and
# self-healing (health/repair) suites — so every injected interleaving is
# also exercised for memory and UB errors, not just for byte-identical
# recovery. This complements the existing RMP_SANITIZE=thread
# configuration that gates the pipelined transport's sender/receiver threads.
#
# Usage:
#   scripts/check_sanitizers.sh [sanitizer ...]
#
# With no arguments runs the default `address` job (ASan+UBSan). Pass
# `thread` as well to run the TSan job over the same label, e.g.:
#   scripts/check_sanitizers.sh address thread
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizers=("${@:-address}")
# The self-healing suites (health monitor heartbeat thread, repair
# coordinator) carry the repair_smoke label; run them under the same
# sanitizers so the background pump thread is raced under TSan too.
# reactor_smoke covers the event-loop transport: the fair-share scheduler's
# worker handoffs, hostile-frame teardown, and the many-session churn soak
# are exactly the loop-thread/worker races TSan exists to catch.
# compress_smoke covers the codec and the compressed tier: the decompressor's
# bounds checks against truncated/bit-flipped extents and the dedup refcount
# lifecycle are where ASan/UBSan findings would hide behind "corruption"
# status returns.
# tenant_smoke covers the multi-tenant QoS layer: quota admission under
# concurrent multi-tenant churn is a lock-order/race surface (control vs
# tenant mutex), so it runs under TSan alongside the scheduler suites.
# membership_smoke covers elastic membership (DESIGN.md §16): live
# join/decommission rebalance moves pages while foreground paging runs, and
# the map-frame fail-closed decoding is exactly where ASan/UBSan findings
# would hide behind clean-looking protocol errors.
# obs_smoke covers the observability pipeline (DESIGN.md §17): the span ring
# and event journal are concurrent structures appended from transport worker
# threads while pollers drain them over the wire — TSan territory — and the
# introspection-reply fuzz sweeps plus the live rmptop demo (real TCP, traffic
# thread) are where ASan would catch a payload view escaping its frame.
label="${RMP_SMOKE_LABEL:-faults_smoke|repair_smoke|metrics_smoke|reactor_smoke|compress_smoke|tenant_smoke|membership_smoke|obs_smoke}"

for sanitizer in "${sanitizers[@]}"; do
  build_dir="${repo_root}/build-${sanitizer}san"
  echo "==> [${sanitizer}] configuring ${build_dir}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRMP_SANITIZE="${sanitizer}"
  echo "==> [${sanitizer}] building"
  cmake --build "${build_dir}" -j
  echo "==> [${sanitizer}] running ctest -L ${label}"
  # halt_on_error makes ASan/UBSan findings fail the test instead of just
  # printing; detect_leaks catches anything the fault paths drop on the floor.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "${build_dir}" -L "${label}" --output-on-failure -j
  echo "==> [${sanitizer}] OK"
done

# The io_uring reactor backend is compile-gated (RMP_IO_URING) and most
# deployments build without it, so bit-rot would go unnoticed: keep it
# compiling (transport library + the gated reactor_test smoke) even where the
# kernel can't run it.
if [[ "${RMP_SKIP_IO_URING_CHECK:-0}" != "1" ]]; then
  build_dir="${repo_root}/build-iouring-check"
  echo "==> [io_uring] compile check in ${build_dir}"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRMP_IO_URING=ON
  cmake --build "${build_dir}" -j --target rmp_transport reactor_test
  echo "==> [io_uring] OK"
fi
