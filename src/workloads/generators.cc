#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "src/util/rng.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

// One page-granular memory reference.
struct Access {
  uint64_t vpage;
  bool write;
};

using AccessSink = std::function<void(uint64_t vpage, bool write)>;

// Base class: subclasses describe their reference stream via ForEachAccess;
// the base interleaves a uniform compute slice per access so that
// Run() spends exactly (user + system) seconds of CPU across the pattern.
class PatternWorkload : public Workload {
 public:
  int64_t access_count() const override {
    if (cached_count_ < 0) {
      int64_t n = 0;
      ForEachAccess([&n](uint64_t, bool) { ++n; });
      cached_count_ = n;
    }
    return cached_count_;
  }

  Status Run(PagedVm* vm, TimeNs* now) const override {
    const WorkloadInfo meta = info();
    const int64_t total = access_count();
    const double cpu_ns = (meta.user_seconds + meta.system_seconds) * kSecond;
    const double slice = total > 0 ? cpu_ns / static_cast<double>(total) : 0.0;
    double carry = 0.0;
    Status failure = OkStatus();
    ForEachAccess([&](uint64_t vpage, bool write) {
      if (!failure.ok()) {
        return;
      }
      carry += slice;
      const auto step = static_cast<DurationNs>(carry);
      carry -= static_cast<double>(step);
      *now += step;  // Compute between references.
      const Status status = vm->Touch(now, vpage, write);
      if (!status.ok()) {
        failure = status;
      }
    });
    return failure;
  }

 protected:
  virtual void ForEachAccess(const AccessSink& sink) const = 0;

  // Zigzag sweep helper: forward on even `pass`, backward on odd, so
  // consecutive passes re-enter the region where the previous one left off
  // and LRU faults stay proportional to the memory deficit.
  static void Sweep(const AccessSink& sink, uint64_t first, uint64_t last_exclusive, int pass,
                    bool read, bool write) {
    if (first >= last_exclusive) {
      return;
    }
    const bool forward = (pass % 2) == 0;
    const uint64_t n = last_exclusive - first;
    for (uint64_t k = 0; k < n; ++k) {
      const uint64_t page = forward ? first + k : last_exclusive - 1 - k;
      if (read) {
        sink(page, false);
      }
      if (write) {
        sink(page, true);
      }
    }
  }

 private:
  mutable int64_t cached_count_ = -1;
};

uint64_t PagesFor(uint64_t bytes) { return PagesForBytes(bytes); }

// --- MVEC ------------------------------------------------------------------

class MvecWorkload final : public PatternWorkload {
 public:
  explicit MvecWorkload(uint64_t n) : n_(n) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "MVEC";
    meta.data_bytes = n_ * n_ * sizeof(double) + 2 * n_ * sizeof(double);
    meta.user_seconds = 15.5;
    meta.system_seconds = 0.8;
    meta.init_seconds = 0.15;
    return meta;
  }

 protected:
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t matrix_pages = PagesFor(n_ * n_ * sizeof(double));
    const uint64_t vector_pages = std::max<uint64_t>(1, PagesFor(n_ * sizeof(double)));
    // y = A x with A generated row by row and consumed immediately: one
    // write stream over the matrix, the small x vector re-read (hot), the
    // y vector written once at the end. Almost no pageins.
    for (uint64_t p = 0; p < matrix_pages; ++p) {
      sink(matrix_pages + (p % vector_pages), false);  // Read x (stays hot).
      sink(p, true);                                   // Generate/consume a row block.
    }
    for (uint64_t p = 0; p < vector_pages; ++p) {
      sink(matrix_pages + vector_pages + p, true);  // Write y.
    }
  }

 private:
  uint64_t n_;
};

// --- GAUSS -----------------------------------------------------------------

class GaussWorkload final : public PatternWorkload {
 public:
  explicit GaussWorkload(uint64_t n) : n_(n) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "GAUSS";
    meta.data_bytes = n_ * n_ * sizeof(double);
    meta.user_seconds = 15.0;
    meta.system_seconds = 1.0;
    meta.init_seconds = 0.15;
    return meta;
  }

 protected:
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t pages = PagesFor(n_ * n_ * sizeof(double));
    // Initialize the matrix.
    Sweep(sink, 0, pages, /*pass=*/0, /*read=*/false, /*write=*/true);
    // Blocked elimination: each round keeps a growing pivot prefix hot
    // (factored rows, touched but resident) and streams the remaining tail
    // read+write. Three rounds over shrinking tails approximate the panel
    // schedule of an out-of-core solver.
    constexpr int kRounds = 3;
    for (int r = 0; r < kRounds; ++r) {
      const uint64_t tail_start = pages * static_cast<uint64_t>(r) / kRounds;
      // Re-read a slice of the pivot prefix (pivot rows feed the updates).
      const uint64_t pivot_lo = tail_start / 2;
      Sweep(sink, pivot_lo, tail_start, r, /*read=*/true, /*write=*/false);
      Sweep(sink, tail_start, pages, r + 1, /*read=*/true, /*write=*/true);
    }
  }

 private:
  uint64_t n_;
};

// --- QSORT -----------------------------------------------------------------

class QsortWorkload final : public PatternWorkload {
 public:
  QsortWorkload(uint64_t records, uint64_t record_bytes)
      : records_(records), record_bytes_(record_bytes) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "QSORT";
    meta.data_bytes = records_ * record_bytes_;
    meta.user_seconds = 40.0;
    meta.system_seconds = 1.5;
    meta.init_seconds = 0.1;
    return meta;
  }

 protected:
  // Sorting 8 KB records by copying them around would be absurd; a real
  // QSORT of large records sorts *pointers* on the record keys and then
  // permutes the records once:
  //   1. generate the input        (sequential write pass)
  //   2. read every record's key   (sequential read pass)
  //   3. sort the pointer array    (in-memory; a few hot pages)
  //   4. apply the permutation     (random reads, sequential-ish writes)
  // Step 4's reads land at *random* record offsets — long seeks on the
  // disk, indifferent on remote memory: the source of QSORT's outsized
  // disk penalty in Fig. 2.
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t pages = PagesFor(records_ * record_bytes_);
    const uint64_t pointer_pages = 4;  // The pointer array itself (hot).
    Sweep(sink, 0, pages, /*pass=*/0, /*read=*/false, /*write=*/true);  // Generate input.
    Sweep(sink, 0, pages, /*pass=*/1, /*read=*/true, /*write=*/false);  // Key scan.
    // Pointer sort: ~n log n comparisons over the small pointer array.
    const auto comparisons = static_cast<uint64_t>(
        static_cast<double>(records_) * std::log2(static_cast<double>(records_)));
    for (uint64_t c = 0; c < comparisons / 8; ++c) {
      sink(pages + (c % pointer_pages), true);
    }
    // Permutation: destination advances sequentially, source is the sorted
    // (i.e. random w.r.t. layout) record order.
    Rng rng(records_ * 0x51u);
    std::vector<uint64_t> order(pages);
    for (uint64_t p = 0; p < pages; ++p) {
      order[p] = p;
    }
    for (uint64_t p = pages; p > 1; --p) {  // Fisher-Yates.
      std::swap(order[p - 1], order[rng.Below(p)]);
    }
    for (uint64_t dst = 0; dst < pages; ++dst) {
      sink(order[dst], false);  // Fetch the record that belongs here.
      sink(dst, true);          // Store it in place.
    }
  }

 private:
  uint64_t records_;
  uint64_t record_bytes_;
};

// --- FFT -------------------------------------------------------------------

class FftWorkload final : public PatternWorkload {
 public:
  explicit FftWorkload(double input_mb) : input_mb_(input_mb) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "FFT";
    meta.data_bytes = static_cast<uint64_t>(input_mb_ * static_cast<double>(kMiB));
    // The paper's measured decomposition at 24 MB: 66.138 u + 3.133 s +
    // 0.21 init. Compute scales as n log n with the input size.
    const double scale =
        (input_mb_ * std::log2(std::max(2.0, input_mb_))) / (24.0 * std::log2(24.0));
    meta.user_seconds = 66.138 * scale;
    meta.system_seconds = 3.133 * scale;
    meta.init_seconds = 0.21;
    return meta;
  }

 protected:
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t pages = PagesFor(info().data_bytes);
    // Load/initialize the signal.
    Sweep(sink, 0, pages, /*pass=*/0, /*read=*/false, /*write=*/true);
    // Out-of-core butterfly levels: a blocked FFT runs the top levels as
    // full read+write passes; once sub-transforms fit in memory the
    // remaining levels are one more blocked pass that mostly hits.
    constexpr int kOutOfCorePasses = 2;
    for (int pass = 1; pass <= kOutOfCorePasses; ++pass) {
      Sweep(sink, 0, pages, pass, /*read=*/true, /*write=*/true);
    }
  }

 private:
  double input_mb_;
};

// --- FILTER ----------------------------------------------------------------

class FilterWorkload final : public PatternWorkload {
 public:
  explicit FilterWorkload(uint64_t image_mb) : image_mb_(image_mb) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "FILTER";
    meta.data_bytes = 2 * image_mb_ * kMiB;  // Input image + output image.
    meta.user_seconds = 49.0;
    meta.system_seconds = 1.5;
    meta.init_seconds = 0.2;
    return meta;
  }

 protected:
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t image_pages = PagesFor(image_mb_ * kMiB);
    // Load the input image.
    Sweep(sink, 0, image_pages, /*pass=*/0, /*read=*/false, /*write=*/true);
    // Horizontal pass: read input, write output (two interleaved streams).
    for (uint64_t p = 0; p < image_pages; ++p) {
      sink(p, false);
      sink(image_pages + p, true);
    }
    // Vertical pass, blocked by row panels: read the intermediate backward
    // (zigzag), write the final image over the input buffer.
    for (uint64_t k = 0; k < image_pages; ++k) {
      const uint64_t p = image_pages - 1 - k;
      sink(image_pages + p, false);
      sink(p, true);
    }
  }

 private:
  uint64_t image_mb_;
};

// --- CC --------------------------------------------------------------------

class CcWorkload final : public PatternWorkload {
 public:
  explicit CcWorkload(uint64_t tree_mb) : tree_mb_(tree_mb) {}

  WorkloadInfo info() const override {
    WorkloadInfo meta;
    meta.name = "CC";
    meta.data_bytes = tree_mb_ * kMiB;
    meta.user_seconds = 95.0;
    meta.system_seconds = 3.0;
    meta.init_seconds = 0.3;
    return meta;
  }

 protected:
  void ForEachAccess(const AccessSink& sink) const override {
    const uint64_t pages = PagesFor(tree_mb_ * kMiB);
    const uint64_t header_pages = pages / 8;  // Shared headers + libraries.
    const uint64_t unit_pages = 12;
    const uint64_t object_pages = 6;
    const uint64_t stride = unit_pages + object_pages;
    const uint64_t units = (pages - header_pages) / stride;
    Rng rng(0x4343u);  // "CC": deterministic pseudo-random schedule.
    // Materialize the source tree: the sources and headers are file pages
    // that the VM system holds dirty and pages out; every later read is a
    // pagein. (On the paper's machine the build's file pages competed with
    // the compiler's memory exactly this way.)
    Sweep(sink, 0, pages, /*pass=*/0, /*read=*/false, /*write=*/true);
    // Compile units in make's dependency order, which bears no relation to
    // their on-disk layout: unit u sits at a scattered offset. The compiler
    // also re-reads headers throughout. Both access streams are random at
    // the disk — the seeks that make a kernel build painful to page there.
    std::vector<uint64_t> unit_order(units);
    for (uint64_t u = 0; u < units; ++u) {
      unit_order[u] = u;
    }
    for (uint64_t u = units; u > 1; --u) {  // Fisher-Yates.
      std::swap(unit_order[u - 1], unit_order[rng.Below(u)]);
    }
    for (const uint64_t unit : unit_order) {
      const uint64_t base = header_pages + unit * stride;
      for (int h = 0; h < 6; ++h) {
        sink(rng.Below(header_pages), false);
      }
      for (uint64_t p = 0; p < unit_pages; ++p) {  // Parse the source unit.
        sink(base + p, false);
      }
      for (uint64_t p = 0; p < object_pages; ++p) {  // Emit the object file.
        sink(base + unit_pages + p, true);
      }
    }
    // Final link: read every object (scattered order again), write the
    // kernel image over the header region.
    for (const uint64_t unit : unit_order) {
      const uint64_t base = header_pages + unit * stride;
      for (uint64_t p = 0; p < object_pages; ++p) {
        sink(base + unit_pages + p, false);
      }
    }
    Sweep(sink, 0, header_pages, /*pass=*/0, /*read=*/false, /*write=*/true);
  }

 private:
  uint64_t tree_mb_;
};

}  // namespace

std::unique_ptr<Workload> MakeMvec(uint64_t n) { return std::make_unique<MvecWorkload>(n); }
std::unique_ptr<Workload> MakeGauss(uint64_t n) { return std::make_unique<GaussWorkload>(n); }
std::unique_ptr<Workload> MakeQsort(uint64_t records, uint64_t record_bytes) {
  return std::make_unique<QsortWorkload>(records, record_bytes);
}
std::unique_ptr<Workload> MakeFft(double input_mb) {
  return std::make_unique<FftWorkload>(input_mb);
}
std::unique_ptr<Workload> MakeFilter(uint64_t image_mb) {
  return std::make_unique<FilterWorkload>(image_mb);
}
std::unique_ptr<Workload> MakeCc(uint64_t tree_mb) { return std::make_unique<CcWorkload>(tree_mb); }

std::vector<std::unique_ptr<Workload>> MakePaperWorkloads() {
  std::vector<std::unique_ptr<Workload>> workloads;
  workloads.push_back(MakeMvec());
  workloads.push_back(MakeGauss());
  workloads.push_back(MakeQsort());
  workloads.push_back(MakeFft());
  workloads.push_back(MakeFilter());
  workloads.push_back(MakeCc());
  return workloads;
}

Result<std::unique_ptr<Workload>> MakeWorkloadByName(const std::string& name) {
  if (name == "MVEC") {
    return MakeMvec();
  }
  if (name == "GAUSS") {
    return MakeGauss();
  }
  if (name == "QSORT") {
    return MakeQsort();
  }
  if (name == "FFT") {
    return MakeFft();
  }
  if (name == "FILTER") {
    return MakeFilter();
  }
  if (name == "CC") {
    return MakeCc();
  }
  return NotFoundError("unknown workload: " + name);
}

void FillCompressiblePage(std::span<uint8_t> page, uint64_t seed, unsigned compr_min,
                          unsigned compr_max) {
  compr_min = std::min(compr_min, 100u);
  compr_max = std::min(compr_max, 100u);
  if (compr_max < compr_min) {
    std::swap(compr_min, compr_max);
  }
  Rng rng(seed);
  const unsigned pct =
      compr_min == compr_max
          ? compr_min
          : compr_min + static_cast<unsigned>(rng.Next() % (compr_max - compr_min + 1));
  // The incompressible head; the compressible remainder is a zero run.
  const size_t random_bytes = page.size() * (100 - pct) / 100;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= random_bytes; i += sizeof(uint64_t)) {
    const uint64_t v = rng.Next();
    std::memcpy(page.data() + i, &v, sizeof(v));
  }
  if (i < random_bytes) {
    const uint64_t v = rng.Next();
    std::memcpy(page.data() + i, &v, random_bytes - i);
  }
  std::fill(page.begin() + random_bytes, page.end(), uint8_t{0});
}

}  // namespace rmp
