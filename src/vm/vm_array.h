// VmArray<T>: a typed array living inside a PagedVm address space. The
// data-mode workload kernels (a real quicksort, a real matrix sweep) operate
// on these so that every element access goes through the fault path and the
// final data provably round-tripped through servers, parity and recovery.

#ifndef SRC_VM_VM_ARRAY_H_
#define SRC_VM_VM_ARRAY_H_

#include <cstdint>
#include <type_traits>

#include "src/vm/paged_vm.h"

namespace rmp {

template <typename T>
class VmArray {
  static_assert(std::is_trivially_copyable_v<T>, "VmArray elements must be trivially copyable");

 public:
  // Places `count` elements at byte offset `base` of the VM address space.
  VmArray(PagedVm* vm, uint64_t base, uint64_t count) : vm_(vm), base_(base), count_(count) {}

  uint64_t size() const { return count_; }

  // Byte span this array occupies (for laying out several arrays).
  uint64_t end_offset() const { return base_ + count_ * sizeof(T); }

  Result<T> Get(TimeNs* now, uint64_t index) const {
    T value{};
    auto span = std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), sizeof(T));
    RMP_RETURN_IF_ERROR(vm_->Read(now, base_ + index * sizeof(T), span));
    return value;
  }

  Status Set(TimeNs* now, uint64_t index, const T& value) {
    auto span = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), sizeof(T));
    return vm_->Write(now, base_ + index * sizeof(T), span);
  }

 private:
  PagedVm* vm_;
  uint64_t base_;
  uint64_t count_;
};

}  // namespace rmp

#endif  // SRC_VM_VM_ARRAY_H_
