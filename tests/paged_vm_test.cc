#include "src/vm/paged_vm.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/vm/replacement.h"

namespace rmp {
namespace {

// A tiny deterministic backend recording traffic (no timing, no network).
class RecordingBackend final : public PagingBackend {
 public:
  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override {
    store_[page_id].Assign(data);
    ++stats_.pageouts;
    order_.push_back(page_id);
    return now;
  }
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override {
    auto it = store_.find(page_id);
    if (it == store_.end()) {
      return NotFoundError("never stored");
    }
    std::copy(it->second.span().begin(), it->second.span().end(), out.begin());
    ++stats_.pageins;
    return now;
  }
  const BackendStats& stats() const override { return stats_; }
  std::string Name() const override { return "recording"; }

  const std::vector<uint64_t>& pageout_order() const { return order_; }
  bool Holds(uint64_t page_id) const { return store_.count(page_id) > 0; }

 private:
  std::unordered_map<uint64_t, PageBuffer> store_;
  std::vector<uint64_t> order_;
  BackendStats stats_;
};

VmParams SmallVm(uint32_t frames, uint64_t virtual_pages = 64) {
  VmParams params;
  params.virtual_pages = virtual_pages;
  params.physical_frames = frames;
  return params;
}

TEST(PagedVmTest, FirstTouchesAreZeroFills) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(4), &backend);
  TimeNs now = 0;
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(vm.Touch(&now, p, false).ok());
  }
  EXPECT_EQ(vm.stats().zero_fills, 4);
  EXPECT_EQ(vm.stats().pageins, 0);
  EXPECT_EQ(vm.stats().pageouts, 0);
  EXPECT_EQ(vm.resident_pages(), 4u);
}

TEST(PagedVmTest, CleanEvictionsCostNothing) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, false).ok());
  ASSERT_TRUE(vm.Touch(&now, 1, false).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, false).ok());  // Evicts clean page 0.
  EXPECT_EQ(vm.stats().pageouts, 0);
  EXPECT_EQ(vm.stats().clean_evictions, 1);
  EXPECT_FALSE(vm.IsResident(0));
}

TEST(PagedVmTest, DirtyEvictionPagesOut) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 1, false).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, false).ok());  // Evicts dirty page 0.
  EXPECT_EQ(vm.stats().pageouts, 1);
  EXPECT_TRUE(backend.Holds(0));
}

TEST(PagedVmTest, RefaultPagesBackIn) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 1, false).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, false).ok());  // Page 0 evicted to backend.
  ASSERT_TRUE(vm.Touch(&now, 0, false).ok());  // Fault it back.
  EXPECT_EQ(vm.stats().pageins, 1);
  EXPECT_TRUE(vm.IsResident(0));
}

TEST(PagedVmTest, LruEvictsLeastRecentlyUsed) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(3), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 1, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 0, false).ok());  // 0 is now MRU; 1 is LRU.
  ASSERT_TRUE(vm.Touch(&now, 3, true).ok());   // Evicts 1.
  ASSERT_EQ(backend.pageout_order().size(), 1u);
  EXPECT_EQ(backend.pageout_order()[0], 1u);
}

TEST(PagedVmTest, DataSurvivesEvictionRoundTrip) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2), &backend);
  TimeNs now = 0;
  const std::vector<uint8_t> payload = {9, 8, 7, 6, 5};
  ASSERT_TRUE(vm.Write(&now, 0, std::span<const uint8_t>(payload)).ok());
  // Force page 0 out.
  ASSERT_TRUE(vm.Touch(&now, 1, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, true).ok());
  ASSERT_FALSE(vm.IsResident(0));
  std::vector<uint8_t> readback(payload.size());
  ASSERT_TRUE(vm.Read(&now, 0, std::span<uint8_t>(readback)).ok());
  EXPECT_EQ(readback, payload);
}

TEST(PagedVmTest, ReadWriteSpanPageBoundary) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(4), &backend);
  TimeNs now = 0;
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  const uint64_t addr = kPageSize - 50;  // Straddles pages 0 and 1.
  ASSERT_TRUE(vm.Write(&now, addr, std::span<const uint8_t>(data)).ok());
  std::vector<uint8_t> readback(100);
  ASSERT_TRUE(vm.Read(&now, addr, std::span<uint8_t>(readback)).ok());
  EXPECT_EQ(readback, data);
  EXPECT_TRUE(vm.IsDirty(0));
  EXPECT_TRUE(vm.IsDirty(1));
}

TEST(PagedVmTest, OutOfRangeTouchRejected) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2, /*virtual_pages=*/4), &backend);
  TimeNs now = 0;
  EXPECT_EQ(vm.Touch(&now, 4, false).code(), ErrorCode::kInvalidArgument);
}

TEST(PagedVmTest, FlushDirtyWritesAllDirtyPages) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(4), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 1, false).ok());
  ASSERT_TRUE(vm.Touch(&now, 2, true).ok());
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  EXPECT_EQ(vm.stats().pageouts, 2);
  EXPECT_FALSE(vm.IsDirty(0));
  // Flushing twice writes nothing new.
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  EXPECT_EQ(vm.stats().pageouts, 2);
}

TEST(PagedVmTest, InvalidateAllDropsResidency) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(4), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, true).ok());
  ASSERT_TRUE(vm.FlushDirty(&now).ok());
  vm.InvalidateAll();
  EXPECT_EQ(vm.resident_pages(), 0u);
  // Page 0 was flushed, so it can fault back in with its data.
  ASSERT_TRUE(vm.Touch(&now, 0, false).ok());
  EXPECT_EQ(vm.stats().pageins, 1);
}

TEST(PagedVmTest, HitCountingIsAccurate) {
  RecordingBackend backend;
  PagedVm vm(SmallVm(2), &backend);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 0, false).ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(vm.Touch(&now, 0, false).ok());
  }
  EXPECT_EQ(vm.stats().accesses, 10);
  EXPECT_EQ(vm.stats().hits, 9);
  EXPECT_EQ(vm.stats().faults, 1);
}

// Sweep the replacement policies over a cyclic access pattern and confirm
// each produces a sane fault count (property-style).
class ReplacementSweepTest : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReplacementSweepTest, CyclicPatternFaultsBounded) {
  RecordingBackend backend;
  VmParams params = SmallVm(8, 16);
  params.replacement = GetParam();
  PagedVm vm(params, &backend);
  TimeNs now = 0;
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t p = 0; p < 16; ++p) {
      ASSERT_TRUE(vm.Touch(&now, p, true).ok());
    }
  }
  // Cyclic over 16 pages with 8 frames: every policy faults heavily but
  // never more than once per access.
  EXPECT_GE(vm.stats().faults, 16);
  EXPECT_LE(vm.stats().faults, vm.stats().accesses);
  // All data still retrievable.
  for (uint64_t p = 0; p < 16; ++p) {
    ASSERT_TRUE(vm.Touch(&now, p, false).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementSweepTest,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kClock,
                                           ReplacementKind::kFifo));

// --- Replacement policy units ------------------------------------------------

TEST(ReplacementTest, LruVictimOrder) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnInsert(3);
  EXPECT_EQ(lru.Victim(), 1u);
  lru.OnAccess(1);
  EXPECT_EQ(lru.Victim(), 2u);
  lru.OnEvict(2);
  EXPECT_EQ(lru.Victim(), 3u);
}

TEST(ReplacementTest, ClockGivesSecondChance) {
  ClockPolicy clock;
  clock.OnInsert(1);
  clock.OnInsert(2);
  clock.OnInsert(3);
  // All referenced: the hand clears bits on the first lap, then takes 1.
  EXPECT_EQ(clock.Victim(), 1u);
  clock.OnEvict(1);
  clock.OnAccess(2);  // 2 referenced again.
  EXPECT_EQ(clock.Victim(), 3u);
}

TEST(ReplacementTest, ClockReusesDeadSlots) {
  ClockPolicy clock;
  clock.OnInsert(1);
  clock.OnEvict(1);
  clock.OnInsert(2);  // Should reuse slot of 1.
  EXPECT_EQ(clock.Victim(), 2u);
}

TEST(ReplacementTest, FifoIgnoresAccesses) {
  FifoPolicy fifo;
  fifo.OnInsert(1);
  fifo.OnInsert(2);
  fifo.OnAccess(1);
  EXPECT_EQ(fifo.Victim(), 1u);
}

TEST(ReplacementTest, FactoryProducesAllKinds) {
  EXPECT_EQ(MakeReplacementPolicy(ReplacementKind::kLru)->Name(), "LRU");
  EXPECT_EQ(MakeReplacementPolicy(ReplacementKind::kClock)->Name(), "CLOCK");
  EXPECT_EQ(MakeReplacementPolicy(ReplacementKind::kFifo)->Name(), "FIFO");
}

}  // namespace
}  // namespace rmp
