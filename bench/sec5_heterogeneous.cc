// §5 "Heterogeneous networks" (future work, implemented): a memory hierarchy
// with more than three levels. Two nearby workstations donate a little
// memory over the shared 10 Mbit/s Ethernet; a "supercomputer" donates an
// enormous amount over a dedicated 155 Mbit/s ATM link with higher setup
// latency. The client's most-free selection naturally prefers the big far
// host; round-robin spreads across tiers. FFT/24MB under NO_RELIABILITY
// (the paper notes a single giant host cannot support the redundancy
// policies — §5 — so no-reliability is the right policy here).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/no_reliability.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

struct Rig {
  std::vector<std::unique_ptr<MemoryServer>> servers;
  std::unique_ptr<NoReliabilityBackend> backend;
};

// near_capacity per near workstation; the far host holds everything.
Rig MakeRig(uint64_t near_capacity, uint64_t far_capacity, bool with_far,
            ServerSelection selection) {
  Rig rig;
  Cluster cluster;
  auto add = [&](const char* name, uint64_t capacity) {
    MemoryServerParams params;
    params.name = name;
    params.capacity_pages = capacity;
    rig.servers.push_back(std::make_unique<MemoryServer>(params));
    cluster.AddPeer(name, std::make_unique<InProcTransport>(rig.servers.back().get()));
  };
  add("near-0", near_capacity);
  add("near-1", near_capacity);
  if (with_far) {
    add("supercomputer", far_capacity);
  }
  auto fabric = std::make_shared<NetworkFabric>(PaperEthernet());
  if (with_far) {
    // Dedicated ATM-class link: 155 Mbit/s, 2 ms setup, same protocol cost.
    fabric->SetPeerLink(2, std::make_shared<IdealLinkModel>(155.0, Millis(2), Micros(1600)));
  }
  RemotePagerParams pager_params;
  pager_params.selection = selection;
  rig.backend = std::make_unique<NoReliabilityBackend>(std::move(cluster), fabric, pager_params);
  return rig;
}

double RunFft(Rig* rig) {
  const auto fft = MakeFft(24.0);
  RunConfig config;
  config.physical_frames = kPaperFrames;
  auto run = SimulateRun(*fft, rig->backend.get(), config);
  return run.ok() ? run->etime_s : -1.0;
}

int Main() {
  std::printf("=== §5 future work: heterogeneous networks / deeper memory hierarchy ===\n\n");
  const uint64_t fft_pages = PagesForBytes(MakeFft(24.0)->info().data_bytes) + 32;

  std::printf("%-44s %10s\n", "configuration", "FFT s");
  {
    Rig rig = MakeRig(fft_pages, 0, /*with_far=*/false, ServerSelection::kMostFree);
    std::printf("%-44s %10.2f\n", "2 near workstations (enough memory)", RunFft(&rig));
  }
  {
    Rig rig = MakeRig(fft_pages / 8, fft_pages, true, ServerSelection::kMostFree);
    const double etime = RunFft(&rig);
    std::printf("%-44s %10.2f\n", "small near tier + far supercomputer (ATM)", etime);
    std::printf("%-44s %10llu / %llu / %llu\n", "  pages near-0 / near-1 / far",
                (unsigned long long)rig.servers[0]->live_pages(),
                (unsigned long long)rig.servers[1]->live_pages(),
                (unsigned long long)rig.servers[2]->live_pages());
  }
  {
    Rig rig = MakeRig(fft_pages / 8, fft_pages, true, ServerSelection::kRoundRobin);
    std::printf("%-44s %10.2f\n", "same, round-robin selection", RunFft(&rig));
  }
  {
    Rig rig = MakeRig(1, fft_pages, true, ServerSelection::kMostFree);
    std::printf("%-44s %10.2f\n", "far supercomputer only", RunFft(&rig));
  }
  std::printf("\n(the dedicated 155 Mbit/s link beats the shared 10 Mbit/s Ethernet per\n"
              " page despite its 2 ms setup; most-free selection gravitates to the big\n"
              " far host exactly as §5 anticipates)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
