// Multiple independent clients paging against one shared server fleet. The
// paper notes that unlike file systems, paging clients "never share their
// swap spaces" (§6) — each client's pages must stay private and intact no
// matter how the other clients hammer the same servers.

#include <gtest/gtest.h>

#include "src/core/no_reliability.h"
#include "src/core/parity_logging.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

struct SharedFleet {
  explicit SharedFleet(int count, uint64_t capacity) {
    for (int i = 0; i < count; ++i) {
      MemoryServerParams params;
      params.name = "shared-" + std::to_string(i);
      params.capacity_pages = capacity;
      servers.push_back(std::make_unique<MemoryServer>(params));
    }
  }

  // Each client gets its OWN transports and Cluster over the same servers —
  // the paper's per-client server instances share the host's memory pool.
  Cluster MakeClusterView() {
    Cluster cluster;
    for (auto& server : servers) {
      cluster.AddPeer(server->name(), std::make_unique<InProcTransport>(server.get()));
    }
    return cluster;
  }

  std::vector<std::unique_ptr<MemoryServer>> servers;
};

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(MultiClientTest, TwoClientsSwapSpacesAreDisjoint) {
  SharedFleet fleet(2, 1024);
  RemotePagerParams params;
  params.alloc_extent_pages = 16;
  NoReliabilityBackend client_a(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(),
                                params);
  NoReliabilityBackend client_b(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(),
                                params);
  // Interleave writes of the SAME page ids with different contents.
  for (uint64_t p = 0; p < 50; ++p) {
    ASSERT_TRUE(client_a.PageOut(0, p, Patterned(1000 + p).span()).ok());
    ASSERT_TRUE(client_b.PageOut(0, p, Patterned(2000 + p).span()).ok());
  }
  PageBuffer in;
  for (uint64_t p = 0; p < 50; ++p) {
    ASSERT_TRUE(client_a.PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), 1000 + p)) << "client A page " << p;
    ASSERT_TRUE(client_b.PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), 2000 + p)) << "client B page " << p;
  }
}

TEST(MultiClientTest, OneClientFillingServersDeniesTheOtherGracefully) {
  SharedFleet fleet(1, 64);
  RemotePagerParams params;
  params.alloc_extent_pages = 8;
  NoReliabilityBackend hog(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(), params);
  NoReliabilityBackend victim(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(),
                              params);
  // The hog takes almost everything.
  for (uint64_t p = 0; p < 56; ++p) {
    ASSERT_TRUE(hog.PageOut(0, p, Patterned(p).span()).ok());
  }
  // The victim gets denials eventually but never corruption.
  uint64_t stored = 0;
  for (uint64_t p = 0; p < 32; ++p) {
    auto done = victim.PageOut(0, p, Patterned(500 + p).span());
    if (!done.ok()) {
      EXPECT_EQ(done.status().code(), ErrorCode::kNoSpace);
      break;
    }
    ++stored;
  }
  PageBuffer in;
  for (uint64_t p = 0; p < stored; ++p) {
    ASSERT_TRUE(victim.PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), 500 + p));
  }
  // And the hog's pages are untouched by the victim's traffic.
  for (uint64_t p = 0; p < 56; ++p) {
    ASSERT_TRUE(hog.PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(MultiClientTest, ParityClientsShareServersWithoutCrossTalk) {
  SharedFleet fleet(5, 1024);
  RemotePagerParams params;
  params.alloc_extent_pages = 16;
  ParityLoggingBackend client_a(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(),
                                params, /*parity_peer=*/4);
  ParityLoggingBackend client_b(fleet.MakeClusterView(), std::make_shared<NetworkFabric>(),
                                params, /*parity_peer=*/4);
  Rng rng(99);
  std::vector<uint64_t> seeds_a(40);
  std::vector<uint64_t> seeds_b(40);
  for (uint64_t p = 0; p < 40; ++p) {
    seeds_a[p] = rng.Next();
    seeds_b[p] = rng.Next();
    ASSERT_TRUE(client_a.PageOut(0, p, Patterned(seeds_a[p]).span()).ok());
    ASSERT_TRUE(client_b.PageOut(0, p, Patterned(seeds_b[p]).span()).ok());
  }
  // Crash a shared server: BOTH clients must recover their own pages.
  fleet.servers[1]->Crash();
  PageBuffer in;
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(client_a.PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), seeds_a[p]));
  }
  fleet.servers[1]->Restart();  // A fresh restart does not confuse B...
  fleet.servers[1]->Crash();    // ...which still sees the host as crashed.
  for (uint64_t p = 0; p < 40; ++p) {
    ASSERT_TRUE(client_b.PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), seeds_b[p]));
  }
  EXPECT_TRUE(client_a.CheckInvariants().ok());
  EXPECT_TRUE(client_b.CheckInvariants().ok());
}

}  // namespace
}  // namespace rmp
