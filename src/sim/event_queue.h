// Discrete-event simulation core.
//
// The packet-level Ethernet model (§4.6 reproduction) and the cluster-usage
// model (Fig. 1) run on this queue. Events at equal timestamps fire in
// scheduling order (a monotonic sequence number breaks ties), so runs are
// fully deterministic.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/units.h"

namespace rmp {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  TimeNs now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

  // Schedules `fn` at absolute time `when`; `when` must not be in the past.
  void ScheduleAt(TimeNs when, Callback fn);

  // Schedules `fn` after `delay` from now.
  void ScheduleAfter(DurationNs delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Pops and runs the earliest event, advancing the clock to its timestamp.
  // Returns false when the queue is empty.
  bool Step();

  // Runs until the queue drains.
  void RunUntilEmpty();

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` even if idle.
  void RunUntil(TimeNs deadline);

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace rmp

#endif  // SRC_SIM_EVENT_QUEUE_H_
