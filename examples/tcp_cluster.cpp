// Real-socket cluster: four memory servers listen on loopback TCP ports
// (each one the paper's user-level server, §3.2); the paging client builds
// its Cluster over TcpTransport connections and runs the PARITY_LOGGING
// policy over actual sockets — encode, frame, send, decode, CRC and all.
// Finally one server process is shut down and the client recovers.
//
//   $ ./tcp_cluster

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/parity_logging.h"
#include "src/server/memory_server.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

struct ServerNode {
  std::shared_ptr<MemoryServer> server;
  std::unique_ptr<TcpServer> listener;
};

struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

int Main() {
  constexpr int kServers = 5;  // 4 data + 1 parity.
  constexpr uint64_t kPages = 400;

  // Start the server fleet. In the paper these are idle workstations; here
  // they are loopback listeners, one ephemeral port each — the registry
  // "common file" of §2.1 would list these host:port pairs.
  std::vector<ServerNode> fleet;
  for (int i = 0; i < kServers; ++i) {
    ServerNode node;
    MemoryServerParams params;
    params.name = "ws" + std::to_string(i);
    params.capacity_pages = 1024;
    node.server = std::make_shared<MemoryServer>(params);
    auto listener = TcpServer::Start(0, [server = node.server] {
      return std::unique_ptr<MessageHandler>(new ForwardingHandler(server));
    });
    if (!listener.ok()) {
      std::fprintf(stderr, "listen: %s\n", listener.status().ToString().c_str());
      return 1;
    }
    node.listener = std::move(*listener);
    std::printf("memory server %s listening on 127.0.0.1:%u\n", params.name.c_str(),
                node.listener->port());
    fleet.push_back(std::move(node));
  }

  // The client connects to every registered server.
  Cluster cluster;
  for (int i = 0; i < kServers; ++i) {
    auto transport = TcpTransport::Connect("127.0.0.1", fleet[i].listener->port());
    if (!transport.ok()) {
      std::fprintf(stderr, "connect: %s\n", transport.status().ToString().c_str());
      return 1;
    }
    cluster.AddPeer("ws" + std::to_string(i), std::move(*transport));
  }
  // No timing model: this run is measured on the wall clock.
  ParityLoggingBackend pager(std::move(cluster), std::make_shared<NetworkFabric>(),
                             RemotePagerParams{}, /*parity_peer=*/4);

  std::printf("\npaging %llu pages out over real TCP...\n", (unsigned long long)kPages);
  PageBuffer page;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t p = 0; p < kPages; ++p) {
    FillPattern(page.span(), p);
    auto done = pager.PageOut(0, p, page.span());
    if (!done.ok()) {
      std::fprintf(stderr, "pageout %llu: %s\n", (unsigned long long)p,
                   done.status().ToString().c_str());
      return 1;
    }
  }
  const auto mid = std::chrono::steady_clock::now();
  for (uint64_t p = 0; p < kPages; ++p) {
    auto done = pager.PageIn(0, p, page.span());
    if (!done.ok() || !CheckPattern(page.span(), p)) {
      std::fprintf(stderr, "pagein %llu failed or corrupt\n", (unsigned long long)p);
      return 1;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double out_s = std::chrono::duration<double>(mid - start).count();
  const double in_s = std::chrono::duration<double>(end - mid).count();
  std::printf("  pageout: %.1f MB in %.3f s (%.1f MB/s over loopback)\n",
              kPages * kPageSize / 1e6, out_s, kPages * kPageSize / 1e6 / out_s);
  std::printf("  pagein : %.1f MB in %.3f s (%.1f MB/s)\n", kPages * kPageSize / 1e6, in_s,
              kPages * kPageSize / 1e6 / in_s);

  // Kill one server process for real and recover over the sockets.
  std::printf("\nshutting down ws1 and recovering from parity...\n");
  fleet[1].server->Crash();
  fleet[1].listener->Shutdown();
  int verified = 0;
  for (uint64_t p = 0; p < kPages; ++p) {
    auto done = pager.PageIn(0, p, page.span());
    if (!done.ok()) {
      std::fprintf(stderr, "post-crash pagein %llu: %s\n", (unsigned long long)p,
                   done.status().ToString().c_str());
      return 1;
    }
    if (CheckPattern(page.span(), p)) {
      ++verified;
    }
  }
  std::printf("  verified %d/%llu pages after the crash.\n", verified,
              (unsigned long long)kPages);
  for (auto& node : fleet) {
    node.listener->Shutdown();
  }
  return verified == static_cast<int>(kPages) ? 0 : 1;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
