#include "src/sim/resource.h"

#include <algorithm>
#include <cassert>

namespace rmp {

TimeNs Resource::Serve(TimeNs start, DurationNs service) {
  assert(service >= 0);
  const TimeNs begin = std::max(start, busy_until_);
  queue_delay_.Add(ToMillis(begin - start));
  busy_until_ = begin + service;
  busy_time_ += service;
  ++requests_;
  return busy_until_;
}

void Resource::Reset() {
  busy_until_ = 0;
  busy_time_ = 0;
  requests_ = 0;
  queue_delay_.Reset();
}

}  // namespace rmp
