// Token-ring timing model.
//
// §4.6 of the paper argues that the loaded-network throughput collapse is a
// property of CSMA/CD, not of remote paging: "it is still beneficial to use
// remote memory paging over networks that employ other technologies (e.g.
// token ring)". A token ring degrades gracefully — each of k active stations
// gets ~1/k of the capacity minus a small token-rotation overhead, with no
// collision losses — so per-station goodput never collapses.

#ifndef SRC_NET_TOKEN_RING_MODEL_H_
#define SRC_NET_TOKEN_RING_MODEL_H_

#include <cstdint>
#include <string>

#include "src/net/network_model.h"
#include "src/util/units.h"

namespace rmp {

struct TokenRingParams {
  double bandwidth_mbps = 10.0;
  uint32_t mtu_payload_bytes = 4096;      // Token ring allows larger frames.
  uint32_t frame_overhead_bytes = 29;
  DurationNs token_walk_time = Micros(30);  // Ring latency per rotation.
  DurationNs per_frame_host_cost = Micros(200);
  DurationNs protocol_time = Micros(1600);
  int background_stations = 0;
};

class TokenRingModel final : public NetworkModel {
 public:
  explicit TokenRingModel(const TokenRingParams& params = TokenRingParams());

  DurationNs TransferTime(uint64_t bytes) const override;
  DurationNs ProtocolTime() const override { return params_.protocol_time; }
  double EffectiveBandwidthMbps() const override;
  std::string Name() const override;

  // Efficiency of the ring with `stations` active stations. Near 1 and
  // monotonically *increasing* with load (the token wastes less idle time).
  double RingEfficiency(int stations) const;

  const TokenRingParams& params() const { return params_; }

 private:
  TokenRingParams params_;
};

}  // namespace rmp

#endif  // SRC_NET_TOKEN_RING_MODEL_H_
