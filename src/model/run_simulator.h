// Drives one application run: workload -> PagedVm -> PagingBackend on the
// simulated clock, and produces the paper's measurement decomposition
// (§4.3): etime = utime + systime + inittime + ptime.

#ifndef SRC_MODEL_RUN_SIMULATOR_H_
#define SRC_MODEL_RUN_SIMULATOR_H_

#include <string>

#include "src/core/paging_backend.h"
#include "src/vm/paged_vm.h"
#include "src/workloads/workload.h"

namespace rmp {

struct RunConfig {
  // Physical frames available to the application. The paper's DEC Alpha
  // 3000/300 had 32 MB; ~18 MB of it was usable by the application (the FFT
  // of Fig. 3 starts paging just above an 18 MB input).
  uint32_t physical_frames = 2304;
  ReplacementKind replacement = ReplacementKind::kLru;
};

struct RunResult {
  std::string workload;
  std::string policy;
  double etime_s = 0.0;     // Completion (elapsed) time.
  double utime_s = 0.0;     // User compute.
  double systime_s = 0.0;   // System time.
  double inittime_s = 0.0;  // Startup.
  double ptime_s = 0.0;     // Page-transfer time: etime - u - sys - init.
  VmStats vm;
  BackendStats backend;
};

// Runs `workload` against `backend` with a fresh VM. The backend keeps its
// state across calls (callers construct one per run unless they are
// deliberately studying residual state).
Result<RunResult> SimulateRun(const Workload& workload, PagingBackend* backend,
                              const RunConfig& config);

// Pretty row for bench output: "GAUSS  NO_RELIABILITY  40.62s (u=.. p=..)".
std::string FormatRunResult(const RunResult& result);

}  // namespace rmp

#endif  // SRC_MODEL_RUN_SIMULATOR_H_
