// Real file-backed page store: the functional half of the local swap
// partition. The pager's DISK and WRITE_THROUGH configurations store actual
// page bytes here (via pread/pwrite at slot offsets), so data integrity is
// end-to-end testable; the DiskModel supplies the RZ55 timing.

#ifndef SRC_DISK_DISK_STORE_H_
#define SRC_DISK_DISK_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"

namespace rmp {

class DiskStore {
 public:
  // Creates a store of `blocks` page slots backed by an unlinked temporary
  // file under `dir` ("" uses $TMPDIR or /tmp).
  static Result<DiskStore> Create(uint64_t blocks, const std::string& dir = "");

  DiskStore(DiskStore&& other) noexcept;
  DiskStore& operator=(DiskStore&& other) noexcept;
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;
  ~DiskStore();

  // Writes one page at `block`. The span must be exactly kPageSize bytes.
  Status Write(uint64_t block, std::span<const uint8_t> page);

  // Reads one page at `block` into `out` (exactly kPageSize bytes).
  Status Read(uint64_t block, std::span<uint8_t> out) const;

  // Slot allocation: returns the first block of a contiguous run of `count`
  // slots. Allocation is bump-first (mimicking a swap partition filling in
  // pageout order) with a free list for reuse.
  Result<uint64_t> Allocate(uint64_t count);
  Status Free(uint64_t block, uint64_t count);

  uint64_t blocks() const { return blocks_; }
  uint64_t allocated_blocks() const { return allocated_; }

 private:
  DiskStore(int fd, uint64_t blocks) : fd_(fd), blocks_(blocks) {}

  int fd_ = -1;
  uint64_t blocks_ = 0;
  uint64_t bump_ = 0;       // Next never-used block.
  uint64_t allocated_ = 0;  // Currently live blocks.
  // Free runs as (start, count), kept sorted and coalesced.
  std::vector<std::pair<uint64_t, uint64_t>> free_runs_;
};

}  // namespace rmp

#endif  // SRC_DISK_DISK_STORE_H_
