// Conformance tests for the fault-injection subsystem and the client-side
// failure detector it exercises.
//
// Layer 1 pins the per-kind semantics of FaultInjectingTransport against a
// bare MemoryServer: which faults leave the op applied (drop-reply,
// crash-after-apply, over-deadline delay), which leave it unapplied
// (drop-request, corrupt, crash-before-apply), and which perturb only
// delivery (delay, duplicate, disconnect). Layer 2 pins FaultPlan's
// determinism: the same seed must replay the same fault interleaving.
// Layer 3 drives whole Testbed policies through faulted transports and
// asserts the failure detector's observable behavior — retries, failovers,
// the UNAVAILABLE-vs-DATA_LOSS taxonomy — including the BatchFetch
// partial-failure regression (a retried chunk must not re-fetch chunks that
// already succeeded).

#include "src/transport/fault_injection.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/remote_pager.h"
#include "src/core/testbed.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"
#include "src/util/units.h"

namespace rmp {
namespace {

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

// --- Layer 1: wrapper semantics against a bare server ----------------------

class FaultTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryServerParams params;
    params.name = "victim";
    params.capacity_pages = 64;
    server_ = std::make_unique<MemoryServer>(params);
    fault_ = std::make_unique<FaultInjectingTransport>(
        std::make_unique<InProcTransport>(server_.get()));
    auto first = server_->Allocate(16);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    slot_ = *first;
  }

  std::shared_ptr<FaultPlan> InstallOne(FaultRule rule, uint64_t seed = 7) {
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->AddRule(rule);
    fault_->InstallPlan(plan);
    return plan;
  }

  Result<Message> PageOutVia(uint64_t seed) {
    return fault_->Call(MakePageOut(++request_id_, slot_, Patterned(seed).span()));
  }

  std::unique_ptr<MemoryServer> server_;
  std::unique_ptr<FaultInjectingTransport> fault_;
  uint64_t slot_ = 0;
  uint64_t request_id_ = 100;
};

TEST_F(FaultTransportTest, TransparentWithoutPlan) {
  ASSERT_TRUE(PageOutVia(1).ok());
  auto in = fault_->Call(MakePageIn(1, slot_));
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(in->payload), 1));
  EXPECT_EQ(fault_->fault_stats().total(), 0);
  EXPECT_FALSE(fault_->has_plan());
}

TEST_F(FaultTransportTest, DropRequestLeavesOpUnapplied) {
  InstallOne({.kind = FaultKind::kDropRequest, .at_op = 0, .only_type = MessageType::kPageOut});
  auto reply = PageOutVia(1);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  // The request never reached the server, but the connection is intact.
  EXPECT_FALSE(server_->Holds(slot_));
  EXPECT_EQ(server_->stats().pageouts_served.load(), 0);
  EXPECT_TRUE(fault_->connected());
  EXPECT_EQ(fault_->fault_stats().count(FaultKind::kDropRequest), 1);
  // The rule is exhausted (repeat = 1): the retry goes through.
  ASSERT_TRUE(PageOutVia(1).ok());
  EXPECT_TRUE(server_->Holds(slot_));
}

TEST_F(FaultTransportTest, DropReplyAppliesOpServerSide) {
  InstallOne({.kind = FaultKind::kDropReply, .at_op = 0, .only_type = MessageType::kPageOut});
  auto reply = PageOutVia(9);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  // The classic ambiguous outcome: the ack vanished but the pageout landed.
  ASSERT_TRUE(server_->Holds(slot_));
  auto stored = server_->Load(slot_);
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(CheckPattern(stored->span(), 9));
}

TEST_F(FaultTransportTest, DelayUnderDeadlineDelivers) {
  fault_->set_rpc_deadline(Millis(10));
  InstallOne({.kind = FaultKind::kDelay,
              .at_op = 0,
              .only_type = MessageType::kPageOut,
              .delay = Millis(2)});
  ASSERT_TRUE(PageOutVia(3).ok());
  EXPECT_EQ(fault_->injected_delay(), Millis(2));
  EXPECT_TRUE(server_->Holds(slot_));
}

TEST_F(FaultTransportTest, DelayPastDeadlineTimesOutWithOpApplied) {
  fault_->set_rpc_deadline(Millis(1));
  InstallOne({.kind = FaultKind::kDelay,
              .at_op = 0,
              .only_type = MessageType::kPageOut,
              .delay = Millis(5)});
  auto reply = PageOutVia(4);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  // A timeout is indistinguishable from a lost ack: the op applied.
  EXPECT_TRUE(server_->Holds(slot_));
}

TEST_F(FaultTransportTest, DuplicateDeliversRequestTwice) {
  InstallOne({.kind = FaultKind::kDuplicate, .at_op = 0, .only_type = MessageType::kPageOut});
  ASSERT_TRUE(PageOutVia(5).ok());
  // The retransmit hit the server as a second, idempotent store.
  EXPECT_EQ(server_->stats().pageouts_served.load(), 2);
  auto stored = server_->Load(slot_);
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(CheckPattern(stored->span(), 5));
}

TEST_F(FaultTransportTest, CorruptPayloadCaughtByWireCrc) {
  InstallOne({.kind = FaultKind::kCorruptPayload, .at_op = 0,
              .only_type = MessageType::kPageOut});
  auto reply = PageOutVia(6);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kCorruption);
  // The CRC rejected the frame before it could apply.
  EXPECT_FALSE(server_->Holds(slot_));
  EXPECT_EQ(server_->stats().pageouts_served.load(), 0);
}

TEST_F(FaultTransportTest, CorruptHeaderOnEmptyPayloadIsProtocolError) {
  // A pagein request carries no payload, so the flip lands in the header.
  InstallOne({.kind = FaultKind::kCorruptPayload, .at_op = 0,
              .only_type = MessageType::kPageIn});
  auto reply = fault_->Call(MakePageIn(1, slot_));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kProtocol);
}

TEST_F(FaultTransportTest, DisconnectPersistsUntilReconnect) {
  InstallOne({.kind = FaultKind::kDisconnect, .at_op = 0});
  ASSERT_FALSE(PageOutVia(1).ok());
  EXPECT_FALSE(fault_->connected());
  // Every subsequent call short-circuits; the server process is untouched.
  auto reply = fault_->Call(MakeLoadQuery(1));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(server_->crashed());
  fault_->Reconnect();
  EXPECT_TRUE(fault_->connected());
  ASSERT_TRUE(PageOutVia(1).ok());
}

TEST_F(FaultTransportTest, CrashBeforeApplyFiresHookWithoutDelivery) {
  int hook_calls = 0;
  fault_->SetCrashHook([&hook_calls] { ++hook_calls; });
  InstallOne({.kind = FaultKind::kCrashBeforeApply, .at_op = 0,
              .only_type = MessageType::kPageOut});
  auto reply = PageOutVia(1);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(hook_calls, 1);
  // The workstation died before the request could apply.
  EXPECT_FALSE(server_->Holds(slot_));
  EXPECT_EQ(server_->stats().pageouts_served.load(), 0);
}

TEST_F(FaultTransportTest, CrashAfterApplyFiresHookWithOpApplied) {
  int hook_calls = 0;
  fault_->SetCrashHook([&hook_calls] { ++hook_calls; });
  InstallOne({.kind = FaultKind::kCrashAfterApply, .at_op = 0,
              .only_type = MessageType::kPageOut});
  auto reply = PageOutVia(2);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(hook_calls, 1);
  // The pageout landed; only the reply died with the workstation.
  EXPECT_TRUE(server_->Holds(slot_));
}

TEST_F(FaultTransportTest, ClockGatesTimeTriggeredRules) {
  TimeNs sim_now = 0;
  fault_->SetClock([&sim_now] { return sim_now; });
  InstallOne({.kind = FaultKind::kDropRequest, .at_time = Millis(5),
              .only_type = MessageType::kPageOut});
  ASSERT_TRUE(PageOutVia(1).ok());  // Before the trigger time: clean.
  sim_now = Millis(5);
  ASSERT_FALSE(PageOutVia(1).ok());  // At the trigger time: fires.
}

TEST(FaultKindNameTest, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kCrashAfterApply); ++k) {
    EXPECT_FALSE(FaultKindName(static_cast<FaultKind>(k)).empty()) << k;
  }
}

// --- Layer 2: plan determinism ---------------------------------------------

std::vector<FaultKind> DecideSequence(FaultPlan* plan, int ops) {
  std::vector<FaultKind> kinds;
  PageBuffer page;
  for (int i = 0; i < ops; ++i) {
    const Message request = (i % 2 == 0)
                                ? MakePageOut(static_cast<uint64_t>(i), 0, page.span())
                                : MakePageIn(static_cast<uint64_t>(i), 0);
    kinds.push_back(plan->Decide(request, 0, nullptr));
  }
  return kinds;
}

TEST(FaultPlanTest, SameSeedSameInterleaving) {
  FaultRule rule{.kind = FaultKind::kDropRequest, .probability = 0.3, .repeat = -1};
  FaultPlan a(42);
  FaultPlan b(42);
  a.AddRule(rule);
  b.AddRule(rule);
  const auto seq_a = DecideSequence(&a, 200);
  const auto seq_b = DecideSequence(&b, 200);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_GT(a.faults_fired(), 0);
  EXPECT_EQ(a.faults_fired(), b.faults_fired());
  EXPECT_EQ(a.ops_seen(), 200);
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultRule rule{.kind = FaultKind::kDropRequest, .probability = 0.3, .repeat = -1};
  FaultPlan a(1);
  FaultPlan b(2);
  a.AddRule(rule);
  b.AddRule(rule);
  EXPECT_NE(DecideSequence(&a, 200), DecideSequence(&b, 200));
}

TEST(FaultPlanTest, AtOpCountsOnlyMatchingOperations) {
  FaultPlan plan(1);
  plan.AddRule({.kind = FaultKind::kDropRequest, .at_op = 1,
                .only_type = MessageType::kPageOut});
  PageBuffer page;
  // PageIns do not advance the rule's match counter.
  EXPECT_EQ(plan.Decide(MakePageIn(1, 0), 0, nullptr), FaultKind::kNone);
  EXPECT_EQ(plan.Decide(MakePageOut(2, 0, page.span()), 0, nullptr), FaultKind::kNone);
  EXPECT_EQ(plan.Decide(MakePageIn(3, 0), 0, nullptr), FaultKind::kNone);
  // Second matching pageout: fires.
  EXPECT_EQ(plan.Decide(MakePageOut(4, 0, page.span()), 0, nullptr),
            FaultKind::kDropRequest);
  EXPECT_EQ(plan.Decide(MakePageOut(5, 0, page.span()), 0, nullptr), FaultKind::kNone);
}

TEST(FaultPlanTest, RepeatBoundsFirings) {
  FaultPlan plan(1);
  plan.AddRule({.kind = FaultKind::kDropReply, .probability = 1.0, .repeat = 2});
  PageBuffer page;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (plan.Decide(MakePageOut(static_cast<uint64_t>(i), 0, page.span()), 0, nullptr) !=
        FaultKind::kNone) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(plan.faults_fired(), 2);
}

TEST(FaultPlanTest, AtTimeTriggersAtOrAfterDeadline) {
  FaultPlan plan(1);
  plan.AddRule({.kind = FaultKind::kDisconnect, .at_time = Millis(3)});
  PageBuffer page;
  EXPECT_EQ(plan.Decide(MakePageOut(1, 0, page.span()), Millis(2), nullptr), FaultKind::kNone);
  EXPECT_EQ(plan.Decide(MakePageOut(2, 0, page.span()), Millis(3), nullptr),
            FaultKind::kDisconnect);
}

// --- Layer 3: failure detector through the Testbed --------------------------

std::unique_ptr<Testbed> MakeBed(Policy policy, int servers, uint64_t capacity = 512) {
  TestbedParams params;
  params.policy = policy;
  params.data_servers = servers;
  params.server_capacity_pages = capacity;
  params.pager.alloc_extent_pages = 8;
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

TEST(FailureDetectorTest, RetryRecoversFromDroppedAck) {
  auto bed = MakeBed(Policy::kMirroring, 2);
  auto plan = std::make_shared<FaultPlan>(11);
  plan->AddRule({.kind = FaultKind::kDropReply, .at_op = 0,
                 .only_type = MessageType::kPageOut});
  bed->InstallFaultPlan(0, plan);
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  // The lost ack cost exactly one retry (plus its backoff), not a failure.
  EXPECT_GE(bed->backend().stats().retries, 1);
  EXPECT_GT(bed->backend().stats().backoff_time, 0);
  PageBuffer out;
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(bed->backend().PageIn(0, p, out.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(out.span(), p)) << p;
  }
}

TEST(FailureDetectorTest, TransientDropStormSurvivesUnderRetries) {
  auto bed = MakeBed(Policy::kMirroring, 2);
  // One pageout ack in five goes missing — transient each time, so the
  // detector's bounded retries must absorb the storm without data loss. The
  // plan object is shared by both transports: one seeded RNG orders the
  // faults across peers, keeping the whole storm reproducible.
  auto plan = std::make_shared<FaultPlan>(1234);
  plan->AddRule({.kind = FaultKind::kDropReply, .probability = 0.2,
                 .only_type = MessageType::kPageOut, .repeat = -1});
  bed->InstallFaultPlan(0, plan);
  bed->InstallFaultPlan(1, plan);
  for (uint64_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  PageBuffer out;
  for (uint64_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(bed->backend().PageIn(0, p, out.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(out.span(), p)) << p;
  }
  EXPECT_GE(bed->backend().stats().retries, 1);
}

TEST(FailureDetectorTest, MirroringFailoverCountsNonPrimaryReads) {
  // With two servers each page has its primary copy on one of them, so
  // summing over both crash victims counts every page exactly once.
  int64_t total_failovers = 0;
  for (size_t victim : {0u, 1u}) {
    auto bed = MakeBed(Policy::kMirroring, 2);
    for (uint64_t p = 0; p < 16; ++p) {
      ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
    }
    bed->CrashServer(victim);
    PageBuffer out;
    for (uint64_t p = 0; p < 16; ++p) {
      ASSERT_TRUE(bed->backend().PageIn(0, p, out.span()).ok()) << p;
      EXPECT_TRUE(CheckPattern(out.span(), p)) << p;
    }
    total_failovers += bed->backend().stats().failovers;
  }
  EXPECT_EQ(total_failovers, 16);
}

TEST(FailureDetectorTest, BothReplicasGoneIsDataLossNotUnavailable) {
  auto bed = MakeBed(Policy::kMirroring, 2);
  ASSERT_TRUE(bed->backend().PageOut(0, 7, Patterned(7).span()).ok());
  bed->CrashServer(0);
  bed->CrashServer(1);
  PageBuffer out;
  auto done = bed->backend().PageIn(0, 7, out.span());
  ASSERT_FALSE(done.ok());
  // Permanent loss gets its own verdict: retrying cannot help.
  EXPECT_EQ(done.status().code(), ErrorCode::kDataLoss);
}

TEST(FailureDetectorTest, NoReliabilityReportsDataLossOnCrash) {
  auto bed = MakeBed(Policy::kNoReliability, 2);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  bed->CrashServer(0);
  bed->CrashServer(1);
  PageBuffer out;
  auto done = bed->backend().PageIn(0, 0, out.span());
  ASSERT_FALSE(done.ok());
  EXPECT_EQ(done.status().code(), ErrorCode::kDataLoss);
}

TEST(FailureDetectorTest, PlanDrivenCrashBehavesLikeExplicitCrash) {
  // Three servers: after the plan kills one mid-workload, mirroring still
  // has two distinct servers for repairs and fresh pages.
  auto bed = MakeBed(Policy::kMirroring, 3);
  auto plan = std::make_shared<FaultPlan>(3);
  plan->AddRule({.kind = FaultKind::kCrashAfterApply, .at_op = 4,
                 .only_type = MessageType::kPageOut});
  bed->InstallFaultPlan(0, plan);
  for (uint64_t p = 0; p < 12; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  // The wrapper's crash hook took server 0 down mid-workload...
  EXPECT_TRUE(bed->server(0).crashed());
  EXPECT_FALSE(bed->fault(0).connected());
  // ...and mirroring kept every page readable from the surviving replica.
  PageBuffer out;
  for (uint64_t p = 0; p < 12; ++p) {
    ASSERT_TRUE(bed->backend().PageIn(0, p, out.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(out.span(), p)) << p;
  }
}

// --- BatchFetch partial-failure regression (the chunk-retry fix) -----------

// Exposes the protected BatchFetch for direct testing.
class BatchFetchProbe : public RemotePagerBase {
 public:
  BatchFetchProbe(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                  const RemotePagerParams& params)
      : RemotePagerBase(std::move(cluster), std::move(fabric), params) {}

  Result<TimeNs> PageOut(TimeNs, uint64_t, std::span<const uint8_t>) override {
    return InternalError("probe: unused");
  }
  Result<TimeNs> PageIn(TimeNs, uint64_t, std::span<uint8_t>) override {
    return InternalError("probe: unused");
  }
  std::string Name() const override { return "batch-fetch-probe"; }

  using RemotePagerBase::BatchFetch;
  using RemotePagerBase::PageWant;
};

struct BatchFetchRig {
  std::vector<std::unique_ptr<MemoryServer>> servers;
  std::vector<FaultInjectingTransport*> faults;
  std::unique_ptr<BatchFetchProbe> probe;
  std::vector<BatchFetchProbe::PageWant> wants;
};

// Two servers, `per_server` patterned pages each; wants interleave peers.
BatchFetchRig MakeBatchFetchRig(size_t per_server) {
  BatchFetchRig rig;
  Cluster cluster;
  for (size_t s = 0; s < 2; ++s) {
    MemoryServerParams params;
    params.name = "server-" + std::to_string(s);
    params.capacity_pages = 256;
    rig.servers.push_back(std::make_unique<MemoryServer>(params));
    auto fault = std::make_unique<FaultInjectingTransport>(
        std::make_unique<InProcTransport>(rig.servers.back().get()));
    rig.faults.push_back(fault.get());
    cluster.AddPeer(params.name, std::move(fault));
  }
  for (size_t s = 0; s < 2; ++s) {
    auto first = rig.servers[s]->Allocate(per_server);
    EXPECT_TRUE(first.ok());
    for (size_t i = 0; i < per_server; ++i) {
      const uint64_t slot = *first + i;
      EXPECT_TRUE(rig.servers[s]->Store(slot, Patterned(s * 1000 + i).span()).ok());
      rig.wants.push_back({.peer = s, .slot = slot});
    }
  }
  rig.probe = std::make_unique<BatchFetchProbe>(
      std::move(cluster), std::make_shared<NetworkFabric>(), RemotePagerParams());
  return rig;
}

TEST(BatchFetchRetryTest, FailedChunkRetriesWithoutRefetchingSucceededChunks) {
  auto rig = MakeBatchFetchRig(6);
  // Peer 1's first PAGEIN_BATCH loses its reply; the chunk must be retried
  // against peer 1 alone.
  auto plan = std::make_shared<FaultPlan>(21);
  plan->AddRule({.kind = FaultKind::kDropReply, .at_op = 0,
                 .only_type = MessageType::kPageInBatch});
  rig.faults[1]->InstallPlan(plan);

  std::vector<PageBuffer> out;
  TimeNs now = 0;
  ASSERT_TRUE(rig.probe->BatchFetch(rig.wants, &out, &now).ok());

  // The regression this pins: before the chunk-retry fix a partial failure
  // re-issued the whole fetch, double-applying peer 0's batch.
  EXPECT_EQ(rig.servers[0]->stats().batch_requests.load(), 1);
  EXPECT_EQ(rig.servers[1]->stats().batch_requests.load(), 2);  // Original + retry.
  EXPECT_GE(rig.probe->stats().retries, 1);
  ASSERT_EQ(out.size(), rig.wants.size());
  for (size_t i = 0; i < rig.wants.size(); ++i) {
    EXPECT_TRUE(CheckPattern(out[i].span(), rig.wants[i].peer * 1000 + (i % 6))) << i;
  }
}

TEST(BatchFetchRetryTest, ExhaustedRetriesFailTheChunkButKeepOthersSingleCharged) {
  auto rig = MakeBatchFetchRig(4);
  // Peer 1 drops every batch reply: the chunk fails after bounded retries.
  auto plan = std::make_shared<FaultPlan>(22);
  plan->AddRule({.kind = FaultKind::kDropReply, .probability = 1.0,
                 .only_type = MessageType::kPageInBatch, .repeat = -1});
  rig.faults[1]->InstallPlan(plan);

  std::vector<PageBuffer> out;
  TimeNs now = 0;
  const Status status = rig.probe->BatchFetch(rig.wants, &out, &now);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  // Peer 0's chunk was fetched exactly once and its pages survive.
  EXPECT_EQ(rig.servers[0]->stats().batch_requests.load(), 1);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(CheckPattern(out[i].span(), i)) << i;
  }
  // Bounded: first try + (max_attempts - 1) retries, then give up.
  const int max_attempts = RemotePagerParams().retry.max_attempts;
  EXPECT_EQ(rig.servers[1]->stats().batch_requests.load(), max_attempts);
  EXPECT_EQ(rig.probe->stats().retries, max_attempts - 1);
}

// --- RestartServer must reset per-server stats (the stale-counter fix) -----

TEST(TestbedRestartTest, RestartServerResetsPerServerStats) {
  auto bed = MakeBed(Policy::kMirroring, 2);
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  ASSERT_GT(bed->server(0).stats().pageouts_served.load(), 0);
  ASSERT_GT(bed->server(0).stats().allocations.load(), 0);
  ASSERT_GT(bed->server(0).stats().bytes_stored.load(), 0u);
  bed->CrashServer(0);
  bed->RestartServer(0);
  // A restarted workstation starts from a clean slate.
  const MemoryServerStats& stats = bed->server(0).stats();
  EXPECT_EQ(stats.pageouts_served.load(), 0);
  EXPECT_EQ(stats.pageins_served.load(), 0);
  EXPECT_EQ(stats.batch_requests.load(), 0);
  EXPECT_EQ(stats.allocations.load(), 0);
  EXPECT_EQ(stats.denials.load(), 0);
  EXPECT_EQ(stats.bytes_stored.load(), 0u);
  EXPECT_EQ(stats.bytes_returned.load(), 0u);
  EXPECT_TRUE(bed->fault(0).connected());
}

// --- RPC deadline over real sockets ----------------------------------------

struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server)
      : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

TEST(RpcDeadlineTest, WaitForTimesOutThenDeliversLate) {
  auto server = std::make_shared<MemoryServer>();
  auto started = TcpServer::Start(0, [server]() -> std::unique_ptr<MessageHandler> {
    return std::make_unique<ForwardingHandler>(server);
  });
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  auto client = TcpTransport::Connect("127.0.0.1", (*started)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto alloc = (*client)->Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  FillPattern(page.span(), 77);
  ASSERT_TRUE((*client)->Call(MakePageOut(2, alloc->slot, page.span())).ok());

  // The server sits on this slot for 100 ms; a 5 ms deadline must expire
  // first, and the same future must still deliver the late reply.
  server->SetSlotDelayForTest(alloc->slot, 100 * 1000);
  RpcFuture future = (*client)->CallAsync(MakePageIn(3, alloc->slot));
  auto timed_out = future.WaitFor(Millis(5));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), ErrorCode::kUnavailable);
  auto late = future.Wait();
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(late->payload), 77));
}

}  // namespace
}  // namespace rmp
