// §4.5: using busy workstations as memory servers.
//
// The paper ran the Fig. 2 applications against servers hosting (a) an
// interactive X + vi session and (b) a cpu-bound while(1) competitor, and
// found completion times within ~1 s (FFT, GAUSS, MVEC) and within 7%
// (QSORT). The server-side effect is scheduling latency added to each
// request; the server CPU consumed by paging itself stayed under 15%.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/delayed_model.h"

namespace rmp {
namespace {

struct Scenario {
  const char* label;
  DurationNs per_request_delay;
};

int Main() {
  std::printf("=== §4.5: paging against busy server workstations ===\n\n");
  const Scenario scenarios[] = {
      {"idle server", 0},
      {"X + vi session", Micros(150)},
      {"cpu-bound while(1)", Micros(900)},
  };
  const char* names[] = {"FFT", "GAUSS", "MVEC", "QSORT"};
  for (const char* name : names) {
    auto workload = MakeWorkloadByName(name);
    if (!workload.ok()) {
      continue;
    }
    double idle_etime = 0.0;
    for (const Scenario& scenario : scenarios) {
      PolicyRunConfig config;
      config.policy = Policy::kNoReliability;
      config.data_servers = 2;
      config.network =
          std::make_shared<DelayedNetworkModel>(PaperEthernet(), scenario.per_request_delay);
      auto run = RunWorkloadUnderPolicy(**workload, config);
      if (!run.ok()) {
        std::printf("%-6s %-20s FAILED: %s\n", name, scenario.label,
                    run.status().ToString().c_str());
        continue;
      }
      if (scenario.per_request_delay == 0) {
        idle_etime = run->etime_s;
        std::printf("%-6s %-20s etime %8.2f s\n", name, scenario.label, run->etime_s);
      } else {
        std::printf("%-6s %-20s etime %8.2f s   (+%.2f s, +%.1f%%)\n", name, scenario.label,
                    run->etime_s, run->etime_s - idle_etime,
                    (run->etime_s / idle_etime - 1.0) * 100.0);
      }
      // Server CPU spent serving this client: ~protocol time per transfer
      // on the server side too.
      const double server_cpu_s =
          static_cast<double>(run->backend.page_transfers) * 0.0016;
      std::printf("       server CPU for paging: %.1f s over %.1f s elapsed = %.1f%% "
                  "(paper: always < 15%%)\n",
                  server_cpu_s, run->etime_s, server_cpu_s / run->etime_s * 100.0);
    }
    std::printf("\n");
  }
  std::printf("paper: FFT/GAUSS/MVEC within ~1 s of idle; QSORT within 7%%.\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
