// Streaming statistics accumulators used by the benchmark harness and the
// server load monitor: running mean/min/max/stddev plus a fixed-bucket
// histogram for latency distributions.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rmp {

// Welford running moments. Add samples; read count/mean/stddev at any point.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance (n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
// edge buckets. Buckets are linear by default, or geometric (log-scale) for
// latencies spanning µs→s where linear buckets blur the fast path.
// Percentiles are interpolated within a bucket, clamped to the observed
// [min, max]; p=100 and single-sample histograms return the exact max.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets, bool log_scale = false);

  void Add(double x);
  int64_t count() const { return stats_.count(); }
  const RunningStats& stats() const { return stats_; }

  // Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;

  // Multi-line ASCII rendering for reports.
  std::string ToString() const;

 private:
  // Nominal lower edge of bucket i (== upper edge of bucket i-1).
  double BucketEdge(size_t i) const;

  double lo_;
  double hi_;
  bool log_scale_;
  double log_lo_ = 0.0;      // ln(lo) when log-scale.
  double log_width_ = 0.0;   // ln(hi/lo)/buckets when log-scale.
  double bucket_width_;
  std::vector<int64_t> buckets_;
  RunningStats stats_;
};

}  // namespace rmp

#endif  // SRC_UTIL_HISTOGRAM_H_
