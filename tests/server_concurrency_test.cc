// Thread-safety of the MemoryServer: the paper's server creates an instance
// per client connection, all sharing the workstation's donated memory, so
// the shared state must survive concurrent sessions (our TcpServer serves
// each connection on its own thread against one MemoryServer object).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

TEST(ServerConcurrencyTest, ParallelClientsNeverCorruptEachOther) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      auto base = server.Allocate(kPagesPerThread);
      if (!base.ok()) {
        ++failures;
        return;
      }
      PageBuffer page;
      for (int i = 0; i < kPagesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        FillPattern(page.span(), seed);
        if (!server.Store(*base + static_cast<uint64_t>(i), page.span()).ok()) {
          ++failures;
          return;
        }
      }
      for (int i = 0; i < kPagesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        auto loaded = server.Load(*base + static_cast<uint64_t>(i));
        if (!loaded.ok() || !CheckPattern(loaded->span(), seed)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.live_pages(), static_cast<uint64_t>(kThreads * kPagesPerThread));
}

TEST(ServerConcurrencyTest, AllocationsNeverOverlapUnderContention) {
  MemoryServerParams params;
  params.capacity_pages = 100000;
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kAllocsPerThread = 200;
  std::vector<std::vector<uint64_t>> grants(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &grants, t] {
      for (int i = 0; i < kAllocsPerThread; ++i) {
        auto slot = server.Allocate(3);
        if (slot.ok()) {
          grants[t].push_back(*slot);
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  // Every granted 3-slot run must be disjoint from every other.
  std::vector<uint64_t> all;
  for (const auto& g : grants) {
    all.insert(all.end(), g.begin(), g.end());
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i], all[i - 1] + 3) << "overlapping grants at " << all[i - 1];
  }
}

// Satellite coverage: XorMerge / DeltaStore / Free racing on the same slots
// (one shard, via store_shards=1) and on disjoint slot ranges spread across
// the default shard set. XOR is commutative, so the merged result must equal
// the XOR of everything each thread folded in, regardless of interleaving.
class ShardedParityRaceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardedParityRaceTest, ConcurrentXorMergesCommute) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  params.store_shards = GetParam();
  MemoryServer server(params);
  auto base = server.Allocate(4);
  ASSERT_TRUE(base.ok());
  constexpr int kThreads = 8;
  constexpr int kMergesPerThread = 32;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &base, t] {
      PageBuffer delta;
      for (int i = 0; i < kMergesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(i);
        FillPattern(delta.span(), seed);
        // All threads hammer every slot: same-shard and cross-shard races.
        for (uint64_t s = 0; s < 4; ++s) {
          ASSERT_TRUE(server.XorMerge(*base + s, delta.span()).ok());
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  PageBuffer expected;
  PageBuffer delta;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kMergesPerThread; ++i) {
      FillPattern(delta.span(), static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(i));
      expected.XorWith(delta.span());
    }
  }
  for (uint64_t s = 0; s < 4; ++s) {
    auto merged = server.Load(*base + s);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(*merged, expected) << "slot offset " << s;
  }
}

TEST_P(ShardedParityRaceTest, DeltaStoreSeriesChainsUnderContention) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  params.store_shards = GetParam();
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kStores = 24;
  // Each thread owns one slot but they all run together, so the per-slot
  // delta chain must stay consistent while shards (or the single shard)
  // churn. Valid chain: XOR of all returned deltas equals the final page.
  auto base = server.Allocate(kThreads);
  ASSERT_TRUE(base.ok());
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &base, &failures, t] {
      const uint64_t slot = *base + static_cast<uint64_t>(t);
      PageBuffer accumulated;  // XOR of deltas returned so far.
      PageBuffer version;
      for (int i = 0; i < kStores; ++i) {
        FillPattern(version.span(), static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i));
        auto delta = server.DeltaStore(slot, version.span());
        if (!delta.ok()) {
          ++failures;
          return;
        }
        accumulated.XorWith(delta->span());
      }
      // old0 ^ v0 ^ v0 ^ v1 ^ ... telescopes to the latest version.
      if (!(accumulated == version)) {
        ++failures;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ShardedParityRaceTest, FreeRacesStoresWithoutCorruption) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  params.store_shards = GetParam();
  MemoryServer server(params);
  constexpr int kThreads = 6;
  constexpr int kRounds = 40;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &failures, t] {
      PageBuffer page;
      for (int i = 0; i < kRounds; ++i) {
        auto base = server.Allocate(8);
        if (!base.ok()) {
          continue;  // Transient contention on capacity is fine.
        }
        const uint64_t seed = static_cast<uint64_t>(t) * 10000 + static_cast<uint64_t>(i);
        for (uint64_t s = 0; s < 8; ++s) {
          FillPattern(page.span(), seed + s);
          if (!server.Store(*base + s, page.span()).ok()) {
            ++failures;
            return;
          }
        }
        for (uint64_t s = 0; s < 8; ++s) {
          auto loaded = server.Load(*base + s);
          if (!loaded.ok() || !CheckPattern(loaded->span(), seed + s)) {
            ++failures;  // A racing Free on another run must never hit ours.
            return;
          }
        }
        if (!server.Free(*base, 8).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.live_pages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(GlobalMutexAndSharded, ShardedParityRaceTest,
                         ::testing::Values(1u, 16u));

// The compressed cold tier hangs demotion/promotion/dedup/extent state off
// every one of the paths above; hammer them with the tier on so the shard
// locks are proven over the new state, not just the slab frames. Threads
// t and t+4 write identical contents to race the per-shard dedup index
// from both sides, every 7th page is zeros to churn the elision path, and
// freeing the odd half each round exercises refcounts and extent
// dead-space reclamation under contention.
TEST(ServerConcurrencyTest, TieredChurnKeepsEveryPageIntact) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  params.store_shards = 4;
  params.tier.hot_page_limit = 32;     // Small: every thread forces demotions.
  params.tier.promote_after_hits = 1;  // Every cold reload promotes.
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kPages = 48;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      auto base = server.Allocate(kPages);
      if (!base.ok()) {
        ++failures;
        return;
      }
      PageBuffer page;
      PageBuffer expect;
      const auto fill = [t](std::span<uint8_t> out, int round, int i) {
        if (i % 7 == 0) {
          std::memset(out.data(), 0, out.size());
        } else {
          const uint64_t seed = static_cast<uint64_t>(t % 4) * 1000 +
                                static_cast<uint64_t>(round) * 31 + static_cast<uint64_t>(i);
          FillCompressiblePage(out, seed, 50, 50);
        }
      };
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kPages; ++i) {
          fill(page.span(), round, i);
          if (!server.Store(*base + static_cast<uint64_t>(i), page.span()).ok()) {
            ++failures;
            return;
          }
        }
        for (int i = 0; i < kPages; ++i) {
          auto loaded = server.Load(*base + static_cast<uint64_t>(i));
          fill(expect.span(), round, i);
          if (!loaded.ok() || std::memcmp(loaded->data(), expect.data(), kPageSize) != 0) {
            ++failures;
            return;
          }
        }
        for (int i = 1; i < kPages; i += 2) {
          if (!server.Free(*base + static_cast<uint64_t>(i), 1).ok()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // The last round's frees stick: half of every thread's range is gone.
  EXPECT_EQ(server.live_pages(), static_cast<uint64_t>(kThreads * kPages / 2));
  EXPECT_GT(server.stats().demotions.load(), 0);
}

TEST(ServerConcurrencyTest, CrashDuringTrafficIsClean) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  MemoryServer server(params);
  std::atomic<bool> stop{false};
  std::thread traffic([&server, &stop] {
    PageBuffer page;
    auto base = server.Allocate(32);
    uint64_t i = 0;
    while (!stop.load()) {
      if (base.ok()) {
        (void)server.Store(*base + (i % 32), page.span());
        (void)server.Load(*base + (i % 32));
      }
      ++i;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  traffic.join();
  EXPECT_TRUE(server.crashed());
  EXPECT_EQ(server.live_pages(), 0u);
}

}  // namespace
}  // namespace rmp
