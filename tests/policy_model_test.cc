// Model-based conformance: every paging backend must behave like a simple
// map from page id to the last bytes written, regardless of policy
// internals (striping, parity groups, mirrors, disk blocks, GC). Random
// operation streams are replayed against a reference map; any divergence is
// a bug. Parameterized over (policy x seed).

#include <gtest/gtest.h>

#include <map>

#include "src/core/testbed.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

struct ModelParam {
  Policy policy;
  int data_servers;
  uint64_t seed;
};

std::string ModelParamName(const ::testing::TestParamInfo<ModelParam>& info) {
  return std::string(PolicyName(info.param.policy)) + "_s" + std::to_string(info.param.seed);
}

class PolicyModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(PolicyModelTest, RandomOpsMatchReferenceMap) {
  const ModelParam param = GetParam();
  TestbedParams params;
  params.policy = param.policy;
  params.data_servers = param.data_servers;
  params.server_capacity_pages = 1024;
  params.pager.alloc_extent_pages = 16;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  PagingBackend& backend = (*bed)->backend();

  Rng rng(param.seed);
  std::map<uint64_t, uint64_t> reference;  // page -> pattern seed.
  PageBuffer buffer;
  constexpr int kOps = 500;
  constexpr uint64_t kPageSpace = 64;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t page = rng.Below(kPageSpace);
    const int kind = static_cast<int>(rng.Below(10));
    if (kind < 6) {
      // Write (fresh or overwrite).
      const uint64_t seed = rng.Next() | 1;
      FillPattern(buffer.span(), seed);
      auto done = backend.PageOut(0, page, buffer.span());
      ASSERT_TRUE(done.ok()) << PolicyName(param.policy) << " op " << op << ": "
                             << done.status().ToString();
      reference[page] = seed;
    } else {
      // Read.
      auto done = backend.PageIn(0, page, buffer.span());
      auto it = reference.find(page);
      if (it == reference.end()) {
        EXPECT_FALSE(done.ok()) << "read of never-written page " << page << " succeeded";
      } else {
        ASSERT_TRUE(done.ok()) << PolicyName(param.policy) << " op " << op << ": "
                               << done.status().ToString();
        EXPECT_TRUE(CheckPattern(buffer.span(), it->second))
            << PolicyName(param.policy) << " page " << page << " at op " << op;
      }
    }
  }
  // Final sweep: every page reads back its last write.
  for (const auto& [page, seed] : reference) {
    ASSERT_TRUE(backend.PageIn(0, page, buffer.span()).ok()) << page;
    EXPECT_TRUE(CheckPattern(buffer.span(), seed)) << page;
  }
}

std::vector<ModelParam> ModelParams() {
  std::vector<ModelParam> out;
  const std::pair<Policy, int> policies[] = {
      {Policy::kNoReliability, 2}, {Policy::kMirroring, 3},   {Policy::kBasicParity, 3},
      {Policy::kParityLogging, 4}, {Policy::kWriteThrough, 2}, {Policy::kDisk, 0},
  };
  for (const auto& [policy, servers] : policies) {
    for (uint64_t seed : {11ull, 22ull, 33ull}) {
      out.push_back({policy, servers, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyModelTest, ::testing::ValuesIn(ModelParams()),
                         ModelParamName);

// Same model check with a mid-stream crash + recovery for the reliable
// policies.
class ReliablePolicyCrashModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ReliablePolicyCrashModelTest, RandomOpsWithCrashMatchReference) {
  const ModelParam param = GetParam();
  TestbedParams params;
  params.policy = param.policy;
  params.data_servers = param.data_servers;
  params.server_capacity_pages = 1024;
  params.pager.alloc_extent_pages = 16;
  params.with_spare = param.policy == Policy::kBasicParity;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  PagingBackend& backend = (*bed)->backend();

  Rng rng(param.seed * 31);
  std::map<uint64_t, uint64_t> reference;
  PageBuffer buffer;
  const int crash_at = 150 + static_cast<int>(rng.Below(100));
  const auto victim = static_cast<size_t>(rng.Below(param.data_servers));
  for (int op = 0; op < 400; ++op) {
    if (op == crash_at) {
      (*bed)->CrashServer(victim);
      TimeNs now = 0;
      if (auto* pl = (*bed)->parity_logging()) {
        ASSERT_TRUE(pl->Recover(victim, &now).ok());
      } else if (auto* mirror = (*bed)->mirroring()) {
        ASSERT_TRUE(mirror->Recover(victim, &now).ok());
      } else if (auto* bp = (*bed)->basic_parity()) {
        ASSERT_TRUE(bp->Recover(victim, &now).ok());
      } else if (auto* wt = (*bed)->write_through()) {
        ASSERT_TRUE(wt->Recover(victim, &now).ok());
      }
    }
    const uint64_t page = rng.Below(48);
    if (rng.Below(10) < 6) {
      const uint64_t seed = rng.Next() | 1;
      FillPattern(buffer.span(), seed);
      auto done = backend.PageOut(0, page, buffer.span());
      ASSERT_TRUE(done.ok()) << PolicyName(param.policy) << " op " << op << ": "
                             << done.status().ToString();
      reference[page] = seed;
    } else if (reference.count(page) > 0) {
      ASSERT_TRUE(backend.PageIn(0, page, buffer.span()).ok())
          << PolicyName(param.policy) << " op " << op;
      EXPECT_TRUE(CheckPattern(buffer.span(), reference[page])) << page;
    }
  }
  for (const auto& [page, seed] : reference) {
    ASSERT_TRUE(backend.PageIn(0, page, buffer.span()).ok()) << page;
    EXPECT_TRUE(CheckPattern(buffer.span(), seed)) << page;
  }
}

std::vector<ModelParam> CrashModelParams() {
  std::vector<ModelParam> out;
  const std::pair<Policy, int> policies[] = {
      {Policy::kMirroring, 3},
      {Policy::kBasicParity, 3},
      {Policy::kParityLogging, 4},
      {Policy::kWriteThrough, 2},
  };
  for (const auto& [policy, servers] : policies) {
    for (uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
      out.push_back({policy, servers, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(ReliablePolicies, ReliablePolicyCrashModelTest,
                         ::testing::ValuesIn(CrashModelParams()), ModelParamName);

}  // namespace
}  // namespace rmp
