#include "src/core/mirroring.h"

#include <gtest/gtest.h>

#include "src/core/fabric.h"
#include "src/core/testbed.h"
#include "src/net/ethernet_model.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int servers, uint64_t capacity = 512) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = servers;
  params.server_capacity_pages = capacity;
  params.pager.alloc_extent_pages = 8;
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(MirroringTest, EveryPageoutCostsTwoTransfers) {
  auto bed = MakeBed(2);
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_EQ(bed->backend().stats().page_transfers, 40);
  EXPECT_EQ(bed->server(0).live_pages(), 20u);
  EXPECT_EQ(bed->server(1).live_pages(), 20u);
}

TEST(MirroringTest, ReplicasLandOnDistinctServers) {
  auto bed = MakeBed(3);
  MirroringBackend* backend = bed->mirroring();
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_EQ(backend->fully_replicated_pages(), 30);
}

TEST(MirroringTest, SurvivesEitherServerCrashing) {
  for (size_t crash_victim : {0u, 1u}) {
    auto bed = MakeBed(2);
    for (uint64_t p = 0; p < 20; ++p) {
      ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
    }
    bed->CrashServer(crash_victim);
    PageBuffer in;
    for (uint64_t p = 0; p < 20; ++p) {
      ASSERT_TRUE(bed->backend().PageIn(0, p, in.span()).ok())
          << "page " << p << " after crash of " << crash_victim;
      EXPECT_TRUE(CheckPattern(in.span(), p));
    }
  }
}

TEST(MirroringTest, RecoverRestoresFullReplication) {
  auto bed = MakeBed(3);
  MirroringBackend* backend = bed->mirroring();
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  bed->CrashServer(0);
  // The client discovers the crash on first contact: read everything once
  // (reads succeed off the mirrors and mark the dead peer).
  PageBuffer probe;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, probe.span()).ok());
  }
  EXPECT_LT(backend->fully_replicated_pages(), 30);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(0, &now).ok());
  EXPECT_EQ(backend->fully_replicated_pages(), 30);
  // A second crash (of a different server) is now survivable too.
  bed->CrashServer(1);
  PageBuffer in;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(MirroringTest, OverwriteUpdatesBothReplicas) {
  auto bed = MakeBed(2);
  ASSERT_TRUE(bed->backend().PageOut(0, 5, Patterned(1).span()).ok());
  ASSERT_TRUE(bed->backend().PageOut(0, 5, Patterned(2).span()).ok());
  // Crash either server: the survivor must hold version 2.
  bed->CrashServer(0);
  PageBuffer in;
  ASSERT_TRUE(bed->backend().PageIn(0, 5, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 2));
}

TEST(MirroringTest, OverwriteAfterCrashRebuildsReplica) {
  auto bed = MakeBed(3);
  MirroringBackend* backend = bed->mirroring();
  ASSERT_TRUE(backend->PageOut(0, 5, Patterned(1).span()).ok());
  bed->CrashServer(0);
  // Overwriting re-establishes two live copies even though one holder died.
  ASSERT_TRUE(backend->PageOut(0, 5, Patterned(2).span()).ok());
  EXPECT_EQ(backend->fully_replicated_pages(), 1);
}

TEST(MirroringTest, SingleServerCannotMirror) {
  auto bed = MakeBed(1);
  auto done = bed->backend().PageOut(0, 1, Patterned(1).span());
  EXPECT_FALSE(done.ok());
  EXPECT_EQ(done.status().code(), ErrorCode::kNoSpace);
}

TEST(MirroringTest, HalfTheMemoryIsWasted) {
  auto bed = MakeBed(2, /*capacity=*/32);
  // 2 servers x 32 pages but only ~32 distinct pages fit mirrored.
  uint64_t stored = 0;
  for (uint64_t p = 0; p < 64; ++p) {
    if (!bed->backend().PageOut(0, p, Patterned(p).span()).ok()) {
      break;
    }
    ++stored;
  }
  EXPECT_LE(stored, 32u);
  EXPECT_GE(stored, 24u);  // Extent granularity costs a little.
}

TEST(MirroringTest, MirroredPageoutOverlapsReplicaWrites) {
  // Both replica writes are issued before either is joined, and both are
  // charged from the same instant, so a mirrored pageout must finish in less
  // than two serialized single-copy writes.
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  params.pager.alloc_extent_pages = 8;
  auto network = std::make_shared<EthernetModel>();
  params.network = network;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto bed = std::move(*made);
  MirroringBackend* backend = bed->mirroring();

  // The fresh write carries extent-allocation control traffic — do it first
  // so the measured overwrite is two pure replica writes.
  TimeNs now = 0;
  auto first = backend->PageOut(now, 1, Patterned(1).span());
  ASSERT_TRUE(first.ok());
  now = *first;

  // Reference: one write-behind page transfer on an identical idle fabric.
  NetworkFabric reference(network);
  const TimeNs single = reference.TransferAsync(0, kPageWireBytes).completion;
  ASSERT_GT(single, 0);

  auto second = backend->PageOut(now, 1, Patterned(2).span());
  ASSERT_TRUE(second.ok());
  const DurationNs mirrored = *second - now;
  EXPECT_GT(mirrored, 0);
  EXPECT_LT(mirrored, 2 * single);
}

TEST(MirroringTest, RandomizedCrashAndReadBack) {
  Rng rng(0xabc);
  for (int round = 0; round < 5; ++round) {
    auto bed = MakeBed(4);
    MirroringBackend* backend = bed->mirroring();
    std::vector<uint64_t> version(50, 0);
    for (int op = 0; op < 300; ++op) {
      const uint64_t p = rng.Below(50);
      version[p] = rng.Next();
      ASSERT_TRUE(backend->PageOut(0, p, Patterned(version[p]).span()).ok());
    }
    const size_t victim = rng.Below(4);
    bed->CrashServer(victim);
    PageBuffer in;
    for (uint64_t p = 0; p < 50; ++p) {
      if (version[p] == 0) {
        continue;
      }
      ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok())
          << "round " << round << " page " << p;
      EXPECT_TRUE(CheckPattern(in.span(), version[p]));
    }
  }
}

}  // namespace
}  // namespace rmp
