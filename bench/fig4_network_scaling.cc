// Figure 4 + the §4.3 analysis: FFT under DISK, ETHERNET (parity logging,
// measured), ETHERNET*10 (extrapolated with the paper's formula) and
// ALL_MEMORY. The paper's 24 MB anchor: 130.76 s measured = 66.138 u +
// 3.133 sys + 0.21 init + 61.279 ptime over 5452 transfers; a 10x network
// gives 83.459 s, paging < 17% of execution.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/extrapolation.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Figure 4: FFT under DISK / ETHERNET / ETHERNET*10 / ALL_MEMORY ===\n\n");
  const double sizes_mb[] = {17.0, 18.5, 20.0, 21.6, 23.2, 24.0};
  std::printf("%8s  %10s  %10s  %12s  %11s\n", "size MB", "DISK s", "ETHERNET s", "ETHERNET*10 s",
              "ALL_MEM s");
  TimeDecomposition last_decomposition;
  RunResult last_run;
  for (const double mb : sizes_mb) {
    const auto fft = MakeFft(mb);
    PolicyRunConfig disk_config;
    disk_config.policy = Policy::kDisk;
    auto disk = RunWorkloadUnderPolicy(*fft, disk_config);
    PolicyRunConfig pl_config;
    pl_config.policy = Policy::kParityLogging;
    pl_config.data_servers = 4;
    auto ethernet = RunWorkloadUnderPolicy(*fft, pl_config);
    if (!disk.ok() || !ethernet.ok()) {
      std::printf("%8.1f  FAILED\n", mb);
      continue;
    }
    const TimeDecomposition d = Decompose(*ethernet);
    std::printf("%8.1f  %10.2f  %10.2f  %12.2f  %11.2f\n", mb, disk->etime_s, ethernet->etime_s,
                ExpectedElapsedSeconds(d, 10.0), AllMemorySeconds(d));
    last_decomposition = d;
    last_run = *ethernet;
  }

  std::printf("\n--- §4.3 decomposition of the 24 MB ETHERNET run ---\n");
  std::printf("utime=%.3f s  systime=%.3f s  inittime=%.3f s\n", last_decomposition.utime_s,
              last_decomposition.systime_s, last_decomposition.inittime_s);
  std::printf("page transfers=%lld  pptime=%.3f s  btime=%.3f s\n",
              static_cast<long long>(last_decomposition.page_transfers),
              last_decomposition.pptime_s, last_decomposition.btime_s);
  const double x10 = ExpectedElapsedSeconds(last_decomposition, 10.0);
  const double paging_fraction =
      (last_decomposition.pptime_s + last_decomposition.btime_s / 10.0) / x10;
  std::printf("ETHERNET*10 expected etime=%.3f s, paging share=%.1f%%\n", x10,
              paging_fraction * 100.0);
  std::printf("paper anchors: etime 130.76, ptime 61.279, 5452 transfers, *10 -> 83.459 s,\n"
              "               paging < 17%% of execution on a 100 Mbit/s network\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
