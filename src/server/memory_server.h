// The user-level remote memory server (paper §3.2).
//
// "The server is a user level program listening to a socket... When the
// client requests a pagein, the server transfers the requested page(s)...
// When the client requests a pageout, the server reads the incoming pages
// and stores them in its main memory. The server is also responsible for
// swap space allocation and for providing periodically information to the
// client concerning the memory load of its host."
//
// A parity server is *the same program*: "it just performs pageins and
// pageouts... without knowing whether it stores memory pages or parity
// pages" — so there is deliberately no parity-specific code here.
//
// Fault and load injection used by the experiments:
//   Crash()          — drops every stored page (workstation crash, §2.2).
//   SetNativeLoad()  — native processes claim memory; the server shrinks its
//                      donated pool and starts advising the client to stop
//                      sending pages (§2.1).

#ifndef SRC_SERVER_MEMORY_SERVER_H_
#define SRC_SERVER_MEMORY_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/transport/transport.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace rmp {

struct MemoryServerParams {
  std::string name = "server";
  uint64_t capacity_pages = 4096;  // Donated main memory (32 MB by default).
  // When the live page count exceeds this fraction of the (current)
  // capacity, acks start carrying ADVISE_STOP.
  double advise_stop_fraction = 0.95;
};

struct MemoryServerStats {
  int64_t pageouts_served = 0;
  int64_t pageins_served = 0;
  int64_t allocations = 0;
  int64_t denials = 0;
  uint64_t bytes_stored = 0;
  uint64_t bytes_returned = 0;
};

class MemoryServer : public MessageHandler {
 public:
  explicit MemoryServer(const MemoryServerParams& params = MemoryServerParams());

  // MessageHandler: dispatches the wire protocol. Thread-safe.
  Message Handle(const Message& request) override;

  // Direct API (same semantics as the wire protocol; used by tests and by
  // the recovery manager, which reads surviving servers' pages).
  Result<uint64_t> Allocate(uint64_t pages);  // First slot of a fresh run.
  Status Free(uint64_t first_slot, uint64_t pages);
  Status Store(uint64_t slot, std::span<const uint8_t> page);
  Result<PageBuffer> Load(uint64_t slot) const;

  // Basic-parity primitives (§2.2 "Parity"): the data server computes
  // old XOR new while storing, the parity server folds a delta into the
  // stored page. An absent slot reads as all-zeroes for both.
  Result<PageBuffer> DeltaStore(uint64_t slot, std::span<const uint8_t> page);
  Status XorMerge(uint64_t slot, std::span<const uint8_t> delta);

  bool Holds(uint64_t slot) const;

  // All live slots, sorted (recovery enumerates a crashed server's peers).
  std::vector<uint64_t> LiveSlots() const;

  // Fault / load injection.
  void Crash();
  bool crashed() const;
  void Restart();  // Clears the crashed flag; storage stays empty.
  // `fraction` of the donated memory reclaimed by native processes on the
  // server workstation. Raising it can push the server into ADVISE_STOP.
  void SetNativeLoad(double fraction);

  // Test hook: requests touching `slot` sleep for `micros` before being
  // served (outside the server mutex, so other slots proceed). Lets tests
  // force out-of-order replies from a multi-worker TcpServer session.
  void SetSlotDelayForTest(uint64_t slot, int64_t micros);

  uint64_t capacity_pages() const;
  uint64_t free_pages() const;
  uint64_t live_pages() const;
  bool ShouldAdviseStop() const;

  const MemoryServerStats& stats() const { return stats_; }
  const std::string& name() const { return params_.name; }

 private:
  uint64_t EffectiveCapacityLocked() const;
  uint64_t FreePagesLocked() const;
  bool AdviseStopLocked() const;

  MemoryServerParams params_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, PageBuffer> pages_;
  uint64_t reserved_slots_ = 0;  // Allocated (granted) but possibly unwritten.
  uint64_t next_slot_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> free_runs_;
  double native_load_ = 0.0;
  bool crashed_ = false;
  std::unordered_map<uint64_t, int64_t> slot_delays_micros_;
  // Mutable: serving a pagein is logically const on the page store but must
  // still count toward the served-request statistics.
  mutable MemoryServerStats stats_;
};

}  // namespace rmp

#endif  // SRC_SERVER_MEMORY_SERVER_H_
