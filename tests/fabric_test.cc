#include "src/core/fabric.h"

#include <gtest/gtest.h>

#include "src/net/ethernet_model.h"

namespace rmp {
namespace {

TEST(FabricTest, NoModelIsFree) {
  NetworkFabric fabric;
  const auto cost = fabric.Transfer(Millis(5), kPageWireBytes);
  EXPECT_EQ(cost.completion, Millis(5));
  EXPECT_EQ(cost.protocol, 0);
  EXPECT_EQ(cost.wire, 0);
}

TEST(FabricTest, TransferChargesProtocolThenWire) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  const auto cost = fabric.Transfer(0, kPageWireBytes);
  EXPECT_EQ(cost.protocol, Micros(1600));
  EXPECT_NEAR(ToMillis(cost.wire), 9.68, 0.2);
  EXPECT_EQ(cost.completion, cost.protocol + cost.wire);
}

TEST(FabricTest, BackToBackTransfersQueue) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  const auto first = fabric.Transfer(0, kPageWireBytes);
  const auto second = fabric.Transfer(0, kPageWireBytes);
  EXPECT_GT(second.completion, first.completion);
  // Wire time of the second includes waiting for the first.
  EXPECT_GT(second.wire, first.wire);
}

TEST(FabricTest, AsyncUnblocksWithinLagWindow) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  fabric.set_async_lag(Seconds(1));  // Effectively unbounded buffering.
  const auto cost = fabric.TransferAsync(0, kPageWireBytes);
  // Only protocol time blocks the sender.
  EXPECT_EQ(cost.completion, cost.protocol);
  EXPECT_EQ(cost.wire, 0);
}

TEST(FabricTest, AsyncBlocksWhenBacklogExceedsLag) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  fabric.set_async_lag(Millis(15));
  TimeNs now = 0;
  TimeNs last = 0;
  // Flood the wire: the backlog soon exceeds 15 ms and sends start blocking
  // at roughly wire speed.
  for (int i = 0; i < 20; ++i) {
    last = fabric.TransferAsync(now, kPageWireBytes).completion;
  }
  EXPECT_GT(last, Millis(150));  // ~20 pages at ~11 ms each, minus the lag.
}

TEST(FabricTest, SyncQueuesBehindAsyncBacklog) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  for (int i = 0; i < 5; ++i) {
    fabric.TransferAsync(0, kPageWireBytes);
  }
  // A pagein issued now waits for the five queued pageouts.
  const auto read = fabric.Transfer(0, kPageWireBytes);
  EXPECT_GT(read.completion, 5 * Millis(9));
}

TEST(FabricTest, DedicatedPeerLinkBypassesSharedWire) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  fabric.SetPeerLink(7, std::make_shared<IdealLinkModel>(155.0, Millis(2), Micros(1600)));
  EXPECT_TRUE(fabric.HasPeerLink(7));
  EXPECT_FALSE(fabric.HasPeerLink(3));
  // Saturate the shared segment.
  for (int i = 0; i < 10; ++i) {
    fabric.Transfer(0, kPageWireBytes);
  }
  // The dedicated link is idle: a transfer to peer 7 completes fast.
  const auto far = fabric.Transfer(0, kPageWireBytes, 7);
  EXPECT_LT(far.completion, Millis(5));
  // And a shared-segment transfer still queues.
  const auto near = fabric.Transfer(0, kPageWireBytes, 3);
  EXPECT_GT(near.completion, Millis(100));
}

TEST(FabricTest, DedicatedLinkHasItsOwnQueue) {
  NetworkFabric fabric(std::make_shared<EthernetModel>());
  fabric.SetPeerLink(1, std::make_shared<IdealLinkModel>(155.0, 0, Micros(1600)));
  const auto a = fabric.Transfer(0, kPageWireBytes, 1);
  const auto b = fabric.Transfer(0, kPageWireBytes, 1);
  EXPECT_GT(b.completion, a.completion);  // Queued on the dedicated wire.
}

}  // namespace
}  // namespace rmp
