// Minimal leveled logging. Streams to stderr; level settable at runtime so
// tests stay quiet and the TCP server binaries can be made verbose.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rmp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink; use the RMP_LOG macro instead.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Stream-style one-shot logger: builds the message then emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace rmp

#define RMP_LOG(level)                                             \
  if (::rmp::LogLevel::level < ::rmp::GetLogLevel()) {             \
  } else                                                           \
    ::rmp::LogLine(::rmp::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
