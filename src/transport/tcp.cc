#include "src/transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/util/logging.h"

namespace rmp {
namespace {

Status ErrnoError(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    Reset(other.Release());
  }
  return *this;
}

int UniqueFd::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(const std::string& host,
                                                            uint16_t port,
                                                            const std::string& auth_token) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoError("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad host address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("connect");
  }
  // Page-sized RPCs benefit from immediate sends.
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::unique_ptr<TcpTransport>(new TcpTransport(std::move(fd)));
  if (!auth_token.empty()) {
    auto reply = transport->Call(MakeAuth(1, auth_token));
    if (!reply.ok()) {
      return reply.status();
    }
    if (reply->type != MessageType::kAuthReply || reply->status_code() != ErrorCode::kOk) {
      return FailedPreconditionError("server rejected authentication");
    }
  }
  return transport;
}

void TcpTransport::Close() { fd_.Reset(); }

Result<Message> TcpTransport::ReadReply() {
  uint8_t chunk[16 * 1024];
  for (;;) {
    auto next = reader_.Next();
    if (next.ok()) {
      return next;
    }
    if (next.status().code() != ErrorCode::kNotFound) {
      return next.status();  // Protocol/corruption: connection is unusable.
    }
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      return UnavailableError("peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("recv");
    }
    reader_.Feed(std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
  }
}

Result<Message> TcpTransport::Call(const Message& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fd_.valid()) {
    return UnavailableError("transport closed");
  }
  const std::vector<uint8_t> encoded = Encode(request);
  Status sent = SendAll(fd_.get(), std::span<const uint8_t>(encoded));
  if (!sent.ok()) {
    Close();
    return UnavailableError("send failed: " + sent.message());
  }
  auto reply = ReadReply();
  if (!reply.ok() && reply.status().code() == ErrorCode::kUnavailable) {
    Close();
  }
  return reply;
}

Status TcpTransport::SendOneWay(const Message& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!fd_.valid()) {
    return UnavailableError("transport closed");
  }
  const std::vector<uint8_t> encoded = Encode(request);
  return SendAll(fd_.get(), std::span<const uint8_t>(encoded));
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(uint16_t port, HandlerFactory factory,
                                                    std::string required_token) {
  UniqueFd listen_fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd.valid()) {
    return ErrnoError("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(listen_fd.get(), 16) != 0) {
    return ErrnoError("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoError("getsockname");
  }
  const uint16_t bound_port = ntohs(addr.sin_port);
  return std::unique_ptr<TcpServer>(new TcpServer(std::move(listen_fd), bound_port,
                                                  std::move(factory), std::move(required_token)));
}

TcpServer::TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory,
                     std::string required_token)
    : listen_fd_(std::move(listen_fd)),
      port_(port),
      factory_(std::move(factory)),
      required_token_(std::move(required_token)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Closing the listen socket unblocks accept().
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  listen_fd_.Reset();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
    // Wake session threads blocked in recv(); they observe EOF and exit.
    for (const int fd : session_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& t : sessions) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // Listen socket closed by Shutdown().
    }
    ++connections_served_;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_fds_.push_back(fd);
    sessions_.emplace_back([this, session_fd = UniqueFd(fd)]() mutable {
      Session(std::move(session_fd));
    });
  }
}

void TcpServer::Session(UniqueFd fd) {
  SessionLoop(fd);
  // Deregister while the fd is still open so Shutdown() can never hit a
  // recycled descriptor; the socket closes when `fd` goes out of scope.
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  session_fds_.erase(std::remove(session_fds_.begin(), session_fds_.end(), fd.get()),
                     session_fds_.end());
}

void TcpServer::SessionLoop(UniqueFd& fd) {
  std::unique_ptr<MessageHandler> handler = factory_();
  FrameReader reader;
  uint8_t chunk[16 * 1024];
  bool authenticated = required_token_.empty();
  for (;;) {
    auto next = reader.Next();
    if (next.ok()) {
      if (next->type == MessageType::kShutdown) {
        return;
      }
      if (next->type == MessageType::kAuth) {
        const std::string presented(next->payload.begin(), next->payload.end());
        const bool good = required_token_.empty() || presented == required_token_;
        authenticated = authenticated || good;
        const Message reply =
            MakeAuthReply(next->request_id, good ? ErrorCode::kOk : ErrorCode::kFailedPrecondition);
        if (!SendAll(fd.get(), std::span<const uint8_t>(Encode(reply))).ok() || !good) {
          return;  // Bad token: reply then drop the connection.
        }
        continue;
      }
      if (!authenticated) {
        // Nothing but AUTH is served before the handshake.
        const Message reply = MakeErrorReply(next->request_id, ErrorCode::kFailedPrecondition);
        if (!SendAll(fd.get(), std::span<const uint8_t>(Encode(reply))).ok()) {
          return;
        }
        continue;
      }
      const Message reply = handler->Handle(*next);
      const std::vector<uint8_t> encoded = Encode(reply);
      if (!SendAll(fd.get(), std::span<const uint8_t>(encoded)).ok()) {
        return;
      }
      continue;
    }
    if (next.status().code() != ErrorCode::kNotFound) {
      RMP_LOG(kWarning) << "dropping connection: " << next.status().ToString();
      return;
    }
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return;  // Peer closed or error.
    }
    reader.Feed(std::span<const uint8_t>(chunk, static_cast<size_t>(n)));
  }
}

}  // namespace rmp
