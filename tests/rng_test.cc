#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.Exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kTrials, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kTrials;
  const double variance = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.15);
}

TEST(RngTest, UniformBitsRoughlyBalanced) {
  Rng rng(11);
  int ones = 0;
  constexpr int kWords = 4000;
  for (int i = 0; i < kWords; ++i) {
    ones += __builtin_popcountll(rng.Next());
  }
  EXPECT_NEAR(static_cast<double>(ones) / (kWords * 64), 0.5, 0.01);
}

}  // namespace
}  // namespace rmp
