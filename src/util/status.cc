#include "src/util/status.h"

namespace rmp {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kProtocol:
      return "PROTOCOL";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kStaleEpoch:
      return "STALE_EPOCH";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status NoSpaceError(std::string message) { return Status(ErrorCode::kNoSpace, std::move(message)); }
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status ProtocolError(std::string message) {
  return Status(ErrorCode::kProtocol, std::move(message));
}
Status CorruptionError(std::string message) {
  return Status(ErrorCode::kCorruption, std::move(message));
}
Status IoError(std::string message) { return Status(ErrorCode::kIoError, std::move(message)); }
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(ErrorCode::kDataLoss, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status StaleEpochError(std::string message) {
  return Status(ErrorCode::kStaleEpoch, std::move(message));
}

}  // namespace rmp
