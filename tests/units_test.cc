#include "src/util/units.h"

#include <gtest/gtest.h>

#include "src/util/logging.h"
#include "src/vm/vm_array.h"

namespace rmp {
namespace {

TEST(UnitsTest, TimeConstructors) {
  EXPECT_EQ(Micros(1), 1000);
  EXPECT_EQ(Millis(1), 1000000);
  EXPECT_EQ(Seconds(1), 1000000000);
  EXPECT_EQ(Millis(1.5), 1500000);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(11.24)), 11.24);
}

TEST(UnitsTest, PageConstants) {
  EXPECT_EQ(kPageSize, 8192u);  // The paper's DEC OSF/1 page size.
  EXPECT_EQ(kMiB, 1048576u);
}

TEST(UnitsTest, PagesForBytesRoundsUp) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize), 1u);
  EXPECT_EQ(PagesForBytes(kPageSize + 1), 2u);
  EXPECT_EQ(PagesForBytes(24 * kMiB), 3072u);
}

TEST(UnitsTest, WireTimeMatchesHandArithmetic) {
  // 8192 bytes at 10 Mbit/s = 65536 bits / 1e7 bps = 6.5536 ms.
  EXPECT_NEAR(ToMillis(WireTime(kPageSize, 10.0)), 6.5536, 1e-6);
  // Doubling bandwidth halves time.
  EXPECT_EQ(WireTime(kPageSize, 20.0), WireTime(kPageSize, 10.0) / 2);
}

TEST(LoggingTest, LevelThresholdRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the threshold are discarded without crashing.
  RMP_LOG(kDebug) << "invisible " << 42;
  RMP_LOG(kInfo) << "also invisible";
  SetLogLevel(before);
}

TEST(LoggingTest, NoneSilencesEverything) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  RMP_LOG(kError) << "discarded";
  SetLogLevel(before);
}

// VmArray layout helpers.
TEST(VmArrayTest, EndOffsetPacksArrays) {
  // No VM needed to reason about layout.
  VmArray<uint64_t> a(nullptr, 0, 100);
  EXPECT_EQ(a.end_offset(), 800u);
  VmArray<uint32_t> b(nullptr, a.end_offset(), 10);
  EXPECT_EQ(b.end_offset(), 840u);
  EXPECT_EQ(a.size(), 100u);
}

}  // namespace
}  // namespace rmp
