#include "src/transport/fault_injection.h"

#include <string>
#include <utility>

#include "src/proto/wire.h"

namespace rmp {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "NONE";
    case FaultKind::kDropRequest:
      return "DROP_REQUEST";
    case FaultKind::kDropReply:
      return "DROP_REPLY";
    case FaultKind::kDelay:
      return "DELAY";
    case FaultKind::kDuplicate:
      return "DUPLICATE";
    case FaultKind::kCorruptPayload:
      return "CORRUPT_PAYLOAD";
    case FaultKind::kDisconnect:
      return "DISCONNECT";
    case FaultKind::kCrashBeforeApply:
      return "CRASH_BEFORE_APPLY";
    case FaultKind::kCrashAfterApply:
      return "CRASH_AFTER_APPLY";
  }
  return "UNKNOWN";
}

void FaultPlan::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ArmedRule{rule});
}

void FaultPlan::AttachEvents(EventJournal* journal, std::string actor) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_journal_ = journal;
  actor_ = std::move(actor);
}

FaultKind FaultPlan::Decide(const Message& request, TimeNs now, FaultRule* fired) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_seen_;
  ArmedRule* winner = nullptr;
  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (rule.only_type.has_value() && *rule.only_type != request.type) {
      continue;
    }
    const int64_t match_index = armed.matches_seen++;
    bool triggers = false;
    if (rule.at_op >= 0 && match_index == rule.at_op) {
      triggers = true;
    }
    if (rule.at_time > 0 && now >= rule.at_time) {
      triggers = true;
    }
    // Probability rules always draw, even when a prior rule already won this
    // op, so the RNG sequence — and with it every later decision — depends
    // only on the seed and the op stream, not on which rules fired.
    if (rule.probability > 0.0 && rng_.Bernoulli(rule.probability)) {
      triggers = true;
    }
    if (!triggers || winner != nullptr) {
      continue;
    }
    if (rule.repeat >= 0 && armed.fired >= rule.repeat) {
      continue;  // Exhausted.
    }
    winner = &armed;
  }
  if (winner == nullptr) {
    return FaultKind::kNone;
  }
  ++winner->fired;
  ++faults_fired_;
  if (events_journal_ != nullptr) {
    events_journal_->Append(EventKind::kFault, actor_,
                            std::string(FaultKindName(winner->rule.kind)) + " on " +
                                std::string(MessageTypeName(request.type)) + " at op #" +
                                std::to_string(ops_seen_));
  }
  if (fired != nullptr) {
    *fired = winner->rule;
  }
  return winner->rule.kind;
}

int64_t FaultPlan::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_seen_;
}

int64_t FaultPlan::faults_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_fired_;
}

void FaultInjectingTransport::InstallPlan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
}

void FaultInjectingTransport::ClearPlan() {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_.reset();
}

bool FaultInjectingTransport::has_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_ != nullptr;
}

void FaultInjectingTransport::SetCrashHook(CrashHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_hook_ = std::move(hook);
}

void FaultInjectingTransport::SetClock(Clock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void FaultInjectingTransport::CountFault(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fault_stats_.injected[static_cast<size_t>(kind)];
}

void FaultInjectingTransport::InvokeCrashHook() {
  CrashHook hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hook = crash_hook_;
  }
  if (hook) {
    hook();
  }
}

Result<Message> FaultInjectingTransport::Call(const Message& request) {
  if (!connected_.load()) {
    return UnavailableError("fault transport: disconnected");
  }
  std::shared_ptr<FaultPlan> plan;
  Clock clock;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan = plan_;
    clock = clock_;
  }
  if (plan == nullptr) {
    return inner_->Call(request);
  }
  const TimeNs now = clock ? clock() : 0;
  FaultRule rule;
  const FaultKind kind = plan->Decide(request, now, &rule);
  if (kind == FaultKind::kNone) {
    return inner_->Call(request);
  }
  return FaultedCall(request, kind, rule);
}

RpcFuture FaultInjectingTransport::CallAsync(Message request) {
  if (!connected_.load()) {
    return RpcFuture::MakeReady(UnavailableError("fault transport: disconnected"));
  }
  std::shared_ptr<FaultPlan> plan;
  Clock clock;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan = plan_;
    clock = clock_;
  }
  if (plan == nullptr) {
    return inner_->CallAsync(std::move(request));
  }
  const TimeNs now = clock ? clock() : 0;
  FaultRule rule;
  const FaultKind kind = plan->Decide(request, now, &rule);
  if (kind == FaultKind::kNone) {
    // The common path keeps the inner transport's pipelining.
    return inner_->CallAsync(std::move(request));
  }
  // Faulted calls resolve synchronously: the fault semantics (crash hooks,
  // disconnects) must take effect before the caller's next operation, which
  // an eager completion guarantees on every inner transport.
  return RpcFuture::MakeReady(FaultedCall(request, kind, rule));
}

Result<Message> FaultInjectingTransport::FaultedCall(const Message& request, FaultKind kind,
                                                     const FaultRule& rule) {
  CountFault(kind);
  const std::string tag(MessageTypeName(request.type));
  switch (kind) {
    case FaultKind::kNone:
      return inner_->Call(request);

    case FaultKind::kDropRequest:
      // The request never reaches the server; the connection itself is fine,
      // so a retry of an idempotent op should succeed.
      return UnavailableError("fault: request dropped (" + tag + ")");

    case FaultKind::kDropReply: {
      // The server applies the operation but the ack is lost: the classic
      // ambiguous-outcome window. The caller sees UNAVAILABLE and cannot
      // tell whether the op landed.
      (void)inner_->Call(request);
      return UnavailableError("fault: reply dropped (" + tag + ")");
    }

    case FaultKind::kDelay: {
      Result<Message> reply = inner_->Call(request);
      if (!reply.ok()) {
        return reply;
      }
      const DurationNs deadline = rpc_deadline_.load();
      if (deadline > 0 && rule.delay > deadline) {
        // Late reply: by the time it arrives the client has timed out. The
        // op is applied server-side — same ambiguity as a dropped reply.
        return UnavailableError("fault: rpc deadline exceeded (" + tag + ")");
      }
      injected_delay_.fetch_add(rule.delay);
      return reply;
    }

    case FaultKind::kDuplicate: {
      // Deliver the request twice (a retransmission); the server must treat
      // the second copy idempotently. The caller gets the second reply.
      Result<Message> first = inner_->Call(request);
      if (!first.ok()) {
        return first;
      }
      return inner_->Call(request);
    }

    case FaultKind::kCorruptPayload: {
      // Run the request through the real wire encoding, flip one byte, and
      // decode — exercising the actual CRC (payload) / magic (header) checks
      // rather than simulating their outcome. The op never reaches the
      // server.
      std::vector<uint8_t> bytes = Encode(request);
      if (request.payload.empty()) {
        bytes[0] ^= 0x40;  // Header corruption: DecodeHeader rejects magic.
      } else {
        bytes[bytes.size() - 1] ^= 0x40;  // Payload corruption: CRC mismatch.
      }
      Result<Message> decoded = Decode(bytes);
      if (!decoded.ok()) {
        return decoded.status();
      }
      return CorruptionError("fault: corrupted frame escaped the CRC (" + tag + ")");
    }

    case FaultKind::kDisconnect:
      Disconnect();
      return UnavailableError("fault: connection dropped (" + tag + ")");

    case FaultKind::kCrashBeforeApply:
      InvokeCrashHook();
      return UnavailableError("fault: server crashed before apply (" + tag + ")");

    case FaultKind::kCrashAfterApply: {
      (void)inner_->Call(request);
      InvokeCrashHook();
      return UnavailableError("fault: server crashed after apply (" + tag + ")");
    }
  }
  return InternalError("fault: unknown fault kind");
}

Status FaultInjectingTransport::SendOneWay(const Message& request) {
  if (!connected_.load()) {
    return UnavailableError("fault transport: disconnected");
  }
  return inner_->SendOneWay(request);
}

}  // namespace rmp
