// RepairCoordinator conformance (DESIGN.md §11): crash detection feeding
// background resilvering, token-bucket pacing of repair traffic, overload
// drains, and re-admission of rejoining servers. End states are verified
// three ways — coordinator stats, byte-identical read-back of every page,
// and direct inspection of the server stores.

#include "src/core/repair.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/core/testbed.h"

namespace rmp {
namespace {

constexpr uint64_t kSeed = 7;
constexpr uint64_t kPages = 60;

std::unique_ptr<Testbed> MakeMirrorBed(int servers = 3) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = servers;
  params.server_capacity_pages = 512;
  auto bed = Testbed::Create(params);
  EXPECT_TRUE(bed.ok()) << bed.status().message();
  return std::move(*bed);
}

HealthParams FastHealth() {
  HealthParams params;
  params.heartbeat_interval = Millis(50);
  params.suspect_after = 1;
  params.dead_after = 3;
  return params;
}

// Reads every preloaded page back through the policy and checks the bytes.
void CheckAllPages(Testbed* bed, TimeNs* now) {
  PageBuffer in;
  for (uint64_t page = 0; page < kPages; ++page) {
    auto done = bed->backend().PageIn(*now, page, in.span());
    ASSERT_TRUE(done.ok()) << "page " << page << ": " << done.status().message();
    *now = *done;
    EXPECT_TRUE(CheckPattern(in.span(), Testbed::PreloadSeed(kSeed, page))) << "page " << page;
  }
}

TEST(TokenBucketTest, PacingIsExactIntegerMath) {
  TokenBucket bucket(1000, 10);            // 1000 pages/s, burst 10.
  EXPECT_EQ(bucket.TakeUpTo(20, 0), 10u);  // Starts full, capped at burst.
  EXPECT_EQ(bucket.TakeUpTo(1, 0), 0u);    // Dry.
  EXPECT_EQ(bucket.NextAvailable(0), Millis(1));  // 1 token per ms at 1000/s.
  EXPECT_EQ(bucket.TakeUpTo(5, Millis(1)), 1u);   // Exactly one accrued.
  bucket.Refund(3);
  EXPECT_EQ(bucket.TakeUpTo(5, Millis(1)), 3u);
  EXPECT_EQ(bucket.TakeUpTo(100, Millis(1) + Seconds(1)), 10u);  // Refilled to burst.
}

TEST(TokenBucketTest, ZeroRateDisablesPacing) {
  TokenBucket bucket(0, 4);
  EXPECT_EQ(bucket.TakeUpTo(1000, 0), 1000u);
  EXPECT_EQ(bucket.NextAvailable(Millis(7)), Millis(7));
}

// The tentpole conformance walk: crash -> repair restores full redundancy ->
// the rebooted server is re-admitted -> a second, different server crashes ->
// zero pages lost, verified byte-for-byte and against the stores.
TEST(RepairCoordinatorTest, CrashRepairThenSecondCrashLosesNothing) {
  auto bed = MakeMirrorBed();
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth()).ok());
  RepairCoordinator* repair = bed->repair();

  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok());
  TimeNs now = *loaded;
  now = *repair->Pump(now);  // Baseline probes record incarnations.
  ASSERT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));

  // --- First crash ---------------------------------------------------------
  const uint64_t lost_first = bed->server(1).live_pages();
  ASSERT_GT(lost_first, 0u);
  bed->CrashServer(1);
  auto pumped = repair->Pump(now + Millis(50));  // Detects DEAD, starts the job.
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = repair->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(repair->stats().repairs_started, 1);
  EXPECT_EQ(repair->stats().repairs_completed, 1);
  EXPECT_EQ(repair->stats().pages_resilvered, static_cast<int64_t>(lost_first));
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
  // Store-level truth: the crashed server is empty and the survivors hold
  // both replicas of everything.
  EXPECT_EQ(bed->server(1).live_pages(), 0u);
  EXPECT_EQ(bed->server(0).live_pages() + bed->server(2).live_pages(), 2 * kPages);

  // --- Reboot + re-admission ----------------------------------------------
  bed->RestartServer(1);
  pumped = repair->Pump(now + Millis(50));  // Sees the reboot, re-admits.
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  now = *pumped;
  EXPECT_EQ(bed->health()->health(1), PeerHealth::kAlive);
  EXPECT_EQ(repair->stats().rejoins, 1);
  EXPECT_TRUE(repair->idle());

  // --- Second, different crash --------------------------------------------
  const uint64_t lost_second = bed->server(2).live_pages();
  ASSERT_GT(lost_second, 0u);
  bed->CrashServer(2);
  pumped = repair->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  quiesced = repair->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
  EXPECT_EQ(repair->stats().pages_resilvered,
            static_cast<int64_t>(lost_first + lost_second));
  EXPECT_EQ(bed->server(0).live_pages() + bed->server(1).live_pages(), 2 * kPages);
}

TEST(RepairCoordinatorTest, RateLimitedRepairThrottlesButConverges) {
  auto run = [](uint64_t rate) {
    auto bed = MakeMirrorBed();
    RepairParams params;
    params.repair_pages_per_sec = rate;
    params.repair_burst_pages = 8;
    EXPECT_TRUE(bed->EnableSelfHealing(FastHealth(), params).ok());
    TimeNs now = *bed->Preload(kPages, kSeed);
    now = *bed->repair()->Pump(now);
    bed->CrashServer(1);
    const TimeNs start = now;
    auto pumped = bed->repair()->Pump(now + Millis(50));
    EXPECT_TRUE(pumped.ok());
    auto quiesced = bed->repair()->RunToQuiescence(*pumped);
    EXPECT_TRUE(quiesced.ok()) << quiesced.status().message();
    now = *quiesced;
    EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
    CheckAllPages(bed.get(), &now);
    return std::make_tuple(now - start, bed->repair()->stats().throttle_time,
                           bed->repair()->stats().pages_resilvered);
  };

  const auto [unpaced_elapsed, unpaced_throttle, unpaced_pages] = run(0);
  const auto [paced_elapsed, paced_throttle, paced_pages] = run(500);

  EXPECT_EQ(unpaced_throttle, 0);
  EXPECT_GT(paced_throttle, 0);                 // The bucket ran dry and waited.
  EXPECT_GT(paced_elapsed, unpaced_elapsed);    // Pacing stretches the resilver...
  EXPECT_EQ(paced_pages, unpaced_pages);        // ...but moves the same pages.
}

TEST(RepairCoordinatorTest, OverloadDrainEmptiesTheServer) {
  auto bed = MakeMirrorBed();
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth()).ok());
  RepairCoordinator* repair = bed->repair();
  TimeNs now = *bed->Preload(kPages, kSeed);
  now = *repair->Pump(now);

  const uint64_t resident = bed->server(0).live_pages();
  ASSERT_GT(resident, 0u);
  bed->server(0).SetNativeLoad(1.0);  // Native demand: ADVISE_STOP turns on.
  auto pumped = repair->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = repair->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(repair->stats().drains_started, 1);
  EXPECT_EQ(repair->stats().drains_completed, 1);
  EXPECT_EQ(repair->stats().pages_migrated, static_cast<int64_t>(resident));
  EXPECT_EQ(bed->server(0).live_pages(), 0u);  // Fully drained (§2.1).
  EXPECT_EQ(bed->server(0).stats().migrations_served, static_cast<int64_t>(resident));
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
  // The drain leaves the server stopped while the pressure lasts...
  EXPECT_TRUE(bed->mirroring()->cluster().peer(0).stopped());

  // ...and lifts the stop once the native load goes away.
  bed->server(0).SetNativeLoad(0.0);
  pumped = repair->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  EXPECT_FALSE(bed->mirroring()->cluster().peer(0).stopped());
}

TEST(RepairCoordinatorTest, HealedPartitionCancelsRepairAndReadmits) {
  auto bed = MakeMirrorBed();
  RepairParams params;
  params.repair_pages_per_sec = 1'000'000;  // Paced with a small burst so the
  params.repair_burst_pages = 8;            // repair is mid-flight at heal time.
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), params).ok());
  RepairCoordinator* repair = bed->repair();
  TimeNs now = *bed->Preload(kPages, kSeed);
  now = *repair->Pump(now);

  ASSERT_GT(bed->server(1).live_pages(), 8u);  // More than one chunk's worth.
  bed->PartitionServer(1);  // Unreachable, but the pages are still there.
  auto pumped = repair->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  now = *pumped;
  EXPECT_TRUE(repair->repair_pending(1));  // One 8-page chunk in, not done.
  EXPECT_EQ(repair->stats().pages_resilvered, 8);

  Testbed::RestartOptions heal;
  heal.preserve_memory = true;
  bed->RestartServer(1, heal);
  pumped = repair->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  now = *pumped;

  // Re-admission moots the rest of the repair: the un-resilvered entries
  // still map to valid pages on the healed server.
  EXPECT_FALSE(repair->repair_pending(1));
  EXPECT_EQ(bed->health()->health(1), PeerHealth::kAlive);
  EXPECT_EQ(repair->stats().rejoins, 1);
  EXPECT_EQ(repair->stats().repairs_completed, 1);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
}

TEST(RepairCoordinatorTest, WriteThroughReuploadsFromDiskAfterCrash) {
  TestbedParams params;
  params.policy = Policy::kWriteThrough;
  params.data_servers = 2;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok()) << made.status().message();
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth()).ok());

  TimeNs now = *bed->Preload(kPages, kSeed);
  now = *bed->repair()->Pump(now);
  const uint64_t lost = bed->server(0).live_pages();
  ASSERT_GT(lost, 0u);

  bed->CrashServer(0);
  auto pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(bed->repair()->stats().repairs_completed, 1);
  EXPECT_EQ(bed->repair()->stats().pages_resilvered, static_cast<int64_t>(lost));
  // Every page re-uploaded from the always-current disk copy to the survivor.
  EXPECT_EQ(bed->server(1).live_pages(), kPages);
  CheckAllPages(bed.get(), &now);
}

TEST(RepairCoordinatorTest, SelfHealingNeedsARemotePolicy) {
  TestbedParams params;
  params.policy = Policy::kDisk;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  EXPECT_EQ((*made)->EnableSelfHealing().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rmp
