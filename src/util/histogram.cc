#include "src/util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace rmp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Reset() { *this = RunningStats(); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / buckets), buckets_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  stats_.Add(x);
  int idx = static_cast<int>((x - lo_) / bucket_width_);
  idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
  ++buckets_[idx];
}

double Histogram::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  const int64_t total = stats_.count();
  if (total == 0) {
    return 0.0;
  }
  const double target = p / 100.0 * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int64_t in_bucket = buckets_[i];
    if (seen + in_bucket >= target && in_bucket > 0) {
      // Interpolate position within the bucket.
      const double frac = (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo_ + (static_cast<double>(i) + frac) * bucket_width_;
    }
    seen += in_bucket;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::string out;
  int64_t peak = 1;
  for (int64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  char line[160];
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int bar = static_cast<int>(50.0 * static_cast<double>(buckets_[i]) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8lld |%.*s\n",
                  lo_ + static_cast<double>(i) * bucket_width_,
                  lo_ + static_cast<double>(i + 1) * bucket_width_,
                  static_cast<long long>(buckets_[i]), bar,
                  "##################################################");
    out += line;
  }
  return out;
}

}  // namespace rmp
