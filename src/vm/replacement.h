// Page replacement policies for the simulated VM.
//
// The interface works in physical frame numbers: the VM tells the policy
// when a frame is filled or referenced, and asks for a victim when memory is
// full. LRU approximates what the DEC OSF/1 global page-replacement clock
// achieved for the paper's single-application workloads; CLOCK and FIFO
// exist for the replacement-policy ablation bench.

#ifndef SRC_VM_REPLACEMENT_H_
#define SRC_VM_REPLACEMENT_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace rmp {

enum class ReplacementKind { kLru, kClock, kFifo };

std::string_view ReplacementKindName(ReplacementKind kind);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  // Frame was filled with a fresh page.
  virtual void OnInsert(uint32_t frame) = 0;

  // Frame was referenced (hit).
  virtual void OnAccess(uint32_t frame) = 0;

  // Frame was evicted by the VM (after Victim(), or explicit invalidation).
  virtual void OnEvict(uint32_t frame) = 0;

  // Chooses the frame to evict. Precondition: at least one frame inserted.
  virtual uint32_t Victim() = 0;

  virtual std::string Name() const = 0;
};

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementKind kind);

// Exact LRU via an intrusive recency list.
class LruPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint32_t frame) override;
  void OnAccess(uint32_t frame) override;
  void OnEvict(uint32_t frame) override;
  uint32_t Victim() override;
  std::string Name() const override { return "LRU"; }

 private:
  std::list<uint32_t> recency_;  // Front = most recent.
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> where_;
};

// Second-chance clock with one reference bit per frame.
class ClockPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint32_t frame) override;
  void OnAccess(uint32_t frame) override;
  void OnEvict(uint32_t frame) override;
  uint32_t Victim() override;
  std::string Name() const override { return "CLOCK"; }

 private:
  struct Slot {
    uint32_t frame = 0;
    bool referenced = false;
    bool live = false;
  };
  std::vector<Slot> ring_;
  std::unordered_map<uint32_t, size_t> where_;
  size_t hand_ = 0;
};

// First-in first-out; referenced bits ignored.
class FifoPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(uint32_t frame) override;
  void OnAccess(uint32_t /*frame*/) override {}
  void OnEvict(uint32_t frame) override;
  uint32_t Victim() override;
  std::string Name() const override { return "FIFO"; }

 private:
  std::list<uint32_t> queue_;  // Front = oldest.
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> where_;
};

}  // namespace rmp

#endif  // SRC_VM_REPLACEMENT_H_
