// Scenario-driven crash/recovery conformance matrix.
//
// Each scenario drives one policy through a seeded workload while a
// deterministic FaultPlan perturbs a specific timing window — mid-pageout,
// mid-parity-flush, mid-GC-compaction, mid-reconstruction — with a specific
// fault kind. The contract under test is the paper's §4 reliability claim:
// after the fault (and recovery, when a workstation died) every page the VM
// ever wrote reads back byte-identical. Every scenario is reproducible from
// its fixed RNG seed; a final test re-runs one scenario and asserts the
// failure-detector counters replay exactly.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/core/testbed.h"
#include "src/transport/fault_injection.h"
#include "src/util/bytes.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

enum class Window {
  kMidPageout,         // Fault a data-server pageout in the middle of a write burst.
  kMidParityFlush,     // Fault the parity server's flush / XOR-merge RPC.
  kMidGcCompaction,    // Fault the batched reads of a GC compaction pass.
  kMidReconstruction,  // Fault the batched reads of post-crash reconstruction.
};

struct Scenario {
  std::string label;  // Test-name suffix; must be a valid identifier.
  Policy policy = Policy::kMirroring;
  FaultKind fault = FaultKind::kDropReply;
  Window window = Window::kMidPageout;
  uint64_t seed = 1;
  // Runs every server with the compressed cold tier on (tight hot limit, so
  // most of the working set is demoted): the reliability contract must hold
  // regardless of which tier a page was in when the fault hit.
  bool tiered = false;
};

// Failure-detector counters that must replay exactly run-to-run.
struct RunSummary {
  int64_t retries = 0;
  int64_t failovers = 0;
  int64_t degraded_reads = 0;
  int64_t reconstructions = 0;
  int64_t faults_fired = 0;

  bool operator==(const RunSummary&) const = default;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const Scenario& scenario) : scenario_(scenario) {}

  // Gtest ASSERTs record into the current test; callers wrap Run() in
  // ASSERT_NO_FATAL_FAILURE.
  void Run(RunSummary* summary_out) {
    MakeBed();
    ASSERT_NE(bed_, nullptr);

    // Phase 1: a clean seeded working set, no faults armed.
    for (uint64_t id = 0; id < kInitialPages; ++id) {
      WritePage(id, PatternSeed(id, 0));
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }

    ArmPlan();

    // Phase 2: overwrites plus fresh pages drive RPCs through the armed
    // window. Ops the policy cannot absorb in place (its server crashed
    // beyond what degradation covers) trigger recovery and one re-issue —
    // the pager's own reaction to a detected crash.
    for (uint64_t id = 0; id < kInitialPages + kFreshPages; ++id) {
      WritePage(id, PatternSeed(id, 1));
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }

    if (scenario_.window == Window::kMidGcCompaction) {
      RunGcWindow();
    }
    if (scenario_.window == Window::kMidReconstruction) {
      RunReconstructionWindow();
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    // Settle: recover any workstation the plan crashed mid-window.
    RecoverCrashed();

    // The armed window must actually have been exercised.
    EXPECT_GE(plan_->faults_fired(), 1) << scenario_.label;

    // The reliability contract: every page ever written reads back
    // byte-identical, whatever the fault did to the window.
    PageBuffer out;
    for (const auto& [id, seed] : expected_) {
      auto done = bed_->backend().PageIn(now_, id, out.span());
      ASSERT_TRUE(done.ok()) << scenario_.label << " page " << id << ": "
                             << done.status().ToString();
      now_ = *done;
      EXPECT_TRUE(CheckPattern(out.span(), seed)) << scenario_.label << " page " << id;
    }
    if (ParityLoggingBackend* backend = bed_->parity_logging()) {
      auto invariants = backend->CheckInvariants();
      EXPECT_TRUE(invariants.ok()) << invariants.ToString();
    }

    if (summary_out != nullptr) {
      const BackendStats& stats = bed_->backend().stats();
      summary_out->retries = stats.retries;
      summary_out->failovers = stats.failovers;
      summary_out->degraded_reads = stats.degraded_reads;
      summary_out->reconstructions = stats.reconstructions;
      summary_out->faults_fired = plan_->faults_fired();
    }
  }

 private:
  static constexpr uint64_t kInitialPages = 24;
  static constexpr uint64_t kFreshPages = 12;

  uint64_t PatternSeed(uint64_t id, int phase) const {
    return scenario_.seed * 1000003 + id * 31 + static_cast<uint64_t>(phase);
  }

  void MakeBed() {
    TestbedParams params;
    params.policy = scenario_.policy;
    params.server_capacity_pages = 512;
    params.pager.alloc_extent_pages = 8;
    switch (scenario_.policy) {
      case Policy::kMirroring:
        params.data_servers = 3;  // A crash still leaves two distinct mirrors.
        break;
      case Policy::kParityLogging:
        params.data_servers = 4;
        break;
      case Policy::kBasicParity:
        params.data_servers = 3;
        params.with_spare = true;  // Rebuild target for a dead column.
        break;
      case Policy::kWriteThrough:
      case Policy::kNoReliability:
        params.data_servers = 2;
        break;
      case Policy::kDisk:
        break;
    }
    if (scenario_.tiered) {
      params.store_tier.hot_page_limit = 8;
      params.store_tier.promote_after_hits = 2;
    }
    auto testbed = Testbed::Create(params);
    ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
    bed_ = std::move(*testbed);
    parity_peer_ = static_cast<size_t>(params.data_servers);
  }

  // The RPC type and victim transport that define each timing window.
  void ArmPlan() {
    FaultRule rule;
    rule.kind = scenario_.fault;
    size_t victim = 0;
    switch (scenario_.window) {
      case Window::kMidPageout:
        // Third data-bearing store on server 0: mid-burst, not op one.
        victim = 0;
        rule.at_op = 2;
        rule.only_type = scenario_.policy == Policy::kBasicParity ? MessageType::kDeltaPageOut
                                                                  : MessageType::kPageOut;
        break;
      case Window::kMidParityFlush:
        // The only pageout traffic the parity server sees is the parity
        // write itself (accumulator flush / XOR-merge).
        victim = parity_peer_;
        rule.at_op = 0;
        rule.only_type = scenario_.policy == Policy::kBasicParity ? MessageType::kXorMerge
                                                                  : MessageType::kPageOut;
        break;
      case Window::kMidGcCompaction:
      case Window::kMidReconstruction:
        // Both windows read live pages back in bulk; fault the first
        // batched read on a (surviving) data server.
        victim = 0;
        rule.at_op = 0;
        rule.only_type = MessageType::kPageInBatch;
        break;
    }
    plan_ = std::make_shared<FaultPlan>(scenario_.seed);
    plan_->AddRule(rule);
    bed_->InstallFaultPlan(victim, plan_);
  }

  void WritePage(uint64_t id, uint64_t seed) {
    PageBuffer page;
    FillPattern(page.span(), seed);
    auto done = bed_->backend().PageOut(now_, id, page.span());
    if (!done.ok()) {
      // The window's fault crashed a server out from under this op; recover
      // and re-issue, as the paging daemon would on a detected crash.
      RecoverCrashed();
      done = bed_->backend().PageOut(now_, id, page.span());
    }
    ASSERT_TRUE(done.ok()) << scenario_.label << " pageout " << id << ": "
                           << done.status().ToString();
    now_ = *done;
    expected_[id] = seed;
  }

  void RunGcWindow() {
    ParityLoggingBackend* backend = bed_->parity_logging();
    ASSERT_NE(backend, nullptr) << "GC window requires parity logging";
    // Phase 2's overwrites left one inactive entry per rewritten page; the
    // compaction pass reads the survivors in bulk through the armed fault.
    Status collected = backend->GarbageCollect(&now_);
    if (!collected.ok() && collected.code() != ErrorCode::kNoSpace) {
      // The fault killed a server mid-compaction; recover and re-run. The
      // second pass may legitimately find nothing left to reclaim.
      RecoverCrashed();
      collected = backend->GarbageCollect(&now_);
    }
    EXPECT_TRUE(collected.ok() || collected.code() == ErrorCode::kNoSpace)
        << collected.ToString();
  }

  void RunReconstructionWindow() {
    // An explicit crash of server 1 starts reconstruction; the armed fault
    // on server 0 then perturbs reconstruction's own bulk reads.
    bed_->CrashServer(1);
    RecoverCrashed();
  }

  // Runs the policy's recovery for every crashed-and-not-yet-recovered
  // server. Policies recover in place onto survivors; a dead parity host
  // gets a (restarted) replacement, basic parity rebuilds onto its spare.
  void RecoverCrashed() {
    for (size_t i = 0; i < bed_->server_count(); ++i) {
      if (!bed_->server(i).crashed() || recovered_.count(i) > 0) {
        continue;
      }
      recovered_.insert(i);
      Status status = OkStatus();
      if (ParityLoggingBackend* backend = bed_->parity_logging()) {
        if (i == backend->parity_peer()) {
          bed_->RestartServer(i);  // A replacement parity host arrives.
        }
        status = backend->Recover(i, &now_);
      } else if (MirroringBackend* backend = bed_->mirroring()) {
        status = backend->Recover(i, &now_);
      } else if (BasicParityBackend* backend = bed_->basic_parity()) {
        status = backend->Recover(i, &now_);
      } else if (WriteThroughBackend* backend = bed_->write_through()) {
        status = backend->Recover(i, &now_);
      }
      // NO_RELIABILITY has no recovery path by design.
      ASSERT_TRUE(status.ok()) << scenario_.label << " recover of server " << i
                               << ": " << status.ToString();
    }
  }

  const Scenario scenario_;
  std::unique_ptr<Testbed> bed_;
  std::shared_ptr<FaultPlan> plan_;
  size_t parity_peer_ = 0;
  TimeNs now_ = 0;
  std::map<uint64_t, uint64_t> expected_;  // page id -> pattern seed.
  std::set<size_t> recovered_;
};

class CrashRecoveryTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(CrashRecoveryTest, EveryPageSurvivesByteIdentical) {
  ScenarioRunner runner(GetParam());
  ASSERT_NO_FATAL_FAILURE(runner.Run(nullptr));
}

INSTANTIATE_TEST_SUITE_P(
    PolicyFaultWindowMatrix, CrashRecoveryTest,
    ::testing::Values(
        // Mirroring: a replica write dies mid-burst; repair or resilver.
        Scenario{"mirroring_pageout_crash_after", Policy::kMirroring,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 101},
        Scenario{"mirroring_pageout_crash_before", Policy::kMirroring,
                 FaultKind::kCrashBeforeApply, Window::kMidPageout, 102},
        Scenario{"mirroring_pageout_drop_reply", Policy::kMirroring,
                 FaultKind::kDropReply, Window::kMidPageout, 103},
        Scenario{"mirroring_reconstruction_drop_reply", Policy::kMirroring,
                 FaultKind::kDropReply, Window::kMidReconstruction, 104},
        // Parity logging: data-server faults mid-burst...
        Scenario{"parity_logging_pageout_crash_after", Policy::kParityLogging,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 201},
        Scenario{"parity_logging_pageout_crash_before", Policy::kParityLogging,
                 FaultKind::kCrashBeforeApply, Window::kMidPageout, 202},
        Scenario{"parity_logging_pageout_drop_reply", Policy::kParityLogging,
                 FaultKind::kDropReply, Window::kMidPageout, 203},
        // ...the parity flush itself...
        Scenario{"parity_logging_flush_crash_after", Policy::kParityLogging,
                 FaultKind::kCrashAfterApply, Window::kMidParityFlush, 204},
        Scenario{"parity_logging_flush_drop_reply", Policy::kParityLogging,
                 FaultKind::kDropReply, Window::kMidParityFlush, 205},
        // ...a GC compaction pass...
        Scenario{"parity_logging_gc_crash_after", Policy::kParityLogging,
                 FaultKind::kCrashAfterApply, Window::kMidGcCompaction, 206},
        Scenario{"parity_logging_gc_drop_reply", Policy::kParityLogging,
                 FaultKind::kDropReply, Window::kMidGcCompaction, 207},
        // ...and reconstruction after a crash.
        Scenario{"parity_logging_reconstruction_drop_reply", Policy::kParityLogging,
                 FaultKind::kDropReply, Window::kMidReconstruction, 208},
        // Basic parity: the non-idempotent delta protocol's ambiguity
        // windows (lost delta ack, lost merge ack) and a dead column.
        Scenario{"basic_parity_pageout_crash_after", Policy::kBasicParity,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 301},
        Scenario{"basic_parity_pageout_drop_reply", Policy::kBasicParity,
                 FaultKind::kDropReply, Window::kMidPageout, 302},
        Scenario{"basic_parity_merge_drop_reply", Policy::kBasicParity,
                 FaultKind::kDropReply, Window::kMidParityFlush, 303},
        // Write-through: the disk copy carries the crash window.
        Scenario{"write_through_pageout_crash_after", Policy::kWriteThrough,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 401},
        Scenario{"write_through_pageout_drop_reply", Policy::kWriteThrough,
                 FaultKind::kDropReply, Window::kMidPageout, 402},
        // No reliability: only transient faults are survivable by design.
        Scenario{"no_reliability_pageout_drop_reply", Policy::kNoReliability,
                 FaultKind::kDropReply, Window::kMidPageout, 501},
        // Compressed cold tier on: the same contract with most pages demoted
        // (crash of a mirror, a lost parity merge, reconstruction reading
        // cold pages back, and the delta protocol materializing them).
        Scenario{"tiered_mirroring_pageout_crash_after", Policy::kMirroring,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 601, true},
        Scenario{"tiered_mirroring_reconstruction_drop_reply", Policy::kMirroring,
                 FaultKind::kDropReply, Window::kMidReconstruction, 602, true},
        Scenario{"tiered_parity_logging_flush_crash_after", Policy::kParityLogging,
                 FaultKind::kCrashAfterApply, Window::kMidParityFlush, 603, true},
        Scenario{"tiered_parity_logging_reconstruction_drop_reply", Policy::kParityLogging,
                 FaultKind::kDropReply, Window::kMidReconstruction, 604, true},
        Scenario{"tiered_basic_parity_pageout_crash_after", Policy::kBasicParity,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 605, true},
        Scenario{"tiered_write_through_pageout_crash_after", Policy::kWriteThrough,
                 FaultKind::kCrashAfterApply, Window::kMidPageout, 606, true}),
    [](const ::testing::TestParamInfo<Scenario>& info) { return info.param.label; });

// The matrix is only as good as its reproducibility: the same scenario seed
// must replay the same fault interleaving and the same detector counters.
TEST(CrashRecoveryDeterminismTest, SameSeedReplaysSameCounters) {
  const Scenario scenario{"determinism_probe", Policy::kParityLogging,
                          FaultKind::kDropReply, Window::kMidPageout, 777};
  RunSummary first;
  RunSummary second;
  {
    ScenarioRunner runner(scenario);
    ASSERT_NO_FATAL_FAILURE(runner.Run(&first));
  }
  {
    ScenarioRunner runner(scenario);
    ASSERT_NO_FATAL_FAILURE(runner.Run(&second));
  }
  EXPECT_EQ(first, second);
  EXPECT_GE(first.faults_fired, 1);
  EXPECT_GE(first.retries, 1);
}

// Satellite: crash *during* GC compaction must leave the parity-logging
// structures consistent and every active page reconstructible — straight-line
// version of the matrix's GC scenarios with tighter structural assertions.
TEST(CrashRecoveryDeterminismTest, CrashDuringGcCompactionKeepsInvariants) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 512;
  params.pager.alloc_extent_pages = 8;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  ParityLoggingBackend* backend = (*bed)->parity_logging();
  ASSERT_NE(backend, nullptr);

  TimeNs now = 0;
  PageBuffer page;
  for (int round = 0; round < 2; ++round) {  // Overwrites create garbage.
    for (uint64_t id = 0; id < 24; ++id) {
      FillPattern(page.span(), 9000 + id * 2 + static_cast<uint64_t>(round));
      auto done = backend->PageOut(now, id, page.span());
      ASSERT_TRUE(done.ok()) << done.status().ToString();
      now = *done;
    }
  }

  // Server 2 dies on compaction's first bulk read through it.
  auto plan = std::make_shared<FaultPlan>(4242);
  plan->AddRule({.kind = FaultKind::kCrashAfterApply, .at_op = 0,
                 .only_type = MessageType::kPageInBatch});
  (*bed)->InstallFaultPlan(2, plan);

  Status collected = backend->GarbageCollect(&now);
  if (!collected.ok() && collected.code() != ErrorCode::kNoSpace) {
    ASSERT_TRUE((*bed)->server(2).crashed());
    ASSERT_TRUE(backend->Recover(2, &now).ok());
    collected = backend->GarbageCollect(&now);
  }
  ASSERT_TRUE(collected.ok() || collected.code() == ErrorCode::kNoSpace)
      << collected.ToString();
  EXPECT_GE(plan->faults_fired(), 1);
  // If the crash fired before the tolerant branch ran, recovery already
  // happened above; either way the structures must be consistent...
  auto invariants = backend->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
  // ...and the latest version of every page must read back intact.
  PageBuffer out;
  for (uint64_t id = 0; id < 24; ++id) {
    auto done = backend->PageIn(now, id, out.span());
    ASSERT_TRUE(done.ok()) << "page " << id << ": " << done.status().ToString();
    now = *done;
    EXPECT_TRUE(CheckPattern(out.span(), 9000 + id * 2 + 1)) << id;
  }
}

// --- Self-healing conformance (DESIGN.md §11) ------------------------------
// The coordinator-driven version of the recovery story: the HealthMonitor
// detects the crash, the RepairCoordinator restores redundancy in the
// background, a second *different* server crashes, and every page must still
// read back byte-identical. One conformance walk per redundancy policy, plus
// a replay check that the whole repair interleaving is deterministic.

namespace selfheal {

constexpr uint64_t kHealSeed = 11;

HealthParams FastHealth() {
  HealthParams params;
  params.heartbeat_interval = Millis(50);
  params.suspect_after = 1;
  params.dead_after = 3;
  return params;
}

// Pump once (detection + first chunk), then run the repair to quiescence.
TimeNs HealAfter(Testbed* bed, TimeNs now) {
  auto pumped = bed->repair()->Pump(now + Millis(50));
  EXPECT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  EXPECT_TRUE(quiesced.ok()) << quiesced.status().message();
  return *quiesced;
}

void CheckPreloadedPages(Testbed* bed, uint64_t pages, TimeNs* now) {
  PageBuffer in;
  for (uint64_t page = 0; page < pages; ++page) {
    auto done = bed->backend().PageIn(*now, page, in.span());
    ASSERT_TRUE(done.ok()) << "page " << page << ": " << done.status().message();
    *now = *done;
    EXPECT_TRUE(CheckPattern(in.span(), Testbed::PreloadSeed(kHealSeed, page)))
        << "page " << page;
  }
}

struct HealSummary {
  int64_t pages_resilvered = 0;
  int64_t repairs_completed = 0;
  int64_t rejoins = 0;
  DurationNs throttle_time = 0;
  int64_t heartbeats_sent = 0;
  int64_t transitions = 0;
  TimeNs final_now = 0;
  bool operator==(const HealSummary&) const = default;
};

// The mirroring double-fault walk; returns its summary so the determinism
// test can replay it.
HealSummary MirroringDoubleFault() {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  EXPECT_TRUE(made.ok());
  auto bed = std::move(*made);
  RepairParams repair_params;
  repair_params.repair_pages_per_sec = 2000;  // Paced: the throttle path runs.
  repair_params.repair_burst_pages = 16;
  EXPECT_TRUE(bed->EnableSelfHealing(FastHealth(), repair_params).ok());

  constexpr uint64_t kHealPages = 48;
  TimeNs now = *bed->Preload(kHealPages, kHealSeed);
  now = *bed->repair()->Pump(now);  // Baseline: incarnations recorded.

  bed->CrashServer(1);
  now = HealAfter(bed.get(), now);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kHealPages));

  bed->RestartServer(1);  // Reboot; the coordinator re-admits it.
  auto pumped = bed->repair()->Pump(now + Millis(50));
  EXPECT_TRUE(pumped.ok()) << pumped.status().message();
  now = *pumped;
  EXPECT_EQ(bed->health()->health(1), PeerHealth::kAlive);

  bed->CrashServer(2);  // The second, different server.
  now = HealAfter(bed.get(), now);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kHealPages));
  CheckPreloadedPages(bed.get(), kHealPages, &now);

  const RepairStats& stats = bed->repair()->stats();
  const HealthStats health = bed->health()->stats();
  HealSummary summary;
  summary.pages_resilvered = stats.pages_resilvered;
  summary.repairs_completed = stats.repairs_completed;
  summary.rejoins = stats.rejoins;
  summary.throttle_time = stats.throttle_time;
  summary.heartbeats_sent = health.heartbeats_sent;
  summary.transitions = health.transitions;
  summary.final_now = now;
  return summary;
}

TEST(SelfHealingConformanceTest, MirroringDoubleFaultLosesNothing) {
  const HealSummary summary = MirroringDoubleFault();
  EXPECT_EQ(summary.repairs_completed, 3);  // Crash, reboot-rejoin, crash.
  EXPECT_EQ(summary.rejoins, 1);
  EXPECT_GT(summary.pages_resilvered, 0);
  EXPECT_GT(summary.throttle_time, 0);
}

// ISSUE acceptance: "repair is replayable" — the same script produces the
// same repair interleaving, throttle waits, and final clock.
TEST(SelfHealingConformanceTest, RepairInterleavingReplaysDeterministically) {
  EXPECT_EQ(MirroringDoubleFault(), MirroringDoubleFault());
}

TEST(SelfHealingConformanceTest, ParityLoggingDoubleFaultLosesNothing) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth()).ok());
  ParityLoggingBackend* backend = bed->parity_logging();

  constexpr uint64_t kHealPages = 64;
  TimeNs now = *bed->Preload(kHealPages, kHealSeed);
  now = *bed->repair()->Pump(now);

  // First crash: a data server. Affected groups dissolve, lost members are
  // XOR-reconstructed from survivors + parity, actives re-home elsewhere.
  bed->CrashServer(1);
  now = HealAfter(bed.get(), now);
  ASSERT_TRUE(backend->CheckInvariants().ok());
  EXPECT_GT(bed->backend().stats().reconstructions, 0);

  bed->RestartServer(1);
  auto pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  now = *pumped;
  EXPECT_EQ(bed->health()->health(1), PeerHealth::kAlive);

  // Second crash: a different data server.
  bed->CrashServer(2);
  now = HealAfter(bed.get(), now);
  ASSERT_TRUE(backend->CheckInvariants().ok());
  CheckPreloadedPages(bed.get(), kHealPages, &now);
  EXPECT_EQ(bed->repair()->stats().repairs_completed,
            bed->repair()->stats().repairs_started);
}

// A parity-server crash + restart faster than detection: the incarnation
// bump routes it through the rebooted-rejoin path, and the repair rebuilds
// every sealed group's parity page on the fresh store before re-admission.
TEST(SelfHealingConformanceTest, ParityServerFastRebootRebuildsTheLog) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth()).ok());
  ParityLoggingBackend* backend = bed->parity_logging();
  const size_t parity = backend->parity_peer();

  constexpr uint64_t kHealPages = 32;
  TimeNs now = *bed->Preload(kHealPages, kHealSeed);
  now = *bed->repair()->Pump(now);

  bed->CrashServer(parity);
  bed->RestartServer(parity);  // Back up before the next heartbeat round.
  now = HealAfter(bed.get(), now);

  EXPECT_EQ(bed->health()->health(parity), PeerHealth::kAlive);
  EXPECT_EQ(bed->repair()->stats().rejoins, 1);
  ASSERT_TRUE(backend->CheckInvariants().ok());
  // Every sealed group holds a fresh parity page on the restarted server.
  EXPECT_GT(bed->server(parity).live_pages(), 0u);
  CheckPreloadedPages(bed.get(), kHealPages, &now);
  // The log is genuinely whole again: a data server can still crash and
  // every page still reconstructs.
  bed->CrashServer(3);
  now = HealAfter(bed.get(), now);
  ASSERT_TRUE(backend->CheckInvariants().ok());
  CheckPreloadedPages(bed.get(), kHealPages, &now);
}

}  // namespace selfheal

// --- Elastic membership × crashes (DESIGN.md §16) --------------------------
// The rebalance job is background traffic like the resilver, so it inherits
// the same contract: whatever crashes land mid-flight, every page written
// before the fault reads back byte-identical afterwards. Four windows: a
// crash queued ahead of a join, the joining server itself dying, a
// decommission target dying mid-drain, and lossy transport under the
// rebalance's own writes.

namespace elastic {

using selfheal::CheckPreloadedPages;
using selfheal::FastHealth;
using selfheal::kHealSeed;

constexpr uint64_t kElasticPages = 48;

RepairParams PacedEverything(uint64_t rebalance_pps = 2000, uint64_t rebalance_burst = 16) {
  RepairParams params;
  params.repair_pages_per_sec = 2000;
  params.repair_burst_pages = 16;
  params.rebalance_pages_per_sec = rebalance_pps;
  params.rebalance_burst_pages = rebalance_burst;
  return params;
}

std::unique_ptr<Testbed> MakeElasticMirrorBed(int servers = 3,
                                              uint64_t rebalance_pps = 2000,
                                              uint64_t rebalance_burst = 16) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = servers;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  EXPECT_TRUE(made.ok());
  auto bed = std::move(*made);
  EXPECT_TRUE(
      bed->EnableSelfHealing(FastHealth(), PacedEverything(rebalance_pps, rebalance_burst)).ok());
  EXPECT_TRUE(bed->EnableElasticMembership().ok());
  return bed;
}

// A crash detected *before* the join's rebalance runs: redundancy repair
// outranks the fill, then the rebalance sweeps onto the new member.
TEST(ElasticCrashRecoveryTest, CrashQueuedAheadOfJoinRepairsFirstThenFills) {
  auto bed = MakeElasticMirrorBed();
  TimeNs now = *bed->Preload(kElasticPages, kHealSeed);
  now = *bed->repair()->RunToQuiescence(*bed->repair()->Pump(now));

  bed->CrashServer(1);
  auto joined = bed->JoinServer(&now);  // Queued while peer 1 is still dark.
  ASSERT_TRUE(joined.ok()) << joined.status().message();

  auto pumped = bed->repair()->Pump(now + Millis(50));  // Detects the crash.
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  ASSERT_TRUE(bed->repair()->repair_pending(1));
  ASSERT_TRUE(bed->repair()->rebalance_pending());
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(),
            static_cast<int64_t>(kElasticPages));
  EXPECT_GT(bed->remote_pager()->PagesOn(*joined), 0u);
  EXPECT_GT(bed->repair()->stats().pages_rebalanced, 0);
  CheckPreloadedPages(bed.get(), kElasticPages, &now);
}

// The joining server dies mid-fill: the pages it had absorbed are
// reconstructed from the surviving mirrors, and after its reboot the
// re-armed rebalance walks its ranges back onto it.
TEST(ElasticCrashRecoveryTest, JoiningServerCrashMidFillReconstructsAndRefills) {
  // Slow fill pacing so the crash window genuinely lands mid-flight.
  auto bed = MakeElasticMirrorBed(3, /*rebalance_pps=*/200, /*rebalance_burst=*/4);
  TimeNs now = *bed->Preload(kElasticPages, kHealSeed);
  now = *bed->repair()->RunToQuiescence(*bed->repair()->Pump(now));

  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  const size_t fresh = *joined;

  // A few paced pumps: the fill is genuinely mid-flight.
  for (int i = 0; i < 3 && !bed->repair()->idle(); ++i) {
    now = *bed->repair()->Pump(now + Millis(10));
  }
  ASSERT_FALSE(bed->repair()->idle()) << "fill finished before the crash window";

  bed->CrashServer(fresh);
  auto pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(),
            static_cast<int64_t>(kElasticPages));
  CheckPreloadedPages(bed.get(), kElasticPages, &now);

  // Reboot + re-admission re-arms the rebalance; the map never changed, so
  // the same ranges flow back.
  bed->RestartServer(fresh);
  pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;
  EXPECT_EQ(bed->health()->health(fresh), PeerHealth::kAlive);
  EXPECT_GT(bed->remote_pager()->PagesOn(fresh), 0u);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(),
            static_cast<int64_t>(kElasticPages));
  CheckPreloadedPages(bed.get(), kElasticPages, &now);
}

// The decommission target dies before its drain finishes: the crash repair
// subsumes the drain (reconstruction re-homes everything it held), after
// which the member can be dropped from the map.
TEST(ElasticCrashRecoveryTest, DecommissionTargetCrashMidDrainStillCompletes) {
  // Slow drain pacing so the crash window genuinely lands mid-flight.
  auto bed = MakeElasticMirrorBed(4, /*rebalance_pps=*/200, /*rebalance_burst=*/4);
  TimeNs now = *bed->Preload(kElasticPages, kHealSeed);
  now = *bed->repair()->RunToQuiescence(*bed->repair()->Pump(now));
  ASSERT_GT(bed->remote_pager()->PagesOn(2), 0u);

  ASSERT_TRUE(bed->DecommissionServer(2, &now).ok());
  for (int i = 0; i < 3 && !bed->repair()->idle(); ++i) {
    now = *bed->repair()->Pump(now + Millis(10));
  }
  ASSERT_FALSE(bed->repair()->idle()) << "drain finished before the crash window";

  bed->CrashServer(2);
  auto pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_EQ(bed->remote_pager()->PagesOn(2), 0u);
  ASSERT_TRUE(bed->CompleteDecommission(2, &now).ok());
  EXPECT_EQ(bed->remote_pager()->cluster_map().members().size(), 3u);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(),
            static_cast<int64_t>(kElasticPages));
  CheckPreloadedPages(bed.get(), kElasticPages, &now);
}

// Lossy transport under the rebalance's own writes: the fill's pageouts to
// the new member lose replies and are retried by the reliable RPC layer —
// duplicate applies are absorbed, nothing is lost, the fill still converges.
TEST(ElasticCrashRecoveryTest, DroppedRepliesDuringRebalanceRetryWithoutLoss) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedEverything()).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());
  TimeNs now = *bed->Preload(kElasticPages, kHealSeed);
  now = *bed->repair()->RunToQuiescence(*bed->repair()->Pump(now));

  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();

  // The new member's wire eats the replies of its first two pageouts.
  auto plan = std::make_shared<FaultPlan>(616);
  plan->AddRule({.kind = FaultKind::kDropReply, .at_op = 0,
                 .only_type = MessageType::kPageOut});
  plan->AddRule({.kind = FaultKind::kDropReply, .at_op = 1,
                 .only_type = MessageType::kPageOut});
  bed->InstallFaultPlan(*joined, plan);

  auto quiesced = bed->repair()->RunToQuiescence(*bed->repair()->Pump(now + Millis(10)));
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_GE(plan->faults_fired(), 1);
  EXPECT_GE(bed->backend().stats().retries, 1);
  EXPECT_GT(bed->remote_pager()->PagesOn(*joined), 0u);
  CheckPreloadedPages(bed.get(), kElasticPages, &now);
}

}  // namespace elastic

// Satellite: the compressed tier × RestartServer interactions the matrix's
// windows do not reach directly — a reboot (memory gone, tier state gone)
// followed by resilver onto a tiered store, and a healed partition where the
// cold pages themselves must survive untouched.
TEST(CompressedTierRecoveryTest, RebootResilverAndHealedPartitionKeepColdPages) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  params.store_tier.hot_page_limit = 8;
  params.store_tier.promote_after_hits = 2;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  MirroringBackend* backend = bed->mirroring();
  ASSERT_NE(backend, nullptr);

  constexpr uint64_t kPages = 48;
  TimeNs now = 0;
  PageBuffer page;
  for (uint64_t id = 0; id < kPages; ++id) {
    FillCompressiblePage(page.span(), 7100 + id, 40, 60);
    auto done = backend->PageOut(now, id, page.span());
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    now = *done;
  }
  // The tight hot limit must have pushed most replicas cold somewhere.
  uint64_t cold_total = 0;
  for (size_t i = 0; i < bed->server_count(); ++i) {
    cold_total += bed->server(i).tier_occupancy().cold_pages;
  }
  ASSERT_GT(cold_total, 0u);

  const auto check_all = [&](const char* when) {
    PageBuffer out;
    PageBuffer want;
    for (uint64_t id = 0; id < kPages; ++id) {
      auto done = backend->PageIn(now, id, out.span());
      ASSERT_TRUE(done.ok()) << when << " page " << id << ": " << done.status().ToString();
      now = *done;
      FillCompressiblePage(want.span(), 7100 + id, 40, 60);
      EXPECT_EQ(out, want) << when << " page " << id;
    }
  };

  // Reboot: server 0 dies with its tier state; the resilver re-mirrors the
  // lost replicas onto the surviving tiered stores (which re-demote them),
  // and the restarted server comes back empty with zeroed tier stats.
  bed->CrashServer(0);
  ASSERT_TRUE(backend->Recover(0, &now).ok());
  bed->RestartServer(0);
  EXPECT_EQ(bed->server(0).stats().demotions, 0);  // Reboot resets tier stats.
  EXPECT_EQ(bed->server(0).tier_occupancy().logical_bytes, 0u);
  check_all("after reboot+resilver");
  // The survivors absorbed the resilvered replicas into their tiers.
  const TierOccupancy resilvered = bed->server(1).tier_occupancy();
  EXPECT_GT(resilvered.hot_pages + resilvered.cold_pages + resilvered.zero_pages, 0u);

  // Healed partition: the store is untouched, so every cold page (and its
  // extents) must still be there when the transports reconnect.
  const TierOccupancy before = bed->server(1).tier_occupancy();
  bed->PartitionServer(1);
  bed->RestartServer(1, {.preserve_memory = true});
  const TierOccupancy healed = bed->server(1).tier_occupancy();
  EXPECT_EQ(healed.cold_pages, before.cold_pages);
  EXPECT_EQ(healed.logical_bytes, before.logical_bytes);
  check_all("after healed partition");
}

}  // namespace
}  // namespace rmp
