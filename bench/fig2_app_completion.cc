// Figure 2: completion time of the six applications under the four paging
// configurations of §4.1 —
//   NO RELIABILITY : 2 remote memory servers
//   PARITY LOGGING : 4 data servers + 1 parity server, 10% overflow memory
//   MIRRORING      : primary + mirror server
//   DISK           : the local DEC RZ55
// The paper's numbers are printed alongside for shape comparison.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace rmp {
namespace {

// Paper values read off Fig. 2 (seconds).
const std::map<std::string, std::map<std::string, double>> kPaperSeconds = {
    {"MVEC", {{"NO_RELIABILITY", 19.02}, {"PARITY_LOGGING", 23.37}, {"MIRRORING", 34.05},
              {"DISK", 25.15}}},
    {"GAUSS", {{"NO_RELIABILITY", 40.62}, {"PARITY_LOGGING", 49.80}, {"MIRRORING", 67.25},
               {"DISK", 79.61}}},
    {"QSORT", {{"NO_RELIABILITY", 74.26}, {"PARITY_LOGGING", 81.05}, {"MIRRORING", 100.67},
               {"DISK", 113.80}}},
    {"FFT", {{"NO_RELIABILITY", 108.02}, {"PARITY_LOGGING", 121.67}, {"MIRRORING", 138.86},
             {"DISK", 150.00}}},
    {"FILTER", {{"NO_RELIABILITY", 80.18}, {"PARITY_LOGGING", 94.07}, {"MIRRORING", 104.98},
                {"DISK", 126.61}}},
    {"CC", {{"NO_RELIABILITY", 101.69}, {"PARITY_LOGGING", 103.25}, {"MIRRORING", 117.31},
            {"DISK", 128.70}}},
};

double PaperValue(const std::string& workload, const std::string& policy) {
  auto row = kPaperSeconds.find(workload);
  if (row == kPaperSeconds.end()) {
    return 0.0;
  }
  auto cell = row->second.find(policy);
  return cell != row->second.end() ? cell->second : 0.0;
}

int Main() {
  std::printf("=== Figure 2: application completion time by paging policy ===\n");
  std::printf("(8 KB pages, 10 Mbit/s Ethernet, RZ55 disk, %u frames of app memory)\n\n",
              kPaperFrames);
  struct PolicySetup {
    Policy policy;
    int data_servers;
  };
  const PolicySetup setups[] = {
      {Policy::kNoReliability, 2},
      {Policy::kParityLogging, 4},
      {Policy::kMirroring, 2},
      {Policy::kDisk, 0},
  };
  for (const auto& workload : MakePaperWorkloads()) {
    for (const PolicySetup& setup : setups) {
      PolicyRunConfig config;
      config.policy = setup.policy;
      config.data_servers = setup.data_servers;
      auto result = RunWorkloadUnderPolicy(*workload, config);
      if (!result.ok()) {
        std::printf("%-8s %-16s FAILED: %s\n", workload->info().name.c_str(),
                    std::string(PolicyName(setup.policy)).c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      PrintRow(result->workload, result->policy, result->etime_s,
               PaperValue(result->workload, result->policy));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
