// End-to-end tests of the real TCP transport: a MemoryServer behind a
// TcpServer on loopback, driven by TcpTransport clients — the deployment
// shape of the paper's user-level server (§3.2).

#include "src/transport/tcp.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

// All sessions share one server object (thread-safe), mirroring one
// workstation's donated memory.
struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryServerParams params;
    params.name = "tcp-server";
    params.capacity_pages = 256;
    server_ = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(0, [this]() -> std::unique_ptr<MessageHandler> {
      return std::make_unique<ForwardingHandler>(server_);
    });
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    tcp_server_ = std::move(*started);
  }

  Result<std::unique_ptr<TcpTransport>> Connect() {
    return TcpTransport::Connect("127.0.0.1", tcp_server_->port());
  }

  std::shared_ptr<MemoryServer> server_;
  std::unique_ptr<TcpServer> tcp_server_;
};

TEST_F(TcpTest, ConnectAndQueryLoad) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Call(MakeLoadQuery(1));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kLoadReport);
  EXPECT_EQ(reply->aux, 256u);
}

TEST_F(TcpTest, PageRoundTripOverRealSockets) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 4));
  ASSERT_TRUE(alloc.ok());
  ASSERT_EQ(alloc->status_code(), ErrorCode::kOk);
  PageBuffer page;
  FillPattern(page.span(), 4242);
  auto ack = (*client)->Call(MakePageOut(2, alloc->slot, page.span()));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->status_code(), ErrorCode::kOk);
  auto pagein = (*client)->Call(MakePageIn(3, alloc->slot));
  ASSERT_TRUE(pagein.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), 4242));
}

TEST_F(TcpTest, ManySequentialPages) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 64));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  for (uint64_t i = 0; i < 64; ++i) {
    FillPattern(page.span(), i);
    auto ack = (*client)->Call(MakePageOut(100 + i, alloc->slot + i, page.span()));
    ASSERT_TRUE(ack.ok()) << i;
  }
  for (uint64_t i = 0; i < 64; ++i) {
    auto pagein = (*client)->Call(MakePageIn(200 + i, alloc->slot + i));
    ASSERT_TRUE(pagein.ok()) << i;
    EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), i)) << i;
  }
}

TEST_F(TcpTest, TwoClientsShareOneServer) {
  auto a = Connect();
  auto b = Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto alloc_a = (*a)->Call(MakeAllocRequest(1, 8));
  auto alloc_b = (*b)->Call(MakeAllocRequest(1, 8));
  ASSERT_TRUE(alloc_a.ok());
  ASSERT_TRUE(alloc_b.ok());
  EXPECT_NE(alloc_a->slot, alloc_b->slot);  // Distinct swap space.
  PageBuffer page_a;
  PageBuffer page_b;
  FillPattern(page_a.span(), 1);
  FillPattern(page_b.span(), 2);
  ASSERT_TRUE((*a)->Call(MakePageOut(2, alloc_a->slot, page_a.span())).ok());
  ASSERT_TRUE((*b)->Call(MakePageOut(2, alloc_b->slot, page_b.span())).ok());
  auto in_a = (*a)->Call(MakePageIn(3, alloc_a->slot));
  auto in_b = (*b)->Call(MakePageIn(3, alloc_b->slot));
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(in_a->payload), 1));
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(in_b->payload), 2));
  EXPECT_GE(tcp_server_->connections_served(), 2);
}

TEST_F(TcpTest, ServerShutdownSurfacesUnavailable) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
  tcp_server_->Shutdown();
  auto reply = (*client)->Call(MakeLoadQuery(2));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE((*client)->connected());
}

TEST_F(TcpTest, ConnectToClosedPortFails) {
  tcp_server_->Shutdown();
  const uint16_t dead_port = tcp_server_->port();
  auto client = TcpTransport::Connect("127.0.0.1", dead_port);
  EXPECT_FALSE(client.ok());
}

TEST_F(TcpTest, BadHostRejected) {
  auto client = TcpTransport::Connect("not-an-ip", 1);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), ErrorCode::kInvalidArgument);
}

// --- Authentication (§3.1's access restriction, modernized) -----------------

class TcpAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryServerParams params;
    params.capacity_pages = 64;
    server_ = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(
        0,
        [this] {
          return std::unique_ptr<MessageHandler>(new ForwardingHandler(server_));
        },
        /*required_token=*/"hunter2");
    ASSERT_TRUE(started.ok());
    tcp_server_ = std::move(*started);
  }

  std::shared_ptr<MemoryServer> server_;
  std::unique_ptr<TcpServer> tcp_server_;
};

TEST_F(TcpAuthTest, CorrectTokenIsAccepted) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "hunter2");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

TEST_F(TcpAuthTest, WrongTokenIsRejected) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "wrong");
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TcpAuthTest, UnauthenticatedRequestsAreRefused) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port());  // No token sent.
  ASSERT_TRUE(client.ok());  // TCP connect succeeds...
  auto reply = (*client)->Call(MakeLoadQuery(1));
  ASSERT_TRUE(reply.ok());
  // ...but every request is refused until AUTH.
  EXPECT_EQ(reply->type, MessageType::kErrorReply);
  EXPECT_EQ(reply->status_code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TcpAuthTest, OpenServerIgnoresAuthRequirement) {
  // A server started WITHOUT a token accepts token-presenting clients too.
  MemoryServerParams params;
  params.capacity_pages = 64;
  auto open_server = std::make_shared<MemoryServer>(params);
  auto started = TcpServer::Start(0, [open_server] {
    return std::unique_ptr<MessageHandler>(new ForwardingHandler(open_server));
  });
  ASSERT_TRUE(started.ok());
  auto client = TcpTransport::Connect("127.0.0.1", (*started)->port(), "any-token");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

TEST_F(TcpTest, LocalhostAliasResolves) {
  auto client = TcpTransport::Connect("localhost", tcp_server_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

// --- Pipelining: many requests outstanding on one connection ----------------

TEST_F(TcpTest, PipelinedBatchRoundTrip) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 32));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  std::vector<RpcFuture> outs;
  for (uint64_t i = 0; i < 32; ++i) {
    FillPattern(page.span(), 900 + i);
    outs.push_back((*client)->CallAsync(MakePageOut(10 + i, alloc->slot + i, page.span())));
  }
  for (uint64_t i = 0; i < 32; ++i) {
    auto ack = outs[i].Wait();
    ASSERT_TRUE(ack.ok()) << i << ": " << ack.status().ToString();
    EXPECT_EQ(ack->status_code(), ErrorCode::kOk) << i;
  }
  std::vector<RpcFuture> ins;
  for (uint64_t i = 0; i < 32; ++i) {
    ins.push_back((*client)->CallAsync(MakePageIn(50 + i, alloc->slot + i)));
  }
  for (uint64_t i = 0; i < 32; ++i) {
    auto reply = ins[i].Wait();
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status().ToString();
    EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(reply->payload), 900 + i)) << i;
  }
  EXPECT_EQ((*client)->inflight(), 0u);
}

TEST_F(TcpTest, OutOfOrderRepliesAreDemultiplexed) {
  // A multi-worker session may emit replies out of request order; the client
  // must route each reply to its own future by request_id.
  auto started = TcpServer::Start(
      0,
      [this] { return std::unique_ptr<MessageHandler>(new ForwardingHandler(server_)); },
      /*required_token=*/"", /*session_workers=*/4);
  ASSERT_TRUE(started.ok());
  auto client = TcpTransport::Connect("127.0.0.1", (*started)->port());
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 2));
  ASSERT_TRUE(alloc.ok());
  PageBuffer slow_page;
  PageBuffer fast_page;
  FillPattern(slow_page.span(), 7);
  FillPattern(fast_page.span(), 8);
  ASSERT_TRUE((*client)->Call(MakePageOut(2, alloc->slot, slow_page.span())).ok());
  ASSERT_TRUE((*client)->Call(MakePageOut(3, alloc->slot + 1, fast_page.span())).ok());

  server_->SetSlotDelayForTest(alloc->slot, 250'000);  // 250 ms.
  RpcFuture slow = (*client)->CallAsync(MakePageIn(4, alloc->slot));
  RpcFuture fast = (*client)->CallAsync(MakePageIn(5, alloc->slot + 1));
  auto fast_reply = fast.Wait();  // Overtakes the stalled request.
  ASSERT_TRUE(fast_reply.ok()) << fast_reply.status().ToString();
  EXPECT_EQ(fast_reply->request_id, 5u);
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(fast_reply->payload), 8));
  // The slow request is still held by its worker's injected delay: the fast
  // reply genuinely arrived first, out of issue order.
  EXPECT_FALSE(slow.ready());
  auto slow_reply = slow.Wait();
  ASSERT_TRUE(slow_reply.ok()) << slow_reply.status().ToString();
  EXPECT_EQ(slow_reply->request_id, 4u);
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(slow_reply->payload), 7));
  server_->SetSlotDelayForTest(alloc->slot, 0);
}

TEST_F(TcpTest, ServerShutdownFailsAllInFlight) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  // Stall the server on this slot so none of the in-flight requests can be
  // answered before the shutdown lands.
  server_->SetSlotDelayForTest(alloc->slot, 200'000);  // 200 ms.
  std::vector<RpcFuture> futures;
  for (uint64_t i = 0; i < 8; ++i) {
    futures.push_back((*client)->CallAsync(MakePageIn(10 + i, alloc->slot)));
  }
  tcp_server_->Shutdown();
  for (auto& future : futures) {
    auto reply = future.Wait();
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  }
  EXPECT_FALSE((*client)->connected());
  EXPECT_EQ((*client)->inflight(), 0u);
  server_->SetSlotDelayForTest(alloc->slot, 0);
}

TEST_F(TcpTest, CloseWithOutstandingCallsFailsFutures) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  server_->SetSlotDelayForTest(alloc->slot, 200'000);  // 200 ms.
  std::vector<RpcFuture> futures;
  for (uint64_t i = 0; i < 4; ++i) {
    futures.push_back((*client)->CallAsync(MakePageIn(10 + i, alloc->slot)));
  }
  (*client)->Close();
  for (auto& future : futures) {
    EXPECT_EQ(future.Wait().status().code(), ErrorCode::kUnavailable);
  }
  EXPECT_FALSE((*client)->connected());
  server_->SetSlotDelayForTest(alloc->slot, 0);
}

TEST_F(TcpTest, DuplicateRequestIdIsRejected) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  FillPattern(page.span(), 3);
  ASSERT_TRUE((*client)->Call(MakePageOut(2, alloc->slot, page.span())).ok());
  server_->SetSlotDelayForTest(alloc->slot, 100'000);  // Keep #7 in flight.
  RpcFuture first = (*client)->CallAsync(MakePageIn(7, alloc->slot));
  RpcFuture dup = (*client)->CallAsync(MakePageIn(7, alloc->slot));
  // The duplicate is refused locally — a second in-flight use of the id would
  // make the reply demux ambiguous — and the original is unaffected.
  ASSERT_TRUE(dup.ready());
  EXPECT_EQ(dup.Wait().status().code(), ErrorCode::kInvalidArgument);
  auto reply = first.Wait();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(reply->payload), 3));
  server_->SetSlotDelayForTest(alloc->slot, 0);
}

}  // namespace
}  // namespace rmp
