#include "src/vm/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/util/checksum.h"

namespace rmp {
namespace {

constexpr uint32_t kTraceMagic = 0x54504d52;  // "RMPT"
constexpr uint32_t kTraceVersion = 1;

// RAII stdio handle.
struct File {
  explicit File(std::FILE* f) : f(f) {}
  ~File() {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  std::FILE* f;
};

}  // namespace

uint64_t AccessTrace::MaxPageExclusive() const {
  uint64_t max_page = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    max_page = std::max(max_page, vpage(i) + 1);
  }
  return max_page;
}

int64_t AccessTrace::CountWrites() const {
  int64_t writes = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    writes += is_write(i) ? 1 : 0;
  }
  return writes;
}

void AccessTrace::AttachTo(PagedVm* vm) {
  vm->SetAccessObserver([this](uint64_t vpage, bool write) { Add(vpage, write); });
}

Status AccessTrace::Save(const std::string& path) const {
  File file(std::fopen(path.c_str(), "wb"));
  if (file.f == nullptr) {
    return IoError("cannot open trace file for writing: " + path);
  }
  const uint64_t count = events_.size();
  const auto events_bytes = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(events_.data()), count * sizeof(uint64_t));
  const uint32_t crc = Crc32(events_bytes);
  if (std::fwrite(&kTraceMagic, sizeof(kTraceMagic), 1, file.f) != 1 ||
      std::fwrite(&kTraceVersion, sizeof(kTraceVersion), 1, file.f) != 1 ||
      std::fwrite(&count, sizeof(count), 1, file.f) != 1 ||
      (count > 0 && std::fwrite(events_.data(), sizeof(uint64_t), count, file.f) != count) ||
      std::fwrite(&crc, sizeof(crc), 1, file.f) != 1) {
    return IoError("short write to trace file: " + path);
  }
  return OkStatus();
}

Result<AccessTrace> AccessTrace::Load(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.f == nullptr) {
    return IoError("cannot open trace file: " + path);
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(&magic, sizeof(magic), 1, file.f) != 1 ||
      std::fread(&version, sizeof(version), 1, file.f) != 1 ||
      std::fread(&count, sizeof(count), 1, file.f) != 1) {
    return ProtocolError("trace file truncated header: " + path);
  }
  if (magic != kTraceMagic) {
    return ProtocolError("not a trace file: " + path);
  }
  if (version != kTraceVersion) {
    return ProtocolError("unsupported trace version " + std::to_string(version));
  }
  AccessTrace trace;
  trace.events_.resize(count);
  if (count > 0 && std::fread(trace.events_.data(), sizeof(uint64_t), count, file.f) != count) {
    return ProtocolError("trace file truncated events: " + path);
  }
  uint32_t stored_crc = 0;
  if (std::fread(&stored_crc, sizeof(stored_crc), 1, file.f) != 1) {
    return ProtocolError("trace file missing checksum: " + path);
  }
  const auto events_bytes = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(trace.events_.data()), count * sizeof(uint64_t));
  if (Crc32(events_bytes) != stored_crc) {
    return CorruptionError("trace checksum mismatch: " + path);
  }
  return trace;
}

Status AccessTrace::Replay(PagedVm* vm, TimeNs* now, double cpu_seconds) const {
  const double slice =
      events_.empty() ? 0.0 : cpu_seconds * kSecond / static_cast<double>(events_.size());
  double carry = 0.0;
  for (size_t i = 0; i < events_.size(); ++i) {
    carry += slice;
    const auto step = static_cast<DurationNs>(carry);
    carry -= static_cast<double>(step);
    *now += step;
    RMP_RETURN_IF_ERROR(vm->Touch(now, vpage(i), is_write(i)));
  }
  return OkStatus();
}

}  // namespace rmp
