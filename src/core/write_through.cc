#include "src/core/write_through.h"

#include <vector>

#include "src/util/logging.h"

namespace rmp {

Result<TimeNs> WriteThroughBackend::SendRemote(TimeNs now, uint64_t page_id,
                                               std::span<const uint8_t> data) {
  Location& loc = table_[page_id];
  if (loc.remote_valid) {
    ServerPeer& peer = cluster_.peer(loc.peer);
    if (peer.alive() || peer.transport().connected()) {
      auto advise = ReliablePageOut(loc.peer, loc.slot, data, &now);
      if (advise.ok()) {
        now = ChargePageTransferAsync(now, loc.peer);
        if (*advise) {
          peer.set_no_new_extents(true);
        }
        return now;
      }
      if (!IsRetryableError(advise.status())) {
        return advise.status();
      }
    }
    loc.remote_valid = false;
  }
  while (cluster_.AnyUsable()) {
    auto pick = PickPeer(&now);
    if (!pick.ok()) {
      break;
    }
    const size_t peer_index = *pick;
    ServerPeer& peer = cluster_.peer(peer_index);
    auto slot = TakeSlotOn(peer_index, &now);
    if (!slot.ok()) {
      if (slot.status().code() == ErrorCode::kNoSpace) {
        peer.set_stopped(true);
        continue;
      }
      if (IsRetryableError(slot.status())) {
        continue;
      }
      return slot.status();
    }
    auto advise = ReliablePageOut(peer_index, *slot, data, &now);
    if (!advise.ok()) {
      if (IsRetryableError(advise.status())) {
        continue;
      }
      return advise.status();
    }
    now = ChargePageTransferAsync(now, peer_index);
    if (*advise) {
      peer.set_no_new_extents(true);
    }
    loc.remote_valid = true;
    loc.peer = peer_index;
    loc.slot = *slot;
    return now;
  }
  // No server available: the disk copy alone still makes the write durable;
  // reads will come from disk until Recover()/a later pageout re-uploads.
  return now;
}

Result<TimeNs> WriteThroughBackend::PageOut(TimeNs now, uint64_t page_id,
                                            std::span<const uint8_t> data) {
  if (data.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  ++stats_.pageouts;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageOut, page_id, &now);
  // Both copies are written "in parallel" (§4.7): the network transfer and
  // the disk write overlap, so the pageout completes at the later of the two.
  auto remote_done = SendRemote(now, page_id, data);
  if (!remote_done.ok()) {
    return remote_done.status();
  }
  auto disk_done = disk_->PageOut(now, page_id, data);
  if (!disk_done.ok()) {
    return disk_done.status();
  }
  ++stats_.disk_transfers;
  stats_.disk_time += *disk_done - now;
  tracer_.Span(TraceStage::kDisk, now, *disk_done);
  now = std::max(*remote_done, *disk_done);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Result<TimeNs> WriteThroughBackend::PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  ++stats_.pageins;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageIn, page_id, &now);
  if (it->second.remote_valid) {
    ServerPeer& peer = cluster_.peer(it->second.peer);
    if (peer.alive() || peer.transport().connected()) {
      const Status status = ReliablePageIn(it->second.peer, it->second.slot, out, &now);
      if (status.ok()) {
        now = ChargePageTransfer(now, it->second.peer);
        stats_.paging_time += now - start;
        trace.set_ok();
        return now;
      }
      if (!IsRetryableError(status)) {
        return status;
      }
    }
    it->second.remote_valid = false;
  }
  // Degraded path: the write-through disk copy is always current.
  ++stats_.degraded_reads;
  auto done = disk_->PageIn(now, page_id, out);
  if (!done.ok()) {
    return done.status();
  }
  ++stats_.disk_transfers;
  stats_.disk_time += *done - now;
  tracer_.Span(TraceStage::kDisk, now, *done);
  now = *done;
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Result<uint64_t> WriteThroughBackend::RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  std::vector<uint64_t> lost;
  for (const auto& [page_id, loc] : table_) {
    if (loc.remote_valid && loc.peer == peer) {
      lost.push_back(page_id);
      if (lost.size() >= max_pages) {
        break;
      }
    }
  }
  PageBuffer buffer;
  for (const uint64_t page_id : lost) {
    // Invalidate first: SendRemote re-places instead of rewriting the dead
    // slot, and a page that finds no server stays disk-only (durable) and
    // is not re-discovered by the scan above.
    table_[page_id].remote_valid = false;
    auto read = disk_->PageIn(*now, page_id, buffer.span());
    if (!read.ok()) {
      return read.status();
    }
    *now = *read;
    auto sent = SendRemote(*now, page_id, buffer.span());
    if (!sent.ok()) {
      return sent.status();
    }
    *now = *sent;
    ++stats_.reconstructions;
  }
  return lost.size();
}

Status WriteThroughBackend::Recover(size_t peer_index, TimeNs* now) {
  uint64_t total = 0;
  while (true) {
    auto done = RepairStep(peer_index, kMaxBatchPages, now);
    if (!done.ok()) {
      return done.status();
    }
    if (*done == 0) {
      break;
    }
    total += *done;
  }
  RMP_LOG(kInfo) << "write-through: re-uploaded " << total << " pages after crash of peer "
                 << peer_index;
  return OkStatus();
}

}  // namespace rmp
