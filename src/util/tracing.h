// Page-lifecycle tracing (DESIGN.md §12).
//
// The paper's evaluation decomposes pageout/pagein cost stage by stage
// (queueing, wire transfer, server service, parity work); this module is the
// instrument that produces that decomposition from live runs. Each paging
// operation gets a trace id at the policy entry point; as the operation
// crosses retry/backoff, the fabric queue, the wire, protocol service, and
// parity or disk work, the charge helpers stamp spans onto it. Completed
// traces land in a bounded ring buffer (for TRACE_DUMP introspection),
// per-stage latency histograms in a MetricsRegistry (for percentiles), and —
// when an operation exceeds the slow-op threshold — a warning log line.
//
// All times are simulated TimeNs, so traces are bit-reproducible. TraceScope
// holds a pointer to the caller's running `now` variable and finalizes the
// trace with whatever value it has when the scope unwinds; a scope opened
// while another trace is active is inert (batch paths and recovery reuse the
// same primitives without double-tracing).

#ifndef SRC_UTIL_TRACING_H_
#define SRC_UTIL_TRACING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/config.h"
#include "src/util/metrics.h"
#include "src/util/slo.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace rmp {

enum class TraceOp { kPageOut = 0, kPageIn = 1 };
inline constexpr int kNumTraceOps = 2;

// Where an operation spent its time. kService is protocol processing (the
// per-message CPU cost the paper attributes to the server and stack), kQueue
// is waiting behind earlier transfers for the shared wire, kWire the
// transfer occupancy itself.
enum class TraceStage {
  kPolicy = 0,   // Policy bookkeeping not attributed to a finer stage.
  kBackoff = 1,  // Sleeping between retry attempts.
  kQueue = 2,    // Queued behind earlier transfers on the wire Resource.
  kWire = 3,     // Wire occupancy of this transfer.
  kService = 4,  // Protocol / server service time (modeled, client view).
  kParity = 5,   // Parity compute + parity-log traffic.
  kDisk = 6,     // Local-disk reads/writes (overflow, write-through).
  // Server-side stages (DESIGN.md §17): *measured* wall-clock spans recorded
  // in the server's span ring under the request's wire trace id and stitched
  // into the client record at TRACE_DUMP time. They decompose the single
  // inferred wire+service gap the client-side stages leave.
  kServerQueue = 7,    // Scheduler queue + lane wait before a worker picked it up.
  kServerService = 8,  // Handler execution, dispatch to reply built.
  kServerStore = 9,    // Store path: hot frame / cold decompress / dedup work.
  kServerDisk = 10,    // Cold-extent spill / unspill I/O.
};
inline constexpr int kNumTraceStages = 11;
// Stages measured server-side (wall clock) rather than in simulated time.
inline constexpr bool IsServerStage(TraceStage stage) {
  return static_cast<int>(stage) >= static_cast<int>(TraceStage::kServerQueue);
}

const char* TraceOpName(TraceOp op);
const char* TraceStageName(TraceStage stage);

struct TraceSpan {
  TraceStage stage = TraceStage::kPolicy;
  TimeNs start = 0;
  DurationNs duration = 0;
};

// One completed paging operation.
struct TraceRecord {
  uint64_t id = 0;
  TraceOp op = TraceOp::kPageOut;
  uint64_t page_id = 0;
  TimeNs start = 0;
  DurationNs total = 0;
  bool ok = false;
  std::vector<TraceSpan> spans;  // In recording order.

  // Sum of span durations attributed to `stage`.
  DurationNs StageTime(TraceStage stage) const;
};

struct PageTracerOptions {
  // Records the ring holds; 0 disables the ring (Begin returns 0, stage
  // histograms still feed).
  size_t ring_capacity = 1024;
  // Operations completing in >= this much simulated time get a warning log
  // line and bump the slow-op counter; 0 disables the check.
  DurationNs slow_op_ns = 0;
  // Spans beyond this per trace are counted but not stored (a pathological
  // retry storm should not balloon a ring entry).
  size_t max_spans = 64;
  // Head sampling (DESIGN.md §17): of every 1000 operations, this many open
  // a trace (ring record + wire trace-id propagation). >= 1000 traces every
  // operation (the pre-sampling behaviour). 0 disables the tracer entirely —
  // Begin and Span become branch-and-return, no lock, no histogram — so
  // tracing-off is provably off the hot path. Sampled-out operations (0 <
  // rate < 1000) still feed the client stage histograms; only the ring
  // record and the wire stamp are sampled.
  int sample_per_1k = 1000;
};

// Applies the `trace.*` Config keys (README: observability knobs) over
// `options`:
//   trace.ring          -> ring_capacity   (0 = no ring)
//   trace.slow_op_us    -> slow_op_ns      (0 = slow-op check disabled)
//   trace.sample_per_1k -> sample_per_1k   (0 = tracer disabled entirely)
//   trace.max_spans     -> max_spans
// Absent keys keep the current values.
Status ApplyTraceConfig(const Config& config, PageTracerOptions* options);

// Not copyable; hand out pointers. Thread-safe (one mutex — tracing is for
// observability, not a contended hot path), but only one trace is active at
// a time: Begin while a trace is open returns 0, and spans recorded outside
// any open trace still feed the stage histograms.
class PageTracer {
 public:
  explicit PageTracer(MetricsRegistry* registry = nullptr,
                      const PageTracerOptions& options = PageTracerOptions());
  PageTracer(const PageTracer&) = delete;
  PageTracer& operator=(const PageTracer&) = delete;

  // Opens a trace; returns its id, or 0 if one is already active (the caller
  // treats 0 as "inert": End(0, ...) is a no-op).
  uint64_t Begin(TraceOp op, uint64_t page_id, TimeNs now);

  // Stamps a span onto the active trace (if any) and the stage histogram.
  // Zero-length spans are dropped.
  void Span(TraceStage stage, TimeNs start, TimeNs end);

  // Closes trace `id`: computes the total, pushes the record into the ring,
  // feeds the per-op total histogram, and logs if over the slow threshold.
  void End(uint64_t id, TimeNs now, bool ok);

  // Stitches one server-recorded span into this tracer (DESIGN.md §17):
  // feeds the (server) stage histogram and, when the ring still holds the
  // record whose low 32 id bits match `trace_id`, appends the span to it.
  // `start` is server wall-clock time; `duration` is what percentiles see.
  void AttachServerSpan(uint32_t trace_id, TraceStage stage, TimeNs start, DurationNs duration);

  // The low 32 bits of the currently active trace id (0 = none). ServerPeer
  // reads this atomically on every RPC to stamp the wire frame; handing out
  // the atomic keeps the hot path at one relaxed load.
  const std::atomic<uint32_t>* wire_id() const { return &wire_id_; }

  // Replaces the options at runtime (Config-driven): resizes the ring
  // (clearing it) and re-arms sampling and the slow-op threshold. Any active
  // trace is abandoned.
  void Reconfigure(const PageTracerOptions& options);

  // Completed-trace latencies additionally feed this SLO window (not owned;
  // null detaches). With sampling, the window sees the sampled subset.
  void AttachSlo(SloTracker* slo);

  bool active() const;
  size_t size() const;           // Records currently held in the ring.
  int64_t total_traces() const;  // Traces ever completed.
  int64_t dropped() const;       // Ring overwrites (oldest records lost).
  int64_t slow_ops() const;

  // Ring contents, oldest first.
  std::vector<TraceRecord> Records() const;
  // JSON array of ring records (the TRACE_DUMP payload).
  std::string ToJson() const;

  void Reset();

  PageTracerOptions options() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return options_;
  }
  int64_t sampled_out() const;  // Begins skipped by head sampling.

 private:
  void PushLocked(TraceRecord&& record);

  PageTracerOptions options_;  // Guarded by mutex_ (Reconfigure rewrites it).
  MetricsRegistry* registry_;  // May be null: ring + log only.
  // Cached metric pointers (stable for the registry's lifetime).
  std::array<HistogramMetric*, kNumTraceStages> stage_histograms_{};
  std::array<HistogramMetric*, kNumTraceOps> total_histograms_{};
  std::array<Counter*, kNumTraceOps> op_counters_{};
  Counter* slow_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  SloTracker* slo_ = nullptr;

  // Hot-path fast flags, readable without mutex_: enabled_ is false only
  // when sampling is 0 (tracer hard-off); wire_id_ mirrors the active
  // trace's low 32 id bits for wire stamping.
  std::atomic<bool> enabled_{true};
  std::atomic<uint32_t> wire_id_{0};

  mutable std::mutex mutex_;
  bool active_ = false;
  TraceRecord current_;
  int64_t current_extra_spans_ = 0;
  uint64_t next_id_ = 1;
  uint64_t sample_seq_ = 0;  // Operations offered to Begin (sampling rotation).
  int64_t sampled_out_ = 0;
  std::vector<TraceRecord> ring_;
  size_t ring_next_ = 0;  // Next slot to (over)write.
  size_t ring_size_ = 0;
  int64_t total_traces_ = 0;
  int64_t dropped_ = 0;
  int64_t slow_ops_ = 0;
};

// RAII trace for one policy-level PageOut/PageIn. Holds a pointer to the
// caller's running simulated-time variable so the destructor closes the
// trace at whatever time the operation actually reached, on every exit path.
// Failure is the default; call set_ok() on the success path.
class TraceScope {
 public:
  TraceScope(PageTracer* tracer, TraceOp op, uint64_t page_id, const TimeNs* now)
      : tracer_(tracer), now_(now) {
    if (tracer_ != nullptr) {
      id_ = tracer_->Begin(op, page_id, *now_);
    }
  }
  ~TraceScope() {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->End(id_, *now_, ok_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_ok() { ok_ = true; }
  // Nonzero iff this scope owns the active trace.
  uint64_t id() const { return id_; }

 private:
  PageTracer* tracer_;
  const TimeNs* now_;
  uint64_t id_ = 0;
  bool ok_ = false;
};

// One server-side measured span (DESIGN.md §17). Times are the *server's*
// wall clock (steady-clock nanoseconds) — servers have no simulated time.
struct ServerSpan {
  uint32_t trace_id = 0;  // The wire trace id the request carried.
  TraceStage stage = TraceStage::kServerService;
  TimeNs start = 0;
  DurationNs duration = 0;
};

// Bounded, thread-safe ring of server-side spans. Each MemoryServer owns
// one; traced requests append, TRACE_DUMP (document 1) serializes it, and
// the client drains it for stitching. Append cost is one short mutex-guarded
// ring write, paid only by traced (sampled-in) requests.
class SpanRing {
 public:
  explicit SpanRing(size_t capacity = 4096);
  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  void Record(uint32_t trace_id, TraceStage stage, TimeNs start, DurationNs duration);

  // Ring contents, oldest first.
  std::vector<ServerSpan> Spans() const;
  // Spans() + Clear() in one critical section (the stitch pull).
  std::vector<ServerSpan> Drain();

  size_t size() const;
  int64_t dropped() const;  // Ring overwrites.
  size_t capacity() const;
  void SetCapacity(size_t capacity);  // Clears the ring.
  void Clear();

  // JSON array: [{"trace":..,"stage":"srv_service","start":..,"dur":..},...].
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  std::vector<ServerSpan> ring_;
  size_t ring_next_ = 0;
  size_t ring_size_ = 0;
  int64_t dropped_ = 0;
};

// Per-thread scratch carrying measurements across the layers of one traced
// request: the transport worker deposits the scheduler queue delay before
// invoking the handler, and the store internals accumulate store/disk time
// while `active` — so MessageHandler::Handle needs no side channel in its
// signature. Untraced requests never touch it beyond the `active` check.
struct ServerTraceScratch {
  bool active = false;
  int64_t queue_ns = 0;  // Scheduler queue + lane wait (set by the transport).
  int64_t store_ns = 0;  // Accumulated store-path time.
  int64_t disk_ns = 0;   // Accumulated spill/unspill I/O time.
};
ServerTraceScratch& ServerScratch();

}  // namespace rmp

#endif  // SRC_UTIL_TRACING_H_
