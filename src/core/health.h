// Cluster health monitor: the membership half of the self-healing layer
// (DESIGN.md §11).
//
// The paper's client notices a dead server only when an RPC against it fails
// (§2.2); until then a crashed peer silently holds pages that no longer
// exist. The HealthMonitor closes that gap with periodic lightweight
// HEARTBEAT probes and a per-peer state machine:
//
//   ALIVE --(missed >= suspect_after)--> SUSPECT
//   SUSPECT --(missed >= dead_after, or connection down)--> DEAD
//   DEAD --(heartbeat answered)--> REJOINING
//   REJOINING --(RepairCoordinator re-admits)--> ALIVE
//   SUSPECT --(heartbeat answered)--> ALIVE
//
// A SUSPECT peer is stopped (no new placements) but still serves reads; a
// DEAD peer is marked dead so every policy lays in its degraded path at once
// instead of discovering the crash one failed RPC at a time. The heartbeat
// ack carries the server's *incarnation*, so REJOINING distinguishes a
// rebooted-empty server (incarnation changed: its pages are gone and the
// RepairCoordinator must finish rebuilding before re-admission) from a
// healed network partition (incarnation unchanged: pages intact).
//
// Timing is driven entirely by the caller's simulated clock via Tick(), so
// conformance tests replay deterministically from a seed. For live (TCP)
// deployments StartBackgroundPump() runs the same Tick loop on a wall-clock
// thread; the sanitizer suites exercise that mode.

#ifndef SRC_CORE_HEALTH_H_
#define SRC_CORE_HEALTH_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/cluster.h"
#include "src/util/events.h"
#include "src/util/units.h"

namespace rmp {

enum class PeerHealth { kAlive, kSuspect, kDead, kRejoining };

std::string_view PeerHealthName(PeerHealth health);

struct HealthParams {
  // Period between HEARTBEAT probes to each peer (simulated time).
  DurationNs heartbeat_interval = Millis(50);
  // Consecutive missed heartbeats before ALIVE degrades to SUSPECT.
  int suspect_after = 1;
  // Consecutive missed heartbeats before the peer is declared DEAD. A
  // heartbeat that fails with the connection down skips straight here —
  // the process is gone, not just a message.
  int dead_after = 3;
};

// One observation the monitor wants the RepairCoordinator (or a test) to
// react to. State transitions carry from != to; an overload observation
// (ADVISE_STOP appearing or clearing on a healthy peer's ack) carries
// from == to == kAlive with `overloaded` holding the new advice.
struct HealthEvent {
  size_t peer = 0;
  PeerHealth from = PeerHealth::kAlive;
  PeerHealth to = PeerHealth::kAlive;
  // Set on transitions into kRejoining: the incarnation changed while the
  // peer was away, so its memory is empty (reboot), as opposed to a healed
  // partition with pages intact.
  bool rebooted = false;
  // Meaningful on from == to == kAlive events: the peer's latest ADVISE_STOP
  // advice. true asks the coordinator to drain it (§2.1).
  bool overloaded = false;
};

struct HealthStats {
  int64_t heartbeats_sent = 0;
  int64_t heartbeats_missed = 0;
  int64_t transitions = 0;
};

class HealthMonitor {
 public:
  // `cluster` must outlive the monitor. Peers appended to the cluster later
  // (elastic scale-out, DESIGN.md §16) are picked up on the next Tick().
  explicit HealthMonitor(Cluster* cluster, const HealthParams& params = HealthParams());
  ~HealthMonitor();  // Stops the background pump if running.

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Deterministic pump: sends every heartbeat due at simulated time `now`,
  // applies the state machine, and appends resulting events to *events
  // (which is not cleared). Also flips the peers' coarse flags: a SUSPECT
  // peer is stopped, a DEAD peer is marked dead. Thread-safe.
  void Tick(TimeNs now, std::vector<HealthEvent>* events);

  // The PR-3 failure-detector signal: an RPC against `peer` just failed
  // after retries. A dead connection is hard evidence (straight to DEAD);
  // otherwise it counts like one missed heartbeat.
  void ReportUnavailable(size_t peer, std::vector<HealthEvent>* events);

  // REJOINING -> ALIVE once the RepairCoordinator has re-admitted the peer
  // (ServerPeer::Reset() done, swap space re-grantable).
  void MarkReadmitted(size_t peer);

  PeerHealth health(size_t peer) const;
  HealthStats stats() const;

  // Flight recorder (DESIGN.md §17): every transition appends one kHealth
  // event to `journal`. Not owned; null (the default) disables the hook.
  void AttachEvents(EventJournal* journal) { events_journal_ = journal; }

  // Wall-clock mode for live deployments: a thread calls Tick() every
  // `wall_period`, advancing the internal simulated clock by one heartbeat
  // interval per tick. Events are delivered to `on_event` (may be null)
  // outside the monitor lock. The deterministic Tick() API must not be
  // mixed with a running pump.
  void StartBackgroundPump(DurationNs wall_period,
                           std::function<void(const HealthEvent&)> on_event = nullptr);
  void StopBackgroundPump();

 private:
  struct PeerState {
    PeerHealth health = PeerHealth::kAlive;
    TimeNs next_heartbeat = 0;  // 0 = due at the first tick.
    int missed = 0;
    uint64_t incarnation = 0;  // Last seen; 0 = never heard from.
    bool overload_advised = false;
    bool stopped_by_monitor = false;  // We stopped it; only we un-stop it.
  };

  // All Locked helpers require mutex_ held.
  void ProbeLocked(size_t peer, std::vector<HealthEvent>* events);
  void MissLocked(size_t peer, bool connection_down, std::vector<HealthEvent>* events);
  void TransitionLocked(size_t peer, PeerHealth to, bool rebooted,
                        std::vector<HealthEvent>* events);

  Cluster* cluster_;
  HealthParams params_;
  EventJournal* events_journal_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<PeerState> peers_;
  HealthStats stats_;

  std::thread pump_;
  std::condition_variable pump_cv_;
  std::mutex pump_mutex_;
  bool pump_stop_ = false;
  TimeNs pump_clock_ = 0;
};

}  // namespace rmp

#endif  // SRC_CORE_HEALTH_H_
