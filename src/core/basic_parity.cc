#include "src/core/basic_parity.h"

#include <algorithm>
#include <cassert>

#include "src/util/logging.h"

namespace rmp {

namespace {
constexpr uint64_t kEmptyCell = ~0ull;
}  // namespace

BasicParityBackend::BasicParityBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                                       const RemotePagerParams& params, size_t parity_peer,
                                       size_t data_columns)
    : RemotePagerBase(std::move(cluster), std::move(fabric), params), parity_peer_(parity_peer) {
  assert(parity_peer_ < cluster_.size());
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (i != parity_peer_ && (data_columns == 0 || columns_.size() < data_columns)) {
      columns_.push_back(i);
    }
  }
  assert(!columns_.empty());
}

Status BasicParityBackend::EnsureRow(uint64_t row, TimeNs* now) {
  // The stripe geometry assumes this backend is the sole client of its
  // servers starting from a fresh state, so extents come back row-aligned:
  // slot r on every server is stripe row r.
  while (rows_provisioned_ <= row) {
    for (const size_t column : columns_) {
      RMP_RETURN_IF_ERROR(cluster_.peer(column).AllocExtent(params_.alloc_extent_pages));
    }
    RMP_RETURN_IF_ERROR(cluster_.peer(parity_peer_).AllocExtent(params_.alloc_extent_pages));
    *now = ChargeControl(*now);
    rows_provisioned_ += params_.alloc_extent_pages;
  }
  return OkStatus();
}

Result<TimeNs> BasicParityBackend::PageOut(TimeNs now, uint64_t page_id,
                                           std::span<const uint8_t> data) {
  if (data.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  ++stats_.pageouts;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageOut, page_id, &now);
  Position pos;
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    pos = it->second;
  } else {
    const uint64_t seq = next_sequence_++;
    pos.column = static_cast<size_t>(seq % columns_.size());
    pos.row = seq / columns_.size();
    RMP_RETURN_IF_ERROR(EnsureRow(pos.row, &now));
    table_.emplace(page_id, pos);
    auto& row_cells = row_pages_[pos.row];
    row_cells.resize(columns_.size(), kEmptyCell);
    row_cells[pos.column] = page_id;
  }
  // Step 1: data server stores the page and returns old XOR new.
  const size_t holder = columns_[pos.column];
  auto delta = cluster_.peer(holder).DeltaPageOutTo(pos.row, data);
  if (!delta.ok()) {
    if (!ShouldRetry(holder, delta.status())) {
      return delta.status();
    }
    // A message was lost around the delta store. The ambiguity matters
    // here: if the store applied but its reply was dropped, re-running
    // DeltaPageOut returns old XOR new = 0 and the parity would silently
    // go stale. Recover with idempotent operations instead: plain-store
    // the page, then recompute the whole row's parity from its cells.
    cluster_.peer(holder).mark_alive();
    ChargeBackoff(1, &now);
    auto advise = ReliablePageOut(holder, pos.row, data, &now);
    if (!advise.ok()) {
      return advise.status();
    }
    now = ChargePageTransfer(now, holder);
    const TimeNs parity_start = now;
    RMP_RETURN_IF_ERROR(RefreshParityRow(pos.row, &now));
    tracer_.Span(TraceStage::kParity, parity_start, now);
    stats_.paging_time += now - start;
    trace.set_ok();
    return now;
  }
  now = ChargePageTransfer(now, holder);
  const TimeNs parity_start = now;
  // Step 2: the delta updates the parity server in place. On the paper's
  // shared Ethernet this second transfer serializes behind the first; the
  // client must also wait for it before discarding the page (§2.2).
  const Status merged = cluster_.peer(parity_peer_).XorMergeOn(pos.row, delta->span());
  if (!merged.ok()) {
    if (!ShouldRetry(parity_peer_, merged)) {
      return merged;
    }
    // Same ambiguity as the delta store: the merge may or may not have
    // folded in. XOR-merging twice would corrupt the parity, so rebuild
    // the row's parity from scratch.
    cluster_.peer(parity_peer_).mark_alive();
    ChargeBackoff(1, &now);
    RMP_RETURN_IF_ERROR(RefreshParityRow(pos.row, &now));
    tracer_.Span(TraceStage::kParity, parity_start, now);
    stats_.paging_time += now - start;
    trace.set_ok();
    return now;
  }
  now = ChargePageTransfer(now, parity_peer_);
  tracer_.Span(TraceStage::kParity, parity_start, now);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Status BasicParityBackend::RefreshParityRow(uint64_t row, TimeNs* now) {
  auto cells_it = row_pages_.find(row);
  if (cells_it == row_pages_.end()) {
    return InternalError("parity refresh of an unwritten row");
  }
  const std::vector<uint64_t>& cells = cells_it->second;
  PageBuffer xor_buf;
  PageBuffer page;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c >= cells.size() || cells[c] == kEmptyCell) {
      continue;  // Cell never written; it contributes zeroes to the parity.
    }
    RMP_RETURN_IF_ERROR(ReliablePageIn(columns_[c], row, page.span(), now));
    *now = ChargePageTransfer(*now, columns_[c]);
    xor_buf.XorWith(page.span());
  }
  auto advise = ReliablePageOut(parity_peer_, row, xor_buf.span(), now);
  if (!advise.ok()) {
    return advise.status();
  }
  *now = ChargePageTransfer(*now, parity_peer_);
  return OkStatus();
}

Result<TimeNs> BasicParityBackend::PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  ++stats_.pageins;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageIn, page_id, &now);
  const Position pos = it->second;
  ServerPeer& holder = cluster_.peer(columns_[pos.column]);
  if (holder.alive() || holder.transport().connected()) {
    const Status status = ReliablePageIn(columns_[pos.column], pos.row, out, &now);
    if (status.ok()) {
      now = ChargePageTransfer(now, columns_[pos.column]);
      stats_.paging_time += now - start;
      trace.set_ok();
      return now;
    }
    if (!IsRetryableError(status)) {
      return status;
    }
  }
  // Degraded read: parity row XOR surviving columns of the stripe.
  ++stats_.degraded_reads;
  const TimeNs parity_start = now;
  PageBuffer xor_buf;
  RMP_RETURN_IF_ERROR(ReliablePageIn(parity_peer_, pos.row, xor_buf.span(), &now));
  now = ChargePageTransfer(now, parity_peer_);
  PageBuffer page;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c == pos.column) {
      continue;
    }
    auto& row_cells = row_pages_[pos.row];
    if (row_cells.empty() || row_cells[c] == kEmptyCell) {
      continue;  // Cell never written; it contributes zeroes to the parity.
    }
    RMP_RETURN_IF_ERROR(ReliablePageIn(columns_[c], pos.row, page.span(), &now));
    now = ChargePageTransfer(now, columns_[c]);
    xor_buf.XorWith(page.span());
  }
  std::copy(xor_buf.span().begin(), xor_buf.span().end(), out.begin());
  tracer_.Span(TraceStage::kParity, parity_start, now);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Status BasicParityBackend::Recover(size_t peer_index, TimeNs* now) {
  size_t dead_column = columns_.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == peer_index) {
      dead_column = c;
      break;
    }
  }
  if (dead_column == columns_.size()) {
    return InvalidArgumentError("peer is not a data column");
  }
  if (!spare_peer_.has_value()) {
    return FailedPreconditionError("no spare server registered for rebuild");
  }
  const size_t spare = *spare_peer_;
  ServerPeer& spare_server = cluster_.peer(spare);
  // Provision the spare with the full row range.
  for (uint64_t provisioned = 0; provisioned < rows_provisioned_;
       provisioned += params_.alloc_extent_pages) {
    RMP_RETURN_IF_ERROR(spare_server.AllocExtent(params_.alloc_extent_pages));
  }
  *now = ChargeControl(*now);

  PageBuffer xor_buf;
  PageBuffer page;
  int64_t rebuilt = 0;
  for (auto& [row, cells] : row_pages_) {
    if (cells[dead_column] == kEmptyCell) {
      continue;  // Nothing of the dead column in this stripe row.
    }
    xor_buf.Clear();
    RMP_RETURN_IF_ERROR(ReliablePageIn(parity_peer_, row, xor_buf.span(), now));
    *now = ChargePageTransfer(*now, parity_peer_);
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c == dead_column || cells[c] == kEmptyCell) {
        continue;
      }
      RMP_RETURN_IF_ERROR(ReliablePageIn(columns_[c], row, page.span(), now));
      *now = ChargePageTransfer(*now, columns_[c]);
      xor_buf.XorWith(page.span());
    }
    auto advise = ReliablePageOut(spare, row, xor_buf.span(), now);
    if (!advise.ok()) {
      return advise.status();
    }
    *now = ChargePageTransfer(*now, spare);
    ++rebuilt;
    ++stats_.reconstructions;
  }
  columns_[dead_column] = spare;
  spare_peer_.reset();
  RMP_LOG(kInfo) << "basic parity: rebuilt " << rebuilt << " rows onto "
                 << spare_server.name();
  return OkStatus();
}

Result<uint64_t> BasicParityBackend::RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  (void)max_pages;
  bool is_column = false;
  for (const size_t column : columns_) {
    if (column == peer) {
      is_column = true;
      break;
    }
  }
  if (!is_column) {
    return 0;  // Already swapped to the spare, or not a data column.
  }
  const int64_t before = stats_.reconstructions;
  RMP_RETURN_IF_ERROR(Recover(peer, now));
  // Even an empty column rebuild counts as one quantum of progress so the
  // job completes on the next call, when the column swap makes this a no-op.
  return static_cast<uint64_t>(std::max<int64_t>(1, stats_.reconstructions - before));
}

}  // namespace rmp
