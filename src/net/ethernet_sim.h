// Packet-level simulation of CSMA/CD with binary exponential backoff.
//
// Validates the analytic EthernetModel contention curve and regenerates the
// §4.6 observation directly: as competing stations saturate a 10 Mbit/s
// segment, collisions multiply, the effective bandwidth available to the
// paging client falls far below the idle-network figure, and per-station
// goodput collapses. The simulation is slot-synchronous (51.2 us contention
// slots, the 802.3 figure), which is the standard textbook abstraction for
// this protocol (Tanenbaum §3, cited by the paper).

#ifndef SRC_NET_ETHERNET_SIM_H_
#define SRC_NET_ETHERNET_SIM_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/units.h"

namespace rmp {

struct EthernetSimParams {
  double bandwidth_mbps = 10.0;
  DurationNs slot_time = Micros(51.2);
  uint32_t frame_bytes = 1518;   // On-wire frame size including headers.
  int max_attempts = 16;         // 802.3: drop the frame after 16 collisions.
  int max_backoff_exponent = 10; // Backoff window caps at 2^10 slots.
};

struct StationStats {
  int64_t frames_delivered = 0;
  int64_t frames_dropped = 0;
  int64_t collisions = 0;
  double goodput_mbps = 0.0;
};

struct EthernetSimResult {
  std::vector<StationStats> stations;
  int64_t total_frames_delivered = 0;
  int64_t total_collisions = 0;
  double total_throughput_mbps = 0.0;
  double channel_efficiency = 0.0;  // Fraction of time carrying good frames.
  DurationNs simulated_time = 0;
};

class EthernetSimulator {
 public:
  explicit EthernetSimulator(const EthernetSimParams& params = EthernetSimParams())
      : params_(params) {}

  // Every station always has a frame ready (worst case; models the paper's
  // "paging itself uses all the bandwidth it can get" plus saturated
  // background traffic).
  EthernetSimResult RunSaturated(int stations, DurationNs duration, uint64_t seed) const;

  // Stations receive Poisson frame arrivals totalling `offered_load` times
  // the channel capacity, split evenly. Sweeping offered_load > 1 exposes
  // the throughput-collapse region.
  EthernetSimResult RunPoisson(int stations, double offered_load, DurationNs duration,
                               uint64_t seed) const;

  const EthernetSimParams& params() const { return params_; }

 private:
  EthernetSimResult Run(int stations, double per_station_arrival_rate_fps, bool saturated,
                        DurationNs duration, uint64_t seed) const;

  EthernetSimParams params_;
};

}  // namespace rmp

#endif  // SRC_NET_ETHERNET_SIM_H_
