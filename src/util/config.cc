#include "src/util/config.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rmp {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<Config> Config::Parse(std::string_view text) {
  Config config;
  size_t line_start = 0;
  int line_no = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) {
      line_end = text.size();
    }
    ++line_no;
    std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;

    const size_t comment = line.find('#');
    if (comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = TrimWhitespace(line);
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("config line " + std::to_string(line_no) + ": missing '='");
    }
    const std::string key(TrimWhitespace(line.substr(0, eq)));
    const std::string value(TrimWhitespace(line.substr(eq + 1)));
    if (key.empty()) {
      return InvalidArgumentError("config line " + std::to_string(line_no) + ": empty key");
    }
    config.values_[key] = value;
  }
  return config;
}

Result<Config> Config::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return IoError("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key, std::string fallback) const {
  auto it = values_.find(key);
  return it != values_.end() ? it->second : std::move(fallback);
}

Result<int64_t> Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 0);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("config key '" + key + "': not an integer: " + it->second);
  }
  return value;
}

Result<double> Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return InvalidArgumentError("config key '" + key + "': not a number: " + it->second);
  }
  return value;
}

Result<bool> Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return InvalidArgumentError("config key '" + key + "': not a bool: " + v);
}

void Config::Set(const std::string& key, std::string value) { values_[key] = std::move(value); }

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace rmp
