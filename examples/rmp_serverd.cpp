// Standalone remote memory server — the deployable half of the system, the
// paper's "user level program listening to a socket" (§3.2). Run one per
// donating workstation; point paging clients at host:port (see
// tcp_cluster.cpp for the client side).
//
//   $ ./rmp_server [config-file]
//
// Config keys (key = value, '#' comments):
//   port           = 7070     # 0 picks an ephemeral port
//   capacity_mb    = 64       # donated main memory
//   name           = ws0
//   verbose        = false
//   run_seconds    = 0        # 0 = run until killed
//   auth_token     =          # non-empty: require AUTH from every client
// plus the store.* tuning keys (sharding, compressed cold tier, spill —
// see the README knob table and ApplyStoreConfig).

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/server/memory_server.h"
#include "src/transport/tcp.h"
#include "src/util/config.h"
#include "src/util/logging.h"

namespace rmp {
namespace {

struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

int Main(int argc, char** argv) {
  Config config;
  if (argc > 1) {
    auto loaded = Config::Load(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "config: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    config = *loaded;
  }
  auto port = config.GetInt("port", 7070);
  auto capacity_mb = config.GetInt("capacity_mb", 64);
  auto run_seconds = config.GetInt("run_seconds", 0);
  auto verbose = config.GetBool("verbose", false);
  if (!port.ok() || !capacity_mb.ok() || !run_seconds.ok() || !verbose.ok()) {
    std::fprintf(stderr, "bad config value\n");
    return 1;
  }
  SetLogLevel(*verbose ? LogLevel::kDebug : LogLevel::kWarning);

  MemoryServerParams server_params;
  server_params.name = config.GetString("name", "rmp-server");
  server_params.capacity_pages = static_cast<uint64_t>(*capacity_mb) * kMiB / kPageSize;
  if (auto store = ApplyStoreConfig(config, &server_params); !store.ok()) {
    std::fprintf(stderr, "store config: %s\n", store.ToString().c_str());
    return 1;
  }
  auto server = std::make_shared<MemoryServer>(server_params);

  auto listener = TcpServer::Start(
      static_cast<uint16_t>(*port),
      [server] { return std::unique_ptr<MessageHandler>(new ForwardingHandler(server)); },
      config.GetString("auth_token", ""));
  if (!listener.ok()) {
    std::fprintf(stderr, "listen: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: donating %lld MB (%llu pages) on 127.0.0.1:%u\n",
              server_params.name.c_str(), static_cast<long long>(*capacity_mb),
              (unsigned long long)server_params.capacity_pages, (*listener)->port());

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(*run_seconds);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    if (*run_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    if (*verbose) {
      std::printf("%s: %llu live pages, %llu free, %d connections\n",
                  server_params.name.c_str(), (unsigned long long)server->live_pages(),
                  (unsigned long long)server->free_pages(), (*listener)->connections_served());
    }
  }
  (*listener)->Shutdown();
  std::printf("%s: served %lld pageouts, %lld pageins\n", server_params.name.c_str(),
              (long long)server->stats().pageouts_served,
              (long long)server->stats().pageins_served);
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
