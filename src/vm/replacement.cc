#include "src/vm/replacement.h"

#include <cassert>

namespace rmp {

std::string_view ReplacementKindName(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return "LRU";
    case ReplacementKind::kClock:
      return "CLOCK";
    case ReplacementKind::kFifo:
      return "FIFO";
  }
  return "UNKNOWN";
}

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>();
    case ReplacementKind::kClock:
      return std::make_unique<ClockPolicy>();
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>();
  }
  return nullptr;
}

// --- LRU ---------------------------------------------------------------

void LruPolicy::OnInsert(uint32_t frame) {
  assert(where_.count(frame) == 0);
  recency_.push_front(frame);
  where_[frame] = recency_.begin();
}

void LruPolicy::OnAccess(uint32_t frame) {
  auto it = where_.find(frame);
  assert(it != where_.end());
  recency_.splice(recency_.begin(), recency_, it->second);
}

void LruPolicy::OnEvict(uint32_t frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) {
    return;
  }
  recency_.erase(it->second);
  where_.erase(it);
}

uint32_t LruPolicy::Victim() {
  assert(!recency_.empty());
  return recency_.back();
}

// --- CLOCK -------------------------------------------------------------

void ClockPolicy::OnInsert(uint32_t frame) {
  assert(where_.count(frame) == 0);
  // Reuse a dead ring slot if one exists; otherwise grow the ring.
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (!ring_[i].live) {
      ring_[i] = Slot{frame, true, true};
      where_[frame] = i;
      return;
    }
  }
  ring_.push_back(Slot{frame, true, true});
  where_[frame] = ring_.size() - 1;
}

void ClockPolicy::OnAccess(uint32_t frame) {
  auto it = where_.find(frame);
  assert(it != where_.end());
  ring_[it->second].referenced = true;
}

void ClockPolicy::OnEvict(uint32_t frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) {
    return;
  }
  ring_[it->second].live = false;
  where_.erase(it);
}

uint32_t ClockPolicy::Victim() {
  assert(!where_.empty());
  for (;;) {
    Slot& slot = ring_[hand_];
    const size_t current = hand_;
    hand_ = (hand_ + 1) % ring_.size();
    if (!slot.live) {
      continue;
    }
    if (slot.referenced) {
      slot.referenced = false;  // Second chance.
      continue;
    }
    return ring_[current].frame;
  }
}

// --- FIFO --------------------------------------------------------------

void FifoPolicy::OnInsert(uint32_t frame) {
  assert(where_.count(frame) == 0);
  queue_.push_back(frame);
  where_[frame] = std::prev(queue_.end());
}

void FifoPolicy::OnEvict(uint32_t frame) {
  auto it = where_.find(frame);
  if (it == where_.end()) {
    return;
  }
  queue_.erase(it->second);
  where_.erase(it);
}

uint32_t FifoPolicy::Victim() {
  assert(!queue_.empty());
  return queue_.front();
}

}  // namespace rmp
