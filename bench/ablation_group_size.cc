// Ablation: parity-group size S.
//
// Pageout cost is 1 + 1/S transfers, so larger groups amortize the parity
// flush. Recovery reads S-1 surviving pages per affected group to rebuild
// the lost entry — more fetches per lost page as S grows — but with the
// dissolve-and-re-home recovery strategy, small S means *more groups*, so
// more parity fetches and more expensive (1 + 1/S) re-placements: total
// recovery time actually shrinks slightly with S here. The real cost of
// large S is needing S distinct donor workstations and losing more
// redundancy granularity. The paper fixes S = 4.

#include <cstdio>

#include "bench/bench_util.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Ablation: parity-logging group size ===\n\n");
  std::printf("%4s %14s %18s %16s %18s\n", "S", "FFT etime s", "transfers/pageout",
              "recovery s", "recovery fetches");
  for (int group_size : {2, 3, 4, 8, 16}) {
    const auto fft = MakeFft(24.0);
    const uint64_t total_pages = PagesForBytes(fft->info().data_bytes) + 32;
    TestbedParams params;
    params.policy = Policy::kParityLogging;
    // Enough data servers to honor the distinct-server-per-group rule.
    params.data_servers = group_size;
    params.network = PaperEthernet();
    params.server_capacity_pages = total_pages * 11 / 10 / group_size + 512;
    auto testbed = Testbed::Create(params);
    if (!testbed.ok()) {
      std::printf("%4d FAILED: %s\n", group_size, testbed.status().ToString().c_str());
      continue;
    }
    ParityLoggingBackend* backend = (*testbed)->parity_logging();
    RunConfig run_config;
    run_config.physical_frames = kPaperFrames;
    auto run = SimulateRun(*fft, backend, run_config);
    if (!run.ok()) {
      std::printf("%4d FAILED: %s\n", group_size, run.status().ToString().c_str());
      continue;
    }
    const double transfers_per_pageout =
        static_cast<double>(run->backend.page_transfers - run->vm.pageins) /
        static_cast<double>(run->vm.pageouts);

    // Crash one data server at the end of the run and time recovery.
    const int64_t fetches_before = backend->cluster().peer(0).pages_fetched();
    (*testbed)->CrashServer(0);
    TimeNs now = Seconds(run->etime_s);
    const TimeNs recovery_start = now;
    const Status recovered = backend->Recover(0, &now);
    if (!recovered.ok()) {
      std::printf("%4d recovery FAILED: %s\n", group_size, recovered.ToString().c_str());
      continue;
    }
    int64_t fetches = 0;
    for (size_t i = 0; i < backend->cluster().size(); ++i) {
      fetches += backend->cluster().peer(i).pages_fetched();
    }
    std::printf("%4d %14.2f %18.3f %16.2f %18lld\n", group_size, run->etime_s,
                transfers_per_pageout, ToSeconds(now - recovery_start),
                static_cast<long long>(fetches - fetches_before));
  }
  std::printf("\n(1 + 1/S pageout transfers; recovery fetches per lost page grow with S\n"
              " while whole-crash recovery amortizes parity reads over larger groups;\n"
              " the paper picks S = 4)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
