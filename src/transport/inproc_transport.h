// In-process transport: requests are encoded, "sent", decoded and dispatched
// to a MessageHandler directly. The encode/decode round trip is kept
// deliberately so that tests over this transport still cover the wire format.
//
// Supports fault injection: Disconnect() makes every subsequent call fail
// with UNAVAILABLE, exactly what the pager sees when a server workstation
// crashes; DropNextReply() loses a single reply to exercise timeout paths.

#ifndef SRC_TRANSPORT_INPROC_TRANSPORT_H_
#define SRC_TRANSPORT_INPROC_TRANSPORT_H_

#include <cstdint>

#include "src/transport/transport.h"

namespace rmp {

class InProcTransport final : public Transport {
 public:
  // `handler` must outlive this transport.
  explicit InProcTransport(MessageHandler* handler) : handler_(handler) {}

  Result<Message> Call(const Message& request) override;
  Status SendOneWay(const Message& request) override;

  bool connected() const override { return connected_; }
  void Close() override { connected_ = false; }

  // Fault injection.
  void Disconnect() { connected_ = false; }
  void Reconnect() { connected_ = true; }
  void DropNextReply() { drop_next_reply_ = true; }

  // Traffic accounting (bytes as they would appear on the wire), used by the
  // timing model to charge transfer time.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t calls() const { return calls_; }

 private:
  MessageHandler* handler_;
  bool connected_ = true;
  bool drop_next_reply_ = false;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t calls_ = 0;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_INPROC_TRANSPORT_H_
