// Thread-safety of the MemoryServer: the paper's server creates an instance
// per client connection, all sharing the workstation's donated memory, so
// the shared state must survive concurrent sessions (our TcpServer serves
// each connection on its own thread against one MemoryServer object).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

TEST(ServerConcurrencyTest, ParallelClientsNeverCorruptEachOther) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 64;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      auto base = server.Allocate(kPagesPerThread);
      if (!base.ok()) {
        ++failures;
        return;
      }
      PageBuffer page;
      for (int i = 0; i < kPagesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        FillPattern(page.span(), seed);
        if (!server.Store(*base + static_cast<uint64_t>(i), page.span()).ok()) {
          ++failures;
          return;
        }
      }
      for (int i = 0; i < kPagesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i);
        auto loaded = server.Load(*base + static_cast<uint64_t>(i));
        if (!loaded.ok() || !CheckPattern(loaded->span(), seed)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.live_pages(), static_cast<uint64_t>(kThreads * kPagesPerThread));
}

TEST(ServerConcurrencyTest, AllocationsNeverOverlapUnderContention) {
  MemoryServerParams params;
  params.capacity_pages = 100000;
  MemoryServer server(params);
  constexpr int kThreads = 8;
  constexpr int kAllocsPerThread = 200;
  std::vector<std::vector<uint64_t>> grants(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &grants, t] {
      for (int i = 0; i < kAllocsPerThread; ++i) {
        auto slot = server.Allocate(3);
        if (slot.ok()) {
          grants[t].push_back(*slot);
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  // Every granted 3-slot run must be disjoint from every other.
  std::vector<uint64_t> all;
  for (const auto& g : grants) {
    all.insert(all.end(), g.begin(), g.end());
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i], all[i - 1] + 3) << "overlapping grants at " << all[i - 1];
  }
}

TEST(ServerConcurrencyTest, CrashDuringTrafficIsClean) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  MemoryServer server(params);
  std::atomic<bool> stop{false};
  std::thread traffic([&server, &stop] {
    PageBuffer page;
    auto base = server.Allocate(32);
    uint64_t i = 0;
    while (!stop.load()) {
      if (base.ok()) {
        (void)server.Store(*base + (i % 32), page.span());
        (void)server.Load(*base + (i % 32));
      }
      ++i;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  traffic.join();
  EXPECT_TRUE(server.crashed());
  EXPECT_EQ(server.live_pages(), 0u);
}

}  // namespace
}  // namespace rmp
