#include "src/transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>

#include "src/util/logging.h"
#include "src/util/metrics.h"
#include "src/util/tracing.h"

namespace rmp {
namespace {

// Transport-level telemetry lives in the process-wide registry: transports
// come and go per connection, but queue depth and in-flight totals are only
// meaningful summed across all of them.
struct TransportMetrics {
  Counter& frames_sent;
  Counter& frames_received;
  Counter& connection_failures;
  Gauge& send_queue_depth;
  Gauge& inflight_rpcs;
};

TransportMetrics& TcpMetrics() {
  static TransportMetrics* metrics = new TransportMetrics{
      *MetricsRegistry::Global().GetCounter("tcp.frames_sent"),
      *MetricsRegistry::Global().GetCounter("tcp.frames_received"),
      *MetricsRegistry::Global().GetCounter("tcp.connection_failures"),
      *MetricsRegistry::Global().GetGauge("tcp.send_queue_depth"),
      *MetricsRegistry::Global().GetGauge("tcp.inflight_rpcs"),
  };
  return *metrics;
}

Status ErrnoError(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

// Reads exactly `len` bytes. UnavailableError on clean EOF, IoError otherwise.
Status RecvExact(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) {
      return UnavailableError("peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("recv");
    }
    got += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status SendFrame(int fd, const Message& message) {
  uint8_t prefix[kWirePrefixSize];
  EncodeHeader(message, PayloadCrc(std::span<const uint8_t>(message.payload)), prefix);
  iovec iov[2];
  iov[0].iov_base = prefix;
  iov[0].iov_len = kWirePrefixSize;
  iov[1].iov_base = const_cast<uint8_t*>(message.payload.data());
  iov[1].iov_len = message.payload.size();
  size_t first = 0;  // Index of the first iovec with bytes left.
  const int iovcnt = message.payload.empty() ? 1 : 2;
  while (first < static_cast<size_t>(iovcnt)) {
    msghdr msg{};
    msg.msg_iov = &iov[first];
    msg.msg_iovlen = static_cast<size_t>(iovcnt) - first;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("sendmsg");
    }
    size_t remaining = static_cast<size_t>(n);
    while (first < static_cast<size_t>(iovcnt) && remaining >= iov[first].iov_len) {
      remaining -= iov[first].iov_len;
      ++first;
    }
    if (first < static_cast<size_t>(iovcnt)) {
      iov[first].iov_base = static_cast<uint8_t*>(iov[first].iov_base) + remaining;
      iov[first].iov_len -= remaining;
    }
  }
  return OkStatus();
}

Result<Message> ReadFrame(int fd) {
  uint8_t prefix[kWirePrefixSize];
  Status status = RecvExact(fd, prefix, kWirePrefixSize);
  if (!status.ok()) {
    return status;
  }
  auto header = DecodeHeader(std::span<const uint8_t>(prefix, kWirePrefixSize));
  if (!header.ok()) {
    return header.status();
  }
  Message message = MessageFromHeader(*header);
  if (header->payload_len > 0) {
    message.payload.resize(header->payload_len);
    status = RecvExact(fd, message.payload.data(), message.payload.size());
    if (!status.ok()) {
      return status;
    }
  }
  if (PayloadCrc(std::span<const uint8_t>(message.payload)) != header->payload_crc) {
    return CorruptionError("payload CRC mismatch");
  }
  return message;
}

// --- TcpTransport -----------------------------------------------------------

// The client connection's FrameSink: a request_id → future map plus the
// bounded-submission accounting. Producers run CallAsync from arbitrary
// threads; OnFrame/OnClose run on the connection's loop thread. The demux
// outlives the TcpTransport if the loop still holds the sink when the
// transport is destroyed, hence the shared_ptr split.
class TcpTransport::Demux final : public FrameSink {
 public:
  RpcFuture Submit(const std::shared_ptr<ReactorConnection>& conn, Message request,
                   std::shared_ptr<Demux> self) {
    auto state = TcpTransport::NewFutureState();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        return RpcFuture::MakeReady(UnavailableError("transport closed"));
      }
      if (pending_.count(request.request_id) > 0) {
        return RpcFuture::MakeReady(InvalidArgumentError(
            "request_id " + std::to_string(request.request_id) + " already in flight"));
      }
      space_cv_.wait(lock, [this] { return stopping_ || unsent_ < kMaxQueuedSends; });
      if (stopping_) {
        return RpcFuture::MakeReady(UnavailableError("transport closed"));
      }
      pending_.emplace(request.request_id, state);
      unsent_ += 1;
      TcpMetrics().inflight_rpcs.Add(1);
      TcpMetrics().send_queue_depth.Add(1);
    }
    // If the connection closed in between, the frame is dropped and OnClose
    // (which always follows) fails the pending entry we just registered.
    conn->Send(std::move(request),
               [self = std::move(self)] { self->OnWritten(); });
    return TcpTransport::WrapFuture(std::move(state));
  }

  Status SubmitOneWay(const std::shared_ptr<ReactorConnection>& conn, Message request,
                      std::shared_ptr<Demux> self) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        return UnavailableError("transport closed");
      }
      space_cv_.wait(lock, [this] { return stopping_ || unsent_ < kMaxQueuedSends; });
      if (stopping_) {
        return UnavailableError("transport closed");
      }
      unsent_ += 1;
      TcpMetrics().send_queue_depth.Add(1);
    }
    conn->Send(std::move(request),
               [self = std::move(self)] { self->OnWritten(); });
    return OkStatus();
  }

  // Fails every pending and queued request. `count_failure` marks an
  // unexpected (peer-initiated) loss; an explicit Close is not a failure.
  void FailAll(const std::string& reason, bool count_failure) {
    std::unordered_map<uint64_t, std::shared_ptr<RpcFuture::State>> orphaned;
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      first = !stopping_;
      stopping_ = true;
      connected_.store(false, std::memory_order_release);
      orphaned.swap(pending_);
      TcpMetrics().send_queue_depth.Add(-static_cast<int64_t>(unsent_));
      unsent_ = 0;
    }
    if (first && count_failure) {
      TcpMetrics().connection_failures.Increment();
    }
    TcpMetrics().inflight_rpcs.Add(-static_cast<int64_t>(orphaned.size()));
    space_cv_.notify_all();
    for (auto& [id, state] : orphaned) {
      TcpTransport::CompleteFuture(state, UnavailableError(reason));
    }
  }

  bool connected() const { return connected_.load(std::memory_order_acquire); }

  size_t inflight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
  }

  // FrameSink (loop thread).
  void OnFrame(Message frame) override {
    TcpMetrics().frames_received.Increment();
    std::shared_ptr<RpcFuture::State> state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(frame.request_id);
      if (it != pending_.end()) {
        state = std::move(it->second);
        pending_.erase(it);
        TcpMetrics().inflight_rpcs.Add(-1);
      }
    }
    if (state != nullptr) {
      TcpTransport::CompleteFuture(state, std::move(frame));
    } else {
      RMP_LOG(kWarning) << "dropping unmatched reply for request_id " << frame.request_id;
    }
  }

  void OnClose(const Status& reason) override {
    FailAll(reason.code() == ErrorCode::kUnavailable ? reason.message()
                                                     : "connection lost: " + reason.message(),
            /*count_failure=*/true);
  }

 private:
  void OnWritten() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (unsent_ > 0) {
        unsent_ -= 1;
        TcpMetrics().send_queue_depth.Add(-1);
      }
    }
    TcpMetrics().frames_sent.Increment();
    space_cv_.notify_one();
  }

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;
  std::unordered_map<uint64_t, std::shared_ptr<RpcFuture::State>> pending_;
  size_t unsent_ = 0;  // Frames accepted but not yet on the wire.
  bool stopping_ = false;
  std::atomic<bool> connected_{true};
};

TcpTransport::TcpTransport(std::shared_ptr<ReactorConnection> conn, std::shared_ptr<Demux> demux)
    : conn_(std::move(conn)), demux_(std::move(demux)) {}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(const std::string& host,
                                                            uint16_t port,
                                                            const std::string& auth_token,
                                                            uint16_t tenant) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoError("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad host address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("connect");
  }
  // Page-sized RPCs benefit from immediate sends.
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto demux = std::make_shared<Demux>();
  auto conn = Reactor::Shared().Register(std::move(fd), demux);
  if (conn == nullptr) {
    return UnavailableError("client reactor unavailable");
  }
  auto transport =
      std::unique_ptr<TcpTransport>(new TcpTransport(std::move(conn), std::move(demux)));
  transport->tenant_ = tenant;
  if (!auth_token.empty() || tenant != 0) {
    // A tenant-only AUTH (empty token against an open server) still runs the
    // handshake: the AUTH frame is what binds the tenant server-side.
    auto reply = transport->Call(MakeAuth(1, auth_token, tenant));
    if (!reply.ok()) {
      return reply.status();
    }
    if (reply->type != MessageType::kAuthReply || reply->status_code() != ErrorCode::kOk) {
      return FailedPreconditionError("server rejected authentication");
    }
  }
  return transport;
}

void TcpTransport::Close() {
  demux_->FailAll("transport closed", /*count_failure=*/false);
  conn_->Close(UnavailableError("transport closed"));
}

RpcFuture TcpTransport::CallAsync(Message request) {
  if (request.tenant == 0) {
    request.tenant = tenant_;
  }
  return demux_->Submit(conn_, std::move(request), demux_);
}

Result<Message> TcpTransport::Call(const Message& request) { return CallAsync(request).Wait(); }

Status TcpTransport::SendOneWay(const Message& request) {
  if (request.tenant == 0 && tenant_ != 0) {
    Message tagged = request;
    tagged.tenant = tenant_;
    return demux_->SubmitOneWay(conn_, std::move(tagged), demux_);
  }
  return demux_->SubmitOneWay(conn_, request, demux_);
}

bool TcpTransport::connected() const { return demux_->connected(); }

size_t TcpTransport::inflight() const { return demux_->inflight(); }

// --- TcpServer --------------------------------------------------------------

Result<TcpServerOptions> TcpServerOptions::FromConfig(const Config& config) {
  TcpServerOptions options;
  auto reactor = ReactorOptions::FromConfig(config);
  if (!reactor.ok()) {
    return reactor.status();
  }
  options.reactor = *reactor;
  auto scheduler = SchedulerOptions::FromConfig(config);
  if (!scheduler.ok()) {
    return scheduler.status();
  }
  options.scheduler = *scheduler;
  auto workers = config.GetInt("tcp.service_workers", options.service_workers);
  if (!workers.ok()) {
    return workers.status();
  }
  if (*workers < 1 || *workers > 1024) {
    return InvalidArgumentError("tcp.service_workers out of range [1, 1024]");
  }
  options.service_workers = static_cast<int>(*workers);
  auto backlog = config.GetInt("tcp.listen_backlog", options.listen_backlog);
  if (!backlog.ok()) {
    return backlog.status();
  }
  if (*backlog < 1) {
    return InvalidArgumentError("tcp.listen_backlog must be positive");
  }
  options.listen_backlog = static_cast<int>(*backlog);
  options.required_token = config.GetString("tcp.required_token", options.required_token);
  return options;
}

// Per-connection server state: the handler, the auth gate, and the scheduler
// session. All FrameSink callbacks run on the connection's loop thread; the
// service workers touch only handler() and SendReply(), both safe after the
// scheduler handoff.
class TcpServer::ServerSession final : public FrameSink {
 public:
  ServerSession(TcpServer* server, std::unique_ptr<MessageHandler> handler,
                std::string required_token)
      : server_(server),
        handler_(std::move(handler)),
        required_token_(std::move(required_token)),
        authenticated_(required_token_.empty()) {}

  void OnOpen(const std::shared_ptr<ReactorConnection>& conn) override { conn_ = conn; }

  void OnFrame(Message frame) override {
    if (frame.type == MessageType::kShutdown) {
      conn_->CloseAfterFlush(UnavailableError("session shutdown"));
      return;
    }
    if (frame.type == MessageType::kAuth) {
      const std::string presented(frame.payload.begin(), frame.payload.end());
      const bool good = required_token_.empty() || presented == required_token_;
      authenticated_ = authenticated_ || good;
      if (good && frame.tenant != 0 && tenant_ == 0) {
        // The AUTH frame binds the session's tenant (DESIGN.md §15): every
        // later frame is attributed to it, and the scheduler moves the
        // session into that tenant's fair-share queue.
        tenant_ = frame.tenant;
        server_->scheduler_->SetSessionTenant(sched_, tenant_);
      }
      conn_->Send(MakeAuthReply(frame.request_id,
                                good ? ErrorCode::kOk : ErrorCode::kFailedPrecondition));
      if (!good) {
        // Bad token: the reply flushes, then the connection drops.
        conn_->CloseAfterFlush(FailedPreconditionError("authentication rejected"));
      }
      return;
    }
    if (!authenticated_) {
      // Nothing but AUTH is served before the handshake.
      conn_->Send(MakeErrorReply(frame.request_id, ErrorCode::kFailedPrecondition));
      return;
    }
    if (frame.tenant == 0) {
      frame.tenant = tenant_;  // Attribute untagged frames to the bound tenant.
    } else if (tenant_ == 0) {
      // Open server (or token-only AUTH): the first tagged frame binds.
      tenant_ = frame.tenant;
      server_->scheduler_->SetSessionTenant(sched_, tenant_);
    } else if (frame.tenant != tenant_) {
      // A session speaks for exactly one tenant; a mid-session flip is a
      // spoof attempt (or a confused client), never silently re-attributed.
      conn_->Send(MakeErrorReply(frame.request_id, ErrorCode::kFailedPrecondition));
      return;
    }
    const uint64_t request_id = frame.request_id;
    switch (server_->scheduler_->SubmitEx(sched_, std::move(frame))) {
      case SubmitResult::kOk:
        break;
      case SubmitResult::kShed:
        // Overload shed: transient, back off and retry (vs kUnavailable's
        // dead-session finality).
        conn_->Send(MakeErrorReply(request_id, ErrorCode::kResourceExhausted));
        break;
      case SubmitResult::kRejected:
        conn_->Send(MakeErrorReply(request_id, ErrorCode::kUnavailable));
        break;
    }
  }

  void OnClose(const Status& reason) override {
    (void)reason;
    server_->Reap(this);
  }

  MessageHandler* handler() { return handler_.get(); }
  void SendReply(Message reply) { conn_->Send(std::move(reply)); }
  const std::shared_ptr<ReactorConnection>& connection() const { return conn_; }

  std::shared_ptr<FairShareScheduler::Session> sched_;

 private:
  TcpServer* server_;
  std::unique_ptr<MessageHandler> handler_;
  const std::string required_token_;
  bool authenticated_;
  // The session's bound tenant (0 = unbound). Touched only on the
  // connection's loop thread, like the rest of the FrameSink state.
  uint16_t tenant_ = 0;
  std::shared_ptr<ReactorConnection> conn_;
};

Result<std::unique_ptr<TcpServer>> TcpServer::Start(uint16_t port, HandlerFactory factory,
                                                    std::string required_token,
                                                    int session_workers) {
  TcpServerOptions options;
  options.required_token = std::move(required_token);
  // Map the legacy knob onto the reactor model: `session_workers == 0` meant
  // strict in-order service per session (one lane), > 0 meant slot-affine
  // parallelism (lane = slot % workers, the old worker-pool keying). The knob
  // sets the *ordering contract* (lanes), not the pool size — the service
  // pool is shared by all sessions and stays at its own default.
  options.scheduler.lanes_per_session = session_workers > 0 ? session_workers : 1;
  return Start(port, std::move(factory), std::move(options));
}

Result<std::unique_ptr<TcpServer>> TcpServer::Start(uint16_t port, HandlerFactory factory,
                                                    TcpServerOptions options) {
  UniqueFd listen_fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd.valid()) {
    return ErrnoError("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(listen_fd.get(), options.listen_backlog) != 0) {
    return ErrnoError("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoError("getsockname");
  }
  const uint16_t bound_port = ntohs(addr.sin_port);
  return std::unique_ptr<TcpServer>(
      new TcpServer(std::move(listen_fd), bound_port, std::move(factory), std::move(options)));
}

TcpServer::TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory,
                     TcpServerOptions options)
    : port_(port), factory_(std::move(factory)), options_(std::move(options)) {
  reactor_ = std::make_unique<Reactor>(options_.reactor);
  scheduler_ = std::make_unique<FairShareScheduler>(options_.scheduler);
  const int workers = options_.service_workers < 1 ? 1 : options_.service_workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Status listening =
      reactor_->AddListener(std::move(listen_fd), [this](UniqueFd fd) { OnAccept(std::move(fd)); });
  if (!listening.ok()) {
    RMP_LOG(kError) << "listener setup failed: " << listening.ToString();
  }
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::OnAccept(UniqueFd fd) {
  if (stopping_.load(std::memory_order_acquire)) {
    return;  // Dropping the fd closes the connection.
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto session = std::make_shared<ServerSession>(this, factory_(), options_.required_token);
  session->sched_ = scheduler_->AddSession(session);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace(session.get(), session);
  }
  connections_served_.fetch_add(1);
  if (reactor_->Register(std::move(fd), session) == nullptr) {
    Reap(session.get());
  }
}

void TcpServer::WorkerLoop() {
  FairShareScheduler::Item item;
  bool have = scheduler_->Next(&item);
  while (have) {
    auto session = std::static_pointer_cast<ServerSession>(item.owner);
    if (session != nullptr) {
      if (item.request.trace_id() != 0) {
        // Traced request (DESIGN.md §17): hand the handler its scheduler
        // queue + lane wait so the server can record a srv_queue span.
        // Untraced requests skip even the clock read.
        const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count();
        ServerScratch().queue_ns = std::max<int64_t>(0, now - item.enqueue_ns);
      }
      Message reply = session->handler()->Handle(item.request);
      session->SendReply(std::move(reply));
    }
    auto sched_session = std::move(item.session);
    const int lane = item.lane;
    item = FairShareScheduler::Item();  // Drop session refs before blocking.
    have = scheduler_->DoneAndNext(sched_session, lane, &item);
  }
}

void TcpServer::Reap(ServerSession* session) {
  std::shared_ptr<ServerSession> owned;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return;
    }
    owned = std::move(it->second);
    sessions_.erase(it);
  }
  scheduler_->RemoveSession(owned->sched_);
}

size_t TcpServer::live_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void TcpServer::Shutdown() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Order matters: stopping the reactor closes every connection (OnClose →
  // Reap runs on the loop threads before Stop returns), then the scheduler
  // wakes the workers, which drain and exit. In-flight items keep their
  // sessions alive via the owner backref until the workers drop them.
  reactor_->Stop();
  scheduler_->Stop();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.clear();
}

}  // namespace rmp
