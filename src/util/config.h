// Tiny key=value configuration reader.
//
// The paper registers every workstation that participates in remote paging
// "in a common file" (§2.1); the TCP cluster tools use this parser for that
// registry and for tuning constants. Format: one `key = value` per line,
// '#' starts a comment, later keys override earlier ones.

#ifndef SRC_UTIL_CONFIG_H_
#define SRC_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace rmp {

class Config {
 public:
  Config() = default;

  // Parses from a string (tests) or a file (tools).
  static Result<Config> Parse(std::string_view text);
  static Result<Config> Load(const std::string& path);

  bool Has(const std::string& key) const;

  // Typed getters; return the fallback when the key is absent, and an error
  // only when the key is present but malformed.
  std::string GetString(const std::string& key, std::string fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  void Set(const std::string& key, std::string value);

  // All keys, sorted (map order).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

// Strips leading/trailing whitespace. Exposed for reuse by the wire-protocol
// text helpers and tests.
std::string_view TrimWhitespace(std::string_view s);

}  // namespace rmp

#endif  // SRC_UTIL_CONFIG_H_
