// Microbenchmarks of the primitives everything else is built on: the XOR
// kernel behind the parity policies, CRC32, wire encode/decode, the page
// pattern generator, and the hot VM/server paths.

#include <benchmark/benchmark.h>

#include "src/core/testbed.h"
#include "src/proto/wire.h"
#include "src/server/memory_server.h"
#include "src/util/bytes.h"
#include "src/util/checksum.h"
#include "src/vm/paged_vm.h"

namespace rmp {
namespace {

void BM_XorPage(benchmark::State& state) {
  PageBuffer a;
  PageBuffer b;
  FillPattern(a.span(), 1);
  FillPattern(b.span(), 2);
  for (auto _ : state) {
    a.XorWith(b.span());
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_XorPage);

void BM_Crc32Page(benchmark::State& state) {
  PageBuffer page;
  FillPattern(page.span(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(page.span()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_Crc32Page);

void BM_FillPattern(benchmark::State& state) {
  PageBuffer page;
  uint64_t seed = 0;
  for (auto _ : state) {
    FillPattern(page.span(), seed++);
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_FillPattern);

void BM_EncodePageOut(benchmark::State& state) {
  PageBuffer page;
  FillPattern(page.span(), 4);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    out.clear();
    EncodeTo(MakePageOut(1, 2, page.span()), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_EncodePageOut);

void BM_DecodePageOut(benchmark::State& state) {
  PageBuffer page;
  FillPattern(page.span(), 5);
  const std::vector<uint8_t> encoded = Encode(MakePageOut(1, 2, page.span()));
  for (auto _ : state) {
    auto decoded = Decode(std::span<const uint8_t>(encoded));
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_DecodePageOut);

void BM_ServerStoreLoad(benchmark::State& state) {
  MemoryServerParams params;
  params.capacity_pages = 1024;
  MemoryServer server(params);
  auto slot = server.Allocate(1);
  PageBuffer page;
  FillPattern(page.span(), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Store(*slot, page.span()).ok());
    auto loaded = server.Load(*slot);
    benchmark::DoNotOptimize(loaded.ok());
  }
}
BENCHMARK(BM_ServerStoreLoad);

void BM_VmTouchHit(benchmark::State& state) {
  MemoryServerParams server_params;
  server_params.capacity_pages = 4096;
  MemoryServer server(server_params);
  InProcTransport transport(&server);
  // Direct VM over a tiny backend; all touches hit.
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 1;
  auto testbed = Testbed::Create(params);
  VmParams vm_params;
  vm_params.virtual_pages = 64;
  vm_params.physical_frames = 64;
  PagedVm vm(vm_params, &(*testbed)->backend());
  TimeNs now = 0;
  uint64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.Touch(&now, page, false).ok());
    page = (page + 1) % 64;
  }
}
BENCHMARK(BM_VmTouchHit);

void BM_InProcPageOutRpc(benchmark::State& state) {
  MemoryServerParams params;
  params.capacity_pages = 4096;
  MemoryServer server(params);
  InProcTransport transport(&server);
  auto slot = server.Allocate(1);
  PageBuffer page;
  FillPattern(page.span(), 7);
  uint64_t request_id = 0;
  for (auto _ : state) {
    auto reply = transport.Call(MakePageOut(++request_id, *slot, page.span()));
    benchmark::DoNotOptimize(reply.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
}
BENCHMARK(BM_InProcPageOutRpc);

}  // namespace
}  // namespace rmp

BENCHMARK_MAIN();
