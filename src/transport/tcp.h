// Real TCP transport: the paper's deployment shape, usable across processes.
//
// TcpServer accepts connections on a loopback or LAN port and — like the
// paper's user-level memory server, which forks "a new instance of the
// server" per client (§3.2) — serves each connection on its own thread with
// its own MessageHandler created by a factory. With `session_workers > 0` a
// session additionally dispatches decoded requests to a small worker pool
// (keyed by slot, so same-slot requests stay ordered) and replies may leave
// the socket out of order — the pipelined client demultiplexes them by
// request_id.
//
// TcpTransport is the client half. Unlike the paper's single blocking
// daemon, it keeps many requests outstanding on one connection: CallAsync
// places the request on a bounded submission queue drained by a sender
// thread (scatter-gather framing, no header+payload coalescing) while a
// receiver thread reads exactly one header, then the payload directly into
// Message::payload, and completes the matching future. Call() is
// CallAsync().Wait().

#ifndef SRC_TRANSPORT_TCP_H_
#define SRC_TRANSPORT_TCP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/transport/transport.h"

namespace rmp {

// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release();
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Writes all of `bytes` to `fd`, retrying short writes. Returns IoError on
// failure (EPIPE after a peer crash surfaces here).
Status SendAll(int fd, std::span<const uint8_t> bytes);

// Frames `message` onto `fd` with one sendmsg: a stack-allocated header iovec
// plus the payload iovec straight out of Message::payload (zero-copy).
Status SendFrame(int fd, const Message& message);

// Reads exactly one frame: the fixed-size prefix first, then the payload
// directly into Message::payload. UnavailableError on EOF.
Result<Message> ReadFrame(int fd);

class TcpTransport final : public Transport {
 public:
  // Requests the submission queue will buffer before CallAsync blocks for
  // space (backpressure toward the paging policies).
  static constexpr size_t kMaxQueuedSends = 64;

  // Connects to host:port (host is an IPv4 dotted quad or "localhost").
  // When `auth_token` is non-empty, an AUTH handshake is performed before
  // the connection is handed back; a server that requires a different token
  // fails the connect with FAILED_PRECONDITION.
  static Result<std::unique_ptr<TcpTransport>> Connect(const std::string& host, uint16_t port,
                                                       const std::string& auth_token = "");

  ~TcpTransport() override { Close(); }

  Result<Message> Call(const Message& request) override;
  RpcFuture CallAsync(Message request) override;
  Status SendOneWay(const Message& request) override;
  bool connected() const override { return connected_.load(); }

  // Closes the connection. Every outstanding future completes with
  // UnavailableError. Idempotent.
  void Close() override;

  // Number of requests currently awaiting a reply (test/debug probe).
  size_t inflight() const;

 private:
  struct SendItem {
    Message message;
  };

  explicit TcpTransport(UniqueFd fd);

  void SenderLoop();
  void ReceiverLoop();

  // Marks the connection dead and fails every queued and in-flight request.
  // Safe to call from any thread, including the I/O threads; idempotent.
  void FailConnection(const std::string& reason);

  UniqueFd fd_;
  std::atomic<bool> connected_{true};

  mutable std::mutex mutex_;
  std::condition_variable send_cv_;   // Sender waits for work / stop.
  std::condition_variable space_cv_;  // Submitters wait for queue space.
  std::deque<SendItem> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<RpcFuture::State>> pending_;
  bool stopping_ = false;

  std::thread sender_;
  std::thread receiver_;
};

// Accept loop + per-connection session threads.
class TcpServer {
 public:
  using HandlerFactory = std::function<std::unique_ptr<MessageHandler>()>;

  // Binds to 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  // accept thread. `factory` is invoked once per accepted connection. When
  // `required_token` is non-empty, every session must open with a matching
  // AUTH message before any other request is served (the paper's
  // privileged-port restriction, modernized). `session_workers > 0` enables
  // pipelined request handling within a session: that many worker threads
  // handle requests concurrently (same-slot requests stay on one worker and
  // thus in order) and replies may be sent out of order.
  static Result<std::unique_ptr<TcpServer>> Start(uint16_t port, HandlerFactory factory,
                                                  std::string required_token = "",
                                                  int session_workers = 0);

  ~TcpServer();

  uint16_t port() const { return port_; }
  int connections_served() const { return connections_served_.load(); }

  // Stops accepting and joins all session threads. Idempotent.
  void Shutdown();

 private:
  TcpServer(UniqueFd listen_fd, uint16_t port, HandlerFactory factory,
            std::string required_token, int session_workers);

  void AcceptLoop();
  void Session(UniqueFd fd);
  void SessionLoop(UniqueFd& fd);

  UniqueFd listen_fd_;
  uint16_t port_;
  HandlerFactory factory_;
  std::string required_token_;
  int session_workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> connections_served_{0};
  std::thread accept_thread_;
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
  // Raw fds of live sessions; Shutdown() half-closes them so session
  // threads blocked in recv() wake up and can be joined.
  std::vector<int> session_fds_;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_TCP_H_
