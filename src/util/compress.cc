#include "src/util/compress.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RMP_HAVE_X86_SIMD 1
#include <immintrin.h>
#else
#define RMP_HAVE_X86_SIMD 0
#endif

namespace rmp {
namespace {

// Stream grammar (per sequence):
//   token     = (literal_len:4 | match_len-4:4)
//   ext bytes = runs of 255 extending either nibble past 15
//   literals  = raw bytes
//   offset    = 2 bytes little-endian, 1..dp (absent in the final sequence)
// The final sequence is literals-only: the stream simply ends after them.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxInput = 65535;  // Offsets are 16-bit; page-class blocks.
constexpr int kHashBits = 12;

uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash32(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// --- Match-extension kernels -------------------------------------------------
//
// All kernels return the exact longest common prefix of a and b (capped at
// `max`), so every dispatch path drives the greedy parse to the same
// sequences and the compressed bytes are identical across CPUs.

// Pinned against autovectorization for the same reason as XorBytesScalarImpl:
// the differential tests must compare the SIMD parse against a genuinely
// scalar one. Word compares fall back to a byte loop on mismatch instead of
// a count-trailing-zeros trick, which keeps the reference endian-agnostic.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
size_t MatchLenScalarImpl(const uint8_t* a, const uint8_t* b, size_t max) {
  size_t i = 0;
  while (i + sizeof(uint64_t) <= max) {
    uint64_t av;
    uint64_t bv;
    std::memcpy(&av, a + i, sizeof(av));
    std::memcpy(&bv, b + i, sizeof(bv));
    if (av != bv) {
      break;
    }
    i += sizeof(uint64_t);
  }
  while (i < max && a[i] == b[i]) {
    ++i;
  }
  return i;
}

#if RMP_HAVE_X86_SIMD

size_t MatchLenSse2(const uint8_t* a, const uint8_t* b, size_t max) {
  size_t i = 0;
  for (; i + 16 <= max; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const uint32_t eq = static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xffffu) {
      return i + static_cast<size_t>(__builtin_ctz(~eq & 0xffffu));
    }
  }
  while (i < max && a[i] == b[i]) {
    ++i;
  }
  return i;
}

__attribute__((target("avx2"))) size_t MatchLenAvx2(const uint8_t* a, const uint8_t* b,
                                                    size_t max) {
  size_t i = 0;
  for (; i + 32 <= max; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint32_t eq =
        static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return i + static_cast<size_t>(__builtin_ctz(~eq));
    }
  }
  return i + MatchLenSse2(a + i, b + i, max - i);
}

#endif  // RMP_HAVE_X86_SIMD

using MatchLenFn = size_t (*)(const uint8_t*, const uint8_t*, size_t);

struct MatchImpl {
  MatchLenFn fn;
  std::string_view name;
};

MatchImpl PickMatchImpl() {
#if RMP_HAVE_X86_SIMD
  if (__builtin_cpu_supports("avx2")) {
    return {MatchLenAvx2, "avx2"};
  }
  return {MatchLenSse2, "sse2"};
#else
  return {MatchLenScalarImpl, "scalar"};
#endif
}

const MatchImpl& DispatchedMatch() {
  static const MatchImpl impl = PickMatchImpl();
  return impl;
}

// --- Encoder -----------------------------------------------------------------

// Emission cursor with a hard ceiling: every write checks max_out, and a
// ceiling hit aborts the whole compression (the caller stores raw instead).
struct Emitter {
  uint8_t* dst;
  size_t op = 0;
  size_t max_out;

  bool Byte(uint8_t b) {
    if (op >= max_out) {
      return false;
    }
    dst[op++] = b;
    return true;
  }
  bool Bytes(const uint8_t* p, size_t n) {
    if (n > max_out - op) {
      return false;
    }
    if (n > 0) {  // Empty input compresses from a possibly-null pointer.
      std::memcpy(dst + op, p, n);
      op += n;
    }
    return true;
  }
  bool ExtLen(size_t len) {  // Extension bytes for a nibble that hit 15.
    while (len >= 255) {
      if (!Byte(255)) {
        return false;
      }
      len -= 255;
    }
    return Byte(static_cast<uint8_t>(len));
  }
};

bool EmitSequence(Emitter* out, const uint8_t* literals, size_t lit_len, size_t offset,
                  size_t match_len) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const size_t match_extra = match_len - kMinMatch;
  const size_t match_nibble = match_extra < 15 ? match_extra : 15;
  if (!out->Byte(static_cast<uint8_t>((lit_nibble << 4) | match_nibble))) {
    return false;
  }
  if (lit_nibble == 15 && !out->ExtLen(lit_len - 15)) {
    return false;
  }
  if (!out->Bytes(literals, lit_len)) {
    return false;
  }
  if (!out->Byte(static_cast<uint8_t>(offset & 0xff)) ||
      !out->Byte(static_cast<uint8_t>(offset >> 8))) {
    return false;
  }
  return match_nibble != 15 || out->ExtLen(match_extra - 15);
}

bool EmitFinalLiterals(Emitter* out, const uint8_t* literals, size_t lit_len) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  if (!out->Byte(static_cast<uint8_t>(lit_nibble << 4))) {
    return false;
  }
  if (lit_nibble == 15 && !out->ExtLen(lit_len - 15)) {
    return false;
  }
  return out->Bytes(literals, lit_len);
}

size_t CompressWith(MatchLenFn match_len, const uint8_t* src, size_t n, uint8_t* dst,
                    size_t max_out) {
  if (n > kMaxInput || max_out == 0) {
    return 0;
  }
  uint16_t table[1 << kHashBits];  // Position + 1 of the last sight of a hash.
  std::memset(table, 0, sizeof(table));
  Emitter out{dst, 0, max_out};
  size_t pos = 0;
  size_t anchor = 0;
  while (pos + kMinMatch <= n) {
    const uint32_t seq = Read32(src + pos);
    const uint32_t h = Hash32(seq);
    const uint16_t slot = table[h];
    table[h] = static_cast<uint16_t>(pos + 1);
    if (slot == 0) {
      ++pos;
      continue;
    }
    const size_t cand = static_cast<size_t>(slot) - 1;
    if (Read32(src + cand) != seq) {
      ++pos;
      continue;
    }
    const size_t mlen =
        kMinMatch + match_len(src + cand + kMinMatch, src + pos + kMinMatch, n - pos - kMinMatch);
    if (!EmitSequence(&out, src + anchor, pos - anchor, pos - cand, mlen)) {
      return 0;
    }
    pos += mlen;
    anchor = pos;
  }
  // No trailing token when the last match ends the input: an empty final
  // sequence would be a byte no decoder needs, and stripping it is what makes
  // "every strict prefix fails to decode" hold. The empty-input stream still
  // gets one token so a valid compression is never 0 bytes (the error value).
  if (n - anchor > 0 || out.op == 0) {
    if (!EmitFinalLiterals(&out, src + anchor, n - anchor)) {
      return 0;
    }
  }
  return out.op;
}

}  // namespace

size_t CompressBound(size_t n) { return n + n / 255 + 16; }

size_t CompressBlock(const uint8_t* src, size_t n, uint8_t* dst, size_t max_out) {
  return CompressWith(DispatchedMatch().fn, src, n, dst, max_out);
}

size_t CompressBlockScalar(const uint8_t* src, size_t n, uint8_t* dst, size_t max_out) {
  return CompressWith(MatchLenScalarImpl, src, n, dst, max_out);
}

std::string_view CompressImplName() { return DispatchedMatch().name; }

Status DecompressBlock(const uint8_t* src, size_t src_len, uint8_t* dst, size_t n) {
  size_t sp = 0;
  size_t dp = 0;
  // Reads an extension run. Capped at kMaxInput + 255: any longer claim is
  // hostile (no valid length exceeds the input bound), and the cap keeps a
  // stream of 255s from accumulating toward overflow.
  const auto read_ext = [&](size_t* len) -> bool {
    while (sp < src_len) {
      const uint8_t b = src[sp++];
      *len += b;
      if (*len > kMaxInput + 255) {
        return false;
      }
      if (b != 255) {
        return true;
      }
    }
    return false;  // Ran off the stream mid-extension.
  };
  while (sp < src_len) {
    const uint8_t token = src[sp++];
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_ext(&lit_len)) {
      return CorruptionError("truncated literal-length extension");
    }
    if (lit_len > src_len - sp || lit_len > n - dp) {
      return CorruptionError("literal run exceeds a buffer bound");
    }
    if (lit_len > 0) {  // dst may be null when decoding an empty stream.
      std::memcpy(dst + dp, src + sp, lit_len);
    }
    sp += lit_len;
    dp += lit_len;
    if (sp == src_len) {
      break;  // Final sequence: literals only, no offset follows.
    }
    if (src_len - sp < 2) {
      return CorruptionError("truncated match offset");
    }
    const size_t offset = static_cast<size_t>(src[sp]) | (static_cast<size_t>(src[sp + 1]) << 8);
    sp += 2;
    if (offset == 0 || offset > dp) {
      return CorruptionError("match offset outside the produced output");
    }
    size_t match_len = token & 0x0f;
    if (match_len == 15 && !read_ext(&match_len)) {
      return CorruptionError("truncated match-length extension");
    }
    match_len += kMinMatch;
    if (match_len > n - dp) {
      return CorruptionError("match run exceeds the output bound");
    }
    const uint8_t* from = dst + dp - offset;
    uint8_t* to = dst + dp;
    dp += match_len;
    if (offset >= match_len) {
      std::memcpy(to, from, match_len);
    } else {
      // Overlapping (run-generating) match: each pass copies the full periodic
      // window produced so far, so the window doubles per memcpy and long runs
      // (zero-heavy pages) cost O(log) copies instead of a byte loop. Source
      // and destination of every memcpy are disjoint by construction.
      size_t window = offset;
      size_t done = 0;
      while (done < match_len) {
        const size_t chunk = window < match_len - done ? window : match_len - done;
        std::memcpy(to + done, from, chunk);
        done += chunk;
        window *= 2;
      }
    }
  }
  if (dp != n || sp != src_len) {
    return CorruptionError("stream ended with " + std::to_string(dp) + "/" + std::to_string(n) +
                           " bytes produced");
  }
  return OkStatus();
}

}  // namespace rmp
