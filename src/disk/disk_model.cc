#include "src/disk/disk_model.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace rmp {

DiskModel::DiskModel(const DiskParams& params) : params_(params) {
  assert(params_.bandwidth_mbps > 0.0);
  assert(params_.rpm > 0.0);
  assert(params_.max_seek >= params_.min_seek);
  const double rotation_s = 60.0 / params_.rpm;
  rotation_avg_ = static_cast<DurationNs>(rotation_s / 2.0 * kSecond);
}

DurationNs DiskModel::SeekTime(uint64_t distance) const {
  if (distance == 0) {
    return 0;
  }
  // Square-root seek curve: short seeks are dominated by arm acceleration.
  const double frac =
      std::sqrt(static_cast<double>(distance) / static_cast<double>(params_.total_blocks));
  return params_.min_seek +
         static_cast<DurationNs>(frac * static_cast<double>(params_.max_seek - params_.min_seek));
}

DurationNs DiskModel::PositioningCost(uint64_t block) const {
  const uint64_t distance = block >= head_ ? block - head_ : head_ - block;
  if (distance <= params_.contiguous_window) {
    return 0;  // Track buffer / streaming continuation.
  }
  return SeekTime(distance) + rotation_avg_;
}

DurationNs DiskModel::TransferTime(uint64_t pages) const {
  return WireTime(pages * kPageSize, params_.bandwidth_mbps);
}

DurationNs DiskModel::Access(uint64_t block, uint64_t pages, bool is_write) {
  assert(pages > 0);
  DurationNs positioning = PositioningCost(block);
  if (positioning > 0) {
    ++seeks_;
  } else if (is_write) {
    // No write cache: even an adjacent write waits for the platter to come
    // back around (there is no data in a track buffer to merge with).
    positioning = rotation_avg_;
  }
  const DurationNs service = params_.controller_overhead + positioning + TransferTime(pages);
  head_ = block + pages;
  ++requests_;
  busy_time_ += service;
  return service;
}

DurationNs DiskModel::AverageRandomPageTime() const {
  // E[sqrt(U)] = 2/3 for the seek fraction over a uniform stroke.
  const DurationNs avg_seek =
      params_.min_seek +
      static_cast<DurationNs>(2.0 / 3.0 *
                              static_cast<double>(params_.max_seek - params_.min_seek));
  return params_.controller_overhead + avg_seek + rotation_avg_ + TransferTime(1);
}

void DiskModel::ResetStats() {
  requests_ = 0;
  seeks_ = 0;
  busy_time_ = 0;
}

std::string DiskModel::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "disk-%.0fMbps", params_.bandwidth_mbps);
  return buf;
}

}  // namespace rmp
