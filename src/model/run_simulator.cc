#include "src/model/run_simulator.h"

#include <cstdio>

namespace rmp {

Result<RunResult> SimulateRun(const Workload& workload, PagingBackend* backend,
                              const RunConfig& config) {
  const WorkloadInfo meta = workload.info();
  VmParams vm_params;
  vm_params.virtual_pages = PagesForBytes(meta.data_bytes) + 16;  // Headroom for small arrays.
  vm_params.physical_frames = config.physical_frames;
  vm_params.replacement = config.replacement;
  PagedVm vm(vm_params, backend);

  TimeNs now = Seconds(meta.init_seconds);
  RMP_RETURN_IF_ERROR(workload.Run(&vm, &now));
  // Process exit: dirty resident pages are discarded with the address space,
  // not written back, so the run ends here.

  RunResult result;
  result.workload = meta.name;
  result.policy = backend->Name();
  result.etime_s = ToSeconds(now);
  result.utime_s = meta.user_seconds;
  result.systime_s = meta.system_seconds;
  result.inittime_s = meta.init_seconds;
  result.ptime_s =
      result.etime_s - result.utime_s - result.systime_s - result.inittime_s;
  result.vm = vm.stats();
  result.backend = backend->stats();
  return result;
}

std::string FormatRunResult(const RunResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-8s %-16s etime=%8.2fs  (u=%.2f sys=%.2f init=%.2f ptime=%.2f)  "
                "outs=%lld ins=%lld transfers=%lld",
                result.workload.c_str(), result.policy.c_str(), result.etime_s, result.utime_s,
                result.systime_s, result.inittime_s, result.ptime_s,
                static_cast<long long>(result.vm.pageouts),
                static_cast<long long>(result.vm.pageins),
                static_cast<long long>(result.backend.page_transfers +
                                       result.backend.disk_transfers));
  return buf;
}

}  // namespace rmp
