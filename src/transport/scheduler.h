// Two-level fair-share request scheduler (DESIGN.md §13).
//
// The reactor's loop threads must never block on request service, so decoded
// requests are handed to a small worker pool through this scheduler. Per-slot
// FIFO dispatch — what the thread-per-session transport did — lets a single
// saturating background stream (repair resilver, migration drains) queue
// ahead of foreground page faults. Here dispatch is fair at two levels:
//
//   Level 1: traffic classes, weighted round-robin. A foreground PAGEIN is
//            worth more scheduler credit than a PAGEOUT, which outranks
//            background repair/migration/heartbeat traffic. Weights are
//            a ratio, not a priority: background classes still drain (no
//            starvation in either direction), just slower under contention.
//   Level 2: round-robin across session lanes within a class, so one chatty
//            session cannot monopolize its class.
//
// A "lane" is the unit of ordering: requests in one lane are served FIFO and
// never concurrently. Each session splits into `lanes_per_session` lanes by
// slot (lane = slot % lanes), which reproduces the old transport's slot
//-affinity guarantee — same-slot requests stay ordered, different slots may
// be served in parallel — without a worker pool per session.
//
// Level 0 (DESIGN.md §15): tenants. Sessions carry a tenant id (bound at
// AUTH); each tenant owns its own set of class rings and the top-level pick
// is weighted round-robin across tenants, so dispatch share is
// tenant weight × class weight and a flooding tenant cannot starve another
// tenant's traffic. With every session on tenant 0 (the default) there is
// exactly one tenant queue and the scheduler reduces to the two-level form.
// Overload shedding (shed_limit / tenant_queue_cap) drops over-quota
// background and pageout work at Submit — before it eats queue memory —
// while foreground pageins and control traffic are never shed.

#ifndef SRC_TRANSPORT_SCHEDULER_H_
#define SRC_TRANSPORT_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/proto/wire.h"
#include "src/util/config.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace rmp {

// Level-1 taxonomy. Order is dispatch priority under equal credit.
enum class TrafficClass : uint8_t {
  kPagein = 0,      // Foreground faults: a thread is blocked on this reply.
  kPageout = 1,     // Dirty-page writeback: urgent but bufferable.
  kControl = 2,     // Alloc/free/load/auth/stats — small and rare.
  kBackground = 3,  // Repair, migration, heartbeats: bulk resilver traffic.
};
inline constexpr int kTrafficClasses = 4;

std::string_view TrafficClassName(TrafficClass c);

// Maps a request type to its class (replies classify with their requests so
// peer-to-peer streams schedule symmetrically).
TrafficClass ClassifyMessage(MessageType type);

struct SchedulerOptions {
  // Weighted-round-robin credits per refill, indexed by TrafficClass.
  // Defaults 8:4:2:1 — under full contention foreground pagein gets ~53% of
  // dispatch slots, background ~7%.
  int weights[kTrafficClasses] = {8, 4, 2, 1};
  // Ordering lanes per session (lane = slot % lanes_per_session). 1 = strict
  // per-session FIFO; >1 allows same-session parallelism across slots.
  int lanes_per_session = 8;

  // --- Tenant WFQ + shedding (DESIGN.md §15) ------------------------------
  // Per-tenant dispatch weights (id → weight); tenants without a row (and
  // tenant 0) weigh default_tenant_weight. Ratios, not priorities: every
  // tenant keeps draining under contention.
  std::vector<std::pair<uint16_t, int>> tenant_weights;
  int default_tenant_weight = 1;
  // Overload shedding. 0 = never shed. With a limit S, background submits
  // are shed once the total backlog reaches S and pageout-class submits once
  // it reaches 2·S; pagein and control traffic is never shed.
  int shed_limit = 0;
  // Per-tenant backlog cap for sheddable (pageout/background) submits;
  // 0 = uncapped. Bounds the queue memory one flooding tenant can pin.
  int tenant_queue_cap = 0;

  // Keys: scheduler.weight_pagein, scheduler.weight_pageout,
  // scheduler.weight_control, scheduler.weight_background,
  // scheduler.lanes_per_session, scheduler.shed_limit,
  // scheduler.tenant_queue_cap, tenant.<id>.weight.
  static Result<SchedulerOptions> FromConfig(const Config& config);
};

// Outcome of SubmitEx. kRejected = dead session or stopped scheduler (the
// old `false`); kShed = overload policy dropped the request — the transport
// answers RESOURCE_EXHAUSTED so the client backs off instead of retrying
// blind.
enum class SubmitResult : uint8_t { kOk, kRejected, kShed };

// Thread-safe two-level fair-share queue. Producers (loop threads) Submit,
// consumers (workers) block in Next and call Done after servicing the item;
// a lane is not eligible for dispatch again until its previous item is Done.
class FairShareScheduler {
 public:
  struct Session;

  struct Item {
    Message request;
    std::shared_ptr<Session> session;
    // Copy of the session's owner backref, taken under the scheduler lock at
    // Submit so workers can use it without racing RemoveSession's reset.
    std::shared_ptr<void> owner;
    int lane = 0;
    int64_t enqueue_ns = 0;
  };

  explicit FairShareScheduler(SchedulerOptions options = SchedulerOptions(),
                              const std::string& metric_prefix = "sched");
  ~FairShareScheduler();

  FairShareScheduler(const FairShareScheduler&) = delete;
  FairShareScheduler& operator=(const FairShareScheduler&) = delete;

  // Registers a session. `owner` is an opaque backref (the transport's
  // per-connection state) kept alive as long as items for this session are
  // in flight. `tenant` seeds the session's tenant id (0 = untenanted).
  std::shared_ptr<Session> AddSession(std::shared_ptr<void> owner, uint16_t tenant = 0);

  // Rebinds the session to `tenant` (the transport calls this when AUTH
  // binds one). Work already queued transfers its backlog accounting; lanes
  // already scheduled drain from the old tenant's rings once, then rejoin
  // under the new tenant.
  void SetSessionTenant(const std::shared_ptr<Session>& session, uint16_t tenant);

  // Marks the session dead and drops its queued (not in-service) items.
  void RemoveSession(const std::shared_ptr<Session>& session);

  // Enqueues one request. Returns false when the session is dead or the
  // scheduler stopped (the caller drops the request).
  bool Submit(const std::shared_ptr<Session>& session, Message request);
  // Like Submit, but distinguishes a dead-session rejection from an overload
  // shed so the transport can answer them differently.
  SubmitResult SubmitEx(const std::shared_ptr<Session>& session, Message request);

  // Blocks for the next item; false when stopped and drained. The item's
  // lane is held out of rotation until Done(item).
  bool Next(Item* out);
  // Like Next but never blocks: false when nothing is runnable right now.
  // Lets workers drain a burst and batch (cork) the replies per connection
  // before going back to a blocking wait.
  bool TryNext(Item* out);
  void Done(const Item& item);

  // Done + Next fused into one critical section: completes `lane` of
  // `session`, then the finishing worker claims the next runnable item for
  // itself. Done followed by Next wakes a parked peer that usually loses the
  // race to the finisher and parks again — a wasted futex wake/wait pair per
  // request in steady state. Here a peer is woken only when runnable work
  // remains after the self-dispatch, which keeps the pool work-conserving
  // without the churn.
  bool DoneAndNext(const std::shared_ptr<Session>& session, int lane, Item* out);

  // Wakes all waiters; Next returns false once the queues are drained... and
  // immediately for items submitted after.
  void Stop();

  size_t queued() const { return queued_gauge_.value() < 0 ? 0 : static_cast<size_t>(queued_gauge_.value()); }
  int64_t served(TrafficClass c) const { return served_[static_cast<int>(c)]->value(); }
  // Items dispatched on behalf of `tenant` (fairness assertions read this).
  uint64_t TenantServed(uint16_t tenant) const;
  // Submits dropped by the overload policy since construction.
  int64_t shed_total() const { return shed_->value(); }
  const SchedulerOptions& options() const { return options_; }

  struct Lane {
    std::deque<Item> queue;   // Front = next to serve. Items carry their lane.
    bool scheduled = false;   // Present in its class ring.
    bool running = false;     // A worker is servicing this lane's head.
  };

  struct Session {
    std::shared_ptr<void> owner;
    std::vector<Lane> lanes;
    bool dead = false;
    uint64_t id = 0;
    uint16_t tenant = 0;  // Guarded by the scheduler mutex.
  };

 private:
  struct RingEntry {
    std::shared_ptr<Session> session;
    int lane;
  };

  // Level-0 unit: one tenant's class rings plus its WRR accounting. Objects
  // are heap-stable (vector of unique_ptr), so pointers survive growth.
  struct TenantQueue {
    uint16_t id = 0;
    int weight = 1;
    int credit = 1;
    std::deque<RingEntry> rings[kTrafficClasses];
    int class_credits[kTrafficClasses] = {0, 0, 0, 0};
    int64_t queued = 0;    // Items sitting in lanes of this tenant's sessions.
    uint64_t served = 0;   // Items dispatched.
  };

  // One per worker thread (thread-local in Next). Workers park on their own
  // condition variable in a LIFO stack so dispatch wakes the hottest worker
  // instead of round-robining the whole pool through the run queue.
  struct Waiter {
    std::condition_variable cv;
    bool signaled = false;  // Guarded by mutex_.
  };

  // All private helpers run under mutex_.
  TenantQueue* TenantQueueLocked(uint16_t tenant);
  TenantQueue* PickTenantLocked();
  int PickClassLocked(TenantQueue* tenant);
  bool ShedLocked(const TenantQueue& tenant, TrafficClass klass) const;
  bool DispatchLocked(Item* out);
  bool HasRunnableLocked() const;
  static bool TenantRunnable(const TenantQueue& tenant);
  void EnqueueLaneLocked(const std::shared_ptr<Session>& session, int lane);
  // Returns true when the lane was re-enqueued (more queued work behind it).
  bool FinishLocked(const std::shared_ptr<Session>& session, int lane);
  // Pops and signals the most recently parked waiter, while still holding
  // mutex_ — the waiter's thread-local Waiter may be destroyed the instant
  // its wait() returns, so the notify must complete before it can.
  void WakeOneLocked();

  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::vector<Waiter*> parked_;  // LIFO stack of idle workers.
  bool stopped_ = false;
  uint64_t next_session_id_ = 1;
  // Level-0 tenant queues, created on first use (tenant 0 at construction).
  std::vector<std::unique_ptr<TenantQueue>> tenants_;
  std::unordered_map<uint16_t, size_t> tenant_index_;
  size_t tenant_cursor_ = 0;  // Round-robin start for the tenant scan.
  int64_t total_queued_ = 0;  // Backlog across all tenants (shed threshold).

  Counter* served_[kTrafficClasses];
  Counter* shed_;
  Gauge& queued_gauge_;
  HistogramMetric& dispatch_latency_us_;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_SCHEDULER_H_
