// Elastic cluster membership conformance (DESIGN.md §16): epoch-numbered
// cluster maps over the wire, consistent-hash placement, paced zero-loss
// rebalance on join/decommission, stale-epoch denial and recovery, and
// crash-during-rebalance convergence. End states are verified by
// byte-identical read-back of every page plus map/placement invariants.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/repair.h"
#include "src/core/testbed.h"
#include "src/proto/cluster_map.h"

namespace rmp {
namespace {

constexpr uint64_t kSeed = 29;
constexpr uint64_t kPages = 96;

HealthParams FastHealth() {
  HealthParams params;
  params.heartbeat_interval = Millis(50);
  params.suspect_after = 1;
  params.dead_after = 3;
  return params;
}

RepairParams PacedRebalance(uint64_t pages_per_sec = 2000, uint64_t burst = 16) {
  RepairParams params;
  params.rebalance_pages_per_sec = pages_per_sec;
  params.rebalance_burst_pages = burst;
  return params;
}

void CheckAllPages(Testbed* bed, TimeNs* now, uint64_t pages = kPages) {
  PageBuffer in;
  for (uint64_t page = 0; page < pages; ++page) {
    auto done = bed->backend().PageIn(*now, page, in.span());
    ASSERT_TRUE(done.ok()) << "page " << page << ": " << done.status().message();
    *now = *done;
    EXPECT_TRUE(CheckPattern(in.span(), Testbed::PreloadSeed(kSeed, page))) << "page " << page;
  }
}

// Drives the coordinator to quiescence while foreground reads keep hitting
// every page — the "under load" half of the scale-out/in scenarios. Each
// iteration advances one pump (possibly throttled) and one read.
void DriveUnderLoad(Testbed* bed, TimeNs* now) {
  RepairCoordinator* repair = bed->repair();
  PageBuffer in;
  uint64_t reads = 0;
  while (!repair->idle()) {
    auto pumped = repair->Pump(*now + Millis(10));
    ASSERT_TRUE(pumped.ok()) << pumped.status().message();
    *now = *pumped;
    const uint64_t page = reads % kPages;
    auto done = bed->backend().PageIn(*now, page, in.span());
    ASSERT_TRUE(done.ok()) << "page " << page << ": " << done.status().message();
    *now = *done;
    ASSERT_TRUE(CheckPattern(in.span(), Testbed::PreloadSeed(kSeed, page))) << "page " << page;
    ++reads;
    ASSERT_LT(reads, 100000u) << "rebalance failed to converge";
  }
}

// --- ClusterMap unit coverage ----------------------------------------------

TEST(ClusterMapTest, SerializeRoundTripPreservesRing) {
  std::vector<ClusterMember> members = {
      {0, 7, ClusterMember::State::kActive},
      {1, 1, ClusterMember::State::kActive},
      {2, 3, ClusterMember::State::kLeaving},
  };
  const ClusterMap map = ClusterMap::Build(5, 128, members);
  auto decoded = ClusterMap::Deserialize(map.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_TRUE(*decoded == map);
  for (uint32_t group = 0; group < 128; ++group) {
    EXPECT_EQ(decoded->OwnerOf(group), map.OwnerOf(group));
  }
}

TEST(ClusterMapTest, RingIgnoresIncarnationSoRebootsDoNotReshuffle) {
  std::vector<ClusterMember> before = {
      {0, 1, ClusterMember::State::kActive},
      {1, 1, ClusterMember::State::kActive},
      {2, 1, ClusterMember::State::kActive},
  };
  std::vector<ClusterMember> after = before;
  after[1].incarnation = 42;  // Server 1 rebooted.
  const ClusterMap a = ClusterMap::Build(1, 256, before);
  const ClusterMap b = ClusterMap::Build(2, 256, after);
  for (uint32_t group = 0; group < 256; ++group) {
    EXPECT_EQ(a.OwnerOf(group), b.OwnerOf(group));
  }
}

TEST(ClusterMapTest, JoinMovesABoundedFractionOfGroups) {
  std::vector<ClusterMember> three = {
      {0, 1, ClusterMember::State::kActive},
      {1, 1, ClusterMember::State::kActive},
      {2, 1, ClusterMember::State::kActive},
  };
  std::vector<ClusterMember> four = three;
  four.push_back({3, 1, ClusterMember::State::kActive});
  const ClusterMap before = ClusterMap::Build(1, 1024, three);
  const ClusterMap after = ClusterMap::Build(2, 1024, four);
  uint32_t moved = 0;
  uint32_t to_new = 0;
  for (uint32_t group = 0; group < 1024; ++group) {
    if (before.OwnerOf(group) != after.OwnerOf(group)) {
      ++moved;
      // Consistent hashing: a group changes owner only to flow to the
      // new member, never to shuffle between the old ones.
      EXPECT_EQ(after.OwnerOf(group), 3u) << "group " << group;
      ++to_new;
    }
  }
  EXPECT_GT(to_new, 0u);
  // Expected ~1/4; anything under half proves placement is consistent, not
  // rehash-everything.
  EXPECT_LT(moved, 512u);
}

TEST(ClusterMapTest, OwnerChainYieldsDistinctActiveMembers) {
  std::vector<ClusterMember> members = {
      {0, 1, ClusterMember::State::kActive},
      {1, 1, ClusterMember::State::kActive},
      {2, 1, ClusterMember::State::kLeaving},
      {3, 1, ClusterMember::State::kActive},
  };
  const ClusterMap map = ClusterMap::Build(1, 64, members);
  for (uint32_t group = 0; group < 64; ++group) {
    const auto chain = map.OwnerChain(group, 2);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_NE(chain[0], chain[1]);
    EXPECT_NE(chain[0], 2u);  // kLeaving members own nothing.
    EXPECT_NE(chain[1], 2u);
  }
}

TEST(ClusterMapTest, DeserializeFailsClosed) {
  const ClusterMap map =
      ClusterMap::Build(3, 64, {{0, 1, ClusterMember::State::kActive}});
  std::vector<uint8_t> good = map.Serialize();

  // Truncations at every boundary.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = ClusterMap::Deserialize(std::span<const uint8_t>(good).first(len));
    EXPECT_FALSE(r.ok()) << "truncated to " << len;
  }
  // Trailing garbage.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(ClusterMap::Deserialize(padded).ok());
  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(ClusterMap::Deserialize(bad).ok());
  // Epoch 0 is reserved for "no map".
  bad = good;
  for (int i = 4; i < 12; ++i) bad[i] = 0;
  EXPECT_FALSE(ClusterMap::Deserialize(bad).ok());
}

// --- Map wire protocol ------------------------------------------------------

TEST(ClusterMembershipTest, MapPublishAndQueryRoundTrip) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  auto* pager = bed->remote_pager();
  ASSERT_NE(pager, nullptr);

  // No map yet: the query reports not-found.
  EXPECT_EQ(bed->server(0).map_epoch(), 0u);
  EXPECT_FALSE(pager->cluster().peer(0).QueryMap().ok());

  ASSERT_TRUE(bed->EnableElasticMembership().ok());
  EXPECT_EQ(pager->cluster_map().epoch(), 1u);
  for (size_t i = 0; i < bed->server_count(); ++i) {
    EXPECT_EQ(bed->server(i).map_epoch(), 1u) << "server " << i;
    auto map = pager->cluster().peer(i).QueryMap();
    ASSERT_TRUE(map.ok()) << map.status().message();
    EXPECT_TRUE(*map == pager->cluster_map());
  }
  EXPECT_EQ(bed->server(0).stats().map_publishes.value(), 1);

  // An older publish is refused and counted; the epoch in force stands.
  const ClusterMap stale =
      ClusterMap::Build(1, pager->cluster_map().groups(), pager->cluster_map().members());
  ASSERT_TRUE(bed->EnableElasticMembership().code() == ErrorCode::kFailedPrecondition);
  std::vector<ClusterMember> members = pager->cluster_map().members();
  const ClusterMap next = ClusterMap::Build(2, pager->cluster_map().groups(), members);
  TimeNs now = 0;
  ASSERT_TRUE(pager->AdoptClusterMap(next, &now));
  EXPECT_EQ(bed->server(0).map_epoch(), 2u);
  Status refused = pager->cluster().peer(0).PublishMap(stale.epoch(), stale.Serialize());
  EXPECT_EQ(refused.code(), ErrorCode::kStaleEpoch);
  EXPECT_EQ(bed->server(0).map_epoch(), 2u);
}

TEST(ClusterMembershipTest, EpochGateRejectsOnlyOlderStampedOps) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 1;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableElasticMembership().ok());
  auto* pager = bed->remote_pager();
  std::vector<ClusterMember> members = pager->cluster_map().members();
  TimeNs now = 0;
  ASSERT_TRUE(pager->AdoptClusterMap(ClusterMap::Build(3, 64, members), &now));
  ASSERT_EQ(bed->server(0).map_epoch(), 3u);

  Message request = MakeAllocRequest(/*request_id=*/900, /*pages=*/1);
  request.aux = 2;  // Older than the server's epoch.
  auto reply = bed->transport(0).Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, static_cast<uint32_t>(ErrorCode::kStaleEpoch));
  EXPECT_EQ(reply->aux, 3u);  // The denial teaches the current epoch.

  request.aux = 3;  // Current epoch: accepted.
  reply = bed->transport(0).Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, static_cast<uint32_t>(ErrorCode::kOk));

  request.aux = 9;  // Newer than the server (it is the stale one): accepted.
  reply = bed->transport(0).Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, static_cast<uint32_t>(ErrorCode::kOk));

  request.aux = 0;  // Legacy/unstamped: always accepted.
  reply = bed->transport(0).Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, static_cast<uint32_t>(ErrorCode::kOk));

  EXPECT_EQ(bed->server(0).stats().stale_epoch_rejections.value(), 1);
}

// --- Scale-out / scale-in under load ---------------------------------------

TEST(ClusterMembershipTest, JoinUnderLoadRebalancesWithZeroLoss) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedRebalance()).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());

  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto settled = bed->repair()->RunToQuiescence(now);
  ASSERT_TRUE(settled.ok()) << settled.status().message();
  now = *settled;

  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  const size_t fresh = *joined;
  EXPECT_EQ(fresh, 2u);
  EXPECT_EQ(bed->remote_pager()->cluster_map().epoch(), 2u);
  EXPECT_EQ(bed->server(fresh).map_epoch(), 2u);

  DriveUnderLoad(bed.get(), &now);

  // The moved ranges landed on the new member, nothing was lost, and the
  // placement matches the map exactly.
  auto* pager = bed->remote_pager();
  EXPECT_GT(pager->PagesOn(fresh), 0u);
  EXPECT_GT(bed->repair()->stats().pages_rebalanced, 0);
  CheckAllPages(bed.get(), &now);
  uint64_t strays = 0;
  for (uint64_t page = 0; page < kPages; ++page) {
    auto owner = pager->MapOwnerPeer(page);
    ASSERT_TRUE(owner.ok());
    strays += pager->PagesOn(*owner) == 0 ? 1 : 0;
  }
  uint64_t total = 0;
  for (size_t i = 0; i < bed->server_count(); ++i) {
    total += pager->PagesOn(i);
  }
  EXPECT_EQ(total, kPages);
}

TEST(ClusterMembershipTest, DecommissionUnderLoadDrainsWithZeroLoss) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedRebalance()).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());

  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto settled = bed->repair()->RunToQuiescence(now);
  ASSERT_TRUE(settled.ok()) << settled.status().message();
  now = *settled;
  auto* pager = bed->remote_pager();
  const uint64_t held = pager->PagesOn(2);
  ASSERT_GT(held, 0u);

  // Premature completion is refused while the peer still holds pages.
  EXPECT_EQ(bed->CompleteDecommission(2, &now).code(), ErrorCode::kFailedPrecondition);

  ASSERT_TRUE(bed->DecommissionServer(2, &now).ok());
  EXPECT_EQ(pager->cluster_map().epoch(), 2u);
  DriveUnderLoad(bed.get(), &now);

  EXPECT_EQ(pager->PagesOn(2), 0u);
  EXPECT_EQ(bed->server(2).live_pages(), 0u);  // The frees landed server-side.
  ASSERT_TRUE(bed->CompleteDecommission(2, &now).ok());
  EXPECT_EQ(pager->cluster_map().epoch(), 3u);
  EXPECT_EQ(pager->cluster_map().members().size(), 2u);
  CheckAllPages(bed.get(), &now);

  // Fresh writes avoid the departed member entirely.
  PageBuffer page;
  for (uint64_t id = kPages; id < kPages + 16; ++id) {
    FillPattern(page.span(), Testbed::PreloadSeed(kSeed, id));
    auto done = bed->backend().PageOut(now, id, page.span());
    ASSERT_TRUE(done.ok()) << done.status().message();
    now = *done;
  }
  EXPECT_EQ(pager->PagesOn(2), 0u);
}

TEST(ClusterMembershipTest, MirroredJoinPlacesReplicasOnOwnerChain) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedRebalance()).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());

  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto settled = bed->repair()->RunToQuiescence(now);
  ASSERT_TRUE(settled.ok()) << settled.status().message();
  now = *settled;

  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  DriveUnderLoad(bed.get(), &now);

  auto* pager = bed->remote_pager();
  EXPECT_GT(pager->PagesOn(*joined), 0u);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  uint64_t total = 0;
  for (size_t i = 0; i < bed->server_count(); ++i) {
    total += pager->PagesOn(i);
  }
  EXPECT_EQ(total, 2 * kPages);  // Two live replicas of everything.
  CheckAllPages(bed.get(), &now);
}

TEST(ClusterMembershipTest, CrashMidRebalanceRecoversWithZeroLoss) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  // Slow pacing so the crash lands mid-rebalance, not after it.
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedRebalance(200, 4)).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());

  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto settled = bed->repair()->RunToQuiescence(now);
  ASSERT_TRUE(settled.ok()) << settled.status().message();
  now = *settled;

  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();

  // A few pumps in: some ranges moved, most have not.
  for (int i = 0; i < 3 && !bed->repair()->idle(); ++i) {
    auto pumped = bed->repair()->Pump(now + Millis(10));
    ASSERT_TRUE(pumped.ok()) << pumped.status().message();
    now = *pumped;
  }
  ASSERT_FALSE(bed->repair()->idle()) << "pacing too fast; rebalance already done";

  bed->CrashServer(1);
  auto pumped = bed->repair()->Pump(now + Millis(50));  // Detect DEAD.
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;

  EXPECT_GE(bed->repair()->stats().repairs_completed, 1);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
}

TEST(ClusterMembershipTest, StaleEpochDenialRefreshesAndRetries) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableElasticMembership().ok());
  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto* pager = bed->remote_pager();
  ASSERT_EQ(pager->cluster_map().epoch(), 1u);

  // Another coordinator publishes epoch 2 behind this client's back.
  const ClusterMap next =
      ClusterMap::Build(2, pager->cluster_map().groups(), pager->cluster_map().members());
  const std::vector<uint8_t> bytes = next.Serialize();
  for (size_t i = 0; i < bed->server_count(); ++i) {
    ASSERT_TRUE(pager->cluster().peer(i).PublishMap(next.epoch(), bytes).ok());
    ASSERT_EQ(bed->server(i).map_epoch(), 2u);
  }

  // The next stamped op is denied STALE_EPOCH, refreshes, and retries —
  // never surfacing as an error, never as data loss.
  PageBuffer buf;
  FillPattern(buf.span(), Testbed::PreloadSeed(kSeed, 3));
  auto done = bed->backend().PageOut(now, 3, buf.span());
  ASSERT_TRUE(done.ok()) << done.status().message();
  now = *done;
  EXPECT_GE(pager->stats().stale_epoch_retries, 1);
  EXPECT_EQ(pager->cluster_map().epoch(), 2u);
  int64_t rejections = 0;
  for (size_t i = 0; i < bed->server_count(); ++i) {
    rejections += bed->server(i).stats().stale_epoch_rejections.value();
  }
  EXPECT_GE(rejections, 1);
  CheckAllPages(bed.get(), &now);
}

TEST(ClusterMembershipTest, RebootedServerRelearnsMapOnNextPublish) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto made = Testbed::Create(params);
  ASSERT_TRUE(made.ok());
  auto bed = std::move(*made);
  ASSERT_TRUE(bed->EnableSelfHealing(FastHealth(), PacedRebalance()).ok());
  ASSERT_TRUE(bed->EnableElasticMembership().ok());
  auto loaded = bed->Preload(kPages, kSeed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  TimeNs now = *loaded;
  auto settled = bed->repair()->RunToQuiescence(now);
  ASSERT_TRUE(settled.ok()) << settled.status().message();
  now = *settled;
  ASSERT_EQ(bed->server(1).map_epoch(), 1u);

  // Crash wipes the server's map with its store; the resilver restores
  // redundancy, the reboot re-admits, and the peer runs maplessly (epoch 0
  // accepts every stamped request) until the next publish reaches it.
  bed->CrashServer(1);
  auto pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  auto quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;
  bed->RestartServer(1);
  pumped = bed->repair()->Pump(now + Millis(50));
  ASSERT_TRUE(pumped.ok()) << pumped.status().message();
  quiesced = bed->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok()) << quiesced.status().message();
  now = *quiesced;
  ASSERT_EQ(bed->health()->health(1), PeerHealth::kAlive);
  EXPECT_EQ(bed->server(1).map_epoch(), 0u);

  // The next membership change republishes to every live peer.
  auto joined = bed->JoinServer(&now);
  ASSERT_TRUE(joined.ok()) << joined.status().message();
  EXPECT_EQ(bed->server(1).map_epoch(), 2u);
  DriveUnderLoad(bed.get(), &now);
  EXPECT_EQ(bed->mirroring()->fully_replicated_pages(), static_cast<int64_t>(kPages));
  CheckAllPages(bed.get(), &now);
}

TEST(ClusterMembershipTest, ClusterConfigKnobsApply) {
  auto config = Config::Parse(
      "cluster.page_groups = 128\n"
      "cluster.rebalance_pages_per_sec = 500\n"
      "cluster.rebalance_burst = 8\n"
      "cluster.epoch_refresh_ms = 250\n");
  ASSERT_TRUE(config.ok());
  ElasticParams elastic;
  RepairParams repair;
  RemotePagerParams pager;
  ASSERT_TRUE(ApplyClusterConfig(*config, &elastic, &repair, &pager).ok());
  EXPECT_EQ(elastic.page_groups, 128u);
  EXPECT_EQ(repair.rebalance_pages_per_sec, 500u);
  EXPECT_EQ(repair.rebalance_burst_pages, 8u);
  EXPECT_EQ(pager.map_refresh_interval, Millis(250));

  auto bad = Config::Parse("cluster.page_groups = 0\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ApplyClusterConfig(*bad, &elastic, nullptr, nullptr).ok());
}

}  // namespace
}  // namespace rmp
