#include "src/core/parity_logging.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/util/logging.h"

namespace rmp {

ParityLoggingBackend::ParityLoggingBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                                           const RemotePagerParams& params, size_t parity_peer,
                                           const ParityLoggingParams& pl_params)
    : RemotePagerBase(std::move(cluster), std::move(fabric), params),
      parity_peer_(parity_peer),
      pl_params_(pl_params) {
  assert(parity_peer_ < cluster_.size());
  assert(cluster_.size() >= 2 && "parity logging needs at least one data server");
  open_group_id_ = next_group_id_++;
  groups_[open_group_id_] = ParityGroup{};
}

std::vector<size_t> ParityLoggingBackend::DataPeers() const {
  std::vector<size_t> peers;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    if (i != parity_peer_) {
      peers.push_back(i);
    }
  }
  return peers;
}

int ParityLoggingBackend::EffectiveGroupSize() const {
  if (pl_params_.group_size > 0) {
    return pl_params_.group_size;
  }
  return static_cast<int>(cluster_.size()) - 1;
}

bool ParityLoggingBackend::OpenGroupUses(size_t peer) const {
  const ParityGroup& open = groups_.at(open_group_id_);
  for (const GroupEntry& e : open.entries) {
    if (e.peer == peer) {
      return true;
    }
  }
  return false;
}

Result<size_t> ParityLoggingBackend::PickDataPeer(TimeNs* now) {
  for (int round = 0; round < 2; ++round) {
    bool any_usable = false;
    const std::vector<size_t> data_peers = DataPeers();
    // Round-robin scan starting after the cursor.
    for (size_t step = 1; step <= data_peers.size(); ++step) {
      const size_t i = data_peers[(rr_cursor_ + step) % data_peers.size()];
      const ServerPeer& peer = cluster_.peer(i);
      if (!peer.usable()) {
        continue;
      }
      any_usable = true;
      if (OpenGroupUses(i)) {
        continue;
      }
      rr_cursor_ = (rr_cursor_ + step) % data_peers.size();
      return i;
    }
    if (!any_usable) {
      return NoSpaceError("no usable data server");
    }
    // Every usable server already appears in the open group: the group has
    // saturated its distinct-server budget, so seal it early and retry.
    RMP_RETURN_IF_ERROR(FlushParity(now));
  }
  return InternalError("data peer selection failed after parity flush");
}

void ParityLoggingBackend::RetireOldVersion(uint64_t page_id, TimeNs* now) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return;
  }
  const PageLocation loc = it->second;
  table_.erase(it);
  auto git = groups_.find(loc.group_id);
  if (git == groups_.end()) {
    return;
  }
  ParityGroup& group = git->second;
  GroupEntry& entry = group.entries[loc.entry_index];
  if (!entry.active) {
    return;
  }
  entry.active = false;
  --group.active_count;
  if (group.sealed && group.active_count == 0) {
    ReclaimGroup(loc.group_id, now);
  }
}

void ParityLoggingBackend::ReclaimGroup(uint64_t group_id, TimeNs* now) {
  if (pending_parity_.valid() && group_id == pending_parity_group_) {
    // This group's parity write may still be in flight; settle it before
    // freeing the slot it targets. A failed write is moot — the slots are
    // being freed anyway.
    (void)JoinParityFlush(now);
  }
  auto git = groups_.find(group_id);
  if (git == groups_.end()) {
    return;
  }
  ParityGroup& group = git->second;
  assert(group.sealed && group.active_count == 0);
  for (const GroupEntry& entry : group.entries) {
    ServerPeer& peer = cluster_.peer(entry.peer);
    if (peer.alive()) {
      (void)peer.FreeOn(entry.slot, 1);
    }
  }
  ServerPeer& parity = cluster_.peer(parity_peer_);
  if (parity.alive()) {
    (void)parity.FreeOn(group.parity_slot, 1);
  }
  // One batched free announcement on the wire per reclaimed group.
  *now = ChargeControl(*now);
  groups_.erase(git);
  ++groups_reclaimed_;
}

Status ParityLoggingBackend::JoinParityFlush(TimeNs* now) {
  if (pending_parity_completion_ != 0) {
    // The next stripe's pageouts were charged concurrently with the parity
    // transfer; only now does anyone have to wait for its completion.
    *now = std::max(*now, pending_parity_completion_);
    pending_parity_completion_ = 0;
  }
  if (!pending_parity_.valid()) {
    return OkStatus();
  }
  RpcFuture flush = std::move(pending_parity_);
  ServerPeer& parity = cluster_.peer(parity_peer_);
  auto advise = parity.JoinPageOut(std::move(flush));
  if (!advise.ok()) {
    return advise.status();
  }
  // ADVISE_STOP from the parity server is deliberately ignored: parity slots
  // are granted through AllocExtent, which applies its own backpressure, and
  // stopping flushes would leave sealed groups without redundancy.
  return OkStatus();
}

Status ParityLoggingBackend::FlushParity(TimeNs* now) {
  const TimeNs parity_start = *now;
  // At most one parity write rides the wire at a time: settle the previous
  // stripe's flush before issuing this one.
  RMP_RETURN_IF_ERROR(JoinParityFlush(now));
  if (groups_.at(open_group_id_).entries.empty()) {
    return OkStatus();
  }
  ServerPeer& parity = cluster_.peer(parity_peer_);
  if (!parity.alive()) {
    return UnavailableError("parity server is down");
  }
  auto slot = TakeSlotOn(parity_peer_, now);
  if (!slot.ok() && slot.status().code() == ErrorCode::kNoSpace && !in_gc_) {
    const uint64_t group_before_gc = open_group_id_;
    RMP_RETURN_IF_ERROR(GarbageCollect(now));
    if (open_group_id_ != group_before_gc) {
      // GC re-placement filled and sealed the group we were flushing (its
      // parity went out with the GC entries folded in), so the job is done.
      return OkStatus();
    }
    slot = TakeSlotOn(parity_peer_, now);
  }
  if (!slot.ok()) {
    return slot.status();
  }
  // Re-acquire after every potentially reentrant call above.
  ParityGroup& open = groups_.at(open_group_id_);
  RpcFuture flush = parity.StartPageOut(*slot, accumulator_.span());
  const TimeNs completion = ChargePageTransferAsync(*now, parity_peer_);
  if (flush.ready()) {
    // In-process transports complete inline; settle now so a failed write
    // surfaces before the group is sealed. The completion time still joins
    // lazily — the next stripe's pageouts overlap the parity transfer.
    // ADVISE_STOP is ignored, as in JoinParityFlush.
    auto advise = parity.JoinPageOut(std::move(flush));
    if (!advise.ok() && ShouldRetry(parity_peer_, advise.status())) {
      // The parity write was lost in flight but the server survived;
      // rewriting the same slot is idempotent, so retry before declaring
      // the group unsealable.
      parity.mark_alive();
      ChargeBackoff(1, now);
      advise = ReliablePageOut(parity_peer_, *slot, accumulator_.span(), now);
    }
    if (!advise.ok()) {
      return advise.status();
    }
  } else {
    pending_parity_ = std::move(flush);
    pending_parity_group_ = open_group_id_;
  }
  pending_parity_completion_ = completion;
  ++parity_flushes_;
  open.parity_slot = *slot;
  open.sealed = true;
  const uint64_t sealed_id = open_group_id_;
  // Open a fresh group before any reclamation below invalidates references.
  open_group_id_ = next_group_id_++;
  groups_[open_group_id_] = ParityGroup{};
  accumulator_.Clear();
  ParityGroup& sealed = groups_.at(sealed_id);
  if (sealed.active_count == 0) {
    ReclaimGroup(sealed_id, now);
  }
  tracer_.Span(TraceStage::kParity, parity_start, *now);
  return OkStatus();
}

Status ParityLoggingBackend::PlacePage(uint64_t page_id, std::span<const uint8_t> data,
                                       TimeNs* now) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto pick = PickDataPeer(now);
    if (!pick.ok()) {
      if (pick.status().code() == ErrorCode::kNoSpace && !in_gc_) {
        RMP_RETURN_IF_ERROR(GarbageCollect(now));
        continue;
      }
      return pick.status();
    }
    const size_t peer_index = *pick;
    ServerPeer& peer = cluster_.peer(peer_index);
    auto slot = TakeSlotOn(peer_index, now);
    if (!slot.ok()) {
      if (slot.status().code() == ErrorCode::kNoSpace) {
        peer.set_stopped(true);
        continue;
      }
      if (IsRetryableError(slot.status())) {
        continue;
      }
      return slot.status();
    }
    auto advise = ReliablePageOut(peer_index, *slot, data, now);
    if (!advise.ok()) {
      if (IsRetryableError(advise.status())) {
        continue;  // The placement loop moves on to another server.
      }
      return advise.status();
    }
    *now = ChargePageTransferAsync(*now, peer_index);
    if (*advise) {
      peer.set_no_new_extents(true);
    }
    accumulator_.XorWith(data);
    ParityGroup& open = groups_.at(open_group_id_);
    open.entries.push_back(GroupEntry{peer_index, *slot, page_id, true});
    ++open.active_count;
    table_[page_id] = PageLocation{open_group_id_, open.entries.size() - 1};
    if (static_cast<int>(open.entries.size()) >= EffectiveGroupSize()) {
      RMP_RETURN_IF_ERROR(FlushParity(now));
    }
    return OkStatus();
  }
  return NoSpaceError("remote memory exhausted (consider more overflow memory)");
}

Result<TimeNs> ParityLoggingBackend::PageOut(TimeNs now, uint64_t page_id,
                                             std::span<const uint8_t> data) {
  if (data.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  ++stats_.pageouts;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageOut, page_id, &now);
  RetireOldVersion(page_id, &now);
  RMP_RETURN_IF_ERROR(PlacePage(page_id, data, &now));
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Result<TimeNs> ParityLoggingBackend::PageIn(TimeNs now, uint64_t page_id,
                                            std::span<uint8_t> out) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  ++stats_.pageins;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageIn, page_id, &now);
  const PageLocation loc = it->second;
  const ParityGroup& group = groups_.at(loc.group_id);
  const GroupEntry& entry = group.entries[loc.entry_index];
  ServerPeer& peer = cluster_.peer(entry.peer);
  if (peer.alive() || peer.transport().connected()) {
    const Status status = ReliablePageIn(entry.peer, entry.slot, out, &now);
    if (status.ok()) {
      now = ChargePageTransfer(now, entry.peer);
      stats_.paging_time += now - start;
      trace.set_ok();
      return now;
    }
    if (!IsRetryableError(status)) {
      return status;
    }
  }
  // The holding server crashed: reconstruct everything it held, then the
  // page is live again on a healthy server. The read is degraded — it is
  // served by XOR over the group's survivors, not by the stored copy.
  ++stats_.degraded_reads;
  const TimeNs parity_start = now;
  RMP_RETURN_IF_ERROR(Recover(entry.peer, &now));
  tracer_.Span(TraceStage::kParity, parity_start, now);
  auto retry = table_.find(page_id);
  if (retry == table_.end()) {
    return InternalError("page lost during recovery");
  }
  const ParityGroup& new_group = groups_.at(retry->second.group_id);
  const GroupEntry& new_entry = new_group.entries[retry->second.entry_index];
  RMP_RETURN_IF_ERROR(ReliablePageIn(new_entry.peer, new_entry.slot, out, &now));
  now = ChargePageTransfer(now, new_entry.peer);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Status ParityLoggingBackend::GarbageCollect(TimeNs* now) {
  if (in_gc_) {
    return InternalError("re-entrant garbage collection");
  }
  in_gc_ = true;
  ++gc_passes_;
  // Victims: sealed groups with the fewest active pages reclaim the most
  // server memory per transferred page.
  std::vector<std::pair<int, uint64_t>> candidates;
  for (const auto& [group_id, group] : groups_) {
    if (group.sealed) {
      candidates.emplace_back(group.active_count, group_id);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  auto reopen_servers = [&] {
    // A denial marked servers stopped; reclamation frees their memory, so
    // probe them again (a server with any free page is usable for GC).
    for (size_t i = 0; i < cluster_.size(); ++i) {
      ServerPeer& peer = cluster_.peer(i);
      if (peer.alive() && (peer.stopped() || peer.no_new_extents())) {
        auto load = peer.QueryLoad();
        *now = ChargeControl(*now);
        if (load.ok() && load->free_pages > 0) {
          // Under GC pressure any free page is fair game: ADVISE_STOP is
          // load advice, and the next pageout ack re-asserts it if the
          // server is still squeezed.
          peer.set_stopped(false);
          peer.set_no_new_extents(false);
        }
      }
    }
  };
  reopen_servers();

  // Select the victim set up front: enough of the emptiest groups to meet the
  // reclaim target. Choosing before reading lets the reads batch per server
  // *across* victims — a single group puts at most one entry on any server,
  // so PAGEIN_BATCH only pays off once several groups compact together.
  std::vector<uint64_t> victims;
  int freed = 0;
  for (const auto& [active_count, group_id] : candidates) {
    if (freed >= pl_params_.gc_reclaim_target) {
      break;
    }
    victims.push_back(group_id);
    freed += static_cast<int>(groups_.at(group_id).entries.size()) + 1;
  }

  // Stash every victim's active pages in client memory (nothing has been
  // reclaimed yet, so every slot is still valid). Holding them client-side
  // keeps single-crash recoverability: exactly like a page in flight during
  // a normal pageout, the client copy IS the redundancy until the page lands
  // in a new group.
  std::vector<PageWant> wants;
  std::vector<uint64_t> stash_ids;
  for (const uint64_t group_id : victims) {
    for (const GroupEntry& entry : groups_.at(group_id).entries) {
      if (entry.active) {
        wants.push_back(PageWant{entry.peer, entry.slot});
        stash_ids.push_back(entry.page_id);
      }
    }
  }
  std::vector<PageBuffer> stash;
  const Status fetched = BatchFetch(wants, &stash, now);
  if (!fetched.ok()) {
    in_gc_ = false;
    return fetched;
  }

  // Reclaim every victim *before* re-placing, so their slots provide the
  // very space the re-placement needs (the way out of the full-cluster
  // bind).
  for (const uint64_t group_id : victims) {
    auto git = groups_.find(group_id);
    if (git == groups_.end()) {
      continue;
    }
    ParityGroup& group = git->second;
    for (GroupEntry& entry : group.entries) {
      if (entry.active) {
        table_.erase(entry.page_id);
        entry.active = false;
      }
    }
    group.active_count = 0;
    ReclaimGroup(group_id, now);
  }
  reopen_servers();

  Status result = OkStatus();
  for (size_t i = 0; i < stash_ids.size(); ++i) {
    const Status placed = PlacePage(stash_ids[i], stash[i].span(), now);
    if (!placed.ok()) {
      result = placed;
      break;
    }
  }
  in_gc_ = false;
  if (result.ok() && freed == 0) {
    return NoSpaceError("garbage collection found nothing to reclaim");
  }
  return result;
}

Status ParityLoggingBackend::Recover(size_t peer_index, TimeNs* now) {
  // Unbounded budget: one chunk dissolves every affected group before any
  // re-homing, which (unlike incremental chunks) frees all survivor slots
  // up front — the legacy behavior tight-capacity callers rely on.
  while (true) {
    auto done = RepairStep(peer_index, std::numeric_limits<uint64_t>::max(), now);
    if (!done.ok()) {
      return done.status();
    }
    if (*done == 0) {
      return OkStatus();
    }
  }
}

Result<uint64_t> ParityLoggingBackend::RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  if (max_pages == 0) {
    return InvalidArgumentError("repair chunk must be at least one page");
  }
  if (peer == parity_peer_) {
    return RebuildParityChunk(max_pages, now);
  }
  return RecoverDataChunk(peer, max_pages, now);
}

Result<uint64_t> ParityLoggingBackend::RebuildParityChunk(uint64_t max_pages, TimeNs* now) {
  ServerPeer& parity = cluster_.peer(parity_peer_);
  if (!parity_rebuild_active_) {
    // Data pages are intact; only redundancy was lost. A parity write caught
    // in flight by the crash is moot — every sealed group's parity is about
    // to be rebuilt onto the (restarted) parity server. Reset() is the
    // single revival path: the stale slot pool and any leftover stop /
    // extent-denial flags die with the server's previous life.
    (void)JoinParityFlush(now);
    parity.Reset();
    parity_rebuild_queue_.clear();
    for (const auto& [group_id, group] : groups_) {
      if (group.sealed) {
        parity_rebuild_queue_.push_back(group_id);
      }
    }
    parity_rebuild_active_ = true;
  }
  // Pop a page budget's worth of groups off the queue (member reads plus one
  // parity write per group). Groups reclaimed or dissolved since enqueue are
  // skipped. The reads batch per data server across groups, and the rebuilt
  // parity pages go back out as batched writes.
  std::vector<uint64_t> chunk_ids;
  std::vector<PageWant> wants;
  uint64_t processed = 0;
  size_t popped = 0;
  while (popped < parity_rebuild_queue_.size()) {
    const uint64_t group_id = parity_rebuild_queue_[popped];
    auto git = groups_.find(group_id);
    if (git == groups_.end() || !git->second.sealed) {
      ++popped;
      continue;
    }
    const uint64_t cost = git->second.entries.size() + 1;
    if (!chunk_ids.empty() && processed + cost > max_pages) {
      break;
    }
    for (const GroupEntry& entry : git->second.entries) {
      wants.push_back(PageWant{entry.peer, entry.slot});
    }
    chunk_ids.push_back(group_id);
    processed += cost;
    ++popped;
  }
  if (chunk_ids.empty()) {
    parity_rebuild_queue_.clear();
    parity_rebuild_active_ = false;
    return 0;  // Every sealed group has live parity again.
  }
  auto status = [&]() -> Status {
    std::vector<PageBuffer> pages;
    RMP_RETURN_IF_ERROR(BatchFetch(wants, &pages, now));
    std::vector<uint64_t> parity_slots;
    std::vector<uint8_t> parity_pages;
    parity_slots.reserve(chunk_ids.size());
    parity_pages.reserve(chunk_ids.size() * kPageSize);
    size_t next_page = 0;
    for (const uint64_t group_id : chunk_ids) {
      ParityGroup& group = groups_.at(group_id);
      PageBuffer rebuilt;
      for (size_t e = 0; e < group.entries.size(); ++e) {
        rebuilt.XorWith(pages[next_page++].span());
      }
      auto slot = TakeSlotOn(parity_peer_, now);
      if (!slot.ok()) {
        return slot.status();
      }
      group.parity_slot = *slot;
      parity_slots.push_back(*slot);
      parity_pages.insert(parity_pages.end(), rebuilt.span().begin(), rebuilt.span().end());
    }
    for (size_t pos = 0; pos < parity_slots.size(); pos += kMaxBatchPages) {
      const size_t n = std::min<size_t>(kMaxBatchPages, parity_slots.size() - pos);
      // ADVISE_STOP from the parity server is ignored, as in FlushParity.
      auto advise = parity.PageOutBatchTo(
          std::span<const uint64_t>(parity_slots).subspan(pos, n),
          std::span<const uint8_t>(parity_pages).subspan(pos * kPageSize, n * kPageSize));
      if (!advise.ok()) {
        return advise.status();
      }
      *now = ChargePageBatchTransfer(*now, n, parity_peer_);
    }
    stats_.reconstructions += static_cast<int64_t>(chunk_ids.size());
    RMP_LOG(kInfo) << "parity logging: rebuilt parity for " << chunk_ids.size() << " groups";
    return OkStatus();
  }();
  if (!status.ok()) {
    // E.g. the parity server is not back yet. The retry re-enumerates from
    // scratch; parity slots already written get re-provisioned rather than
    // reused — a benign leak on a server that restarted empty.
    parity_rebuild_queue_.clear();
    parity_rebuild_active_ = false;
    return status;
  }
  parity_rebuild_queue_.erase(parity_rebuild_queue_.begin(),
                              parity_rebuild_queue_.begin() + popped);
  return processed;
}

Result<uint64_t> ParityLoggingBackend::RecoverDataChunk(size_t peer_index, uint64_t max_pages,
                                                        TimeNs* now) {
  ServerPeer& failed = cluster_.peer(peer_index);
  failed.mark_dead();
  failed.DropPool();

  // A pending parity write must land before reconstruction reads sealed
  // parity back; a failure here means the pending group lost its redundancy
  // to a double fault, which is beyond the single-crash guarantee.
  RMP_RETURN_IF_ERROR(JoinParityFlush(now));

  // Collect affected groups (any entry on the dead server), including open,
  // up to the page budget (survivor reads plus a parity read per sealed
  // group). The scan is stateless: groups dissolved by earlier chunks no
  // longer reference the peer, so repeated calls converge to 0.
  std::vector<uint64_t> affected;
  uint64_t budget_used = 0;
  for (const auto& [group_id, group] : groups_) {
    bool hit = false;
    for (const GroupEntry& entry : group.entries) {
      if (entry.peer == peer_index) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      continue;
    }
    const uint64_t cost = group.entries.size() + (group.sealed ? 1 : 0);
    if (!affected.empty() && budget_used + cost > max_pages) {
      break;
    }
    affected.push_back(group_id);
    budget_used += cost;
  }
  if (affected.empty()) {
    return 0;  // No group references the dead peer any more.
  }

  // Stage every read the reconstruction needs — each group's survivors plus
  // its stored parity — in one batched sweep. Survivors of different groups
  // share servers, so the per-peer batches grow with the number of affected
  // groups; within a group the members still land on distinct servers, so
  // nothing serializes that used to overlap.
  std::vector<PageWant> wants;
  for (const uint64_t group_id : affected) {
    const ParityGroup& group = groups_.at(group_id);
    for (const GroupEntry& entry : group.entries) {
      if (entry.peer != peer_index) {
        wants.push_back(PageWant{entry.peer, entry.slot});
      }
    }
    if (group.sealed) {
      wants.push_back(PageWant{parity_peer_, group.parity_slot});
    }
  }
  std::vector<PageBuffer> fetched;
  RMP_RETURN_IF_ERROR(BatchFetch(wants, &fetched, now));

  std::vector<std::pair<uint64_t, PageBuffer>> stash;  // Active pages to re-home.
  bool open_dissolved = false;
  size_t next_fetch = 0;
  for (const uint64_t group_id : affected) {
    ParityGroup& group = groups_.at(group_id);
    const GroupEntry* lost = nullptr;
    // Reconstruction seed: sealed groups use the stored parity (fetched
    // after the group's survivors below); the open group's parity is the
    // in-memory accumulator.
    PageBuffer xor_buf;
    if (!group.sealed) {
      xor_buf = accumulator_;
    }
    for (size_t e = 0; e < group.entries.size(); ++e) {
      const GroupEntry& entry = group.entries[e];
      if (entry.peer == peer_index) {
        if (lost != nullptr) {
          return InternalError("two entries of one parity group on one server");
        }
        lost = &entry;
        continue;
      }
      const PageBuffer& page = fetched[next_fetch++];
      xor_buf.XorWith(page.span());
      if (entry.active) {
        // Dissolving the group surrenders this page's redundancy; re-home it.
        stash.emplace_back(entry.page_id, page);
      }
    }
    if (group.sealed) {
      xor_buf.XorWith(fetched[next_fetch++].span());
    }
    if (lost != nullptr && lost->active) {
      stash.emplace_back(lost->page_id, xor_buf);  // The reconstructed page.
      ++stats_.reconstructions;
    }
    // Dissolve: free surviving slots and the parity slot, drop the group.
    for (const GroupEntry& entry : group.entries) {
      if (entry.peer == peer_index) {
        continue;
      }
      ServerPeer& peer = cluster_.peer(entry.peer);
      if (peer.alive()) {
        (void)peer.FreeOn(entry.slot, 1);
      }
      if (entry.active) {
        table_.erase(entry.page_id);
      }
    }
    if (lost != nullptr && lost->active) {
      table_.erase(lost->page_id);
    }
    if (group.sealed) {
      (void)cluster_.peer(parity_peer_).FreeOn(group.parity_slot, 1);
    } else {
      open_dissolved = true;
    }
    *now = ChargeControl(*now);
    groups_.erase(group_id);
  }
  if (open_dissolved || groups_.count(open_group_id_) == 0) {
    open_group_id_ = next_group_id_++;
    groups_[open_group_id_] = ParityGroup{};
    accumulator_.Clear();
  }
  // Re-home every rescued page through the normal pageout path.
  for (auto& [page_id, page] : stash) {
    RMP_RETURN_IF_ERROR(PlacePage(page_id, page.span(), now));
  }
  RMP_LOG(kInfo) << "parity logging: recovered from crash of peer " << peer_index << ", re-homed "
                 << stash.size() << " pages across " << affected.size() << " groups";
  return budget_used;
}

Result<uint64_t> ParityLoggingBackend::MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  if (peer == parity_peer_) {
    return 0;  // The parity server's role is fixed; its ADVISE_STOP is ignored.
  }
  ServerPeer& source = cluster_.peer(peer);
  if (!source.alive()) {
    return UnavailableError("cannot migrate from a crashed server");
  }
  if (!source.stopped()) {
    source.set_stopped(true);
  }
  std::vector<uint64_t> victims;
  for (const auto& [group_id, group] : groups_) {
    for (const GroupEntry& entry : group.entries) {
      if (entry.active && entry.peer == peer) {
        victims.push_back(entry.page_id);
        if (victims.size() >= max_pages) {
          break;
        }
      }
    }
    if (victims.size() >= max_pages) {
      break;
    }
  }
  if (victims.empty()) {
    return 0;  // Only retired versions remain; their groups reclaim them.
  }
  PageBuffer buffer;
  for (const uint64_t page_id : victims) {
    const PageLocation loc = table_.at(page_id);
    // A plain read, not MIGRATE: the old slot must survive until its group
    // reclaims, because the group's parity covers those bytes (footnote 3).
    const uint64_t slot = groups_.at(loc.group_id).entries[loc.entry_index].slot;
    RMP_RETURN_IF_ERROR(ReliablePageIn(peer, slot, buffer.span(), now));
    *now = ChargePageTransfer(*now, peer);
    RetireOldVersion(page_id, now);
    RMP_RETURN_IF_ERROR(PlacePage(page_id, buffer.span(), now));
  }
  return victims.size();
}

std::vector<ParityLoggingBackend::GroupSnapshot> ParityLoggingBackend::Snapshot() const {
  std::vector<GroupSnapshot> out;
  out.reserve(groups_.size());
  for (const auto& [group_id, group] : groups_) {
    GroupSnapshot snap;
    snap.group_id = group_id;
    snap.parity_slot = group.parity_slot;
    snap.sealed = group.sealed;
    for (const GroupEntry& entry : group.entries) {
      snap.entries.push_back(EntrySnapshot{entry.peer, entry.slot, entry.page_id, entry.active});
    }
    out.push_back(std::move(snap));
  }
  return out;
}

Status ParityLoggingBackend::CheckInvariants() const {
  for (const auto& [group_id, group] : groups_) {
    int active = 0;
    std::vector<size_t> peers_seen;
    for (const GroupEntry& entry : group.entries) {
      if (entry.active) {
        ++active;
        auto it = table_.find(entry.page_id);
        if (it == table_.end()) {
          return InternalError("active entry without table mapping (group " +
                               std::to_string(group_id) + ")");
        }
        if (it->second.group_id != group_id) {
          return InternalError("table points elsewhere for page " +
                               std::to_string(entry.page_id));
        }
      }
      if (std::find(peers_seen.begin(), peers_seen.end(), entry.peer) != peers_seen.end()) {
        return InternalError("group " + std::to_string(group_id) +
                             " holds two entries on one server");
      }
      peers_seen.push_back(entry.peer);
      if (entry.peer == parity_peer_) {
        return InternalError("data entry on the parity server");
      }
    }
    if (active != group.active_count) {
      return InternalError("active_count drift in group " + std::to_string(group_id));
    }
    if (group.sealed && group.active_count == 0) {
      return InternalError("dead sealed group " + std::to_string(group_id) + " not reclaimed");
    }
    if (!group.sealed && group_id != open_group_id_) {
      return InternalError("unsealed non-open group " + std::to_string(group_id));
    }
  }
  for (const auto& [page_id, loc] : table_) {
    auto git = groups_.find(loc.group_id);
    if (git == groups_.end()) {
      return InternalError("table points to reclaimed group for page " + std::to_string(page_id));
    }
    if (loc.entry_index >= git->second.entries.size()) {
      return InternalError("table entry index out of range for page " + std::to_string(page_id));
    }
    const GroupEntry& entry = git->second.entries[loc.entry_index];
    if (entry.page_id != page_id || !entry.active) {
      return InternalError("table mapping stale for page " + std::to_string(page_id));
    }
  }
  return OkStatus();
}

}  // namespace rmp
