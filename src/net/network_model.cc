#include "src/net/network_model.h"

#include <cstdio>

namespace rmp {

double IdealLinkModel::EffectiveBandwidthMbps() const {
  const DurationNs t = TransferTime(kPageSize);
  if (t <= 0) {
    return 0.0;
  }
  return static_cast<double>(kPageSize) * 8.0 / ToSeconds(t) / 1e6;
}

std::string IdealLinkModel::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ideal-%.0fMbps", bandwidth_mbps_);
  return buf;
}

std::string ScaledBandwidthModel::Name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s*%.1f", base_->Name().c_str(), factor_);
  return buf;
}

}  // namespace rmp
