#include "src/core/remote_pager.h"

namespace rmp {

TimeNs RemotePagerBase::ChargePageTransfer(TimeNs now, size_t peer) {
  const NetworkFabric::TransferCost cost = fabric_->Transfer(now, kPageWireBytes, peer);
  ++stats_.page_transfers;
  stats_.protocol_time += cost.protocol;
  stats_.wire_time += cost.wire;
  return cost.completion;
}

TimeNs RemotePagerBase::ChargePageTransferAsync(TimeNs now, size_t peer) {
  const NetworkFabric::TransferCost cost = fabric_->TransferAsync(now, kPageWireBytes, peer);
  ++stats_.page_transfers;
  stats_.protocol_time += cost.protocol;
  stats_.wire_time += cost.wire;
  return cost.completion;
}

TimeNs RemotePagerBase::ChargeControl(TimeNs now, size_t peer) {
  const NetworkFabric::TransferCost cost = fabric_->Transfer(now, kControlWireBytes, peer);
  stats_.protocol_time += cost.protocol;
  stats_.wire_time += cost.wire;
  return cost.completion;
}

Result<uint64_t> RemotePagerBase::TakeSlotOn(size_t i, TimeNs* now) {
  ServerPeer& peer = cluster_.peer(i);
  auto slot = peer.TakeSlot();
  if (slot.ok()) {
    return slot;
  }
  if (peer.no_new_extents()) {
    return NoSpaceError(peer.name() + " advised stop; pool exhausted");
  }
  Status granted = peer.AllocExtent(params_.alloc_extent_pages);
  if (granted.code() == ErrorCode::kNoSpace && params_.alloc_extent_pages > 1) {
    // A long-lived server's free space fragments into scattered single
    // slots (reclaimed parity-group members); fall back to single-slot
    // grants before giving up on the server.
    granted = peer.AllocExtent(1);
  }
  RMP_RETURN_IF_ERROR(granted);
  *now = ChargeControl(*now);
  return peer.TakeSlot();
}

Result<size_t> RemotePagerBase::PickPeer(TimeNs* now) {
  if (params_.selection == ServerSelection::kRoundRobin) {
    return cluster_.NextUsable(&rr_cursor_);
  }
  const bool refresh = ++pageouts_since_refresh_ > kLoadRefreshInterval;
  if (refresh) {
    pageouts_since_refresh_ = 0;
    *now = ChargeControl(*now);  // One round of LOAD_QUERY traffic.
  }
  return cluster_.MostPromising(refresh);
}

}  // namespace rmp
