// Figure 5 / §4.7: WRITE THROUGH (remote memory as a write-through cache of
// the local disk) against NO RELIABILITY and PARITY LOGGING. With disk
// bandwidth comparable to the network (both 10 Mbit/s here), write-through
// sits between the two; the second table scales the network 10x, where the
// disk becomes the pageout bottleneck and parity logging wins — the §4.7
// crossover.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

namespace rmp {
namespace {

const std::map<std::string, std::map<std::string, double>> kPaperSeconds = {
    {"MVEC", {{"NO_RELIABILITY", 19.02}, {"WRITE_THROUGH", 25.49}, {"PARITY_LOGGING", 23.37}}},
    {"GAUSS", {{"NO_RELIABILITY", 40.62}, {"WRITE_THROUGH", 41.15}, {"PARITY_LOGGING", 49.80}}},
    {"QSORT", {{"NO_RELIABILITY", 74.26}, {"WRITE_THROUGH", 79.85}, {"PARITY_LOGGING", 81.05}}},
    {"FFT", {{"NO_RELIABILITY", 108.02}, {"WRITE_THROUGH", 110.78}, {"PARITY_LOGGING", 121.67}}},
};

double PaperValue(const std::string& workload, const std::string& policy) {
  auto row = kPaperSeconds.find(workload);
  if (row == kPaperSeconds.end()) {
    return 0.0;
  }
  auto cell = row->second.find(policy);
  return cell != row->second.end() ? cell->second : 0.0;
}

void RunTable(double bandwidth_factor) {
  struct Setup {
    Policy policy;
    int data_servers;
  };
  const Setup setups[] = {
      {Policy::kNoReliability, 2},
      {Policy::kWriteThrough, 2},
      {Policy::kParityLogging, 4},
  };
  const char* names[] = {"MVEC", "GAUSS", "QSORT", "FFT"};
  for (const char* name : names) {
    auto workload = MakeWorkloadByName(name);
    if (!workload.ok()) {
      continue;
    }
    for (const Setup& setup : setups) {
      PolicyRunConfig config;
      config.policy = setup.policy;
      config.data_servers = setup.data_servers;
      if (bandwidth_factor != 1.0) {
        config.network =
            std::make_shared<ScaledBandwidthModel>(PaperEthernet(), bandwidth_factor);
      }
      auto result = RunWorkloadUnderPolicy(**workload, config);
      if (!result.ok()) {
        std::printf("%-8s %-16s FAILED: %s\n", name,
                    std::string(PolicyName(setup.policy)).c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      PrintRow(result->workload, result->policy, result->etime_s,
               bandwidth_factor == 1.0 ? PaperValue(result->workload, result->policy) : 0.0);
    }
    std::printf("\n");
  }
}

int Main() {
  std::printf("=== Figure 5: write-through vs no-reliability vs parity logging ===\n");
  std::printf("--- 10 Mbit/s network, 10 Mbit/s disk (the paper's hardware) ---\n\n");
  RunTable(1.0);
  std::printf("--- 10x network (§4.7: write-through becomes disk-bound) ---\n\n");
  RunTable(10.0);
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
