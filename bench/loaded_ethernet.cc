// §4.6: remote memory paging over a loaded Ethernet.
//
// Three views of the same phenomenon:
//   1. the packet-level CSMA/CD simulation: channel efficiency and
//      per-station goodput as saturated stations are added — collisions
//      multiply and the per-station share collapses;
//   2. the analytic contention model used by the figure benches, validated
//      against the simulation;
//   3. application impact: FFT completion time as background stations load
//      the segment, with the token-ring comparison the paper invokes ("it
//      is still beneficial ... over networks that employ other
//      technologies, e.g. token ring").

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/net/ethernet_sim.h"
#include "src/net/token_ring_model.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== §4.6: paging over a loaded Ethernet ===\n\n");

  std::printf("--- packet-level CSMA/CD, saturated stations ---\n");
  std::printf("%9s %12s %16s %14s %12s\n", "stations", "efficiency", "total Mbit/s",
              "per-stn Mbit/s", "collisions");
  EthernetSimulator sim;
  for (int stations : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const EthernetSimResult r = sim.RunSaturated(stations, Seconds(20), 0x1995 + stations);
    std::printf("%9d %11.1f%% %16.2f %14.2f %12lld\n", stations, r.channel_efficiency * 100.0,
                r.total_throughput_mbps, r.total_throughput_mbps / stations,
                static_cast<long long>(r.total_collisions));
  }

  std::printf("\n--- analytic contention model (used by the timing benches) ---\n");
  std::printf("%9s %12s %22s\n", "stations", "efficiency", "client share of 10 Mb/s");
  for (int stations : {1, 2, 3, 4, 6, 8, 12, 16}) {
    EthernetParams params;
    params.background_stations = stations - 1;
    EthernetModel model(params);
    std::printf("%9d %11.1f%% %20.2f\n", stations,
                model.ContentionEfficiency(stations) * 100.0, model.ClientShare() * 10.0);
  }

  std::printf("\n--- offered-load sweep (Poisson arrivals, 8 stations) ---\n");
  std::printf("%14s %14s %12s\n", "offered load", "throughput", "efficiency");
  for (double load : {0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0}) {
    const EthernetSimResult r = sim.RunPoisson(8, load, Seconds(20), 0x4e5u);
    std::printf("%13.1fx %13.2f %11.1f%%\n", load, r.total_throughput_mbps,
                r.channel_efficiency * 100.0);
  }

  std::printf("\n--- FFT/24MB (parity logging) vs background load ---\n");
  std::printf("%12s %18s %18s\n", "background", "ethernet etime s", "token ring etime s");
  const auto fft = MakeFft(24.0);
  for (int background : {0, 1, 2, 4}) {
    PolicyRunConfig ether_config;
    ether_config.policy = Policy::kParityLogging;
    ether_config.data_servers = 4;
    ether_config.network = PaperEthernet(background);
    auto ether = RunWorkloadUnderPolicy(*fft, ether_config);

    TokenRingParams ring_params;
    ring_params.background_stations = background;
    PolicyRunConfig ring_config = ether_config;
    ring_config.network = std::make_shared<TokenRingModel>(ring_params);
    auto ring = RunWorkloadUnderPolicy(*fft, ring_config);

    std::printf("%12d %18.2f %18.2f\n", background,
                ether.ok() ? ether->etime_s : -1.0, ring.ok() ? ring->etime_s : -1.0);
  }
  std::printf("\npaper: degradation \"even when the Ethernet was lightly loaded\" — a\n"
              "CSMA/CD property, not a remote-paging one; token ring degrades smoothly.\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
