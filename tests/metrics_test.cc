// MetricsRegistry / MetricsSnapshot unit tests: concurrent hot-path updates,
// snapshot-delta math, export formats, and prefix-scoped resets.

#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rmp {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, AtomicCompatSurface) {
  Counter counter;
  counter.fetch_add(3, std::memory_order_relaxed);
  EXPECT_EQ(counter.load(), 3);
  counter.store(7);
  EXPECT_EQ(static_cast<int64_t>(counter), 7);
}

TEST(GaugeTest, MovesBothWays) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.depth");
  gauge->Add(5);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), 3);
  gauge->Set(10);
  EXPECT_EQ(gauge->value(), 10);
}

TEST(HistogramMetricTest, ConcurrentObservesKeepCountAndBounds) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.lo = 0.0;
  options.hi = 1000.0;
  options.buckets = 20;
  HistogramMetric* histogram = registry.GetHistogram("test.latency", options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Observe(static_cast<double>((t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const HistogramData data = histogram->Snapshot();
  EXPECT_EQ(data.count, static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(data.min, 0.0);
  EXPECT_EQ(data.max, 999.0);
  int64_t bucket_total = 0;
  for (int64_t b : data.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, data.count);
}

TEST(HistogramMetricTest, PercentileEdges) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.lo = 0.0;
  options.hi = 100.0;
  options.buckets = 10;
  HistogramMetric* histogram = registry.GetHistogram("test.edges", options);
  histogram->Observe(42.0);
  // A single sample reports itself exactly at every percentile — no
  // interpolation artifacts.
  EXPECT_EQ(histogram->Percentile(0), 42.0);
  EXPECT_EQ(histogram->Percentile(50), 42.0);
  EXPECT_EQ(histogram->Percentile(100), 42.0);
  histogram->Observe(7.0);
  histogram->Observe(93.0);
  // p=100 is the exact observed max, p=0 the exact min.
  EXPECT_EQ(histogram->Percentile(100), 93.0);
  EXPECT_EQ(histogram->Percentile(0), 7.0);
}

TEST(HistogramMetricTest, LogScaleSpansDecades) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.lo = 100.0;     // 100 ns
  options.hi = 1e10;      // 10 s
  options.buckets = 64;
  options.log_scale = true;
  HistogramMetric* histogram = registry.GetHistogram("test.log", options);
  histogram->Observe(1e3);
  histogram->Observe(1e6);
  histogram->Observe(1e9);
  const HistogramData data = histogram->Snapshot();
  EXPECT_EQ(data.count, 3);
  // Samples five decades apart must land in distinct buckets.
  int nonzero = 0;
  for (int64_t b : data.buckets) {
    nonzero += b > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonzero, 3);
  EXPECT_EQ(data.Percentile(100), 1e9);
  EXPECT_EQ(data.Percentile(0), 1e3);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("test.key"), nullptr);
  EXPECT_EQ(registry.GetGauge("test.key"), nullptr);
  EXPECT_EQ(registry.GetHistogram("test.key"), nullptr);
}

TEST(RegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.shared");
  Counter* b = registry.GetCounter("test.shared");
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, ResetPrefixScopesToMatchingKeys) {
  MetricsRegistry registry;
  registry.GetCounter("peer.alpha.pages")->Increment(5);
  registry.GetCounter("peer.beta.pages")->Increment(9);
  registry.ResetPrefix("peer.alpha.");
  EXPECT_EQ(registry.GetCounter("peer.alpha.pages")->value(), 0);
  EXPECT_EQ(registry.GetCounter("peer.beta.pages")->value(), 9);
}

TEST(SnapshotTest, DeltaSubtractsCountersKeepsGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.events");
  Gauge* gauge = registry.GetGauge("test.level");
  counter->Increment(10);
  gauge->Set(4);
  const MetricsSnapshot before = registry.Snapshot();
  counter->Increment(7);
  gauge->Set(9);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  EXPECT_EQ(delta.Scalar("test.events"), 7);
  // A level has no meaningful delta: the current value passes through.
  EXPECT_EQ(delta.Scalar("test.level"), 9);
}

TEST(SnapshotTest, DeltaSubtractsHistogramBuckets) {
  MetricsRegistry registry;
  HistogramOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.buckets = 10;
  HistogramMetric* histogram = registry.GetHistogram("test.h", options);
  histogram->Observe(1.0);
  histogram->Observe(2.0);
  const MetricsSnapshot before = registry.Snapshot();
  histogram->Observe(8.0);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);
  const MetricValue* value = delta.Find("test.h");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->histogram.count, 1);
}

TEST(SnapshotTest, TextExportOneLinePerMetric) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("b.level")->Set(-2);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
}

TEST(SnapshotTest, JsonExportCarriesKindsAndPercentiles) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  HistogramOptions options;
  options.lo = 0.0;
  options.hi = 10.0;
  options.buckets = 10;
  registry.GetHistogram("lat", options)->Observe(5.0);
  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(5);
  registry.GetGauge("b")->Set(7);
  registry.GetHistogram("c")->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("a")->value(), 0);
  EXPECT_EQ(registry.GetGauge("b")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("c")->count(), 0);
}

TEST(RegistryTest, GlobalIsProcessWide) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace rmp
