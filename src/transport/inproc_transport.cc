#include "src/transport/inproc_transport.h"

namespace rmp {

Result<Message> InProcTransport::Call(const Message& request) {
  if (!connected_) {
    return UnavailableError("peer disconnected");
  }
  ++calls_;
  // Round-trip through the wire format so in-process tests cover it.
  const std::vector<uint8_t> encoded = Encode(request);
  bytes_sent_ += encoded.size();
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  if (!decoded.ok()) {
    return decoded.status();
  }
  Message reply = handler_->Handle(*decoded);
  const std::vector<uint8_t> encoded_reply = Encode(reply);
  bytes_received_ += encoded_reply.size();
  if (drop_next_reply_) {
    drop_next_reply_ = false;
    connected_ = false;
    return UnavailableError("reply lost (injected)");
  }
  auto decoded_reply = Decode(std::span<const uint8_t>(encoded_reply));
  if (!decoded_reply.ok()) {
    return decoded_reply.status();
  }
  return *decoded_reply;
}

Status InProcTransport::SendOneWay(const Message& request) {
  if (!connected_) {
    return UnavailableError("peer disconnected");
  }
  const std::vector<uint8_t> encoded = Encode(request);
  bytes_sent_ += encoded.size();
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  if (!decoded.ok()) {
    return decoded.status();
  }
  handler_->Handle(*decoded);
  return OkStatus();
}

}  // namespace rmp
