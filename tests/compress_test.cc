// Codec conformance: SIMD-vs-scalar differential parses, adversarial
// round-trips, and a hostile-input sweep (every truncation and a seeded
// bit-flip fuzz) proving the decoder fails closed. The cold tier trusts
// DecompressBlock with bytes that may have crossed a disk spill, so the
// decoder must never read or write out of bounds — the sanitizer job runs
// this suite under ASan/UBSan/TSan via the compress_smoke label.

#include "src/util/compress.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

std::vector<uint8_t> Compress(const std::vector<uint8_t>& in) {
  std::vector<uint8_t> out(CompressBound(in.size()));
  const size_t n = CompressBlock(in.data(), in.size(), out.data(), out.size());
  EXPECT_GT(n, 0u);
  out.resize(n);
  return out;
}

void ExpectRoundTrip(const std::vector<uint8_t>& in) {
  const std::vector<uint8_t> packed = Compress(in);
  std::vector<uint8_t> back(in.size() + 64, 0xEE);
  ASSERT_TRUE(DecompressBlock(packed.data(), packed.size(), back.data(), in.size()).ok());
  if (!in.empty()) {
    EXPECT_EQ(std::memcmp(back.data(), in.data(), in.size()), 0);
  }
  // The decoder must not have written past the requested length.
  for (size_t i = in.size(); i < back.size(); ++i) {
    ASSERT_EQ(back[i], 0xEE) << "decoder wrote past the output length at " << i;
  }
}

// The adversarial corpus the issue calls out: incompressible bytes, long
// runs, zero pages, short tails, plus structured patterns in between.
std::vector<std::vector<uint8_t>> AdversarialInputs() {
  std::vector<std::vector<uint8_t>> inputs;
  inputs.push_back({});                                  // Empty.
  inputs.push_back({0x42});                              // Single byte.
  inputs.push_back(std::vector<uint8_t>(3, 0xAB));       // Below min match.
  inputs.push_back(std::vector<uint8_t>(kPageSize, 0));  // Zero page.
  inputs.push_back(std::vector<uint8_t>(kPageSize, 0x5A));  // Constant run.
  // Short tails: every length around the match/word boundaries.
  for (size_t n = 4; n <= 70; ++n) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(i % 7);
    }
    inputs.push_back(std::move(v));
  }
  // Period-3 run: overlapping matches (offset < match length).
  {
    std::vector<uint8_t> v(kPageSize);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<uint8_t>("abc"[i % 3]);
    }
    inputs.push_back(std::move(v));
  }
  // Incompressible page.
  {
    std::vector<uint8_t> v(kPageSize);
    Rng rng(7);
    for (auto& b : v) {
      b = static_cast<uint8_t>(rng.Next());
    }
    inputs.push_back(std::move(v));
  }
  // Literal run longer than 15+255 (exercises multi-byte extensions).
  {
    std::vector<uint8_t> v(600);
    Rng rng(11);
    for (auto& b : v) {
      b = static_cast<uint8_t>(rng.Next());
    }
    inputs.push_back(std::move(v));
  }
  // Half random, half zeroes: the workload generator's shape.
  {
    std::vector<uint8_t> v(kPageSize);
    FillCompressiblePage(std::span<uint8_t>(v.data(), v.size()), 21, 50, 50);
    inputs.push_back(std::move(v));
  }
  // The repo's deterministic test pattern.
  {
    std::vector<uint8_t> v(kPageSize);
    FillPattern(std::span<uint8_t>(v.data(), v.size()), 99);
    inputs.push_back(std::move(v));
  }
  // Max input size.
  {
    std::vector<uint8_t> v(65535);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<uint8_t>((i * i) >> 3);
    }
    inputs.push_back(std::move(v));
  }
  return inputs;
}

TEST(CompressTest, RoundTripsAdversarialCorpus) {
  for (const auto& in : AdversarialInputs()) {
    SCOPED_TRACE("input size " + std::to_string(in.size()));
    ExpectRoundTrip(in);
  }
}

// All match kernels compute the exact longest common prefix, so the greedy
// parse — and therefore the compressed bytes — must be identical between the
// dispatched SIMD path and the pinned-scalar reference. Byte equality, not
// just mutual round-tripping.
TEST(CompressTest, DispatchedMatchesScalarByteForByte) {
  for (const auto& in : AdversarialInputs()) {
    SCOPED_TRACE("input size " + std::to_string(in.size()));
    std::vector<uint8_t> simd(CompressBound(in.size()), 0);
    std::vector<uint8_t> scalar(CompressBound(in.size()), 0);
    const size_t n_simd = CompressBlock(in.data(), in.size(), simd.data(), simd.size());
    const size_t n_scalar = CompressBlockScalar(in.data(), in.size(), scalar.data(), scalar.size());
    ASSERT_EQ(n_simd, n_scalar) << "impl " << CompressImplName();
    EXPECT_EQ(std::memcmp(simd.data(), scalar.data(), n_simd), 0) << "impl " << CompressImplName();
  }
}

TEST(CompressTest, DeterministicAcrossCalls) {
  std::vector<uint8_t> in(kPageSize);
  FillCompressiblePage(std::span<uint8_t>(in.data(), in.size()), 5, 30, 30);
  const std::vector<uint8_t> a = Compress(in);
  const std::vector<uint8_t> b = Compress(in);
  EXPECT_EQ(a, b);
}

TEST(CompressTest, CompressiblePageActuallyShrinks) {
  std::vector<uint8_t> in(kPageSize);
  FillCompressiblePage(std::span<uint8_t>(in.data(), in.size()), 3, 50, 50);
  const std::vector<uint8_t> packed = Compress(in);
  EXPECT_LT(packed.size(), kPageSize * 3 / 4);
  std::vector<uint8_t> zeros(kPageSize, 0);
  EXPECT_LT(Compress(zeros).size(), 64u);  // The degenerate all-zero case.
}

TEST(CompressTest, IncompressibleInputReportsNoFit) {
  std::vector<uint8_t> in(kPageSize);
  Rng rng(13);
  for (auto& b : in) {
    b = static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint8_t> out(CompressBound(in.size()));
  // Random bytes cannot fit under their own size: the caller's store-raw cue.
  EXPECT_EQ(CompressBlock(in.data(), in.size(), out.data(), in.size() - 1), 0u);
  // With worst-case room it must still succeed (as an all-literal stream).
  EXPECT_GT(CompressBlock(in.data(), in.size(), out.data(), out.size()), 0u);
}

TEST(CompressTest, MaxOutIsAnExactCeiling) {
  std::vector<uint8_t> in(kPageSize);
  FillCompressiblePage(std::span<uint8_t>(in.data(), in.size()), 17, 40, 40);
  const std::vector<uint8_t> packed = Compress(in);
  std::vector<uint8_t> out(packed.size());
  EXPECT_EQ(CompressBlock(in.data(), in.size(), out.data(), packed.size()), packed.size());
  EXPECT_EQ(CompressBlock(in.data(), in.size(), out.data(), packed.size() - 1), 0u);
}

TEST(CompressTest, OversizedInputRejected) {
  std::vector<uint8_t> in(65536, 0);
  std::vector<uint8_t> out(CompressBound(in.size()));
  EXPECT_EQ(CompressBlock(in.data(), in.size(), out.data(), out.size()), 0u);
}

// Every strict prefix of a valid stream must decode to a clean kCorruption —
// this is what makes a torn extent read (or truncated spill block) safe.
TEST(CompressTest, EveryTruncationFailsClosed) {
  for (const auto& in : AdversarialInputs()) {
    if (in.empty() || in.size() > 2048) {
      continue;  // Keep the O(len^2) sweep fast.
    }
    SCOPED_TRACE("input size " + std::to_string(in.size()));
    const std::vector<uint8_t> packed = Compress(in);
    std::vector<uint8_t> back(in.size());
    for (size_t cut = 0; cut < packed.size(); ++cut) {
      const Status status = DecompressBlock(packed.data(), cut, back.data(), in.size());
      ASSERT_FALSE(status.ok()) << "prefix of " << cut << "/" << packed.size() << " decoded";
      ASSERT_EQ(status.code(), ErrorCode::kCorruption);
    }
  }
}

TEST(CompressTest, WrongLengthClaimsFailClosed) {
  std::vector<uint8_t> in(kPageSize);
  FillCompressiblePage(std::span<uint8_t>(in.data(), in.size()), 29, 60, 60);
  const std::vector<uint8_t> packed = Compress(in);
  std::vector<uint8_t> back(kPageSize + 1);
  // Claiming less or more output than the stream produces is corruption.
  EXPECT_EQ(DecompressBlock(packed.data(), packed.size(), back.data(), kPageSize - 1).code(),
            ErrorCode::kCorruption);
  EXPECT_EQ(DecompressBlock(packed.data(), packed.size(), back.data(), kPageSize + 1).code(),
            ErrorCode::kCorruption);
}

// Seeded bit-flip fuzz: a flipped extent byte either still decodes to
// exactly n bytes (the flip landed in literal data — the tier's CRC catches
// that) or fails with kCorruption. Under ASan this also proves no flip can
// push a read or write out of bounds.
TEST(CompressTest, BitFlipFuzzNeverEscapesBounds) {
  std::vector<uint8_t> in(kPageSize);
  FillCompressiblePage(std::span<uint8_t>(in.data(), in.size()), 31, 45, 55);
  const std::vector<uint8_t> packed = Compress(in);
  std::vector<uint8_t> back(kPageSize);
  Rng rng(0xF1195EED);
  for (int round = 0; round < 4000; ++round) {
    std::vector<uint8_t> mutated = packed;
    const size_t byte = static_cast<size_t>(rng.Next() % mutated.size());
    mutated[byte] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
    if (rng.Bernoulli(0.25)) {  // Sometimes flip a second byte.
      mutated[rng.Next() % mutated.size()] ^= static_cast<uint8_t>(1u << (rng.Next() % 8));
    }
    const Status status = DecompressBlock(mutated.data(), mutated.size(), back.data(), kPageSize);
    if (!status.ok()) {
      ASSERT_EQ(status.code(), ErrorCode::kCorruption);
    }
  }
}

// Hostile streams built by hand: extension runs claiming absurd lengths,
// offsets pointing before the output, and matches overrunning the output.
TEST(CompressTest, HandCraftedHostileStreamsFailClosed) {
  std::vector<uint8_t> back(kPageSize);
  const auto reject = [&](std::vector<uint8_t> stream, size_t n) {
    const Status status = DecompressBlock(stream.data(), stream.size(), back.data(), n);
    ASSERT_FALSE(status.ok());
    ASSERT_EQ(status.code(), ErrorCode::kCorruption);
  };
  // Literal length 15 + endless 255 extension (runs off the stream).
  reject({0xF0, 255, 255, 255}, kPageSize);
  // Extension run claiming more than any valid input length.
  {
    std::vector<uint8_t> v{0xF0};
    v.insert(v.end(), 300, 255);
    reject(std::move(v), kPageSize);
  }
  // Literal run longer than the remaining input.
  reject({0x50, 0x01}, kPageSize);
  // Offset of zero.
  reject({0x10, 0xAA, 0x00, 0x00, 0x00}, kPageSize);
  // Offset beyond the bytes produced so far.
  reject({0x10, 0xAA, 0x05, 0x00, 0x00}, kPageSize);
  // Match that would overrun the requested output length.
  reject({0x1F, 0xAA, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x00}, 8);
}

TEST(CompressTest, ImplNameIsKnown) {
  const std::string_view name = CompressImplName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
}

}  // namespace
}  // namespace rmp
