// Event-driven transport core (DESIGN.md §13).
//
// A Reactor is a small fixed pool of event-loop threads — one poll instance
// (epoll by default, io_uring behind the RMP_IO_URING build option) and one
// eventfd per loop — that multiplexes every registered connection over
// nonblocking sockets. This replaces the thread-per-session transport, whose
// two I/O threads per connection plus per-session worker pools were a hard
// wall at thousands of concurrent paging sessions.
//
// Structure:
//   PollBackend        — epoll (level- or edge-triggered) or io_uring
//                        poll-add; the loop is backend-agnostic.
//   EventLoop          — owns a backend, an eventfd for cross-thread task
//                        submission, and the connections assigned to it. All
//                        I/O for a connection happens on its loop thread.
//   ReactorConnection  — one nonblocking socket: a resumable FrameReader for
//                        partial reads (the hostile-length checks in
//                        FrameReader::Next are the wire-safety gate), a
//                        partial-write resumable output queue flushed with
//                        scatter-gather writev (header iovec + payload iovec,
//                        zero-copy), and thread-safe Send from any thread.
//   BufferPool         — registered, reusable read-scratch buffers shared by
//                        the loops, so 10k idle connections do not each pin a
//                        64 KB receive buffer.
//   Reactor            — the loop pool. Connections are assigned round-robin;
//                        Reactor::Shared() is the process-wide client-side
//                        instance (TcpTransport registers there).
//
// Threading contract: OnOpen/OnFrame/OnClose fire on the connection's loop
// thread, never concurrently with each other. Send/Close are safe from any
// thread. Loop threads never block on user work — anything that can block
// (request service, disk) belongs on the FairShareScheduler's workers
// (scheduler.h), not in a FrameSink callback.

#ifndef SRC_TRANSPORT_REACTOR_H_
#define SRC_TRANSPORT_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/proto/wire.h"
#include "src/util/config.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace rmp {

// RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release();
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

struct ReactorOptions {
  // Event-loop threads in the pool. The paper's 1-client/16-server testbed
  // needed none of this; thousands of sessions share these few loops.
  int loop_threads = 2;
  // Level-triggered epoll by default; edge-triggered drains every socket to
  // EAGAIN per event (fewer wakeups, but a flooding peer can hold the loop
  // longer). The io_uring backend re-arms oneshot polls, which behaves
  // level-triggered regardless.
  bool edge_triggered = false;
  // Try the io_uring backend (only built under -DRMP_IO_URING=ON); falls
  // back to epoll when the kernel or seccomp policy refuses io_uring_setup.
#ifdef RMP_IO_URING
  bool use_io_uring = true;
#else
  bool use_io_uring = false;
#endif
  // Size of one pooled read-scratch buffer and how many the pool retains.
  size_t read_chunk_bytes = 64 * 1024;
  size_t pooled_read_buffers = 8;
  // SO_SNDBUF for registered sockets (0 = kernel default). The default
  // tcp_wmem of ~16KB EAGAINs after two 8KB pages, forcing the direct-write
  // path through an EPOLLOUT round trip; 256KB absorbs a depth-16 pipelined
  // burst of page replies without backpressure. Kernel memory is allocated
  // lazily, so idle connections don't pay this.
  int sndbuf_bytes = 256 * 1024;

  // Keys: reactor.loop_threads, reactor.edge_triggered, reactor.io_uring,
  // reactor.sndbuf_kb.
  static Result<ReactorOptions> FromConfig(const Config& config);
};

// Registered, reusable scratch buffers. Loops borrow one per readable event
// instead of every connection pinning its own; the pool caps how many stay
// resident between bursts.
class BufferPool {
 public:
  BufferPool(size_t buffer_bytes, size_t max_pooled);

  class Lease {
   public:
    Lease() = default;
    Lease(BufferPool* pool, std::unique_ptr<uint8_t[]> data) noexcept
        : pool_(pool), data_(std::move(data)) {}
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept : pool_(other.pool_), data_(std::move(other.data_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    uint8_t* data() { return data_.get(); }
    size_t size() const { return pool_ != nullptr ? pool_->buffer_bytes() : 0; }

   private:
    void Release();
    BufferPool* pool_ = nullptr;
    std::unique_ptr<uint8_t[]> data_;
  };

  Lease Acquire();
  size_t buffer_bytes() const { return buffer_bytes_; }
  size_t pooled() const;
  size_t total_created() const { return created_.load(std::memory_order_relaxed); }

 private:
  friend class Lease;
  void Release(std::unique_ptr<uint8_t[]> buffer);

  const size_t buffer_bytes_;
  const size_t max_pooled_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<uint8_t[]>> free_;
  std::atomic<size_t> created_{0};
};

// One readiness notification. `events` uses the EPOLL* bit values.
struct PollEvent {
  int fd = -1;
  uint32_t events = 0;
};

// Readiness-notification backend: epoll or io_uring. All calls are made from
// the owning loop thread only.
class PollBackend {
 public:
  virtual ~PollBackend() = default;
  virtual const char* name() const = 0;
  virtual Status Add(int fd, uint32_t events) = 0;
  virtual Status Mod(int fd, uint32_t events) = 0;
  virtual void Del(int fd) = 0;
  // Blocks until at least one event; returns the count (≤ max), 0 on EINTR,
  // < 0 on an unrecoverable backend error.
  virtual int Wait(PollEvent* out, int max) = 0;
};

std::unique_ptr<PollBackend> MakeEpollBackend();
// nullptr when not built with RMP_IO_URING or when io_uring_setup fails at
// runtime (old kernel, seccomp) — the caller falls back to epoll.
std::unique_ptr<PollBackend> MakeIoUringBackend();

class EventLoop;
class Reactor;
class ReactorConnection;

// Decoded-frame and lifecycle callbacks for one connection, invoked on the
// connection's loop thread (never concurrently with each other).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  // Fired once, before any OnFrame, when the connection is registered.
  virtual void OnOpen(const std::shared_ptr<ReactorConnection>& conn) { (void)conn; }
  virtual void OnFrame(Message frame) = 0;
  // Fired exactly once; after it returns the sink is released by the loop.
  virtual void OnClose(const Status& reason) = 0;
};

// One nonblocking socket owned by an event loop.
//
// Reads always happen on the loop thread. Writes use a direct path: the
// thread calling Send flushes the output queue itself (scatter-gather
// sendmsg on the nonblocking socket) when it can take the single-flusher
// role, so the common uncongested send costs no cross-thread hop; only when
// the socket back-pressures (EAGAIN) does the connection arm EPOLLOUT and
// hand the remainder to the event loop.
class ReactorConnection : public std::enable_shared_from_this<ReactorConnection> {
 public:
  // Queues a frame for transmission. Thread-safe; returns false when the
  // connection is (being) closed and the frame was dropped. `on_written`,
  // when set, fires after the frame's last byte reaches the socket, on
  // whichever thread flushed it (not fired for frames dropped by a close);
  // it must not block or re-enter Send recursively without bound. With
  // `flush` false the frame is only queued (corked); the caller batches
  // several frames and then calls Flush() once, collapsing them into a
  // single scatter-gather write.
  bool Send(Message frame, std::function<void()> on_written = nullptr,
            bool flush = true);

  // Kicks the flusher for frames queued with Send(..., flush=false).
  // Thread-safe; a no-op when the queue is empty or a flush is in flight.
  void Flush() { MaybeFlush(); }

  // Asynchronously tears the connection down; OnClose(reason) fires once on
  // the loop thread. Idempotent, thread-safe.
  void Close(Status reason);

  // Like Close, but the already-queued frames are flushed first (e.g. an
  // auth-failure reply that must reach the peer before the drop).
  void CloseAfterFlush(Status reason);

  // True once the connection stops accepting Sends.
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Frames accepted but not yet fully written (test/backpressure probe).
  size_t queued_frames() const { return queued_frames_.load(std::memory_order_relaxed); }

  int fd() const { return fd_.get(); }

 private:
  friend class EventLoop;
  friend class Reactor;

  struct OutFrame {
    uint8_t prefix[kWirePrefixSize];
    std::vector<uint8_t> payload;
    size_t sent = 0;  // Bytes of prefix+payload already on the wire.
    std::function<void()> on_written;
  };

  ReactorConnection(UniqueFd fd, std::shared_ptr<FrameSink> sink, EventLoop* loop);

  // Tries to take the flusher role and drain the output queue (any thread).
  void MaybeFlush();
  void DoFlush();

  // Loop-thread-only handlers.
  void HandleReadable();
  void HandleWritable();
  void ArmWriteOnLoop();
  void CloseOnLoop(const Status& reason);

  EventLoop* loop_;

  // The fd stays open (shutdown, not closed) from CloseOnLoop until the
  // connection object dies, so a concurrent flusher can never write to a
  // recycled descriptor.
  UniqueFd fd_;
  std::atomic<bool> closed_{false};
  std::atomic<size_t> queued_frames_{0};

  // Output state (mutex_-guarded, producers + flusher + loop).
  std::mutex mutex_;
  std::deque<OutFrame> outq_;
  bool flushing_ = false;     // Exactly one thread holds the flusher role.
  bool want_write_ = false;   // EPOLLOUT armed (or being armed); flushers yield.
  bool closing_after_flush_ = false;
  bool close_posted_ = false;
  Status deferred_close_reason_;

  // Loop-thread-only state.
  std::shared_ptr<FrameSink> sink_;
  FrameReader reader_;  // Resumable partial-read codec state.
  bool in_poll_ = false;
  bool closed_on_loop_ = false;
};

// One event-loop thread: a poll backend, an eventfd for cross-thread task
// posting, and the connections + listeners assigned to this loop.
class EventLoop {
 public:
  EventLoop(int index, const ReactorOptions& options, BufferPool* pool,
            const std::string& metric_prefix);
  ~EventLoop();

  Status Start();
  void StopAndJoin();

  // Runs `task` on the loop thread (FIFO relative to other posted tasks).
  // Tasks posted after StopAndJoin are silently dropped.
  void Post(std::function<void()> task);
  bool IsLoopThread() const { return std::this_thread::get_id() == thread_.get_id(); }
  const char* backend_name() const { return backend_->name(); }

 private:
  friend class Reactor;
  friend class ReactorConnection;

  struct Listener {
    UniqueFd fd;
    std::function<void(UniqueFd)> on_accept;
  };

  void Run();
  void RunTasks();
  void AcceptReady(Listener* listener);
  void CloseAllOnLoop();

  const int index_;
  const ReactorOptions options_;
  BufferPool* pool_;
  std::unique_ptr<PollBackend> backend_;
  UniqueFd wakeup_fd_;
  std::thread thread_;

  std::mutex task_mutex_;
  std::vector<std::function<void()>> tasks_;
  bool wakeup_armed_ = false;     // Under task_mutex_.
  bool accepting_tasks_ = true;   // Under task_mutex_.

  // Loop-thread-only.
  bool running_ = true;
  std::unordered_map<int, std::shared_ptr<ReactorConnection>> conns_;
  std::unordered_map<int, Listener> listeners_;

  Gauge& ready_events_gauge_;
  Counter& dispatches_;
};

// The loop pool. Connections are assigned to loops round-robin.
class Reactor {
 public:
  // `metric_prefix` scopes the per-loop gauges; empty picks a unique
  // "reactor<N>" so concurrent instances (one per TcpServer) do not fight
  // over the same gauge.
  explicit Reactor(ReactorOptions options = ReactorOptions(), std::string metric_prefix = "");
  ~Reactor();

  // The process-wide client-side reactor (TcpTransport connections register
  // here). Loop count from RMP_CLIENT_LOOPS, default 2. Never stopped.
  static Reactor& Shared();

  // Takes ownership of `fd` (made nonblocking), assigns a loop, and starts
  // delivering sink callbacks on that loop's thread. Returns nullptr after
  // Stop().
  std::shared_ptr<ReactorConnection> Register(UniqueFd fd, std::shared_ptr<FrameSink> sink);

  // Watches a listening socket; `on_accept` runs on the loop thread once per
  // accepted (already nonblocking) connection.
  Status AddListener(UniqueFd listen_fd, std::function<void(UniqueFd)> on_accept);

  // Closes every connection and listener (OnClose fires for each), then
  // joins the loop threads. Idempotent.
  void Stop();

  int loop_count() const { return static_cast<int>(loops_.size()); }
  // Backend actually selected at runtime ("epoll" or "io_uring").
  const char* backend_name() const { return loops_[0]->backend_name(); }
  BufferPool& buffer_pool() { return pool_; }

 private:
  ReactorOptions options_;
  BufferPool pool_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_REACTOR_H_
