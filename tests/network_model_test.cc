#include "src/net/network_model.h"

#include <gtest/gtest.h>

#include "src/net/delayed_model.h"
#include "src/net/ethernet_model.h"
#include "src/net/token_ring_model.h"

namespace rmp {
namespace {

TEST(IdealLinkTest, TransferTimeMatchesBandwidth) {
  IdealLinkModel link(100.0, /*setup=*/0, /*protocol=*/Micros(100));
  // 1 MB at 100 Mbit/s = 80 ms.
  EXPECT_EQ(link.TransferTime(1'000'000), Millis(80));
  EXPECT_EQ(link.ProtocolTime(), Micros(100));
}

TEST(IdealLinkTest, SetupLatencyAdds) {
  IdealLinkModel link(10.0, Millis(1), 0);
  EXPECT_EQ(link.TransferTime(0), Millis(1));
}

TEST(ScaledModelTest, DividesWireTimeOnly) {
  auto base = std::make_shared<EthernetModel>();
  ScaledBandwidthModel scaled(base, 10.0);
  EXPECT_EQ(scaled.TransferTime(kPageSize), base->TransferTime(kPageSize) / 10);
  EXPECT_EQ(scaled.ProtocolTime(), base->ProtocolTime());
  EXPECT_NEAR(scaled.EffectiveBandwidthMbps(), base->EffectiveBandwidthMbps() * 10.0, 1e-6);
}

// §4.4 calibration: an 8 KB page costs 9.64 ms of wire + 1.6 ms protocol on
// the paper's 10 Mbit/s Ethernet.
TEST(EthernetModelTest, PaperPageCalibration) {
  EthernetModel ethernet;
  EXPECT_NEAR(ToMillis(ethernet.TransferTime(kPageSize)), 9.64, 0.15);
  EXPECT_EQ(ethernet.ProtocolTime(), Micros(1600));
  const double total_ms =
      ToMillis(ethernet.TransferTime(kPageSize) + ethernet.ProtocolTime());
  EXPECT_NEAR(total_ms, 11.24, 0.2);
}

TEST(EthernetModelTest, FragmentsByMtu) {
  EthernetModel ethernet;
  EXPECT_EQ(ethernet.FramesForBytes(0), 1);
  EXPECT_EQ(ethernet.FramesForBytes(1), 1);
  EXPECT_EQ(ethernet.FramesForBytes(1460), 1);
  EXPECT_EQ(ethernet.FramesForBytes(1461), 2);
  EXPECT_EQ(ethernet.FramesForBytes(kPageSize), 6);
}

TEST(EthernetModelTest, TransferTimeMonotoneInSize) {
  EthernetModel ethernet;
  DurationNs last = 0;
  for (uint64_t bytes : {100ull, 1000ull, 4096ull, 8192ull, 65536ull}) {
    const DurationNs t = ethernet.TransferTime(bytes);
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(EthernetModelTest, ContentionEfficiencyDecreasesWithStations) {
  EthernetModel ethernet;
  double last = 1.01;
  for (int stations = 1; stations <= 16; ++stations) {
    const double eff = ethernet.ContentionEfficiency(stations);
    EXPECT_LE(eff, last);
    EXPECT_GT(eff, 0.5);  // Full-size frames keep CSMA/CD efficient.
    last = eff;
  }
}

TEST(EthernetModelTest, BackgroundStationsShrinkClientShare) {
  EthernetParams alone;
  EthernetParams crowded;
  crowded.background_stations = 7;
  EthernetModel a(alone);
  EthernetModel b(crowded);
  EXPECT_GT(a.ClientShare(), 0.99);
  EXPECT_LT(b.ClientShare(), 0.15);
  EXPECT_GT(b.TransferTime(kPageSize), 6 * a.TransferTime(kPageSize));
}

TEST(TokenRingModelTest, NoCollapseUnderLoad) {
  TokenRingParams alone;
  TokenRingParams crowded;
  crowded.background_stations = 7;
  TokenRingModel a(alone);
  TokenRingModel b(crowded);
  // Fair sharing: 8 stations -> transfer ~8x slower, but the *ring* still
  // delivers nearly full aggregate bandwidth.
  const double slowdown = static_cast<double>(b.TransferTime(kPageSize)) /
                          static_cast<double>(a.TransferTime(kPageSize));
  EXPECT_NEAR(slowdown, 8.0, 1.0);
  EXPECT_GT(b.RingEfficiency(8), b.RingEfficiency(1));
}

TEST(TokenRingModelTest, EfficiencyApproachesOne) {
  TokenRingModel ring;
  EXPECT_GT(ring.RingEfficiency(4), 0.95);
}

TEST(DelayedModelTest, AddsFixedLatency) {
  auto base = std::make_shared<EthernetModel>();
  DelayedNetworkModel delayed(base, Millis(2));
  EXPECT_EQ(delayed.TransferTime(kPageSize), base->TransferTime(kPageSize) + Millis(2));
  EXPECT_EQ(delayed.ProtocolTime(), base->ProtocolTime());
  EXPECT_LT(delayed.EffectiveBandwidthMbps(), base->EffectiveBandwidthMbps());
}

TEST(NetworkModelTest, NamesAreDescriptive) {
  EXPECT_EQ(EthernetModel().Name(), "ethernet-10Mbps");
  EthernetParams crowded;
  crowded.background_stations = 2;
  EXPECT_EQ(EthernetModel(crowded).Name(), "ethernet-10Mbps+2bg");
  EXPECT_EQ(TokenRingModel().Name(), "token-ring-10Mbps");
}

}  // namespace
}  // namespace rmp
