#include "src/transport/transport.h"

#include <chrono>

namespace rmp {

RpcFuture RpcFuture::MakeReady(Result<Message> result) {
  auto state = NewState();
  state->result.emplace(std::move(result));
  return RpcFuture(std::move(state));
}

bool RpcFuture::ready() const {
  if (state_ == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->result.has_value();
}

Result<Message> RpcFuture::Wait() {
  if (state_ == nullptr) {
    return InternalError("Wait() on an invalid RpcFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->result.has_value(); });
  return *state_->result;
}

Result<Message> RpcFuture::WaitFor(DurationNs timeout) {
  if (state_ == nullptr) {
    return InternalError("WaitFor() on an invalid RpcFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  const bool completed = state_->cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                                             [this] { return state_->result.has_value(); });
  if (!completed) {
    return UnavailableError("rpc deadline exceeded");
  }
  return *state_->result;
}

void RpcFuture::Complete(const std::shared_ptr<State>& state, Result<Message> result) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->result.has_value()) {
      return;  // First completion wins (reply vs. teardown race).
    }
    state->result.emplace(std::move(result));
  }
  state->cv.notify_all();
}

RpcFuture Transport::CallAsync(Message request) { return RpcFuture::MakeReady(Call(request)); }

}  // namespace rmp
