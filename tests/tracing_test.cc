// PageTracer unit and integration tests: ring wraparound, nested-scope
// inerting, slow-op detection, span ordering across a faulty transport with
// retries, and the STATS_QUERY / TRACE_DUMP introspection RPCs under fault
// injection.

#include "src/util/tracing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/core/testbed.h"
#include "src/net/ethernet_model.h"
#include "src/util/metrics.h"

namespace rmp {
namespace {

TEST(PageTracerTest, RingWrapsOldestFirst) {
  PageTracerOptions options;
  options.ring_capacity = 4;
  MetricsRegistry registry;
  PageTracer tracer(&registry, options);
  for (uint64_t i = 0; i < 10; ++i) {
    const TimeNs t = static_cast<TimeNs>(i) * 100;
    const uint64_t id = tracer.Begin(TraceOp::kPageOut, i, t);
    ASSERT_NE(id, 0u);
    tracer.Span(TraceStage::kWire, t, t + 10);
    tracer.End(id, t + 20, true);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_traces(), 10);
  EXPECT_EQ(tracer.dropped(), 6);
  const std::vector<TraceRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest first, and only the last four survive.
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    EXPECT_LT(records[i].id, records[i + 1].id);
  }
  EXPECT_EQ(records.front().page_id, 6u);
  EXPECT_EQ(records.back().page_id, 9u);
  EXPECT_EQ(registry.GetCounter("trace.dropped")->value(), 6);
}

TEST(PageTracerTest, NestedBeginIsInert) {
  PageTracer tracer;
  const uint64_t outer = tracer.Begin(TraceOp::kPageOut, 1, 0);
  ASSERT_NE(outer, 0u);
  EXPECT_EQ(tracer.Begin(TraceOp::kPageIn, 2, 10), 0u);  // Nested: inert.
  tracer.End(0, 20, true);                               // No-op.
  EXPECT_TRUE(tracer.active());
  tracer.End(outer, 30, true);
  EXPECT_FALSE(tracer.active());
  EXPECT_EQ(tracer.total_traces(), 1);
}

TEST(PageTracerTest, SlowOpTripsThresholdAndCounter) {
  PageTracerOptions options;
  options.slow_op_ns = 100;
  MetricsRegistry registry;
  PageTracer tracer(&registry, options);
  const uint64_t fast = tracer.Begin(TraceOp::kPageIn, 1, 0);
  tracer.End(fast, 50, true);
  EXPECT_EQ(tracer.slow_ops(), 0);
  const uint64_t slow = tracer.Begin(TraceOp::kPageIn, 2, 0);
  tracer.End(slow, 250, true);
  EXPECT_EQ(tracer.slow_ops(), 1);
  EXPECT_EQ(registry.GetCounter("trace.slow_ops")->value(), 1);
}

TEST(PageTracerTest, StageTimeSumsSpans) {
  PageTracer tracer;
  const uint64_t id = tracer.Begin(TraceOp::kPageOut, 1, 0);
  tracer.Span(TraceStage::kWire, 0, 30);
  tracer.Span(TraceStage::kWire, 40, 50);
  tracer.Span(TraceStage::kService, 30, 40);
  tracer.End(id, 50, true);
  const TraceRecord record = tracer.Records().back();
  EXPECT_EQ(record.StageTime(TraceStage::kWire), 40);
  EXPECT_EQ(record.StageTime(TraceStage::kService), 10);
  EXPECT_EQ(record.StageTime(TraceStage::kParity), 0);
  EXPECT_EQ(record.total, 50);
}

TEST(PageTracerTest, JsonCarriesRecordShape) {
  PageTracer tracer;
  const uint64_t id = tracer.Begin(TraceOp::kPageIn, 77, 5);
  tracer.Span(TraceStage::kQueue, 5, 15);
  tracer.End(id, 20, true);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"op\":\"pagein\""), std::string::npos);
  EXPECT_NE(json.find("\"page\":77"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

// A pagein whose first attempt loses the request must retry with backoff and
// still produce one coherent trace: backoff span present, every span inside
// the record's [start, start+total] window, spans in recording order.
TEST(TracingIntegrationTest, RetriedPageInTracesBackoffSpan) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 2;
  params.network = std::make_shared<EthernetModel>();
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().message();
  PagingBackend& backend = (*bed)->backend();
  auto* pager = dynamic_cast<RemotePagerBase*>(&backend);
  ASSERT_NE(pager, nullptr);

  PageBuffer page;
  FillPattern(page.span(), 42);
  auto out_done = backend.PageOut(0, 1, page.span());
  ASSERT_TRUE(out_done.ok()) << out_done.status().message();

  auto plan = std::make_shared<FaultPlan>(7);
  plan->AddRule({.kind = FaultKind::kDropRequest, .at_op = 0,
                 .only_type = MessageType::kPageIn});
  (*bed)->InstallFaultPlan(0, plan);
  (*bed)->InstallFaultPlan(1, plan);

  PageBuffer read;
  auto in_done = backend.PageIn(*out_done, 1, read.span());
  ASSERT_TRUE(in_done.ok()) << in_done.status().message();
  EXPECT_TRUE(CheckPattern(read.span(), 42));
  EXPECT_EQ(plan->faults_fired(), 1);

  const std::vector<TraceRecord> records = pager->tracer().Records();
  ASSERT_GE(records.size(), 2u);
  const TraceRecord& pagein = records.back();
  EXPECT_EQ(pagein.op, TraceOp::kPageIn);
  EXPECT_TRUE(pagein.ok);
  EXPECT_GT(pagein.StageTime(TraceStage::kBackoff), 0);
  EXPECT_GT(pagein.StageTime(TraceStage::kWire), 0);
  for (const TraceSpan& span : pagein.spans) {
    EXPECT_GE(span.start, pagein.start);
    EXPECT_LE(span.start + span.duration, pagein.start + pagein.total);
  }
  for (size_t i = 0; i + 1 < pagein.spans.size(); ++i) {
    EXPECT_LE(pagein.spans[i].start, pagein.spans[i + 1].start);
  }
  // The retry also shows in the stage histogram the bench reads.
  HistogramMetric* backoff = pager->metrics().GetHistogram("trace.stage.backoff_ns");
  ASSERT_NE(backoff, nullptr);
  EXPECT_GE(backoff->count(), 1);
}

// Acceptance: a STATS RPC round trip retrieves the remote server's registry
// snapshot while a fault plan is interfering — the first query is dropped,
// the retry succeeds and carries real counters.
TEST(TracingIntegrationTest, StatsQueryRoundTripUnderFaultInjection) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().message();
  PagingBackend& backend = (*bed)->backend();
  auto* pager = dynamic_cast<RemotePagerBase*>(&backend);
  ASSERT_NE(pager, nullptr);

  PageBuffer page;
  for (uint64_t id = 0; id < 8; ++id) {
    FillPattern(page.span(), id + 1);
    ASSERT_TRUE(backend.PageOut(0, id, page.span()).ok());
  }

  auto plan = std::make_shared<FaultPlan>(11);
  plan->AddRule({.kind = FaultKind::kDropRequest, .at_op = 0,
                 .only_type = MessageType::kStatsQuery});
  (*bed)->InstallFaultPlan(0, plan);

  ServerPeer& peer = pager->cluster().peer(0);
  auto first = peer.QueryStats();
  EXPECT_FALSE(first.ok());  // The plan ate the query.
  EXPECT_EQ(plan->faults_fired(), 1);
  peer.mark_alive();  // Connection is up; only a message was lost.
  auto second = peer.QueryStats();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_NE(second->find("\"server.pageouts_served\""), std::string::npos);
  EXPECT_NE(second->find("\"kind\":\"counter\""), std::string::npos);
  // The snapshot is this incarnation's: mirroring sent every page to both
  // replicas, so server 0 served all eight pageouts.
  EXPECT_NE(second->find("\"value\":8"), std::string::npos);
}

// TRACE_DUMP ships the client tracer's ring across the wire.
TEST(TracingIntegrationTest, TraceDumpTravelsTheWire) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().message();
  PagingBackend& backend = (*bed)->backend();
  auto* pager = dynamic_cast<RemotePagerBase*>(&backend);
  ASSERT_NE(pager, nullptr);
  (*bed)->AttachTracerToServer(0);

  PageBuffer page;
  FillPattern(page.span(), 9);
  ASSERT_TRUE(backend.PageOut(0, 5, page.span()).ok());

  auto dump = pager->cluster().peer(0).DumpRemoteTrace();
  ASSERT_TRUE(dump.ok()) << dump.status().message();
  EXPECT_NE(dump->find("\"op\":\"pageout\""), std::string::npos);
  EXPECT_NE(dump->find("\"page\":5"), std::string::npos);

  // A server with no tracer attached answers with an empty ring, not an
  // error.
  auto empty = pager->cluster().peer(1).DumpRemoteTrace();
  ASSERT_TRUE(empty.ok()) << empty.status().message();
  EXPECT_EQ(*empty, "[]");
}

// Restarting a server must reset its registry: the new incarnation's
// STATS_QUERY reply starts from zero (no incarnation mixing).
TEST(TracingIntegrationTest, RestartResetsServerRegistry) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().message();
  PagingBackend& backend = (*bed)->backend();
  auto* pager = dynamic_cast<RemotePagerBase*>(&backend);
  ASSERT_NE(pager, nullptr);

  PageBuffer page;
  FillPattern(page.span(), 3);
  ASSERT_TRUE(backend.PageOut(0, 0, page.span()).ok());
  EXPECT_GT((*bed)->server(0).stats().pageouts_served.load() +
                (*bed)->server(1).stats().pageouts_served.load(),
            0);

  (*bed)->CrashServer(0);
  (*bed)->RestartServer(0);
  EXPECT_EQ((*bed)->server(0).stats().pageouts_served.load(), 0);
  EXPECT_EQ((*bed)->server(0).stats().bytes_stored.load(), 0);

  // And the client-side peer Reset clears the peer.* prefix the same way.
  ServerPeer& peer = pager->cluster().peer(0);
  Counter* sent = pager->metrics().GetCounter("peer.server-0.pages_sent");
  ASSERT_NE(sent, nullptr);
  peer.Reset();
  EXPECT_EQ(sent->value(), 0);
  EXPECT_EQ(peer.pages_sent(), 0);
  EXPECT_EQ(pager->metrics().GetCounter("peer.server-0.resets")->value(), 1);
}

TEST(TracingIntegrationTest, DumpMetricsShowsAllSections) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().message();
  PageBuffer page;
  FillPattern(page.span(), 1);
  ASSERT_TRUE((*bed)->backend().PageOut(0, 0, page.span()).ok());

  const std::string dump = (*bed)->DumpMetrics();
  EXPECT_NE(dump.find("# client (MIRRORING)"), std::string::npos);
  EXPECT_NE(dump.find("# server-0"), std::string::npos);
  EXPECT_NE(dump.find("# server-1"), std::string::npos);
  EXPECT_NE(dump.find("# process"), std::string::npos);
  EXPECT_NE(dump.find("backend.pageouts"), std::string::npos);
  EXPECT_NE(dump.find("server.pageouts_served"), std::string::npos);
  EXPECT_NE(dump.find("peer.server-0.pages_sent"), std::string::npos);
}

}  // namespace
}  // namespace rmp
