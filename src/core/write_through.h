// WRITE THROUGH (§4.7): remote memory as a write-through cache of the local
// disk. Every pageout goes to a remote server *and* to the local swap disk;
// the two transfers proceed in parallel (different devices), so the pageout
// completes at max(network, disk). Every pagein is served from remote memory
// at network speed — no head movements for reads.
//
// With disk bandwidth ≈ network bandwidth (the paper's 10 Mbit/s RZ55 vs
// 10 Mbit/s Ethernet) this beats parity logging slightly; with a fast
// network the disk becomes the pageout bottleneck and parity logging wins —
// the crossover Fig. 5 and §4.7 discuss.

#ifndef SRC_CORE_WRITE_THROUGH_H_
#define SRC_CORE_WRITE_THROUGH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/core/remote_pager.h"
#include "src/disk/disk_backend.h"

namespace rmp {

class WriteThroughBackend final : public RemotePagerBase {
 public:
  WriteThroughBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                      const RemotePagerParams& params, std::unique_ptr<DiskBackend> disk)
      : RemotePagerBase(std::move(cluster), std::move(fabric), params), disk_(std::move(disk)) {}

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  std::string Name() const override { return "WRITE_THROUGH"; }

  // After a server crash the disk still has everything; this re-uploads the
  // lost pages to the surviving servers so reads stay at memory speed.
  // Implemented as a loop over RepairStep.
  Status Recover(size_t peer_index, TimeNs* now);

  // Incremental re-upload: restores up to `max_pages` lost remote copies
  // from the write-through disk per call; 0 = nothing left referencing
  // the dead peer.
  Result<uint64_t> RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

 private:
  struct Location {
    bool remote_valid = false;
    size_t peer = 0;
    uint64_t slot = 0;
  };

  Result<TimeNs> SendRemote(TimeNs now, uint64_t page_id, std::span<const uint8_t> data);

  std::unique_ptr<DiskBackend> disk_;
  std::unordered_map<uint64_t, Location> table_;
};

}  // namespace rmp

#endif  // SRC_CORE_WRITE_THROUGH_H_
